//! orion-oodb: the umbrella crate for the orion object-oriented
//! database system, a Rust realization of the research agenda in
//! Won Kim, *"Research Directions in Object-Oriented Database Systems"*,
//! PODS 1990.
//!
//! Most applications only need [`orion`] (the facade) and, for the
//! multidatabase scenarios of the paper's §5.2, [`RelbaseAdapter`] to
//! attach a `relbase` relational database to the federation. To serve
//! the database to remote clients — the shared-server architecture of
//! the paper's §2 — use [`net`] (`orion-net`): a wire-protocol
//! [`net::Server`] plus blocking [`net::Client`]. To partition the
//! database across several such servers, [`shard`] (`orion-shard`)
//! adds a class-placement router and a two-phase commit coordinator
//! behind the same facade-shaped API.
//!
//! ```
//! use orion_oodb::orion::{AttrSpec, Database, Domain, PrimitiveType, Value};
//!
//! let db = Database::open_in_memory();
//! db.create_class(
//!     "Company",
//!     &[],
//!     vec![AttrSpec::new("name", Domain::Primitive(PrimitiveType::Str))],
//! )
//! .unwrap();
//! let tx = db.begin();
//! db.create_object(&tx, "Company", vec![("name", Value::str("MCC"))]).unwrap();
//! let r = db.query(&tx, "select c.name from Company c").unwrap();
//! assert_eq!(r.rows[0][0], Value::str("MCC"));
//! db.commit(tx).unwrap();
//! ```

pub use orion_core as orion;
pub use orion_net as net;
pub use orion_shard as shard;
pub use relbase;

pub mod relbase_adapter;

pub use relbase_adapter::RelbaseAdapter;
