//! A [`ForeignAdapter`] serving `relbase` tables to the orion
//! federation — the concrete migration path of the paper's §5.2:
//! "suppose that an Employee database is managed by a relational
//! database system ... An object-oriented data model may be used as the
//! common data model for presenting the schemas of these different
//! databases to the user."

use orion_core::{ForeignAdapter, ForeignClass, ForeignObject};
use orion_types::{DbResult, PrimitiveType};
use relbase::RelDb;
use std::sync::Arc;

/// `(table, class name, columns with types)` — one exposed table.
type ExposedTable = (String, String, Vec<(String, PrimitiveType)>);

/// Exposes selected `relbase` tables as orion classes. Each table row
/// becomes an object whose OID is stable across scans (keyed by row id).
pub struct RelbaseAdapter {
    name: String,
    db: Arc<RelDb>,
    exposed: Vec<ExposedTable>,
}

impl RelbaseAdapter {
    /// Expose `tables` of `db` under class names of the caller's choice.
    /// Column sets are declared explicitly so an adapter can project.
    #[allow(clippy::type_complexity)]
    pub fn new(
        name: &str,
        db: Arc<RelDb>,
        tables: Vec<(&str, &str, Vec<(&str, PrimitiveType)>)>,
    ) -> Self {
        RelbaseAdapter {
            name: name.to_owned(),
            db,
            exposed: tables
                .into_iter()
                .map(|(table, class, cols)| {
                    (
                        table.to_owned(),
                        class.to_owned(),
                        cols.into_iter().map(|(c, t)| (c.to_owned(), t)).collect(),
                    )
                })
                .collect(),
        }
    }

    fn table_for(&self, class: &str) -> Option<&ExposedTable> {
        self.exposed.iter().find(|(_, c, _)| c == class)
    }
}

impl ForeignAdapter for RelbaseAdapter {
    fn name(&self) -> &str {
        &self.name
    }

    fn classes(&self) -> Vec<ForeignClass> {
        self.exposed
            .iter()
            .map(|(_, class, cols)| ForeignClass { name: class.clone(), attrs: cols.clone() })
            .collect()
    }

    fn scan(&self, class: &str) -> DbResult<Vec<ForeignObject>> {
        let Some((table, _, cols)) = self.table_for(class) else {
            return Err(orion_types::DbError::Foreign(format!(
                "adapter `{}` does not serve class `{class}`",
                self.name
            )));
        };
        // Column positions resolved once per scan via a header probe.
        let rows = self.db.scan(table)?;
        let mut out = Vec::with_capacity(rows.len());
        for (rowid, values) in rows {
            // relbase scans return values in declared column order; the
            // adapter's declared columns are a (possibly reordered)
            // projection, resolved by name against the full row via the
            // table's declared columns — which the adapter mirrors by
            // construction, so positions align with `cols`.
            let attrs = cols
                .iter()
                .enumerate()
                .filter_map(|(i, (name, _))| {
                    values.get(i).map(|v| (name.clone(), v.clone()))
                })
                .collect();
            out.push(ForeignObject { key: rowid, attrs });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_core::Database;
    use orion_types::Value;
    use relbase::ColumnDef;

    #[test]
    fn relbase_rows_queryable_through_orion() {
        let rel = Arc::new(RelDb::new(32));
        rel.create_table(
            "employee",
            vec![
                ColumnDef::new("ename", PrimitiveType::Str),
                ColumnDef::new("salary", PrimitiveType::Int),
            ],
        )
        .unwrap();
        let txn = rel.begin();
        rel.insert(txn, "employee", vec![Value::str("kim"), Value::Int(90_000)]).unwrap();
        rel.insert(txn, "employee", vec![Value::str("chou"), Value::Int(70_000)]).unwrap();
        rel.commit(txn).unwrap();

        let db = Database::open_in_memory();
        let adapter = RelbaseAdapter::new(
            "legacy-hr",
            Arc::clone(&rel),
            vec![(
                "employee",
                "Employee",
                vec![("ename", PrimitiveType::Str), ("salary", PrimitiveType::Int)],
            )],
        );
        db.attach_foreign(Box::new(adapter)).unwrap();

        let tx = db.begin();
        let r = db
            .query(&tx, "select e.ename from Employee e where e.salary >= 80000")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::str("kim")]]);

        // New rows inserted into relbase appear on the next orion scan.
        let txn = rel.begin();
        rel.insert(txn, "employee", vec![Value::str("woelk"), Value::Int(95_000)]).unwrap();
        rel.commit(txn).unwrap();
        let r = db
            .query(&tx, "select count(*) from Employee e where e.salary >= 80000")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        db.commit(tx).unwrap();
    }
}
