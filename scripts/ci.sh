#!/usr/bin/env bash
# The full local CI gate: release build, test suite, lint (clippy with
# warnings-as-errors, which also blocks internal use of deprecated
# APIs), and a parallel_query bench smoke run that regenerates
# BENCH_parallel_query.json — including the instrumentation-overhead
# measurement, which must stay within its 5% budget.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> scripts/lint.sh"
scripts/lint.sh

echo "==> bench smoke: parallel_query"
cargo run -p orion-bench --release --bin parallel_query

echo "==> ci.sh: all gates passed"
