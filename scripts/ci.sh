#!/usr/bin/env bash
# The full local CI gate: release build, test suite, lint (clippy with
# warnings-as-errors, which also blocks internal use of deprecated
# APIs), the client/server integration tests, a release-mode
# concurrency stress run (the #[ignore]d elevated-thread-count test in
# tests/concurrency.rs), the chaos gates (the fixed-seed smoke from
# tests/chaos.rs, then the #[ignore]d multi-seed hammer in release
# mode), and two bench smoke runs:
# parallel_query regenerates BENCH_parallel_query.json (its
# instrumentation-overhead measurement must stay within the 5% budget)
# and net_throughput --smoke regenerates BENCH_net.json (a ~2 second
# multi-client run over real sockets).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> net integration tests"
cargo test -q -p orion-net --test net_integration

echo "==> concurrency stress (release, elevated thread count)"
cargo test -q --release --test concurrency -- --ignored

echo "==> chaos smoke (fixed seeds, bounded rounds)"
cargo test -q --test chaos

echo "==> chaos hammer (release, multi-seed sweep)"
cargo test -q --release --test chaos -- --ignored

echo "==> scripts/lint.sh"
scripts/lint.sh

echo "==> bench smoke: parallel_query"
cargo run -p orion-bench --release --bin parallel_query

echo "==> bench smoke: net_throughput"
cargo run -p orion-bench --release --bin net_throughput -- --smoke

echo "==> ci.sh: all gates passed"
