#!/usr/bin/env bash
# The full local CI gate: release build, test suite, lint (clippy with
# warnings-as-errors, which also blocks internal use of deprecated
# APIs), the client/server integration tests, a release-mode
# concurrency stress run (the #[ignore]d elevated-thread-count test in
# tests/concurrency.rs), the chaos gates (the fixed-seed smoke from
# tests/chaos.rs, then the #[ignore]d multi-seed hammer in release
# mode), and two bench smoke runs:
# parallel_query regenerates BENCH_parallel_query.json (its
# instrumentation-overhead measurement must stay within the 5% budget,
# and its mixed_read_write section feeds the MVCC regression gate:
# ~0 pure-read lock acquisitions, reader throughput within 20% as
# writers are added on multi-core hosts, and its commit_throughput
# section feeds the group-commit gate: flushes-per-commit < 0.5 at 8
# concurrent committers) and net_throughput --smoke regenerates
# BENCH_net.json (a ~2 second multi-client run over real sockets).
# The backend conformance suite runs the storage contract and the
# durability scenarios over both SimDisk and FileDisk. The sharded
# smoke runs the cluster tests (2PC participant/coordinator crash
# recovery, fan-out merge fidelity), and the net bench's sharded
# section feeds the passthrough-overhead gate (< 3x a direct client).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> net integration tests"
cargo test -q -p orion-net --test net_integration

echo "==> concurrency stress (release, elevated thread count)"
cargo test -q --release --test concurrency -- --ignored

echo "==> chaos smoke (fixed seeds, bounded rounds, both backends)"
cargo test -q --test chaos

echo "==> sharded cluster smoke (2PC crash/recovery, fan-out fidelity)"
cargo test -q -p orion-shard
cargo test -q --test sharded

echo "==> backend conformance suite (SimDisk + FileDisk)"
cargo test -q --test backend_conformance
cargo test -q --test durability

echo "==> chaos hammer (release, multi-seed sweep)"
cargo test -q --release --test chaos -- --ignored

echo "==> scripts/lint.sh"
scripts/lint.sh

echo "==> bench smoke: parallel_query"
cargo run -p orion-bench --release --bin parallel_query

echo "==> mixed_read_write regression gate"
# MVCC snapshot reads must keep a pure-read workload off the lock
# manager entirely, and (on hosts with enough cores) keep reader
# throughput flat as writers are added. Parsed with sed/awk so the
# gate has no jq/python dependency.
bench_json=BENCH_parallel_query.json
pure_locks=$(sed -n 's/.*"pure_read_lock_acquisitions": \([0-9][0-9]*\).*/\1/p' "$bench_json")
degradation=$(sed -n 's/.*"reader_degradation_pct": \(-\{0,1\}[0-9.][0-9.]*\).*/\1/p' "$bench_json")
gate_enforced=$(sed -n 's/.*"reader_gate_enforced": \(true\|false\).*/\1/p' "$bench_json")
if [ -z "$pure_locks" ] || [ -z "$degradation" ] || [ -z "$gate_enforced" ]; then
  echo "FAIL: could not parse mixed_read_write fields from $bench_json" >&2
  exit 1
fi
if [ "$pure_locks" -gt 4 ]; then
  echo "FAIL: pure-read workload took $pure_locks 2PL locks (budget: 4)" >&2
  exit 1
fi
echo "    pure-read lock acquisitions: $pure_locks (budget: 4)"
if [ "$gate_enforced" = "true" ]; then
  if ! awk -v d="$degradation" 'BEGIN { exit !(d <= 20.0) }'; then
    echo "FAIL: reader throughput degraded ${degradation}% with writers added (budget: 20%)" >&2
    exit 1
  fi
  echo "    reader throughput degradation: ${degradation}% (budget: 20%)"
else
  echo "    reader flatness gate skipped: host is core-bound (degradation was ${degradation}%)"
fi

echo "==> group commit regression gate"
# One fsync must amortize over concurrent committers: with 8 committers
# sharing a flush ticket, flushes-per-commit has to land below 0.5 (at
# 1 committer it is necessarily 1.0; the bench records 1/8/64).
fpc8=$(sed -n 's/.*"committers": 8,.*"flushes_per_commit": \([0-9.][0-9.]*\).*/\1/p' "$bench_json")
if [ -z "$fpc8" ]; then
  echo "FAIL: could not parse flushes_per_commit at 8 committers from $bench_json" >&2
  exit 1
fi
if ! awk -v f="$fpc8" 'BEGIN { exit !(f < 0.5) }'; then
  echo "FAIL: group commit managed only $fpc8 flushes/commit at 8 committers (budget: < 0.5)" >&2
  exit 1
fi
echo "    flushes per commit at 8 committers: $fpc8 (budget: < 0.5)"

echo "==> bench smoke: net_throughput"
cargo run -p orion-bench --release --bin net_throughput -- --smoke

echo "==> shard passthrough overhead gate"
# Routing a single-shard query through the partition router must stay
# one hop: its median latency may not exceed 3x a direct client's for
# the same query (the budget absorbs 1-CPU scheduling noise; the
# steady-state ratio is ~1x).
net_json=BENCH_net.json
ratio=$(sed -n 's/.*"passthrough_overhead_ratio": \([0-9.][0-9.]*\).*/\1/p' "$net_json")
if [ -z "$ratio" ]; then
  echo "FAIL: could not parse passthrough_overhead_ratio from $net_json" >&2
  exit 1
fi
if ! awk -v r="$ratio" 'BEGIN { exit !(r < 3.0) }'; then
  echo "FAIL: router passthrough costs ${ratio}x a direct client (budget: < 3.0x)" >&2
  exit 1
fi
echo "    passthrough overhead: ${ratio}x direct (budget: < 3.0x)"

echo "==> concurrent connections gate"
# The evented core must hold 1000+ open connections on a handful of
# event loops, and (on hosts with spare cores) a loaded 4-client subset
# running through that crowd must keep its p99 at or under the
# uncrowded 4-client p50 — parked connections cost a poll slot, not
# latency. On core-bound hosts the tail measures the scheduler, so the
# bench marks the latency half of the gate unenforced.
open_conns=$(sed -n 's/.*"open_connections": \([0-9][0-9]*\).*/\1/p' "$net_json")
loaded_p99=$(sed -n 's/.*"loaded_p99_ms": \([0-9.][0-9.]*\).*/\1/p' "$net_json")
base_p50=$(sed -n 's/.*"baseline_4client_p50_ms": \([0-9.][0-9.]*\).*/\1/p' "$net_json")
conc_enforced=$(sed -n 's/.*"concurrent_gate_enforced": \(true\|false\).*/\1/p' "$net_json")
if [ -z "$open_conns" ] || [ -z "$loaded_p99" ] || [ -z "$base_p50" ] || [ -z "$conc_enforced" ]; then
  echo "FAIL: could not parse concurrent_connections fields from $net_json" >&2
  exit 1
fi
if [ "$open_conns" -lt 1000 ]; then
  echo "FAIL: only $open_conns concurrent connections held open (floor: 1000)" >&2
  exit 1
fi
echo "    open connections: $open_conns (floor: 1000)"
if [ "$conc_enforced" = "true" ]; then
  if ! awk -v p99="$loaded_p99" -v p50="$base_p50" 'BEGIN { exit !(p99 <= p50) }'; then
    echo "FAIL: loaded p99 ${loaded_p99}ms through the crowd exceeds the uncrowded 4-client p50 ${base_p50}ms" >&2
    exit 1
  fi
  echo "    loaded p99 through the crowd: ${loaded_p99}ms (budget: uncrowded p50 ${base_p50}ms)"
else
  echo "    loaded-tail gate skipped: host is core-bound (p99 was ${loaded_p99}ms vs p50 ${base_p50}ms)"
fi

echo "==> ci.sh: all gates passed"
