#!/usr/bin/env bash
# Workspace lint gate: clippy over every target (libs, bins, tests,
# benches, examples) with warnings promoted to errors. Run from anywhere
# inside the repo; CI and pre-commit should call exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo clippy --workspace --all-targets -- -D warnings
