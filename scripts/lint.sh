#!/usr/bin/env bash
# Workspace lint gate: clippy over every target (libs, bins, tests,
# benches, examples) with warnings promoted to errors, plus a grep
# deny that keeps sleep-based polling out of the evented network
# core's hot paths. Run from anywhere inside the repo; CI and
# pre-commit should call exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

# The server went readiness-based in the evented-core refactor; any
# thread::sleep creeping back into crates/net/src is a polling
# regression. The client is exempt: its reconnect retry backoff
# legitimately sleeps between dial attempts.
if grep -rn "thread::sleep" crates/net/src --include='*.rs' | grep -v '^crates/net/src/client\.rs:'; then
  echo "FAIL: thread::sleep in crates/net/src — the server is readiness-driven; poll, don't sleep" >&2
  exit 1
fi

exec cargo clippy --workspace --all-targets -- -D warnings
