//! Deductive capabilities (§5.4) over a bill-of-materials graph.
//!
//! The paper notes that the aggregation hierarchy "is actually a graph
//! which admits cycles" — exactly what a plain query language cannot
//! close over. This example defines `uses` edges between parts
//! (including a service-loop cycle) and derives `depends_on` by
//! transitive closure, comparing naive and semi-naive evaluation work.
//!
//! Run with: `cargo run --example deductive_bom`

use orion_oodb::orion::{
    var, AttrSpec, Database, Domain, Migration, PrimitiveType, Rule, RuleAtom, SchemaChange,
    Value,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::open_in_memory();
    db.create_class(
        "Part",
        &[],
        vec![AttrSpec::new("name", Domain::Primitive(PrimitiveType::Str))],
    )?;
    // Self-referential domain: "The domain of an attribute of a class C
    // may be the class C" (§3.1 concept 4).
    let part = db.with_catalog(|c| c.class_id("Part"))?;
    db.evolve(
        SchemaChange::AddAttribute {
            class: part,
            spec: AttrSpec::new("uses", Domain::set_of_class(part)),
        },
        Migration::Lazy,
    )?;

    // A small BOM: engine -> {block, head}; head -> {valve};
    // valve -> {spring}; and a remanufacturing loop spring -> engine.
    let tx = db.begin();
    let mut oid = std::collections::HashMap::new();
    for name in ["engine", "block", "head", "valve", "spring", "bolt"] {
        oid.insert(name, db.create_object(&tx, "Part", vec![("name", Value::str(name))])?);
    }
    let link = |from: &str, to: Vec<&str>| -> (orion_oodb::orion::Oid, Value) {
        (oid[from], Value::set(to.into_iter().map(|t| Value::Ref(oid[t])).collect()))
    };
    for (from, value) in [
        link("engine", vec!["block", "head"]),
        link("head", vec!["valve", "bolt"]),
        link("valve", vec!["spring"]),
        link("spring", vec!["engine"]), // the cycle
    ] {
        db.set(&tx, from, "uses", value)?;
    }
    db.commit(tx)?;

    // depends_on(X, Y) :- uses(X, Y).
    // depends_on(X, Z) :- depends_on(X, Y), uses(Y, Z).
    db.add_rule(Rule {
        head: RuleAtom::new("depends_on", vec![var("X"), var("Y")]),
        body: vec![RuleAtom::new("uses", vec![var("X"), var("Y")])],
    })?;
    db.add_rule(Rule {
        head: RuleAtom::new("depends_on", vec![var("X"), var("Z")]),
        body: vec![
            RuleAtom::new("depends_on", vec![var("X"), var("Y")]),
            RuleAtom::new("uses", vec![var("Y"), var("Z")]),
        ],
    })?;

    let semi = db.infer("depends_on", true)?;
    let naive = db.infer("depends_on", false)?;
    assert_eq!(semi.tuples.len(), naive.tuples.len());
    println!("depends_on tuples : {}", semi.tuples.len());
    println!(
        "semi-naive        : {} iterations, {} substitutions",
        semi.iterations, semi.substitutions
    );
    println!(
        "naive             : {} iterations, {} substitutions",
        naive.iterations, naive.substitutions
    );

    // Despite the cycle, the closure is finite; print what the engine
    // transitively depends on.
    let tx = db.begin();
    let engine = oid["engine"];
    let mut names: Vec<String> = semi
        .tuples
        .iter()
        .filter(|t| t[0] == Value::Ref(engine))
        .filter_map(|t| t[1].as_ref_oid())
        .map(|o| {
            let v = db.get(&tx, o, "name").unwrap();
            v.as_str().unwrap_or_default().to_owned()
        })
        .collect();
    names.sort();
    println!("the engine transitively depends on: {names:?}");
    db.commit(tx)?;
    Ok(())
}
