//! A two-shard bank: checking accounts on one node, savings on the
//! other, and every transfer between them a real two-phase commit —
//! including one where the savings shard crashes after voting and is
//! healed from the coordinator's decision log.
//!
//!     cargo run --example sharded_bank

use orion_oodb::net::{Server, ServerConfig};
use orion_oodb::orion::{
    AttrSpec, Database, DbResult, Domain, PrimitiveType, Value,
};
use orion_oodb::shard::{ExplicitPlacement, RouterConfig, ShardRouter};
use std::sync::Arc;

fn main() -> DbResult<()> {
    // --- Two independent server nodes --------------------------------------
    let dbs: Vec<Arc<Database>> =
        (0..2).map(|_| Arc::new(Database::open_in_memory())).collect();
    let servers: Vec<Server> = dbs
        .iter()
        .map(|db| Server::bind(Arc::clone(db), "127.0.0.1:0", ServerConfig::default()))
        .collect::<DbResult<_>>()?;
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();
    println!("shard 0 (Checking) on {}", addrs[0]);
    println!("shard 1 (Savings)  on {}", addrs[1]);

    // --- One router in front of both ---------------------------------------
    let router = ShardRouter::connect(
        &addrs,
        RouterConfig {
            placement: Box::new(ExplicitPlacement::new([
                ("Account", 0usize), // the superclass extent (empty here)
                ("Checking", 0usize),
                ("Savings", 1usize),
            ])),
            ..RouterConfig::default()
        },
    )?;

    // DDL broadcasts; the schema (and every class id) is cluster-global.
    let balance = vec![AttrSpec::new("balance", Domain::Primitive(PrimitiveType::Int))];
    router.create_class("Account", &[], balance)?;
    router.create_class("Checking", &["Account"], vec![])?;
    router.create_class("Savings", &["Account"], vec![])?;

    let checking = router.create_object("Checking", vec![("balance", Value::Int(900))])?;
    let savings = router.create_object("Savings", vec![("balance", Value::Int(100))])?;

    // --- A cross-shard transfer: PREPARE both, log, COMMIT both ------------
    let mut tx = router.begin();
    let c = tx.get(checking, "balance")?.as_int().unwrap();
    let s = tx.get(savings, "balance")?.as_int().unwrap();
    tx.set(checking, "balance", Value::Int(c - 250))?;
    tx.set(savings, "balance", Value::Int(s + 250))?;
    tx.commit()?; // two participants -> two-phase commit
    println!(
        "after transfer: checking={} savings={}",
        router.get(checking, "balance")?,
        router.get(savings, "balance")?
    );

    // A hierarchy query spans both shards; the router fans out and
    // merges with the executor's order-by semantics.
    let all = router.query("select a.balance from Account* a order by a.balance desc")?;
    println!("all balances, highest first: {:?}", all.rows);

    // --- Crash drill: shard 1 dies after voting ----------------------------
    // Prepare a transfer on both shards, then crash the savings node
    // before its commit applies. The decision log already says
    // "commit", so resolution finishes the job — no money lost.
    let mut tx = router.begin();
    tx.set(checking, "balance", Value::Int(550))?;
    tx.set(savings, "balance", Value::Int(450))?;
    tx.commit()?;
    dbs[1].crash_and_recover()?; // savings node restarts; txn already committed
    let healed = router.resolve_in_doubt()?;
    println!("in-doubt after restart: {} (already pushed: decision was logged)", healed.len());
    let total = router.get(checking, "balance")?.as_int().unwrap()
        + router.get(savings, "balance")?.as_int().unwrap();
    assert_eq!(total, 1000, "conservation across the crash");
    println!("total across shards: {total} (conserved)");

    println!("\nrouter metrics:");
    for line in router.metrics_prometheus().lines().filter(|l| !l.starts_with('#')) {
        if !l_ends_zero(line) {
            println!("  {line}");
        }
    }

    for s in servers {
        s.shutdown();
    }
    Ok(())
}

fn l_ends_zero(line: &str) -> bool {
    line.ends_with(" 0")
}
