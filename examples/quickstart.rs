//! Quickstart: the paper's Figure 1 schema, end to end.
//!
//! Builds the Vehicle/Company class and aggregation hierarchies, loads
//! a small fleet, and runs the query from §3.2 of the paper — "Find all
//! vehicles that weigh more than 7500 lbs, and that are manufactured by
//! a company located in Detroit" — first by extent scan, then again
//! through a class-hierarchy index and a nested-attribute index to show
//! the optimizer switching plans.
//!
//! Run with: `cargo run --example quickstart`

use orion_oodb::orion::{
    AccessPath, AttrSpec, Database, Domain, IndexKind, PrimitiveType, Value,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::open_in_memory();

    // --- Schema: Figure 1 ------------------------------------------------
    let str_dom = || Domain::Primitive(PrimitiveType::Str);
    let int_dom = || Domain::Primitive(PrimitiveType::Int);

    db.create_class(
        "Company",
        &[],
        vec![AttrSpec::new("name", str_dom()), AttrSpec::new("location", str_dom())],
    )?;
    let company = db.with_catalog(|c| c.class_id("Company"))?;
    db.create_class(
        "Vehicle",
        &[],
        vec![
            AttrSpec::new("weight", int_dom()),
            AttrSpec::new("manufacturer", Domain::Class(company)),
        ],
    )?;
    db.create_class("Automobile", &["Vehicle"], vec![AttrSpec::new("drivetrain", str_dom())])?;
    db.create_class("Truck", &["Vehicle"], vec![AttrSpec::new("payload", int_dom())])?;
    db.create_class("DomesticAutomobile", &["Automobile"], vec![])?;

    // --- Data --------------------------------------------------------------
    let tx = db.begin();
    let motorco = db.create_object(
        &tx,
        "Company",
        vec![("name", Value::str("MotorCo")), ("location", Value::str("Detroit"))],
    )?;
    let chipco = db.create_object(
        &tx,
        "Company",
        vec![("name", Value::str("ChipCo")), ("location", Value::str("Austin"))],
    )?;
    for i in 1..=10i64 {
        let (class, manu) = match i % 3 {
            0 => ("Truck", motorco),
            1 => ("Automobile", chipco),
            _ => ("DomesticAutomobile", motorco),
        };
        db.create_object(
            &tx,
            class,
            vec![("weight", Value::Int(1000 * i)), ("manufacturer", Value::Ref(manu))],
        )?;
    }
    db.commit(tx)?;

    // --- The query of §3.2 ---------------------------------------------------
    let query = "select v from Vehicle* v \
                 where v.weight > 7500 and v.manufacturer.location = \"Detroit\" \
                 order by v.weight asc";
    let tx = db.begin();
    println!("plan without indexes : {}", db.explain(&tx, query)?);
    let scan_result = db.query(&tx, query)?;
    println!("matches              : {}", scan_result.len());
    for oid in &scan_result.oids {
        let class = db.with_catalog(|c| c.resolve(oid.class()).map(|r| r.name.clone()))?;
        let weight = db.get(&tx, *oid, "weight")?;
        let maker = db.navigate(&tx, *oid, &["manufacturer"])?;
        let maker_name = db.get(&tx, maker, "name")?;
        println!("  {class:<20} weight={weight:<6} made by {maker_name}");
    }
    db.commit(tx)?;

    // --- Same query, indexed -------------------------------------------------
    db.create_index("vehicle_weight", IndexKind::ClassHierarchy, "Vehicle", &["weight"])?;
    db.create_index("vehicle_maker_loc", IndexKind::Nested, "Vehicle", &["manufacturer", "location"])?;
    let tx = db.begin();
    let report = db.explain(&tx, query)?;
    println!("plan with indexes    : {report}");
    assert!(!matches!(report.access, AccessPath::Scan), "optimizer picked an index");
    let indexed_result = db.query(&tx, query)?;
    assert_eq!(scan_result.oids, indexed_result.oids, "plans agree on results");
    println!("indexed matches      : {} (identical)", indexed_result.len());
    db.commit(tx)?;

    // --- Hierarchy vs class scope ---------------------------------------------
    let tx = db.begin();
    for q in [
        "select count(*) from Vehicle v",
        "select count(*) from Vehicle* v",
        "select count(*) from Automobile* v",
        "select count(*) from Truck v",
    ] {
        let n = &db.query(&tx, q)?.rows[0][0];
        println!("{q:<42} -> {n}");
    }
    db.commit(tx)?;

    // --- One stats snapshot for the whole session ------------------------------
    let stats = db.stats();
    println!(
        "session stats: {} queries ({} rows scanned), {} pool hits / {} misses, \
         {} WAL appends, {} lock acquisitions, {} object fetches",
        stats.exec.queries,
        stats.exec.rows_scanned,
        stats.pool.hits,
        stats.pool.misses,
        stats.wal.appends,
        stats.locks.acquisitions,
        stats.fetches,
    );
    Ok(())
}
