//! The multidatabase scenario of §5.2, verbatim:
//!
//! "Suppose that an Employee database is managed by a relational
//! database system ... and a Company database is managed by an
//! object-oriented database system. An object-oriented data model may be
//! used as the common data model for presenting the schemas of these
//! different databases to the user."
//!
//! The Employee data lives in `relbase`; Company objects live in orion;
//! the same declarative language queries both, and a deductive rule
//! joins across the federation boundary.
//!
//! Run with: `cargo run --example multidatabase`

use orion_oodb::orion::{
    var, AttrSpec, Database, Domain, PrimitiveType, Rule, RuleAtom, Value,
};
use orion_oodb::RelbaseAdapter;
use relbase::{ColumnDef, RelDb};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The legacy relational HR system ------------------------------------
    let hr = Arc::new(RelDb::new(64));
    hr.create_table(
        "employee",
        vec![
            ColumnDef::new("ename", PrimitiveType::Str),
            ColumnDef::new("employer", PrimitiveType::Str),
            ColumnDef::new("salary", PrimitiveType::Int),
        ],
    )?;
    let txn = hr.begin();
    for (name, employer, salary) in [
        ("kim", "MCC", 95_000),
        ("banerjee", "MCC", 85_000),
        ("garza", "MCC", 80_000),
        ("stonebraker", "Berkeley", 99_000),
    ] {
        hr.insert(
            txn,
            "employee",
            vec![Value::str(name), Value::str(employer), Value::Int(salary)],
        )?;
    }
    hr.commit(txn)?;

    // --- The object-oriented Company database -------------------------------
    let db = Database::open_in_memory();
    db.create_class(
        "Company",
        &[],
        vec![
            AttrSpec::new("name", Domain::Primitive(PrimitiveType::Str)),
            AttrSpec::new("location", Domain::Primitive(PrimitiveType::Str)),
        ],
    )?;
    let tx = db.begin();
    for (name, location) in [("MCC", "Austin"), ("Berkeley", "Berkeley")] {
        db.create_object(
            &tx,
            "Company",
            vec![("name", Value::str(name)), ("location", Value::str(location))],
        )?;
    }
    db.commit(tx)?;

    // --- Attach the relational database to the federation -------------------
    let adapter = RelbaseAdapter::new(
        "legacy-hr",
        Arc::clone(&hr),
        vec![(
            "employee",
            "Employee",
            vec![
                ("ename", PrimitiveType::Str),
                ("employer", PrimitiveType::Str),
                ("salary", PrimitiveType::Int),
            ],
        )],
    );
    println!("attached foreign classes: {:?}", db.attach_foreign(Box::new(adapter))?);

    // One language over both databases.
    let tx = db.begin();
    let r = db.query(&tx, "select e.ename, e.salary from Employee e \
                           where e.salary >= 85000 order by e.salary desc")?;
    println!("well-paid employees (from the relational system):");
    for row in &r.rows {
        println!("  {} earns {}", row[0], row[1]);
    }
    let r = db.query(&tx, "select c.name from Company c where c.location = \"Austin\"")?;
    println!("Austin companies (native objects): {:?}", r.rows);
    db.commit(tx)?;

    // --- Reasoning across the boundary ---------------------------------------
    // works_in(E, City) :- employer(E, N), name(C, N), location(C, City).
    // `employer` comes from relbase rows, `name`/`location` from orion
    // objects — the rule engine does not care.
    db.add_rule(Rule {
        head: RuleAtom::new("works_in", vec![var("E"), var("City")]),
        body: vec![
            RuleAtom::new("employer", vec![var("E"), var("N")]),
            RuleAtom::new("name", vec![var("C"), var("N")]),
            RuleAtom::new("location", vec![var("C"), var("City")]),
        ],
    })?;
    let result = db.infer("works_in", true)?;
    println!("works_in tuples across the federation: {}", result.tuples.len());

    // Live updates flow through: hire someone in the legacy system.
    let txn = hr.begin();
    hr.insert(txn, "employee", vec![Value::str("woelk"), Value::str("MCC"), Value::Int(90_000)])?;
    hr.commit(txn)?;
    let tx = db.begin();
    let n = db.query(&tx, "select count(*) from Employee e")?;
    println!("employees visible after a relational insert: {}", n.rows[0][0]);
    db.commit(tx)?;
    Ok(())
}
