//! A CAx session — the application domain that "galvanized the
//! activities in object-oriented database systems" (§3.3).
//!
//! A small VLSI-flavored design database exercising the paper's CAx
//! feature list: **composite objects** (a design owns its cells),
//! **clustering** (parts co-located with their root), **versions**
//! (derive → edit → promote, generic references late-bind to the default
//! version), **change notification**, and a **checkout/checkin**
//! long-duration editing session.
//!
//! Run with: `cargo run --example cad_design`

use orion_oodb::orion::{
    AttrSpec, Database, Domain, PrimitiveType, Value,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::open_in_memory();
    let str_dom = || Domain::Primitive(PrimitiveType::Str);
    let int_dom = || Domain::Primitive(PrimitiveType::Int);

    // Cells are parts of a design: exclusive, dependent composite refs.
    db.create_class(
        "Cell",
        &[],
        vec![AttrSpec::new("name", str_dom()), AttrSpec::new("area", int_dom())],
    )?;
    let cell = db.with_catalog(|c| c.class_id("Cell"))?;
    db.create_class(
        "Design",
        &[],
        vec![
            AttrSpec::new("title", str_dom()),
            AttrSpec::new("revision", int_dom()).with_default(Value::Int(1)),
            AttrSpec::new("cells", Domain::set_of_class(cell)).composite(),
        ],
    )?;

    // --- Build a composite design -----------------------------------------
    let tx = db.begin();
    let (generic, v1) =
        db.create_versioned(&tx, "Design", vec![("title", Value::str("alu64"))])?;
    db.subscribe(generic);
    for (name, area) in [("adder", 120), ("shifter", 80), ("regfile", 400)] {
        db.create_part(&tx, v1, "cells", "Cell", vec![
            ("name", Value::str(name)),
            ("area", Value::Int(area)),
        ])?;
    }
    db.commit(tx)?;
    println!("design v1 has {} cells", db.parts_of(v1).len());

    // Clustering: the composite traversal after a cold start touches few
    // pages because parts were placed next to their root.
    db.cool_caches()?;
    db.reset_metrics();
    let tx = db.begin();
    let _workspace = db.checkout(&tx, v1)?;
    let pool = db.stats().pool;
    println!(
        "cold checkout of the composite: {} page miss(es) for {} objects",
        pool.misses,
        db.parts_of(v1).len() + 1
    );
    db.rollback(tx)?; // release the checkout locks without changes

    // --- A long-duration editing session ------------------------------------
    // Derive a new version (composite parts are exclusive to their
    // parent, so the derived design starts with fresh cells), check its
    // composite out, edit, check in.
    let tx = db.begin();
    let v2 = db.derive_version(&tx, v1)?;
    db.set(&tx, v2, "revision", Value::Int(2))?;
    for (name, area) in [("adder", 110), ("shifter", 70)] {
        db.create_part(&tx, v2, "cells", "Cell", vec![
            ("name", Value::str(name)),
            ("area", Value::Int(area)),
        ])?;
    }
    let mut workspace = db.checkout(&tx, v2)?;
    for attrs in workspace.values_mut() {
        for (name, value) in attrs.iter_mut() {
            if name == "title" {
                *value = Value::str("alu64-fast");
            }
        }
    }
    db.checkin(&tx, workspace)?;
    db.promote_version(&tx, v2)?;
    db.set_default_version(&tx, generic, v2)?;
    db.commit(tx)?;

    // Generic references late-bind: readers of the generic object now
    // see version 2 without being touched.
    let tx = db.begin();
    println!(
        "generic design resolves to: title={} revision={}",
        db.get(&tx, generic, "title")?,
        db.get(&tx, generic, "revision")?
    );
    // Working versions are frozen.
    match db.set(&tx, v2, "revision", Value::Int(99)) {
        Err(e) => println!("editing the working version is refused: {e}"),
        Ok(()) => unreachable!("working versions are immutable"),
    }
    db.commit(tx)?;

    // Change notification: the subscriber saw the derivation and the
    // default flip.
    for n in db.poll_notifications(generic) {
        println!("notification: {:?} (by {:?})", n.kind, n.by);
    }

    // Dependent delete: dropping the old version removes its cells.
    let before = db.extent_len("Cell")?;
    let tx = db.begin();
    db.delete_object(&tx, v1)?;
    db.commit(tx)?;
    println!("cells before deleting v1: {before}, after: {}", db.extent_len("Cell")?);
    Ok(())
}
