//! The quickstart scenario, client/server: the shared database server
//! of the paper's §2 architecture, with the Figure 1 query ("vehicles
//! heavier than 7500 lbs made by a company in Detroit") arriving over
//! a socket instead of a function call.
//!
//!     cargo run --example net_quickstart

use orion_oodb::net::{Client, Server, ServerConfig};
use orion_oodb::orion::{AttrSpec, Database, DbResult, Domain, PrimitiveType, Value};
use std::sync::Arc;

fn main() -> DbResult<()> {
    // --- Server side: schema + data, then bind -----------------------------
    let db = Arc::new(Database::open_in_memory());
    let str_dom = || Domain::Primitive(PrimitiveType::Str);
    let int_dom = || Domain::Primitive(PrimitiveType::Int);

    db.create_class(
        "Company",
        &[],
        vec![AttrSpec::new("name", str_dom()), AttrSpec::new("location", str_dom())],
    )?;
    let company = db.with_catalog(|c| c.class_id("Company"))?;
    db.create_class(
        "Vehicle",
        &[],
        vec![
            AttrSpec::new("weight", int_dom()),
            AttrSpec::new("manufacturer", Domain::Class(company)),
        ],
    )?;
    db.create_class("Automobile", &["Vehicle"], vec![])?;
    db.create_class("Truck", &["Vehicle"], vec![AttrSpec::new("payload", int_dom())])?;

    let tx = db.begin();
    let motorco = db.create_object(
        &tx,
        "Company",
        vec![("name", Value::str("MotorCo")), ("location", Value::str("Detroit"))],
    )?;
    let chipco = db.create_object(
        &tx,
        "Company",
        vec![("name", Value::str("ChipCo")), ("location", Value::str("Austin"))],
    )?;
    for i in 1..=10i64 {
        let (class, manu) = if i % 2 == 0 { ("Truck", motorco) } else { ("Automobile", chipco) };
        db.create_object(
            &tx,
            class,
            vec![("weight", Value::Int(1000 * i)), ("manufacturer", Value::Ref(manu))],
        )?;
    }
    db.commit(tx)?;

    // Port 0 = ephemeral: the OS picks a free port, local_addr() tells us.
    let server = Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default())?;
    let addr = server.local_addr();
    println!("serving orion on {addr}");

    // --- Client side: dial in and run the Figure 1 query -------------------
    let mut client = Client::connect(addr)?;
    client.ping()?;

    let query = "select v from Vehicle* v \
                 where v.weight > 7500 and v.manufacturer.location = \"Detroit\" \
                 order by v.weight asc";
    println!("remote plan   : {}", client.explain(query)?);
    let result = client.query(query)?;
    println!("remote matches: {}", result.oids.len());
    for oid in &result.oids {
        let weight = client.get(*oid, "weight")?;
        println!("  {oid}  weight={weight}");
    }

    // The wire returns exactly what the in-process facade computes.
    let tx = db.begin();
    let local = db.query(&tx, query)?;
    db.commit(tx)?;
    assert_eq!(result.oids, local.oids, "wire and facade agree");

    // One scrape covers the whole service, network layer included.
    let scrape = client.stats_prometheus()?;
    let net_lines: Vec<&str> =
        scrape.lines().filter(|l| l.starts_with("orion_net_") && !l.ends_with(" 0")).collect();
    println!("live net series after this session:");
    for line in &net_lines {
        println!("  {line}");
    }

    server.shutdown();
    println!("server drained and stopped");
    Ok(())
}
