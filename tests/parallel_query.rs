//! Read-concurrent query execution over the shared runtime: queries
//! take the runtime's shared lock and run their candidate evaluation on
//! worker threads, so N readers proceed concurrently and serialize only
//! against DML. These tests pin down (a) that a reader fleet plus a
//! writer makes progress without deadlock and sees only consistent
//! states, and (b) that the parallel facade produces results identical
//! to a serial-configured one.

use orion_oodb::orion::{
    AttrSpec, Database, DbConfig, DbError, Domain, PrimitiveType, Value,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const ITEMS: i64 = 400;

/// A hierarchy with `ITEMS` instances split over two leaf classes.
fn item_db(query_threads: usize) -> Arc<Database> {
    let config = DbConfig {
        query_threads,
        lock_timeout: Duration::from_secs(30),
        ..DbConfig::default()
    };
    let db = Arc::new(Database::with_config(config));
    db.create_class(
        "Item",
        &[],
        vec![AttrSpec::new("rank", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    db.create_class("Widget", &["Item"], vec![]).unwrap();
    db.create_class("Gadget", &["Item"], vec![]).unwrap();
    let tx = db.begin();
    for i in 0..ITEMS {
        let class = if i % 2 == 0 { "Widget" } else { "Gadget" };
        // Duplicate ranks (i / 8) exercise order-by tie handling.
        db.create_object(&tx, class, vec![("rank", Value::Int(i / 8))]).unwrap();
    }
    db.commit(tx).unwrap();
    db
}

/// Four readers hammer hierarchy queries while a writer keeps updating
/// ranks. Every read must see a consistent committed state (the writer
/// preserves `rank >= 0`, so the matching count never changes), and the
/// whole workload must drain without deadlocking.
#[test]
fn readers_and_writer_make_progress_without_deadlock() {
    let db = item_db(4);
    let queries_run = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let db = Arc::clone(&db);
            let queries_run = Arc::clone(&queries_run);
            s.spawn(move || {
                for _ in 0..25 {
                    // Retry loop: a reader can be picked as the deadlock
                    // victim when its S locks collide with the writer.
                    loop {
                        let tx = db.begin();
                        match db.query(&tx, "select count(*) from Item* i where i.rank >= 0") {
                            Ok(r) => {
                                assert_eq!(r.rows[0][0], Value::Int(ITEMS), "inconsistent read");
                                db.commit(tx).unwrap();
                                break;
                            }
                            Err(DbError::Deadlock { .. }) | Err(DbError::LockTimeout { .. }) => {
                                db.rollback(tx).unwrap();
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                    queries_run.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let db = Arc::clone(&db);
        s.spawn(move || {
            let oids = {
                let tx = db.begin();
                let r = db.query(&tx, "select i from Item* i where i.rank = 0").unwrap();
                db.commit(tx).unwrap();
                r.oids
            };
            for round in 1..=20i64 {
                loop {
                    let tx = db.begin();
                    // 1000+round stays clear of the pre-existing ranks
                    // (0..ITEMS/8) so the final count is unambiguous.
                    let result = oids
                        .iter()
                        .try_for_each(|oid| db.set(&tx, *oid, "rank", Value::Int(1000 + round)));
                    match result {
                        Ok(()) => {
                            db.commit(tx).unwrap();
                            break;
                        }
                        Err(DbError::Deadlock { .. }) | Err(DbError::LockTimeout { .. }) => {
                            db.rollback(tx).unwrap();
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            }
        });
    });
    assert_eq!(queries_run.load(Ordering::Relaxed), 100);
    // The writer's last round is durable and visible.
    let tx = db.begin();
    let r = db.query(&tx, "select count(*) from Item* i where i.rank = 1020").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(8));
    db.commit(tx).unwrap();
}

/// A parallel-configured database answers every query shape exactly
/// like a serial one over identical contents (OID allocation is
/// deterministic, so results compare byte-for-byte).
#[test]
fn parallel_facade_matches_serial_facade() {
    let serial = item_db(1);
    let parallel = item_db(8);
    for text in [
        "select i from Item* i where i.rank > 10",
        "select i.rank from Item* i order by i.rank desc limit 33",
        "select i from Widget i where i.rank <= 25 order by i.rank asc",
        "select count(*) from Item* i where i.rank != 7",
        "select i from Item* i limit 5",
    ] {
        let tx_s = serial.begin();
        let tx_p = parallel.begin();
        let a = serial.query(&tx_s, text).unwrap();
        let b = parallel.query(&tx_p, text).unwrap();
        serial.commit(tx_s).unwrap();
        parallel.commit(tx_p).unwrap();
        assert_eq!(a, b, "`{text}` diverged between serial and parallel facades");
    }
}
