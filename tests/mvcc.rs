//! Snapshot-read semantics under MVCC: queries pin a commit timestamp
//! and read per-object version chains, taking no 2PL locks. These
//! tests pin down the visibility contract — read-your-own-writes, no
//! dirty reads, stable snapshots under concurrent commits, readers
//! never queueing behind writers — and the pruning safety property
//! (a version visible to an active snapshot is never reclaimed).

use orion_oodb::orion::{
    AttrSpec, Database, DbConfig, Domain, Oid, PrimitiveType, Value,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn counter_db() -> Arc<Database> {
    let db = Arc::new(Database::open_in_memory());
    db.create_class(
        "Counter",
        &[],
        vec![AttrSpec::new("n", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    db
}

fn seed(db: &Database, values: &[i64]) -> Vec<Oid> {
    let tx = db.begin();
    let oids = values
        .iter()
        .map(|v| db.create_object(&tx, "Counter", vec![("n", Value::Int(*v))]).unwrap())
        .collect();
    db.commit(tx).unwrap();
    oids
}

/// A transaction's queries see its own uncommitted creates, updates,
/// and deletes — while a concurrent transaction's queries see none of
/// them.
#[test]
fn transaction_reads_its_own_uncommitted_writes() {
    let db = counter_db();
    let oids = seed(&db, &[1, 2, 3]);

    let writer = db.begin();
    db.set(&writer, oids[0], "n", Value::Int(100)).unwrap();
    db.delete_object(&writer, oids[1]).unwrap();
    db.create_object(&writer, "Counter", vec![("n", Value::Int(200))]).unwrap();

    // The writer's own snapshot: update applied, delete gone, create in.
    let r = db.query(&writer, "select c.n from Counter c order by c.n asc").unwrap();
    let own: Vec<_> = r.rows.iter().map(|row| row[0].clone()).collect();
    assert_eq!(own, vec![Value::Int(3), Value::Int(100), Value::Int(200)]);

    // A concurrent reader sees only the committed state.
    let reader = db.begin();
    let r = db.query(&reader, "select c.n from Counter c order by c.n asc").unwrap();
    let other: Vec<_> = r.rows.iter().map(|row| row[0].clone()).collect();
    assert_eq!(other, vec![Value::Int(1), Value::Int(2), Value::Int(3)], "dirty read");
    db.commit(reader).unwrap();

    db.commit(writer).unwrap();

    // After commit, a fresh snapshot sees the writer's state.
    let tx = db.begin();
    let r = db.query(&tx, "select c.n from Counter c order by c.n asc").unwrap();
    let now: Vec<_> = r.rows.iter().map(|row| row[0].clone()).collect();
    assert_eq!(now, vec![Value::Int(3), Value::Int(100), Value::Int(200)]);
    db.commit(tx).unwrap();
}

/// A query never waits for a writer's X locks: with a short lock
/// timeout and a writer camped on every object, the reader both
/// completes instantly and sees only committed values.
#[test]
fn no_dirty_reads_and_no_queueing_behind_writers() {
    let config = DbConfig { lock_timeout: Duration::from_millis(200), ..DbConfig::default() };
    let db = Arc::new(Database::with_config(config));
    db.create_class(
        "Counter",
        &[],
        vec![AttrSpec::new("n", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    let oids = seed(&db, &[10, 20, 30]);

    // The writer X-locks all three objects and parks, uncommitted.
    let writer = db.begin();
    for oid in &oids {
        db.set(&writer, *oid, "n", Value::Int(-1)).unwrap();
    }

    db.reset_metrics();
    let reader = db.begin();
    let r = db
        .query(&reader, "select count(*) from Counter c where c.n > 0")
        .expect("a snapshot query must not hit the writer's locks");
    assert_eq!(r.rows[0][0], Value::Int(3), "uncommitted -1 values leaked into a query");
    db.commit(reader).unwrap();

    let stats = db.stats();
    assert_eq!(stats.locks.acquisitions, 0, "the reader took 2PL locks");
    assert_eq!(stats.locks.waits, 0);
    assert!(stats.mvcc.snapshot_reads > 0, "reads resolved through the version store");

    db.rollback(writer).unwrap();
}

/// Overlapping snapshots: a query that starts before a commit keeps
/// reading the old state even after later commits land; each commit's
/// writes appear atomically to new snapshots. The writer keeps the
/// invariant "all objects carry the same value", so any mixed result
/// is a torn (non-snapshot) read.
#[test]
fn long_query_sees_stable_snapshot_while_commits_land() {
    const OBJECTS: usize = 32;
    const ROUNDS: i64 = 60;
    let db = counter_db();
    let oids = seed(&db, &[0i64; OBJECTS]);

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let db_w = Arc::clone(&db);
        let oids_w = oids.clone();
        let stop = &stop;
        s.spawn(move || {
            for round in 1..=ROUNDS {
                let tx = db_w.begin();
                for oid in &oids_w {
                    db_w.set(&tx, *oid, "n", Value::Int(round)).unwrap();
                }
                db_w.commit(tx).unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });

        for reader in 0..2 {
            let db_r = Arc::clone(&db);
            s.spawn(move || {
                let mut observed = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let tx = db_r.begin();
                    let r = db_r.query(&tx, "select c.n from Counter c").unwrap();
                    db_r.commit(tx).unwrap();
                    assert_eq!(r.rows.len(), OBJECTS, "reader {reader}: objects vanished");
                    let first = r.rows[0][0].clone();
                    for row in &r.rows {
                        assert_eq!(
                            row[0], first,
                            "reader {reader}: torn snapshot — saw two different rounds at once"
                        );
                    }
                    observed.push(first.as_int().unwrap());
                }
                // Snapshots never move backwards within one reader.
                for pair in observed.windows(2) {
                    assert!(pair[1] >= pair[0], "reader {reader}: snapshot went backwards");
                }
            });
        }
    });

    // The final state is the last round.
    let tx = db.begin();
    let r = db.query(&tx, &format!("select count(*) from Counter c where c.n = {ROUNDS}")).unwrap();
    assert_eq!(r.rows[0][0], Value::Int(OBJECTS as i64));
    db.commit(tx).unwrap();
}

/// Churn with creates and deletes: every committed state holds exactly
/// N live objects (each writer transaction creates one and deletes
/// one), so every snapshot scan must count exactly N — catching both
/// tombstone-merge bugs (a deleted object vanishing from an older
/// snapshot) and uncommitted-create leaks.
#[test]
fn snapshot_scans_merge_concurrently_deleted_objects() {
    const LIVE: usize = 20;
    const CHURN: usize = 80;
    let db = counter_db();
    let mut live = seed(&db, &[7i64; LIVE]);

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let db_w = Arc::clone(&db);
        let stop = &stop;
        s.spawn(move || {
            for _ in 0..CHURN {
                let tx = db_w.begin();
                let fresh =
                    db_w.create_object(&tx, "Counter", vec![("n", Value::Int(7))]).unwrap();
                let doomed = live.remove(0);
                db_w.delete_object(&tx, doomed).unwrap();
                db_w.commit(tx).unwrap();
                live.push(fresh);
            }
            stop.store(true, Ordering::Relaxed);
        });

        let db_r = Arc::clone(&db);
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let tx = db_r.begin();
                let r = db_r.query(&tx, "select count(*) from Counter c").unwrap();
                db_r.commit(tx).unwrap();
                assert_eq!(
                    r.rows[0][0],
                    Value::Int(LIVE as i64),
                    "snapshot saw a torn create/delete pair"
                );
            }
        });
    });
}

/// Version pruning is observable (chains are reclaimed once snapshots
/// retire) and never reclaims a version an active snapshot still needs
/// — demonstrated end-to-end by committing many rounds against a
/// database while verifying stats, since the only user-visible proof
/// of safety is that concurrent stable-snapshot reads stay correct
/// (asserted above) while `versions_pruned` advances.
#[test]
fn pruning_reclaims_chains_once_snapshots_retire() {
    let db = counter_db();
    let oids = seed(&db, &[0]);

    db.reset_metrics();
    for round in 1..=50i64 {
        let tx = db.begin();
        db.set(&tx, oids[0], "n", Value::Int(round)).unwrap();
        db.commit(tx).unwrap();
    }
    let stats = db.stats();
    assert_eq!(stats.mvcc.versions_published, 50);
    // With no snapshot pinned, each publish prunes its predecessor:
    // chains stay at depth 1 and most versions are reclaimed.
    assert!(
        stats.mvcc.versions_pruned >= 49,
        "unpinned chains must not accumulate (pruned {})",
        stats.mvcc.versions_pruned
    );
    assert!(
        stats.mvcc.chain_length.sum_micros <= 2 * stats.mvcc.chain_length.count,
        "observed chain depth stayed bounded"
    );

    // Reads of the final state resolve without version chains at all.
    let tx = db.begin();
    let r = db.query(&tx, "select c.n from Counter c").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(50));
    db.commit(tx).unwrap();
    assert_eq!(db.stats().mvcc.active_snapshots, 0);
}

/// Rollback discards staged versions: a rolled-back transaction's
/// writes never surface in any snapshot, and later queries resolve
/// cleanly.
#[test]
fn rolled_back_writes_never_surface_in_snapshots() {
    let db = counter_db();
    let oids = seed(&db, &[5, 6]);

    let tx = db.begin();
    db.set(&tx, oids[0], "n", Value::Int(500)).unwrap();
    db.delete_object(&tx, oids[1]).unwrap();
    db.create_object(&tx, "Counter", vec![("n", Value::Int(600))]).unwrap();
    db.rollback(tx).unwrap();

    let tx = db.begin();
    let r = db.query(&tx, "select c.n from Counter c order by c.n asc").unwrap();
    let values: Vec<_> = r.rows.iter().map(|row| row[0].clone()).collect();
    assert_eq!(values, vec![Value::Int(5), Value::Int(6)]);
    db.commit(tx).unwrap();
}

/// Crash recovery resets the version store to match the replayed
/// committed truth; snapshots before and after the crash stay correct.
#[test]
fn snapshots_stay_correct_across_crash_recovery() {
    let db = counter_db();
    let oids = seed(&db, &[1]);

    let tx = db.begin();
    db.set(&tx, oids[0], "n", Value::Int(2)).unwrap();
    db.commit(tx).unwrap();

    // An uncommitted write dies with the crash.
    let doomed = db.begin();
    db.set(&doomed, oids[0], "n", Value::Int(99)).unwrap();
    db.crash_and_recover().unwrap();

    let tx = db.begin();
    let r = db.query(&tx, "select c.n from Counter c").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));
    db.commit(tx).unwrap();

    // Post-recovery commits publish and read back normally.
    let tx = db.begin();
    db.set(&tx, oids[0], "n", Value::Int(3)).unwrap();
    db.commit(tx).unwrap();
    let tx = db.begin();
    let r = db.query(&tx, "select c.n from Counter c").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3));
    db.commit(tx).unwrap();
}

/// Repro for the known index/MVCC race (DESIGN.md §"MVCC snapshot
/// reads", known limit): secondary indexes are *not* versioned, so an
/// index-assisted query racing a committed key update can miss a
/// moving row — the index files it under the new key the instant the
/// writer commits, while the query's snapshot still sees the old
/// value (candidates are residual-checked against snapshot values, so
/// nothing dirty leaks *in*; rows only fall *out*).
///
/// Detection: a flock of items flips its key 10 → 20 → 10 atomically
/// (one commit moves all of them), so under ANY snapshot an
/// index-probed `k = 10` count must be all-or-nothing. A partial
/// count is a torn index-assisted read: the probe ran against index
/// state newer than the query snapshot. `#[ignore]`d until indexes
/// are versioned (or index probes re-validate against the snapshot by
/// falling back to a scan on mismatch): the failure is a real,
/// documented engine limit — not flaky test noise.
#[test]
#[ignore = "known limit: unversioned indexes can tear an index-assisted snapshot read"]
fn index_assisted_snapshot_query_can_miss_a_moving_row() {
    use orion_oodb::orion::IndexKind;

    const FLOCK: i64 = 32;
    let db = Arc::new(Database::open_in_memory());
    db.create_class(
        "Item",
        &[],
        vec![AttrSpec::new("k", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    db.create_index("byk", IndexKind::ClassHierarchy, "Item", &["k"]).unwrap();
    let tx = db.begin();
    let flock: Vec<Oid> = (0..FLOCK)
        .map(|_| db.create_object(&tx, "Item", vec![("k", Value::Int(10))]).unwrap())
        .collect();
    // Decoys fatten the extent so the optimizer prefers the index for
    // the point probe over a full scan.
    for i in 0..512i64 {
        db.create_object(&tx, "Item", vec![("k", Value::Int(1_000 + i))]).unwrap();
    }
    db.commit(tx).unwrap();

    // The probe must be index-assisted for the race to exist.
    let probe = "select count(*) from Item i where i.k = 10";
    let tx = db.begin();
    let plan = db.explain(&tx, probe).unwrap().to_string();
    db.commit(tx).unwrap();
    assert!(plan.to_lowercase().contains("index"), "probe must be index-assisted: {plan}");

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut k = 10i64;
            while !stop.load(Ordering::Relaxed) {
                k = if k == 10 { 20 } else { 10 };
                let tx = db.begin();
                for oid in &flock {
                    db.set(&tx, *oid, "k", Value::Int(k)).unwrap();
                }
                db.commit(tx).unwrap();
            }
        })
    };

    let mut tears = 0u32;
    for _ in 0..2_000 {
        let tx = db.begin();
        let r = db.query(&tx, probe).unwrap();
        db.commit(tx).unwrap();
        // One commit moves the whole flock, so every snapshot holds
        // either all of them at k = 10 or none. Anything in between is
        // the index reading ahead of the snapshot.
        let n = r.rows[0][0].as_int().unwrap();
        assert!(n <= FLOCK, "phantom duplicates would be a worse bug: {n}");
        if n != 0 && n != FLOCK {
            tears += 1;
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    assert_eq!(tears, 0, "index-assisted snapshot reads tore {tears} times");
}
