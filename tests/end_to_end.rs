//! Cross-crate integration: a single scenario touching most of the
//! system at once — schema with inheritance, indexes of all three
//! kinds, declarative queries, methods, views, evolution, and recovery.

use orion_oodb::orion::{
    AccessPath, AttrSpec, Database, Domain, IndexKind, Migration, PrimitiveType, SchemaChange,
    Value,
};
use std::sync::Arc;

fn str_dom() -> Domain {
    Domain::Primitive(PrimitiveType::Str)
}
fn int_dom() -> Domain {
    Domain::Primitive(PrimitiveType::Int)
}

#[test]
fn the_whole_system_in_one_story() {
    let db = Database::open_in_memory();

    // --- Schema (Figure 1 plus a deeper hierarchy) -----------------------
    db.create_class(
        "Company",
        &[],
        vec![AttrSpec::new("name", str_dom()), AttrSpec::new("location", str_dom())],
    )
    .unwrap();
    let company = db.with_catalog(|c| c.class_id("Company")).unwrap();
    db.create_class(
        "Vehicle",
        &[],
        vec![
            AttrSpec::new("weight", int_dom()),
            AttrSpec::new("manufacturer", Domain::Class(company)),
        ],
    )
    .unwrap();
    db.create_class("Automobile", &["Vehicle"], vec![]).unwrap();
    db.create_class("Truck", &["Vehicle"], vec![AttrSpec::new("payload", int_dom())]).unwrap();
    db.create_class("DumpTruck", &["Truck"], vec![]).unwrap();

    // --- Indexes of all three species ------------------------------------
    db.create_index("w", IndexKind::ClassHierarchy, "Vehicle", &["weight"]).unwrap();
    db.create_index("tp", IndexKind::SingleClass, "Truck", &["payload"]).unwrap();
    db.create_index("ml", IndexKind::Nested, "Vehicle", &["manufacturer", "location"]).unwrap();

    // --- Data --------------------------------------------------------------
    let tx = db.begin();
    let motorco = db
        .create_object(
            &tx,
            "Company",
            vec![("name", Value::str("MotorCo")), ("location", Value::str("Detroit"))],
        )
        .unwrap();
    let chipco = db
        .create_object(
            &tx,
            "Company",
            vec![("name", Value::str("ChipCo")), ("location", Value::str("Austin"))],
        )
        .unwrap();
    for i in 1..=30i64 {
        let class = match i % 3 {
            0 => "Automobile",
            1 => "Truck",
            _ => "DumpTruck",
        };
        let maker = if class == "Automobile" { chipco } else { motorco };
        let mut attrs =
            vec![("weight", Value::Int(i * 100)), ("manufacturer", Value::Ref(maker))];
        if class != "Automobile" {
            attrs.push(("payload", Value::Int(i)));
        }
        db.create_object(&tx, class, attrs).unwrap();
    }
    db.commit(tx).unwrap();

    // --- Queries against all scopes and access paths ------------------------
    let tx = db.begin();
    let all = db.query(&tx, "select count(*) from Vehicle* v").unwrap();
    assert_eq!(all.rows[0][0], Value::Int(30));
    // Truck* includes DumpTruck; Truck alone does not.
    let trucks_h = db.query(&tx, "select count(*) from Truck* v").unwrap();
    assert_eq!(trucks_h.rows[0][0], Value::Int(20));
    let trucks = db.query(&tx, "select count(*) from Truck v").unwrap();
    assert_eq!(trucks.rows[0][0], Value::Int(10));
    // Indexed range through the CH index.
    let plan = db
        .explain(&tx, "select v from Vehicle* v where v.weight >= 400 and v.weight < 800")
        .unwrap();
    assert!(!matches!(plan.access, AccessPath::Scan), "{plan}");
    let heavy =
        db.query(&tx, "select v from Vehicle* v where v.weight >= 400 and v.weight < 800").unwrap();
    assert_eq!(heavy.len(), 4);
    // Nested predicate through the nested index.
    let plan =
        db.explain(&tx, "select v from Vehicle* v where v.manufacturer.location = \"Detroit\"").unwrap();
    assert!(!matches!(plan.access, AccessPath::Scan), "{plan}");
    db.commit(tx).unwrap();

    // --- Methods with overriding -------------------------------------------
    db.define_method(
        "Vehicle",
        "category",
        0,
        Arc::new(|_, _, _, _| Ok(Value::str("generic"))),
    )
    .unwrap();
    db.define_method("Truck", "category", 0, Arc::new(|_, _, _, _| Ok(Value::str("hauler"))))
        .unwrap();
    let tx = db.begin();
    let a_truck = db.query(&tx, "select v from DumpTruck v limit 1").unwrap().oids[0];
    let an_auto = db.query(&tx, "select v from Automobile v limit 1").unwrap().oids[0];
    // DumpTruck inherits Truck's override; Automobile gets Vehicle's.
    assert_eq!(db.call(&tx, a_truck, "category", &[]).unwrap(), Value::str("hauler"));
    assert_eq!(db.call(&tx, an_auto, "category", &[]).unwrap(), Value::str("generic"));
    db.commit(tx).unwrap();

    // --- A view over the hierarchy -------------------------------------------
    db.define_view("Heavies", "select v from Vehicle* v where v.weight > 2000").unwrap();
    let tx = db.begin();
    let heavies = db.query(&tx, "select count(*) from Heavies v").unwrap();
    assert_eq!(heavies.rows[0][0], Value::Int(10));
    let filtered =
        db.query(&tx, "select count(*) from Heavies v where v isa Truck").unwrap();
    assert_eq!(filtered.rows[0][0], Value::Int(6)); // isa is subclass-aware: Trucks + DumpTrucks over 2000
    db.commit(tx).unwrap();

    // --- Evolution while data is live -----------------------------------------
    let vehicle = db.with_catalog(|c| c.class_id("Vehicle")).unwrap();
    db.evolve(
        SchemaChange::AddAttribute {
            class: vehicle,
            spec: AttrSpec::new("electric", Domain::Primitive(PrimitiveType::Bool))
                .with_default(Value::Bool(false)),
        },
        Migration::Lazy,
    )
    .unwrap();
    let tx = db.begin();
    let r = db.query(&tx, "select count(*) from Vehicle* v where v.electric = false").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(30), "lazy default visible everywhere");
    db.set(&tx, a_truck, "electric", Value::Bool(true)).unwrap();
    let r = db.query(&tx, "select count(*) from Vehicle* v where v.electric = true").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    db.commit(tx).unwrap();

    // --- Crash in the middle of everything --------------------------------------
    let tx = db.begin();
    db.set(&tx, a_truck, "weight", Value::Int(999_999)).unwrap();
    db.engine().wal().flush().unwrap();
    std::mem::forget(tx);
    db.crash_and_recover().unwrap();
    let tx = db.begin();
    let w = db.get(&tx, a_truck, "weight").unwrap();
    assert_ne!(w, Value::Int(999_999), "uncommitted update rolled back");
    // Everything still queryable through rebuilt indexes.
    let r = db.query(&tx, "select count(*) from Vehicle* v where v.weight >= 400 and v.weight < 800").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(4));
    assert_eq!(db.query(&tx, "select count(*) from Heavies v").unwrap().rows[0][0], Value::Int(10));
    db.commit(tx).unwrap();
}
