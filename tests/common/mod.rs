//! Shared helpers for integration tests that need a real on-disk
//! database directory (the `FileDisk` backend).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory under the system temp dir, removed on
/// drop. Uniqueness comes from the process id plus a per-process
/// counter, so concurrently running test binaries never collide.
pub struct TempDir(PathBuf);

impl TempDir {
    pub fn new(tag: &str) -> Self {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("orion-{tag}-{}-{n}", std::process::id()));
        // A stale directory from a killed earlier run would replay its
        // old state into the new database; start from nothing.
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
