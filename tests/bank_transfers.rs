//! Bank-transfer invariant tests for the decomposed runtime: money is
//! conserved under multi-threaded transfers whether the writer threads
//! touch disjoint account sets (no conflicts — nobody should ever be a
//! deadlock victim) or overlapping ones (victims abort and retry), and
//! whether the clients are embedded threads or real TCP clients going
//! through `orion-net`.

use orion_net::{Client, Server, ServerConfig};
use orion_oodb::orion::{AttrSpec, Database, DbConfig, DbError, Domain, PrimitiveType, Value};
use orion_types::Oid;
use std::sync::Arc;
use std::time::Duration;

const INITIAL_BALANCE: i64 = 1_000;

fn bank_db(accounts: usize) -> (Arc<Database>, Vec<Oid>) {
    let config = DbConfig { lock_timeout: Duration::from_secs(30), ..DbConfig::default() };
    let db = Arc::new(Database::with_config(config));
    db.create_class(
        "Account",
        &[],
        vec![AttrSpec::new("balance", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    let tx = db.begin();
    let accounts: Vec<_> = (0..accounts)
        .map(|_| {
            db.create_object(&tx, "Account", vec![("balance", Value::Int(INITIAL_BALANCE))])
                .unwrap()
        })
        .collect();
    db.commit(tx).unwrap();
    (db, accounts)
}

/// A deterministic per-thread PRNG walk (no external crates).
fn next_seed(seed: &mut usize) -> usize {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed
}

fn total_balance(db: &Database, accounts: &[Oid]) -> i64 {
    let tx = db.begin();
    let total = accounts
        .iter()
        .map(|a| db.get(&tx, *a, "balance").unwrap().as_int().unwrap())
        .sum();
    db.commit(tx).unwrap();
    total
}

/// Run `transfers` random transfers inside `slice` on one embedded
/// thread, retrying deadlock victims. Returns how many retries it took.
fn run_embedded_transfers(db: &Database, slice: &[Oid], mut seed: usize, transfers: usize) -> u64 {
    let mut retries = 0;
    for _ in 0..transfers {
        let from = slice[next_seed(&mut seed) % slice.len()];
        let to = slice[(next_seed(&mut seed) / 7) % slice.len()];
        if from == to {
            continue;
        }
        loop {
            let tx = db.begin();
            let result = (|| -> Result<(), DbError> {
                let b_from = db.get(&tx, from, "balance")?.as_int().unwrap();
                let b_to = db.get(&tx, to, "balance")?.as_int().unwrap();
                db.set(&tx, from, "balance", Value::Int(b_from - 7))?;
                db.set(&tx, to, "balance", Value::Int(b_to + 7))?;
                Ok(())
            })();
            match result {
                Ok(()) => {
                    db.commit(tx).unwrap();
                    break;
                }
                Err(DbError::Deadlock { .. }) | Err(DbError::LockTimeout { .. }) => {
                    db.rollback(tx).unwrap();
                    retries += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }
    retries
}

/// Disjoint account sets: each thread owns its own slice, so no two
/// transactions ever conflict — total conserved *and* nobody is chosen
/// as a deadlock victim (writers on disjoint objects truly proceed
/// independently).
#[test]
fn embedded_disjoint_transfers_conserve_total_without_victims() {
    let threads = 4usize;
    let per_thread = 6usize;
    let (db, accounts) = bank_db(threads * per_thread);
    db.reset_metrics();
    crossbeam::scope(|scope| {
        for t in 0..threads {
            let db = Arc::clone(&db);
            let slice = accounts[t * per_thread..(t + 1) * per_thread].to_vec();
            scope.spawn(move |_| {
                let retries = run_embedded_transfers(&db, &slice, t * 31 + 5, 80);
                assert_eq!(retries, 0, "disjoint slices never conflict");
            });
        }
    })
    .unwrap();
    assert_eq!(total_balance(&db, &accounts), (threads * per_thread) as i64 * INITIAL_BALANCE);
    let locks = db.stats().locks;
    assert_eq!(locks.deadlock_victims, 0, "no victims among disjoint writers");
    assert_eq!(locks.timeouts, 0);
}

/// Overlapping account sets: every thread draws from the same small
/// pool, so write-write conflicts and deadlock victims are expected —
/// victims abort, retry, and the total is still conserved.
#[test]
fn embedded_overlapping_transfers_conserve_total_with_retries() {
    let (db, accounts) = bank_db(6);
    let threads = 4usize;
    crossbeam::scope(|scope| {
        for t in 0..threads {
            let db = Arc::clone(&db);
            let slice = accounts.clone();
            scope.spawn(move |_| {
                run_embedded_transfers(&db, &slice, t * 17 + 3, 80);
            });
        }
    })
    .unwrap();
    assert_eq!(total_balance(&db, &accounts), 6 * INITIAL_BALANCE);
}

/// The same invariant through the wire protocol: real TCP clients, one
/// server session each, transferring concurrently. `mode` selects
/// disjoint slices or one overlapping pool.
fn net_transfers(overlapping: bool) {
    let threads = 4usize;
    let per_thread = 4usize;
    let n_accounts = if overlapping { per_thread } else { threads * per_thread };
    let (db, accounts) = bank_db(n_accounts);
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { workers: threads, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    crossbeam::scope(|scope| {
        for t in 0..threads {
            let slice: Vec<Oid> = if overlapping {
                accounts.clone()
            } else {
                accounts[t * per_thread..(t + 1) * per_thread].to_vec()
            };
            scope.spawn(move |_| {
                let mut client = Client::connect(addr).unwrap();
                let mut seed = t * 13 + 7;
                for _ in 0..40 {
                    let from = slice[next_seed(&mut seed) % slice.len()];
                    let to = slice[(next_seed(&mut seed) / 7) % slice.len()];
                    if from == to {
                        continue;
                    }
                    loop {
                        client.begin().unwrap();
                        let result = (|| -> Result<(), DbError> {
                            let b_from = client.get(from, "balance")?.as_int().unwrap();
                            let b_to = client.get(to, "balance")?.as_int().unwrap();
                            client.set(from, "balance", Value::Int(b_from - 3))?;
                            client.set(to, "balance", Value::Int(b_to + 3))?;
                            Ok(())
                        })();
                        match result {
                            Ok(()) => {
                                client.commit().unwrap();
                                break;
                            }
                            Err(DbError::Deadlock { .. }) | Err(DbError::LockTimeout { .. }) => {
                                client.rollback().unwrap();
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(other) => panic!("unexpected error over the wire: {other}"),
                        }
                    }
                }
            });
        }
    })
    .unwrap();
    server.shutdown();
    assert_eq!(total_balance(&db, &accounts), n_accounts as i64 * INITIAL_BALANCE);
}

#[test]
fn net_disjoint_transfers_conserve_total() {
    net_transfers(false);
}

#[test]
fn net_overlapping_transfers_conserve_total() {
    net_transfers(true);
}
