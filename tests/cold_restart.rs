//! Cold-restart recovery: the in-memory catalog, views, and index
//! definitions are wiped and recovered from the persisted system record
//! — a full process restart, not just a buffer-pool crash.

use orion_oodb::orion::{
    AccessPath, AttrSpec, Database, Domain, IndexKind, Migration, PrimitiveType, SchemaChange,
    Value,
};
use std::sync::Arc;

#[test]
fn schema_views_indexes_and_data_survive_cold_restart() {
    let db = Database::open_in_memory();
    db.create_class(
        "Company",
        &[],
        vec![
            AttrSpec::new("name", Domain::Primitive(PrimitiveType::Str)),
            AttrSpec::new("location", Domain::Primitive(PrimitiveType::Str)),
        ],
    )
    .unwrap();
    let company = db.with_catalog(|c| c.class_id("Company")).unwrap();
    db.create_class(
        "Vehicle",
        &[],
        vec![
            AttrSpec::new("weight", Domain::Primitive(PrimitiveType::Int))
                .with_default(Value::Int(0)),
            AttrSpec::new("manufacturer", Domain::Class(company)),
        ],
    )
    .unwrap();
    db.create_class("Truck", &["Vehicle"], vec![]).unwrap();
    db.define_method("Vehicle", "ping", 0, Arc::new(|_, _, _, _| Ok(Value::Int(1))))
        .unwrap();
    db.create_index("w", IndexKind::ClassHierarchy, "Vehicle", &["weight"]).unwrap();
    db.create_index("loc", IndexKind::Nested, "Vehicle", &["manufacturer", "location"])
        .unwrap();
    db.define_view("Heavy", "select v from Vehicle* v where v.weight > 500").unwrap();

    let tx = db.begin();
    let motor = db
        .create_object(
            &tx,
            "Company",
            vec![("name", Value::str("MotorCo")), ("location", Value::str("Detroit"))],
        )
        .unwrap();
    let chip = db
        .create_object(
            &tx,
            "Company",
            vec![("name", Value::str("ChipCo")), ("location", Value::str("Austin"))],
        )
        .unwrap();
    for i in 1..=10i64 {
        let maker = if i <= 3 { motor } else { chip };
        db.create_object(
            &tx,
            "Truck",
            vec![("weight", Value::Int(i * 100)), ("manufacturer", Value::Ref(maker))],
        )
        .unwrap();
    }
    db.commit(tx).unwrap();

    // ---- Full cold restart: RAM catalog/views/indexes wiped ------------
    db.simulate_cold_restart().unwrap();

    // Schema is back (names, inheritance, defaults, attribute ids).
    let tx = db.begin();
    assert_eq!(db.extent_len("Truck").unwrap(), 10);
    let trucks = db.query(&tx, "select v from Truck v order by v.weight asc").unwrap();
    assert_eq!(trucks.len(), 10);
    assert_eq!(db.get(&tx, trucks.oids[0], "weight").unwrap(), Value::Int(100));

    // Indexes were re-declared from persisted defs and repopulated.
    let plan = db.explain(&tx, "select v from Vehicle* v where v.weight = 300").unwrap();
    assert!(
        !matches!(plan.access, AccessPath::Scan),
        "CH index survives restart: {plan}"
    );
    let plan = db
        .explain(&tx, "select v from Vehicle* v where v.manufacturer.location = \"Detroit\"")
        .unwrap();
    assert!(
        !matches!(plan.access, AccessPath::Scan),
        "nested index survives restart: {plan}"
    );
    assert_eq!(
        db.query(&tx, "select count(*) from Vehicle* v where v.weight = 300").unwrap().rows[0][0],
        Value::Int(1)
    );

    // Views are back.
    assert_eq!(db.view_names(), vec!["Heavy".to_string()]);
    assert_eq!(
        db.query(&tx, "select count(*) from Heavy v").unwrap().rows[0][0],
        Value::Int(5)
    );
    assert_eq!(
        db.query(&tx, "select count(*) from Vehicle* v where v.manufacturer.location = \"Detroit\"")
            .unwrap()
            .rows[0][0],
        Value::Int(3)
    );

    // Method signatures persisted; bodies must be re-registered.
    let a_truck = trucks.oids[0];
    assert!(db.call(&tx, a_truck, "ping", &[]).is_err(), "body gone after restart");
    db.commit(tx).unwrap();
    db.register_method_body("Vehicle", "ping", Arc::new(|_, _, _, _| Ok(Value::Int(1))))
        .unwrap();
    let tx = db.begin();
    assert_eq!(db.call(&tx, a_truck, "ping", &[]).unwrap(), Value::Int(1));

    // The restored schema evolves normally.
    db.commit(tx).unwrap();
    let vehicle = db.with_catalog(|c| c.class_id("Vehicle")).unwrap();
    db.evolve(
        SchemaChange::AddAttribute {
            class: vehicle,
            spec: AttrSpec::new("color", Domain::Primitive(PrimitiveType::Str)),
        },
        Migration::Lazy,
    )
    .unwrap();
    let tx = db.begin();
    db.set(&tx, a_truck, "color", Value::str("red")).unwrap();
    assert_eq!(db.get(&tx, a_truck, "color").unwrap(), Value::str("red"));
    db.commit(tx).unwrap();

    // And a second restart still works (snapshot was re-persisted).
    db.simulate_cold_restart().unwrap();
    let tx = db.begin();
    assert_eq!(db.get(&tx, a_truck, "color").unwrap(), Value::str("red"));
    db.commit(tx).unwrap();
}

#[test]
fn cold_restart_with_no_ddl_is_harmless() {
    let db = Database::open_in_memory();
    // No persisted system record yet — restart of an empty database.
    db.simulate_cold_restart().unwrap();
    db.create_class("X", &[], vec![]).unwrap();
    db.simulate_cold_restart().unwrap();
    assert!(db.with_catalog(|c| c.class_id("X")).is_ok());
}
