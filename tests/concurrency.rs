//! Concurrency integration tests: isolation under strict 2PL, deadlock
//! victim selection with retry, and hierarchy-wide schema locking.

use orion_oodb::orion::{
    AttrSpec, Database, DbConfig, DbError, Domain, LockingStrategy, Migration, PrimitiveType,
    SchemaChange, Value,
};
use std::sync::Arc;
use std::time::Duration;

fn account_db(locking: LockingStrategy) -> (Arc<Database>, Vec<orion_oodb::orion::Oid>) {
    let config = DbConfig {
        locking,
        lock_timeout: Duration::from_secs(30),
        ..DbConfig::default()
    };
    let db = Arc::new(Database::with_config(config));
    db.create_class(
        "Account",
        &[],
        vec![AttrSpec::new("balance", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    let tx = db.begin();
    let accounts: Vec<_> = (0..8)
        .map(|_| db.create_object(&tx, "Account", vec![("balance", Value::Int(1000))]).unwrap())
        .collect();
    db.commit(tx).unwrap();
    (db, accounts)
}

/// Transfer money between two accounts, retrying on deadlock — the
/// canonical serializable workload. Total balance must be conserved.
#[test]
fn concurrent_transfers_conserve_total_balance() {
    for locking in [LockingStrategy::Granular, LockingStrategy::CoarseClass] {
        let (db, accounts) = account_db(locking);
        let threads = 4;
        let transfers_per_thread = 60;
        crossbeam::scope(|scope| {
            for t in 0..threads {
                let db = Arc::clone(&db);
                let accounts = accounts.clone();
                scope.spawn(move |_| {
                    let mut seed = t as usize * 7 + 3;
                    for _ in 0..transfers_per_thread {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let from = accounts[seed % accounts.len()];
                        let to = accounts[(seed / 7 + 1) % accounts.len()];
                        if from == to {
                            continue;
                        }
                        // Retry loop: deadlock victims abort and rerun.
                        loop {
                            let tx = db.begin();
                            let result = (|| -> Result<(), DbError> {
                                let b_from =
                                    db.get(&tx, from, "balance")?.as_int().unwrap();
                                let b_to = db.get(&tx, to, "balance")?.as_int().unwrap();
                                db.set(&tx, from, "balance", Value::Int(b_from - 10))?;
                                db.set(&tx, to, "balance", Value::Int(b_to + 10))?;
                                Ok(())
                            })();
                            match result {
                                Ok(()) => {
                                    db.commit(tx).unwrap();
                                    break;
                                }
                                Err(DbError::Deadlock { .. }) | Err(DbError::LockTimeout { .. }) => {
                                    db.rollback(tx).unwrap();
                                    // Back off a touch and retry.
                                    std::thread::sleep(Duration::from_millis(1));
                                }
                                Err(other) => panic!("unexpected error: {other}"),
                            }
                        }
                    }
                });
            }
        })
        .unwrap();

        let tx = db.begin();
        let total: i64 = accounts
            .iter()
            .map(|a| db.get(&tx, *a, "balance").unwrap().as_int().unwrap())
            .sum();
        db.commit(tx).unwrap();
        assert_eq!(total, 8 * 1000, "conservation under {locking:?}");
    }
}

/// Readers of an object block on a writer's X lock until commit, and
/// then see the committed value (no dirty reads).
#[test]
fn no_dirty_reads() {
    let (db, accounts) = account_db(LockingStrategy::Granular);
    let target = accounts[0];
    let writer = db.begin();
    db.set(&writer, target, "balance", Value::Int(777)).unwrap();

    let db2 = Arc::clone(&db);
    let reader = std::thread::spawn(move || {
        let tx = db2.begin();
        let v = db2.get(&tx, target, "balance").unwrap();
        db2.commit(tx).unwrap();
        v
    });
    std::thread::sleep(Duration::from_millis(50));
    db.commit(writer).unwrap();
    assert_eq!(reader.join().unwrap(), Value::Int(777), "reader saw the committed value");
}

/// A writer's effects disappear for others after rollback.
#[test]
fn rollback_is_invisible_to_later_readers() {
    let (db, accounts) = account_db(LockingStrategy::Granular);
    let target = accounts[0];
    let writer = db.begin();
    db.set(&writer, target, "balance", Value::Int(-1)).unwrap();
    db.rollback(writer).unwrap();
    let tx = db.begin();
    assert_eq!(db.get(&tx, target, "balance").unwrap(), Value::Int(1000));
    db.commit(tx).unwrap();
}

/// Regression: transaction rollback takes the catalog write lock (it
/// may reinstall the persisted schema snapshot); concurrent readers and
/// writers blocking on 2PL locks must never hold a catalog guard, or
/// the two would deadlock. Hammer rollbacks against blocked writers.
#[test]
fn rollbacks_never_deadlock_against_blocked_writers() {
    let (db, accounts) = account_db(LockingStrategy::Granular);
    let hot = accounts[0];
    crossbeam::scope(|scope| {
        // Thread A: repeatedly writes the hot object and rolls back.
        let db_a = Arc::clone(&db);
        scope.spawn(move |_| {
            for i in 0..200 {
                // A's own X request can close a waits-for cycle (a
                // reader's S request queues behind A's IX), making A
                // the deadlock victim — a legitimate 2PL outcome. The
                // property under test is that the rollback itself
                // always completes, so roll back and retry.
                loop {
                    let tx = db_a.begin();
                    match db_a.set(&tx, hot, "balance", Value::Int(i)) {
                        Ok(()) => {
                            db_a.rollback(tx).unwrap();
                            break;
                        }
                        Err(DbError::Deadlock { .. }) | Err(DbError::LockTimeout { .. }) => {
                            db_a.rollback(tx).unwrap();
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            }
        });
        // Threads B, C: contend on the same hot object (their lock
        // acquisitions block behind A's X lock) and run queries (which
        // take catalog read guards).
        for t in 0..2 {
            let db_b = Arc::clone(&db);
            let accounts = accounts.clone();
            scope.spawn(move |_| {
                for i in 0..100 {
                    loop {
                        let tx = db_b.begin();
                        let r = db_b
                            .set(&tx, hot, "balance", Value::Int(1000 + t * 100 + i))
                            .and_then(|()| {
                                db_b.query(&tx, "select count(*) from Account a").map(|_| ())
                            });
                        match r {
                            Ok(()) => {
                                db_b.commit(tx).unwrap();
                                break;
                            }
                            Err(_) => db_b.rollback(tx).unwrap(),
                        }
                    }
                    let _ = accounts.len();
                }
            });
        }
    })
    .unwrap();
    // Still consistent and responsive afterwards.
    let tx = db.begin();
    assert!(db.get(&tx, hot, "balance").unwrap().as_int().is_some());
    db.commit(tx).unwrap();
}

/// Schema changes exclude concurrent hierarchy readers ([GARZ88]) and
/// proceed once they drain.
#[test]
fn schema_change_blocks_until_readers_finish() {
    let config = DbConfig { lock_timeout: Duration::from_secs(30), ..DbConfig::default() };
    let db = Arc::new(Database::with_config(config));
    db.create_class("Thing", &[], vec![AttrSpec::new("x", Domain::Primitive(PrimitiveType::Int))])
        .unwrap();
    db.create_class("SubThing", &["Thing"], vec![]).unwrap();
    let tx = db.begin();
    db.create_object(&tx, "SubThing", vec![("x", Value::Int(1))]).unwrap();
    db.commit(tx).unwrap();

    // A long-running hierarchy reader holds S locks.
    let reader = db.begin();
    let r = db.query(&reader, "select count(*) from Thing* v").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));

    let db2 = Arc::clone(&db);
    let evolver = std::thread::spawn(move || {
        let thing = db2.with_catalog(|c| c.class_id("Thing")).unwrap();
        // Blocks until the reader commits.
        db2.evolve(
            SchemaChange::AddAttribute {
                class: thing,
                spec: AttrSpec::new("y", Domain::Primitive(PrimitiveType::Int)),
            },
            Migration::Lazy,
        )
        .unwrap();
    });
    std::thread::sleep(Duration::from_millis(100));
    assert!(!evolver.is_finished(), "schema change must wait for the reader");
    db.commit(reader).unwrap();
    evolver.join().unwrap();
    // The new attribute is live.
    let tx = db.begin();
    let r = db.query(&tx, "select count(*) from Thing* v where v.y is null").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    db.commit(tx).unwrap();
}
