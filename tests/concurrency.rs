//! Concurrency integration tests: isolation under strict 2PL, deadlock
//! victim selection with retry, and hierarchy-wide schema locking.

use orion_oodb::orion::{
    AttrSpec, Database, DbConfig, DbError, Domain, LockingStrategy, Migration, PrimitiveType,
    SchemaChange, Value,
};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn account_db(locking: LockingStrategy) -> (Arc<Database>, Vec<orion_oodb::orion::Oid>) {
    let config = DbConfig {
        locking,
        lock_timeout: Duration::from_secs(30),
        ..DbConfig::default()
    };
    let db = Arc::new(Database::with_config(config));
    db.create_class(
        "Account",
        &[],
        vec![AttrSpec::new("balance", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    let tx = db.begin();
    let accounts: Vec<_> = (0..8)
        .map(|_| db.create_object(&tx, "Account", vec![("balance", Value::Int(1000))]).unwrap())
        .collect();
    db.commit(tx).unwrap();
    (db, accounts)
}

/// Transfer money between two accounts, retrying on deadlock — the
/// canonical serializable workload. Total balance must be conserved.
#[test]
fn concurrent_transfers_conserve_total_balance() {
    for locking in [LockingStrategy::Granular, LockingStrategy::CoarseClass] {
        let (db, accounts) = account_db(locking);
        let threads = 4;
        let transfers_per_thread = 60;
        crossbeam::scope(|scope| {
            for t in 0..threads {
                let db = Arc::clone(&db);
                let accounts = accounts.clone();
                scope.spawn(move |_| {
                    let mut seed = t as usize * 7 + 3;
                    for _ in 0..transfers_per_thread {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let from = accounts[seed % accounts.len()];
                        let to = accounts[(seed / 7 + 1) % accounts.len()];
                        if from == to {
                            continue;
                        }
                        // Retry loop: deadlock victims abort and rerun.
                        loop {
                            let tx = db.begin();
                            let result = (|| -> Result<(), DbError> {
                                let b_from =
                                    db.get(&tx, from, "balance")?.as_int().unwrap();
                                let b_to = db.get(&tx, to, "balance")?.as_int().unwrap();
                                db.set(&tx, from, "balance", Value::Int(b_from - 10))?;
                                db.set(&tx, to, "balance", Value::Int(b_to + 10))?;
                                Ok(())
                            })();
                            match result {
                                Ok(()) => {
                                    db.commit(tx).unwrap();
                                    break;
                                }
                                Err(DbError::Deadlock { .. }) | Err(DbError::LockTimeout { .. }) => {
                                    db.rollback(tx).unwrap();
                                    // Back off a touch and retry.
                                    std::thread::sleep(Duration::from_millis(1));
                                }
                                Err(other) => panic!("unexpected error: {other}"),
                            }
                        }
                    }
                });
            }
        })
        .unwrap();

        let tx = db.begin();
        let total: i64 = accounts
            .iter()
            .map(|a| db.get(&tx, *a, "balance").unwrap().as_int().unwrap())
            .sum();
        db.commit(tx).unwrap();
        assert_eq!(total, 8 * 1000, "conservation under {locking:?}");
    }
}

/// The decomposed-runtime acceptance test: transactions writing
/// *disjoint classes* proceed concurrently — both sit inside open,
/// uncommitted write transactions at the same instant (barrier proof),
/// and keep performing DML while the other's uncommitted work is live —
/// while *conflicting* writers on the same object still serialize
/// behind the 2PL X lock (latency proof). Writers must never take the
/// exclusive maintenance gate: DML runs entirely under the shared gate
/// plus component locks.
#[test]
fn disjoint_class_writers_overlap_conflicting_writers_serialize() {
    let config = DbConfig { lock_timeout: Duration::from_secs(30), ..DbConfig::default() };
    let db = Arc::new(Database::with_config(config));
    for class in ["Alpha", "Beta"] {
        db.create_class(
            class,
            &[],
            vec![AttrSpec::new("n", Domain::Primitive(PrimitiveType::Int))],
        )
        .unwrap();
    }
    let seed_tx = db.begin();
    let a0 = db.create_object(&seed_tx, "Alpha", vec![("n", Value::Int(0))]).unwrap();
    let b0 = db.create_object(&seed_tx, "Beta", vec![("n", Value::Int(0))]).unwrap();
    db.commit(seed_tx).unwrap();
    db.reset_metrics();

    // Phase 1: both writers hold uncommitted DML at the same moment.
    // Each thread writes its class, meets the other at a barrier *with
    // its transaction still open*, then writes again (DML must still be
    // possible while the peer's uncommitted writes are live), meets
    // again, and only then commits. Any global writer serialization —
    // a lock held across the transaction, or an exclusive gate taken by
    // DML — would leave the barrier waiting forever.
    let rendezvous = Arc::new(Barrier::new(2));
    crossbeam::scope(|scope| {
        for (class_obj, bump) in [(a0, 1), (b0, 2)] {
            let db = Arc::clone(&db);
            let rendezvous = Arc::clone(&rendezvous);
            scope.spawn(move |_| {
                let tx = db.begin();
                db.set(&tx, class_obj, "n", Value::Int(bump)).unwrap();
                rendezvous.wait(); // both transactions open, writes applied
                db.set(&tx, class_obj, "n", Value::Int(bump * 10)).unwrap();
                rendezvous.wait(); // both performed DML during the overlap
                db.commit(tx).unwrap();
            });
        }
    })
    .unwrap();
    let tx = db.begin();
    assert_eq!(db.get(&tx, a0, "n").unwrap(), Value::Int(10));
    assert_eq!(db.get(&tx, b0, "n").unwrap(), Value::Int(20));
    db.commit(tx).unwrap();
    let gate = db.stats().gate;
    assert_eq!(
        gate.exclusive_acquisitions, 0,
        "DML and reads must run under the shared maintenance gate only"
    );
    assert!(gate.shared_acquisitions > 0, "the shared gate was exercised");

    // Phase 2: conflicting writers on the *same* object serialize. The
    // first writer parks holding its X lock; the second's set() cannot
    // complete before the first commits.
    let hold = Duration::from_millis(250);
    let first_committed = Arc::new(Barrier::new(2));
    crossbeam::scope(|scope| {
        let db1 = Arc::clone(&db);
        let sync = Arc::clone(&first_committed);
        scope.spawn(move |_| {
            let tx = db1.begin();
            db1.set(&tx, a0, "n", Value::Int(100)).unwrap();
            sync.wait(); // let the rival issue its conflicting write
            std::thread::sleep(hold);
            db1.commit(tx).unwrap();
        });
        let db2 = Arc::clone(&db);
        let sync = Arc::clone(&first_committed);
        scope.spawn(move |_| {
            sync.wait();
            let started = Instant::now();
            let tx = db2.begin();
            db2.set(&tx, a0, "n", Value::Int(200)).unwrap();
            let waited = started.elapsed();
            db2.commit(tx).unwrap();
            assert!(
                waited >= hold / 2,
                "conflicting writer finished in {waited:?}; it must block behind the X lock"
            );
        });
    })
    .unwrap();
    let tx = db.begin();
    assert_eq!(db.get(&tx, a0, "n").unwrap(), Value::Int(200), "second writer won");
    db.commit(tx).unwrap();
}

/// Readers of an object block on a writer's X lock until commit, and
/// then see the committed value (no dirty reads).
#[test]
fn no_dirty_reads() {
    let (db, accounts) = account_db(LockingStrategy::Granular);
    let target = accounts[0];
    let writer = db.begin();
    db.set(&writer, target, "balance", Value::Int(777)).unwrap();

    let db2 = Arc::clone(&db);
    let reader = std::thread::spawn(move || {
        let tx = db2.begin();
        let v = db2.get(&tx, target, "balance").unwrap();
        db2.commit(tx).unwrap();
        v
    });
    std::thread::sleep(Duration::from_millis(50));
    db.commit(writer).unwrap();
    assert_eq!(reader.join().unwrap(), Value::Int(777), "reader saw the committed value");
}

/// A writer's effects disappear for others after rollback.
#[test]
fn rollback_is_invisible_to_later_readers() {
    let (db, accounts) = account_db(LockingStrategy::Granular);
    let target = accounts[0];
    let writer = db.begin();
    db.set(&writer, target, "balance", Value::Int(-1)).unwrap();
    db.rollback(writer).unwrap();
    let tx = db.begin();
    assert_eq!(db.get(&tx, target, "balance").unwrap(), Value::Int(1000));
    db.commit(tx).unwrap();
}

/// Regression: transaction rollback takes the catalog write lock (it
/// may reinstall the persisted schema snapshot); concurrent readers and
/// writers blocking on 2PL locks must never hold a catalog guard, or
/// the two would deadlock. Hammer rollbacks against blocked writers.
#[test]
fn rollbacks_never_deadlock_against_blocked_writers() {
    let (db, accounts) = account_db(LockingStrategy::Granular);
    let hot = accounts[0];
    crossbeam::scope(|scope| {
        // Thread A: repeatedly writes the hot object and rolls back.
        let db_a = Arc::clone(&db);
        scope.spawn(move |_| {
            for i in 0..200 {
                // A's own X request can close a waits-for cycle (a
                // reader's S request queues behind A's IX), making A
                // the deadlock victim — a legitimate 2PL outcome. The
                // property under test is that the rollback itself
                // always completes, so roll back and retry.
                loop {
                    let tx = db_a.begin();
                    match db_a.set(&tx, hot, "balance", Value::Int(i)) {
                        Ok(()) => {
                            db_a.rollback(tx).unwrap();
                            break;
                        }
                        Err(DbError::Deadlock { .. }) | Err(DbError::LockTimeout { .. }) => {
                            db_a.rollback(tx).unwrap();
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            }
        });
        // Threads B, C: contend on the same hot object (their lock
        // acquisitions block behind A's X lock) and run queries (which
        // take catalog read guards).
        for t in 0..2 {
            let db_b = Arc::clone(&db);
            let accounts = accounts.clone();
            scope.spawn(move |_| {
                for i in 0..100 {
                    loop {
                        let tx = db_b.begin();
                        let r = db_b
                            .set(&tx, hot, "balance", Value::Int(1000 + t * 100 + i))
                            .and_then(|()| {
                                db_b.query(&tx, "select count(*) from Account a").map(|_| ())
                            });
                        match r {
                            Ok(()) => {
                                db_b.commit(tx).unwrap();
                                break;
                            }
                            Err(_) => db_b.rollback(tx).unwrap(),
                        }
                    }
                    let _ = accounts.len();
                }
            });
        }
    })
    .unwrap();
    // Still consistent and responsive afterwards.
    let tx = db.begin();
    assert!(db.get(&tx, hot, "balance").unwrap().as_int().is_some());
    db.commit(tx).unwrap();
}

/// Elevated-thread-count stress: many writers per class across several
/// classes, interleaved with queries and rollbacks, all hammering the
/// decomposed runtime at once. Ignored in the default test run; CI
/// executes it explicitly in release mode (`scripts/ci.sh`).
#[test]
#[ignore = "stress run; executed by scripts/ci.sh via --ignored in release mode"]
fn stress_many_writers_across_classes_stay_consistent() {
    let config = DbConfig { lock_timeout: Duration::from_secs(60), ..DbConfig::default() };
    let db = Arc::new(Database::with_config(config));
    let classes = 8usize;
    let writers_per_class = 4usize;
    let ops_per_writer = 150usize;
    let mut seeds = Vec::new();
    for c in 0..classes {
        let name = format!("Stress{c}");
        db.create_class(
            &name,
            &[],
            vec![AttrSpec::new("n", Domain::Primitive(PrimitiveType::Int))],
        )
        .unwrap();
        let tx = db.begin();
        let oid = db.create_object(&tx, &name, vec![("n", Value::Int(0))]).unwrap();
        db.commit(tx).unwrap();
        seeds.push(oid);
    }
    db.reset_metrics();
    crossbeam::scope(|scope| {
        for (c, &hot) in seeds.iter().enumerate() {
            for w in 0..writers_per_class {
                let db = Arc::clone(&db);
                let class_name = format!("Stress{c}");
                scope.spawn(move |_| {
                    for i in 0..ops_per_writer {
                        loop {
                            let tx = db.begin();
                            let result = (|| -> Result<(), DbError> {
                                // Mix: bump the hot object, insert a
                                // fresh one, read back, sometimes query.
                                let v = db.get(&tx, hot, "n")?.as_int().unwrap();
                                db.set(&tx, hot, "n", Value::Int(v + 1))?;
                                db.create_object(
                                    &tx,
                                    &class_name,
                                    vec![("n", Value::Int((w * ops_per_writer + i) as i64))],
                                )?;
                                if i % 16 == 0 {
                                    db.query(
                                        &tx,
                                        &format!("select count(*) from {class_name} s"),
                                    )?;
                                }
                                Ok(())
                            })();
                            match result {
                                Ok(()) if i % 13 == 5 => {
                                    // Sporadic rollback exercises the
                                    // exclusive gate against live DML.
                                    db.rollback(tx).unwrap();
                                    break;
                                }
                                Ok(()) => {
                                    db.commit(tx).unwrap();
                                    break;
                                }
                                Err(DbError::Deadlock { .. })
                                | Err(DbError::LockTimeout { .. }) => {
                                    db.rollback(tx).unwrap();
                                }
                                Err(other) => panic!("unexpected error: {other}"),
                            }
                        }
                    }
                });
            }
        }
    })
    .unwrap();
    // Every class's hot counter equals its committed increments; every
    // committed insert is visible in the extent.
    for (c, hot) in seeds.iter().enumerate() {
        let tx = db.begin();
        let n = db.get(&tx, *hot, "n").unwrap().as_int().unwrap();
        let r = db.query(&tx, &format!("select count(*) from Stress{c} s")).unwrap();
        let members = r.rows[0][0].as_int().unwrap();
        db.commit(tx).unwrap();
        assert!(n > 0, "class Stress{c} saw committed increments");
        assert_eq!(
            members,
            n + 1,
            "class Stress{c}: one seed plus exactly one insert per committed bump"
        );
    }
}

/// Schema changes exclude concurrent hierarchy readers ([GARZ88]) and
/// proceed once they drain. This is the *legacy* locking-reads
/// discipline (`mvcc_reads: false`): queries take S locks that a
/// subtree-X schema change must wait out. Under MVCC snapshot reads
/// the trade-off inverts — see
/// `snapshot_readers_do_not_block_schema_change`.
#[test]
fn schema_change_blocks_until_readers_finish() {
    let config = DbConfig {
        lock_timeout: Duration::from_secs(30),
        mvcc_reads: false,
        ..DbConfig::default()
    };
    let db = Arc::new(Database::with_config(config));
    db.create_class("Thing", &[], vec![AttrSpec::new("x", Domain::Primitive(PrimitiveType::Int))])
        .unwrap();
    db.create_class("SubThing", &["Thing"], vec![]).unwrap();
    let tx = db.begin();
    db.create_object(&tx, "SubThing", vec![("x", Value::Int(1))]).unwrap();
    db.commit(tx).unwrap();

    // A long-running hierarchy reader holds S locks.
    let reader = db.begin();
    let r = db.query(&reader, "select count(*) from Thing* v").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));

    let db2 = Arc::clone(&db);
    let evolver = std::thread::spawn(move || {
        let thing = db2.with_catalog(|c| c.class_id("Thing")).unwrap();
        // Blocks until the reader commits.
        db2.evolve(
            SchemaChange::AddAttribute {
                class: thing,
                spec: AttrSpec::new("y", Domain::Primitive(PrimitiveType::Int)),
            },
            Migration::Lazy,
        )
        .unwrap();
    });
    std::thread::sleep(Duration::from_millis(100));
    assert!(!evolver.is_finished(), "schema change must wait for the reader");
    db.commit(reader).unwrap();
    evolver.join().unwrap();
    // The new attribute is live.
    let tx = db.begin();
    let r = db.query(&tx, "select count(*) from Thing* v where v.y is null").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    db.commit(tx).unwrap();
}

/// With MVCC snapshot reads (the default), queries hold no class locks,
/// so a schema change proceeds immediately even while a reader
/// transaction that has already queried the hierarchy stays open.
#[test]
fn snapshot_readers_do_not_block_schema_change() {
    let config = DbConfig { lock_timeout: Duration::from_secs(30), ..DbConfig::default() };
    let db = Arc::new(Database::with_config(config));
    db.create_class("Thing", &[], vec![AttrSpec::new("x", Domain::Primitive(PrimitiveType::Int))])
        .unwrap();
    db.create_class("SubThing", &["Thing"], vec![]).unwrap();
    let tx = db.begin();
    db.create_object(&tx, "SubThing", vec![("x", Value::Int(1))]).unwrap();
    db.commit(tx).unwrap();

    // An open reader transaction with a completed hierarchy query.
    let reader = db.begin();
    let r = db.query(&reader, "select count(*) from Thing* v").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    let stats = db.stats();
    assert_eq!(stats.locks.s_acquisitions, 0, "snapshot queries take no S locks");
    assert!(stats.mvcc.snapshots >= 1, "the query pinned a snapshot");

    // The schema change must NOT wait for the reader: with a 30 s lock
    // timeout, finishing quickly is only possible if no lock was held.
    let thing = db.with_catalog(|c| c.class_id("Thing")).unwrap();
    let started = std::time::Instant::now();
    db.evolve(
        SchemaChange::AddAttribute {
            class: thing,
            spec: AttrSpec::new("y", Domain::Primitive(PrimitiveType::Int)),
        },
        Migration::Lazy,
    )
    .unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "schema change queued behind a snapshot reader"
    );
    db.commit(reader).unwrap();

    let tx = db.begin();
    let r = db.query(&tx, "select count(*) from Thing* v where v.y is null").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    db.commit(tx).unwrap();
}
