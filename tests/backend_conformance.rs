//! Backend-conformance suite: every [`StorageBackend`] implementation
//! must honor the same contract — page checksums, fault semantics, the
//! append-only log device — and the full database must behave
//! identically over each. The raw trait checks run against `SimDisk`
//! and `FileDisk` through the same code path; the database-level checks
//! cover crash-mid-group-commit and (for `FileDisk`) a genuine cold
//! restart: drop the handle, reopen the directory, and replay to the
//! same model-checked state.

mod common;

use common::TempDir;
use orion_oodb::orion::{
    AttrSpec, Database, DbConfig, DbError, Domain, FaultKind, FaultPlan, PrimitiveType,
    StorageSpec, Value,
};
use orion_storage::{FaultInjector, FileDisk, PageId, SimDisk, StorageBackend, PAGE_SIZE};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Run `check` once per backend implementation. The `TempDir` guard
/// keeps the `FileDisk` directory alive for the duration of the check.
fn for_each_backend(tag: &str, check: impl Fn(Arc<dyn StorageBackend>, &str)) {
    check(Arc::new(SimDisk::new()), "SimDisk");
    let dir = TempDir::new(tag);
    check(Arc::new(FileDisk::open(dir.path()).unwrap()), "FileDisk");
}

#[test]
fn page_roundtrip_and_accounting() {
    for_each_backend("conf-roundtrip", |disk, name| {
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();
        assert_eq!((a, b), (PageId(0), PageId(1)), "{name}: sequential page ids");
        assert_eq!(disk.page_count(), 2, "{name}");

        let mut buf = [0u8; PAGE_SIZE];
        buf[7] = 0x5A;
        disk.write(b, &buf).unwrap();
        disk.sync().unwrap();

        let mut out = [0xFFu8; PAGE_SIZE];
        disk.read(b, &mut out).unwrap();
        assert_eq!(out[7], 0x5A, "{name}: written byte survives");
        disk.read(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0), "{name}: fresh pages read zeroed");
        assert!(disk.verify(a).unwrap() && disk.verify(b).unwrap(), "{name}");

        let stats = disk.stats();
        assert_eq!((stats.reads, stats.writes, stats.allocations), (2, 1, 2), "{name}");
        disk.reset_stats();
        assert_eq!(disk.stats().reads, 0, "{name}");

        // Out-of-bounds access is an error, not UB or silent growth.
        assert!(disk.read(PageId(9), &mut out).is_err(), "{name}");
        assert!(disk.write(PageId(9), &buf).is_err(), "{name}");
    });
}

#[test]
fn log_device_contract() {
    for_each_backend("conf-log", |disk, name| {
        assert_eq!(disk.log_len().unwrap(), 0, "{name}: log starts empty");
        disk.log_append(b"abc").unwrap();
        disk.log_append(b"defgh").unwrap();
        disk.log_sync().unwrap();
        assert_eq!(disk.log_len().unwrap(), 8, "{name}");
        assert_eq!(disk.log_read().unwrap(), b"abcdefgh", "{name}");

        // Torn-tail repair shape: truncate, then append over the gap.
        disk.log_truncate(3).unwrap();
        assert_eq!(disk.log_len().unwrap(), 3, "{name}");
        disk.log_append(b"XY").unwrap();
        disk.log_sync().unwrap();
        assert_eq!(disk.log_read().unwrap(), b"abcXY", "{name}");
    });
}

#[test]
fn injected_fault_semantics_match() {
    for_each_backend("conf-faults", |disk, name| {
        let p = disk.allocate().unwrap();
        disk.write(p, &[3u8; PAGE_SIZE]).unwrap();
        let mut buf = [0u8; PAGE_SIZE];

        // A read I/O error is Storage, not Corruption, and transient.
        let inj = FaultInjector::new(FaultPlan::new(1).fail_nth(FaultKind::ReadError, 1));
        disk.set_fault_injector(Some(Arc::new(inj)));
        assert!(
            matches!(disk.read(p, &mut buf), Err(DbError::Storage(_))),
            "{name}: injected read error"
        );
        disk.read(p, &mut buf).unwrap();

        // A write I/O error leaves the stored page intact.
        let inj = FaultInjector::new(FaultPlan::new(2).fail_nth(FaultKind::WriteError, 1));
        disk.set_fault_injector(Some(Arc::new(inj)));
        assert!(
            matches!(disk.write(p, &[4u8; PAGE_SIZE]), Err(DbError::Storage(_))),
            "{name}: injected write error"
        );
        disk.read(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 3), "{name}: failed write changed nothing");

        // A torn write persists a prefix and trips the checksum; a
        // completed rewrite heals the page.
        let inj = FaultInjector::new(FaultPlan::new(3).fail_nth(FaultKind::TornWrite, 1));
        disk.set_fault_injector(Some(Arc::new(inj)));
        assert!(disk.write(p, &[5u8; PAGE_SIZE]).is_err(), "{name}");
        disk.set_fault_injector(None);
        assert!(
            matches!(disk.read(p, &mut buf), Err(DbError::Corruption(_))),
            "{name}: torn page reads as corruption"
        );
        assert!(!disk.verify(p).unwrap(), "{name}: verify sees the damage");
        disk.write(p, &[6u8; PAGE_SIZE]).unwrap();
        disk.read(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 6), "{name}: rewrite heals");
    });
}

// ---------------------------------------------------------------------
// Database-level conformance
// ---------------------------------------------------------------------

fn item_db_on(storage: StorageSpec, window: Duration) -> Database {
    let config =
        DbConfig::builder().storage(storage).group_commit_window(window).build().unwrap();
    let db = Database::try_with_config(config).unwrap();
    db.create_class(
        "Item",
        &[],
        vec![
            AttrSpec::new("key", Domain::Primitive(PrimitiveType::Int)),
            AttrSpec::new("val", Domain::Primitive(PrimitiveType::Int)),
        ],
    )
    .unwrap();
    db
}

fn read_key(db: &Database, key: i64) -> Option<i64> {
    let tx = db.begin();
    let r = db.query(&tx, &format!("select i.val from Item i where i.key = {key}")).unwrap();
    let out = r.rows.first().map(|row| row[0].as_int().unwrap());
    db.commit(tx).unwrap();
    out
}

fn specs(tag: &str) -> Vec<(StorageSpec, Option<TempDir>, &'static str)> {
    let dir = TempDir::new(tag);
    vec![
        (StorageSpec::Memory, None, "SimDisk"),
        (StorageSpec::File(dir.path().to_path_buf()), Some(dir), "FileDisk"),
    ]
}

#[test]
fn committed_data_survives_crash_on_both_backends() {
    for (spec, _guard, name) in specs("conf-crash") {
        let db = item_db_on(spec, Duration::ZERO);
        let mut model: HashMap<i64, i64> = HashMap::new();
        for k in 0..12i64 {
            let tx = db.begin();
            db.create_object(&tx, "Item", vec![("key", Value::Int(k)), ("val", Value::Int(k * 7))])
                .unwrap();
            db.commit(tx).unwrap();
            model.insert(k, k * 7);
        }
        db.crash_and_recover().unwrap();
        for (&k, &v) in &model {
            assert_eq!(read_key(&db, k), Some(v), "{name}: key {k} after crash");
        }
    }
}

#[test]
fn group_commit_amortizes_fsyncs_under_concurrency() {
    for (spec, _guard, name) in specs("conf-group") {
        let db = Arc::new(item_db_on(spec, Duration::from_micros(500)));
        db.reset_metrics();
        let committers = 8;
        let rounds = 6;
        let barrier = Arc::new(Barrier::new(committers));
        let handles: Vec<_> = (0..committers)
            .map(|c| {
                let db = Arc::clone(&db);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    for r in 0..rounds {
                        barrier.wait();
                        let key = (c * rounds + r) as i64;
                        let tx = db.begin();
                        db.create_object(
                            &tx,
                            "Item",
                            vec![("key", Value::Int(key)), ("val", Value::Int(key))],
                        )
                        .unwrap();
                        db.commit(tx).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let wal = db.stats().wal;
        let commits = (committers * rounds) as u64;
        assert!(
            wal.fsyncs < commits,
            "{name}: {commits} concurrent commits should share fsyncs, got {}",
            wal.fsyncs
        );
        assert!(
            wal.group_commit_batch_size.count >= 1,
            "{name}: at least one group flush was recorded"
        );
        let tx = db.begin();
        let n = db.query(&tx, "select count(*) from Item i").unwrap();
        assert_eq!(n.rows[0][0], Value::Int(commits as i64), "{name}: every commit landed");
        db.commit(tx).unwrap();
    }
}

#[test]
fn crash_mid_group_commit_recovers_consistently() {
    for (spec, _guard, name) in specs("conf-doubt") {
        let db = Arc::new(item_db_on(spec, Duration::from_micros(300)));
        // Seed one base row per committer so updates have a "before".
        let committers = 6usize;
        let mut oids = Vec::new();
        for c in 0..committers {
            let tx = db.begin();
            let oid = db
                .create_object(
                    &tx,
                    "Item",
                    vec![("key", Value::Int(c as i64)), ("val", Value::Int(-1))],
                )
                .unwrap();
            db.commit(tx).unwrap();
            oids.push(oid);
        }

        // One group-commit flush tears mid-write while all committers
        // are in flight: some see Ok, the leader of the torn batch sees
        // an in-doubt error. Recovery decides each transaction's fate.
        db.install_faults(FaultPlan::new(77).fail_nth(FaultKind::PartialFlush, 1));
        let barrier = Arc::new(Barrier::new(committers));
        let handles: Vec<_> = (0..committers)
            .map(|c| {
                let db = Arc::clone(&db);
                let barrier = Arc::clone(&barrier);
                let oid = oids[c];
                std::thread::spawn(move || {
                    barrier.wait();
                    let tx = db.begin();
                    db.set(&tx, oid, "val", Value::Int(c as i64 * 100)).unwrap();
                    db.commit(tx).map_err(|e| format!("{e}"))
                })
            })
            .collect();
        let outcomes: Vec<Result<(), String>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        db.clear_faults();
        db.crash_and_recover().unwrap();

        // Model check: a reported-Ok commit MUST be durable; an errored
        // commit is in doubt — either fully applied or fully undone.
        for (c, outcome) in outcomes.iter().enumerate() {
            let val = read_key(&db, c as i64);
            match outcome {
                Ok(()) => assert_eq!(
                    val,
                    Some(c as i64 * 100),
                    "{name}: committer {c} reported Ok but its update is missing"
                ),
                Err(_) => assert!(
                    val == Some(c as i64 * 100) || val == Some(-1),
                    "{name}: committer {c} left a torn state: {val:?}"
                ),
            }
        }
        let tx = db.begin();
        let n = db.query(&tx, "select count(*) from Item i").unwrap();
        assert_eq!(n.rows[0][0], Value::Int(committers as i64), "{name}: no rows lost or forged");
        db.commit(tx).unwrap();
    }
}

/// The acceptance scenario: a real-file database is closed (the process
/// "exits"), reopened via [`Database::open`], and must replay its WAL to
/// exactly the model-checked state — twice, with writes in between.
#[test]
fn filedisk_cold_restart_replays_to_model_state() {
    let dir = TempDir::new("conf-restart");
    let mut model: HashMap<i64, i64> = HashMap::new();

    {
        let db = item_db_on(StorageSpec::File(dir.path().to_path_buf()), Duration::ZERO);
        let mut oids = HashMap::new();
        for k in 0..20i64 {
            let tx = db.begin();
            let oid = db
                .create_object(&tx, "Item", vec![("key", Value::Int(k)), ("val", Value::Int(k))])
                .unwrap();
            db.commit(tx).unwrap();
            oids.insert(k, oid);
            model.insert(k, k);
        }
        // Overwrite some, delete some, roll one back; checkpoint halfway
        // so replay is checkpoint-LSN-bounded.
        for k in 0..8i64 {
            let tx = db.begin();
            db.set(&tx, oids[&k], "val", Value::Int(k * 11)).unwrap();
            db.commit(tx).unwrap();
            model.insert(k, k * 11);
        }
        db.checkpoint().unwrap();
        for k in 16..20i64 {
            let tx = db.begin();
            db.delete_object(&tx, oids[&k]).unwrap();
            db.commit(tx).unwrap();
            model.remove(&k);
        }
        let tx = db.begin();
        db.set(&tx, oids[&0], "val", Value::Int(9999)).unwrap();
        db.rollback(tx).unwrap();
    } // drop: the process is gone; only pages.dat + wal.log remain

    let db = Database::open(dir.path()).unwrap();
    let tx = db.begin();
    let n = db.query(&tx, "select count(*) from Item i").unwrap();
    assert_eq!(n.rows[0][0], Value::Int(model.len() as i64), "restart 1: live count");
    db.commit(tx).unwrap();
    for (&k, &v) in &model {
        assert_eq!(read_key(&db, k), Some(v), "restart 1: key {k}");
    }

    // Keep writing on the reopened database, restart again.
    let tx = db.begin();
    let oid = db
        .create_object(&tx, "Item", vec![("key", Value::Int(100)), ("val", Value::Int(1))])
        .unwrap();
    db.commit(tx).unwrap();
    let tx = db.begin();
    db.set(&tx, oid, "val", Value::Int(2)).unwrap();
    db.commit(tx).unwrap();
    model.insert(100, 2);
    drop(db);

    let db = Database::open(dir.path()).unwrap();
    for (&k, &v) in &model {
        assert_eq!(read_key(&db, k), Some(v), "restart 2: key {k}");
    }
    let tx = db.begin();
    let n = db.query(&tx, "select count(*) from Item i").unwrap();
    assert_eq!(n.rows[0][0], Value::Int(model.len() as i64), "restart 2: live count");
    db.commit(tx).unwrap();
}
