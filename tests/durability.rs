//! Durability integration tests: randomized commit/abort/crash cycles
//! verified through the full query path, and checkpointed restarts.

mod common;

use common::TempDir;
use orion_oodb::orion::{
    AttrSpec, Database, DbConfig, Domain, FaultKind, FaultPlan, IndexKind, PrimitiveType,
    StorageSpec, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn item_db() -> Database {
    item_db_on(StorageSpec::Memory)
}

fn item_db_on(storage: StorageSpec) -> Database {
    let config = DbConfig::builder().storage(storage).build().unwrap();
    let db = Database::try_with_config(config).unwrap();
    db.create_class(
        "Item",
        &[],
        vec![
            AttrSpec::new("key", Domain::Primitive(PrimitiveType::Int)),
            AttrSpec::new("val", Domain::Primitive(PrimitiveType::Int)),
        ],
    )
    .unwrap();
    db.create_index("bykey", IndexKind::ClassHierarchy, "Item", &["key"]).unwrap();
    db
}

fn randomized_crash_recovery_matches_model_on(db: Database) {
    let mut rng = StdRng::seed_from_u64(42);
    // key → val model of committed state.
    let mut model: HashMap<i64, i64> = HashMap::new();
    let mut oids: HashMap<i64, orion_oodb::orion::Oid> = HashMap::new();

    for round in 0..6 {
        // A batch of transactions, some committed, some aborted.
        for t in 0..20 {
            let tx = db.begin();
            let commit = rng.gen_bool(0.7);
            let mut staged: Vec<(i64, i64, Option<orion_oodb::orion::Oid>)> = Vec::new();
            for _ in 0..rng.gen_range(1..4) {
                let key = rng.gen_range(0..40i64);
                let val = round * 1000 + t * 10 + key;
                match oids.get(&key) {
                    Some(&oid) => {
                        db.set(&tx, oid, "val", Value::Int(val)).unwrap();
                        staged.push((key, val, None));
                    }
                    None => {
                        let oid = db
                            .create_object(
                                &tx,
                                "Item",
                                vec![("key", Value::Int(key)), ("val", Value::Int(val))],
                            )
                            .unwrap();
                        staged.push((key, val, Some(oid)));
                    }
                }
            }
            if commit {
                db.commit(tx).unwrap();
                for (key, val, new_oid) in staged {
                    model.insert(key, val);
                    if let Some(oid) = new_oid {
                        oids.insert(key, oid);
                    }
                }
            } else {
                db.rollback(tx).unwrap();
                // Creations vanish; drop them from the oid map.
                for (key, _, new_oid) in staged {
                    if new_oid.is_some() {
                        oids.remove(&key);
                    }
                }
            }
        }
        // Crash between rounds (sometimes after a checkpoint).
        if rng.gen_bool(0.5) {
            db.checkpoint().unwrap();
        }
        db.crash_and_recover().unwrap();

        // Verify the full state through queries (exercising the rebuilt
        // index and directory).
        let tx = db.begin();
        let count =
            db.query(&tx, "select count(*) from Item i").unwrap().rows[0][0].as_int().unwrap();
        assert_eq!(count as usize, model.len(), "round {round}: live object count");
        for (&key, &val) in &model {
            let r = db
                .query(&tx, &format!("select i.val from Item i where i.key = {key}"))
                .unwrap();
            assert_eq!(r.rows.len(), 1, "round {round}: key {key} present exactly once");
            assert_eq!(r.rows[0][0], Value::Int(val), "round {round}: key {key} value");
        }
        db.commit(tx).unwrap();
    }
}

fn oid_allocation_survives_restart_without_collisions_on(db: Database) {
    let tx = db.begin();
    let before: Vec<_> = (0..10)
        .map(|i| {
            db.create_object(&tx, "Item", vec![("key", Value::Int(i)), ("val", Value::Int(i))])
                .unwrap()
        })
        .collect();
    db.commit(tx).unwrap();
    db.crash_and_recover().unwrap();
    let tx = db.begin();
    let after: Vec<_> = (10..20)
        .map(|i| {
            db.create_object(&tx, "Item", vec![("key", Value::Int(i)), ("val", Value::Int(i))])
                .unwrap()
        })
        .collect();
    db.commit(tx).unwrap();
    for new in &after {
        assert!(!before.contains(new), "recovered allocator must not reuse OIDs");
    }
    let tx = db.begin();
    let n = db.query(&tx, "select count(*) from Item i").unwrap();
    assert_eq!(n.rows[0][0], Value::Int(20));
    db.commit(tx).unwrap();
}

fn crash_during_rollback_restores_original_state_on(db: Database) {
    let tx = db.begin();
    let oid = db
        .create_object(&tx, "Item", vec![("key", Value::Int(7)), ("val", Value::Int(70))])
        .unwrap();
    db.commit(tx).unwrap();

    // Dirty the object, then make the abort path's WAL flush tear: the
    // rollback reports a clean error mid-undo and we crash right there.
    let tx = db.begin();
    db.set(&tx, oid, "val", Value::Int(999)).unwrap();
    db.install_faults(FaultPlan::new(3).fail_nth(FaultKind::PartialFlush, 1));
    let err = db.rollback(tx).expect_err("rollback must surface the injected flush fault");
    assert!(format!("{err}").contains("partial WAL flush"), "unexpected error: {err}");
    db.clear_faults();
    db.crash_and_recover().unwrap();

    // Recovery finishes the undo from the log: the uncommitted update
    // is gone and the committed state is intact.
    let tx = db.begin();
    assert_eq!(db.get(&tx, oid, "val").unwrap(), Value::Int(70));
    let r = db.query(&tx, "select count(*) from Item i").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    db.commit(tx).unwrap();
}

fn crash_during_checkpoint_with_partially_flushed_tail_on(db: Database) {
    let tx = db.begin();
    let oid = db
        .create_object(&tx, "Item", vec![("key", Value::Int(1)), ("val", Value::Int(10))])
        .unwrap();
    db.commit(tx).unwrap();

    // The checkpoint's final flush promotes only part of its tail and
    // then fails: the stable log ends in a torn frame. Crashing here
    // must not cost the committed state — recovery truncates the torn
    // tail and replays the rest.
    db.install_faults(FaultPlan::new(5).fail_nth(FaultKind::PartialFlush, 1));
    let err = db.checkpoint().expect_err("checkpoint must surface the injected flush fault");
    assert!(format!("{err}").contains("partial WAL flush"), "unexpected error: {err}");
    db.clear_faults();
    db.crash_and_recover().unwrap();

    let tx = db.begin();
    assert_eq!(db.get(&tx, oid, "val").unwrap(), Value::Int(10));
    db.commit(tx).unwrap();

    // The torn checkpoint frame was detected and truncated, and later
    // checkpoints land on the spliced (still monotone) log cleanly.
    assert!(
        db.stats().wal.torn_tail_truncations >= 1,
        "the partially flushed checkpoint record should have been truncated as a torn tail"
    );
    db.checkpoint().unwrap();
    db.crash_and_recover().unwrap();
    let tx = db.begin();
    assert_eq!(db.get(&tx, oid, "val").unwrap(), Value::Int(10));
    db.commit(tx).unwrap();
}

fn repeated_crashes_are_harmless_on(db: Database) {
    let tx = db.begin();
    let oid =
        db.create_object(&tx, "Item", vec![("key", Value::Int(1)), ("val", Value::Int(0))]).unwrap();
    db.commit(tx).unwrap();
    for i in 0..5 {
        db.crash_and_recover().unwrap();
        let tx = db.begin();
        assert_eq!(db.get(&tx, oid, "val").unwrap(), Value::Int(i));
        db.set(&tx, oid, "val", Value::Int(i + 1)).unwrap();
        db.commit(tx).unwrap();
    }
}

// Every durability scenario above runs unchanged on both backends:
// the in-memory SimDisk and the real-file FileDisk.

#[test]
fn randomized_crash_recovery_matches_model() {
    randomized_crash_recovery_matches_model_on(item_db());
}

#[test]
fn oid_allocation_survives_restart_without_collisions() {
    oid_allocation_survives_restart_without_collisions_on(item_db());
}

#[test]
fn crash_during_rollback_restores_original_state() {
    crash_during_rollback_restores_original_state_on(item_db());
}

#[test]
fn crash_during_checkpoint_with_partially_flushed_tail() {
    crash_during_checkpoint_with_partially_flushed_tail_on(item_db());
}

#[test]
fn repeated_crashes_are_harmless() {
    repeated_crashes_are_harmless_on(item_db());
}

#[test]
fn randomized_crash_recovery_matches_model_filedisk() {
    let dir = TempDir::new("dur-rand");
    randomized_crash_recovery_matches_model_on(item_db_on(StorageSpec::File(
        dir.path().to_path_buf(),
    )));
}

#[test]
fn oid_allocation_survives_restart_without_collisions_filedisk() {
    let dir = TempDir::new("dur-oid");
    oid_allocation_survives_restart_without_collisions_on(item_db_on(StorageSpec::File(
        dir.path().to_path_buf(),
    )));
}

#[test]
fn crash_during_rollback_restores_original_state_filedisk() {
    let dir = TempDir::new("dur-rb");
    crash_during_rollback_restores_original_state_on(item_db_on(StorageSpec::File(
        dir.path().to_path_buf(),
    )));
}

#[test]
fn crash_during_checkpoint_with_partially_flushed_tail_filedisk() {
    let dir = TempDir::new("dur-ckpt");
    crash_during_checkpoint_with_partially_flushed_tail_on(item_db_on(StorageSpec::File(
        dir.path().to_path_buf(),
    )));
}

#[test]
fn repeated_crashes_are_harmless_filedisk() {
    let dir = TempDir::new("dur-rep");
    repeated_crashes_are_harmless_on(item_db_on(StorageSpec::File(
        dir.path().to_path_buf(),
    )));
}
