//! Durability integration tests: randomized commit/abort/crash cycles
//! verified through the full query path, and checkpointed restarts.

use orion_oodb::orion::{AttrSpec, Database, Domain, IndexKind, PrimitiveType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn item_db() -> Database {
    let db = Database::new();
    db.create_class(
        "Item",
        &[],
        vec![
            AttrSpec::new("key", Domain::Primitive(PrimitiveType::Int)),
            AttrSpec::new("val", Domain::Primitive(PrimitiveType::Int)),
        ],
    )
    .unwrap();
    db.create_index("bykey", IndexKind::ClassHierarchy, "Item", &["key"]).unwrap();
    db
}

#[test]
fn randomized_crash_recovery_matches_model() {
    let db = item_db();
    let mut rng = StdRng::seed_from_u64(42);
    // key → val model of committed state.
    let mut model: HashMap<i64, i64> = HashMap::new();
    let mut oids: HashMap<i64, orion_oodb::orion::Oid> = HashMap::new();

    for round in 0..6 {
        // A batch of transactions, some committed, some aborted.
        for t in 0..20 {
            let tx = db.begin();
            let commit = rng.gen_bool(0.7);
            let mut staged: Vec<(i64, i64, Option<orion_oodb::orion::Oid>)> = Vec::new();
            for _ in 0..rng.gen_range(1..4) {
                let key = rng.gen_range(0..40i64);
                let val = round * 1000 + t * 10 + key;
                match oids.get(&key) {
                    Some(&oid) => {
                        db.set(&tx, oid, "val", Value::Int(val)).unwrap();
                        staged.push((key, val, None));
                    }
                    None => {
                        let oid = db
                            .create_object(
                                &tx,
                                "Item",
                                vec![("key", Value::Int(key)), ("val", Value::Int(val))],
                            )
                            .unwrap();
                        staged.push((key, val, Some(oid)));
                    }
                }
            }
            if commit {
                db.commit(tx).unwrap();
                for (key, val, new_oid) in staged {
                    model.insert(key, val);
                    if let Some(oid) = new_oid {
                        oids.insert(key, oid);
                    }
                }
            } else {
                db.rollback(tx).unwrap();
                // Creations vanish; drop them from the oid map.
                for (key, _, new_oid) in staged {
                    if new_oid.is_some() {
                        oids.remove(&key);
                    }
                }
            }
        }
        // Crash between rounds (sometimes after a checkpoint).
        if rng.gen_bool(0.5) {
            db.checkpoint().unwrap();
        }
        db.crash_and_recover().unwrap();

        // Verify the full state through queries (exercising the rebuilt
        // index and directory).
        let tx = db.begin();
        let count =
            db.query(&tx, "select count(*) from Item i").unwrap().rows[0][0].as_int().unwrap();
        assert_eq!(count as usize, model.len(), "round {round}: live object count");
        for (&key, &val) in &model {
            let r = db
                .query(&tx, &format!("select i.val from Item i where i.key = {key}"))
                .unwrap();
            assert_eq!(r.rows.len(), 1, "round {round}: key {key} present exactly once");
            assert_eq!(r.rows[0][0], Value::Int(val), "round {round}: key {key} value");
        }
        db.commit(tx).unwrap();
    }
}

#[test]
fn oid_allocation_survives_restart_without_collisions() {
    let db = item_db();
    let tx = db.begin();
    let before: Vec<_> = (0..10)
        .map(|i| {
            db.create_object(&tx, "Item", vec![("key", Value::Int(i)), ("val", Value::Int(i))])
                .unwrap()
        })
        .collect();
    db.commit(tx).unwrap();
    db.crash_and_recover().unwrap();
    let tx = db.begin();
    let after: Vec<_> = (10..20)
        .map(|i| {
            db.create_object(&tx, "Item", vec![("key", Value::Int(i)), ("val", Value::Int(i))])
                .unwrap()
        })
        .collect();
    db.commit(tx).unwrap();
    for new in &after {
        assert!(!before.contains(new), "recovered allocator must not reuse OIDs");
    }
    let tx = db.begin();
    let n = db.query(&tx, "select count(*) from Item i").unwrap();
    assert_eq!(n.rows[0][0], Value::Int(20));
    db.commit(tx).unwrap();
}

#[test]
fn repeated_crashes_are_harmless() {
    let db = item_db();
    let tx = db.begin();
    let oid =
        db.create_object(&tx, "Item", vec![("key", Value::Int(1)), ("val", Value::Int(0))]).unwrap();
    db.commit(tx).unwrap();
    for i in 0..5 {
        db.crash_and_recover().unwrap();
        let tx = db.begin();
        assert_eq!(db.get(&tx, oid, "val").unwrap(), Value::Int(i));
        db.set(&tx, oid, "val", Value::Int(i + 1)).unwrap();
        db.commit(tx).unwrap();
    }
}
