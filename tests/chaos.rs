//! Chaos harness: seeded randomized workloads under injected storage
//! faults and crashes, embedded and over orion-net.
//!
//! Every round arms a fresh seeded [`FaultPlan`], runs a batch of
//! transactions against a `HashMap` model of committed state, then
//! crashes and recovers. The invariant under test is the issue's
//! robustness contract: every injected fault surfaces as a clean
//! `DbError` (never a panic, never a wedged lock), and after recovery
//! the database contents equal the model exactly.
//!
//! Commit is the one genuinely ambiguous operation: a flush error on
//! the commit record means the outcome is unknown until recovery
//! resolves it. The harness models that honestly — on a commit error it
//! crashes, recovers, and probes one staged key to learn which branch
//! the log chose, then holds the database to that branch for the rest
//! of the run.
//!
//! Smoke tests pin three fixed seeds (bounded rounds, run in CI); the
//! `#[ignore]`d hammer sweeps many seeds with deeper rounds:
//!
//! ```text
//! cargo test --release --test chaos -- --ignored
//! ```

mod common;

use common::TempDir;
use orion_oodb::net::{Client, Server, ServerConfig};
use orion_oodb::orion::{
    AttrSpec, Database, DbConfig, DbError, Domain, FaultKind, FaultPlan, IndexKind, Oid,
    PrimitiveType, StorageSpec, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

fn item_db() -> Database {
    item_db_on(StorageSpec::Memory)
}

fn item_db_on(storage: StorageSpec) -> Database {
    let config = DbConfig::builder().storage(storage).build().unwrap();
    let db = Database::try_with_config(config).unwrap();
    db.create_class(
        "Item",
        &[],
        vec![
            AttrSpec::new("key", Domain::Primitive(PrimitiveType::Int)),
            AttrSpec::new("val", Domain::Primitive(PrimitiveType::Int)),
        ],
    )
    .unwrap();
    db.create_index("bykey", IndexKind::ClassHierarchy, "Item", &["key"]).unwrap();
    db
}

/// Crash and recover, clearing the fault plan if an armed fault makes
/// the first recovery attempt fail. Recovery failure must be clean and
/// retryable; a retry with faults cleared must always succeed.
fn recover(db: &Database) {
    for _ in 0..8 {
        match db.crash_and_recover() {
            Ok(()) => return,
            Err(e) => {
                assert!(
                    !matches!(e, DbError::Internal(_)),
                    "recovery failed with an internal error (not a clean fault): {e}"
                );
                db.clear_faults();
            }
        }
    }
    panic!("recovery did not succeed even after clearing the fault plan");
}

/// Value written by transaction `t` of round `round` to `key`; unique
/// per (round, t) so an in-doubt commit can be resolved by probing.
fn val_for(round: i64, t: i64, key: i64) -> i64 {
    round * 10_000 + t * 100 + key
}

/// Read `key`'s current value through the query path, or None if the
/// key is absent.
fn probe(db: &Database, key: i64) -> Option<i64> {
    let tx = db.begin();
    let r = db.query(&tx, &format!("select i.val from Item i where i.key = {key}")).unwrap();
    let out = r.rows.first().map(|row| row[0].as_int().unwrap());
    db.commit(tx).unwrap();
    out
}

fn apply(
    model: &mut HashMap<i64, i64>,
    oids: &mut HashMap<i64, Oid>,
    staged: &[(i64, i64, Option<Oid>)],
) {
    for &(key, val, new_oid) in staged {
        model.insert(key, val);
        if let Some(oid) = new_oid {
            oids.insert(key, oid);
        }
    }
}

fn forget_creations(oids: &mut HashMap<i64, Oid>, staged: &[(i64, i64, Option<Oid>)]) {
    for &(key, _, new_oid) in staged {
        if new_oid.is_some() {
            oids.remove(&key);
        }
    }
}

fn verify(db: &Database, model: &HashMap<i64, i64>, round: i64) {
    let tx = db.begin();
    let count = db.query(&tx, "select count(*) from Item i").unwrap().rows[0][0].as_int().unwrap();
    assert_eq!(count as usize, model.len(), "round {round}: live object count");
    for (&key, &val) in model {
        let r =
            db.query(&tx, &format!("select i.val from Item i where i.key = {key}")).unwrap();
        assert_eq!(r.rows.len(), 1, "round {round}: key {key} present exactly once");
        assert_eq!(r.rows[0][0], Value::Int(val), "round {round}: key {key} value");
    }
    db.commit(tx).unwrap();
}

/// One full chaos run: `rounds` rounds of `txns` transactions each,
/// with a fresh seeded fault plan armed per round and a crash/recover
/// between rounds. Runs identically over any storage backend.
fn chaos_run(seed: u64, rounds: i64, txns: i64) {
    chaos_run_on(StorageSpec::Memory, seed, rounds, txns);
}

fn chaos_run_on(storage: StorageSpec, seed: u64, rounds: i64, txns: i64) {
    let db = item_db_on(storage);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model: HashMap<i64, i64> = HashMap::new();
    let mut oids: HashMap<i64, Oid> = HashMap::new();

    for round in 0..rounds {
        let plan = FaultPlan::new(rng.gen::<u64>())
            .probabilistic(FaultKind::PartialFlush, 0.08)
            .probabilistic(FaultKind::WriteError, 0.03)
            .probabilistic(FaultKind::ReadError, 0.02)
            .fail_nth(FaultKind::TornWrite, rng.gen_range(3..40u64))
            .fail_nth(FaultKind::BitFlip, rng.gen_range(3..60u64));
        db.install_faults(plan);

        for t in 0..txns {
            let tx = db.begin();
            let mut staged: Vec<(i64, i64, Option<Oid>)> = Vec::new();
            let mut failed = false;
            for _ in 0..rng.gen_range(1..4u64) {
                let key = rng.gen_range(0..30i64);
                // One op per key per transaction: a second create of the
                // same key would make an object the model can't see.
                if staged.iter().any(|&(k, _, _)| k == key) {
                    continue;
                }
                let val = val_for(round, t, key);
                let op = match oids.get(&key) {
                    Some(&oid) => db.set(&tx, oid, "val", Value::Int(val)).map(|()| None),
                    None => db
                        .create_object(
                            &tx,
                            "Item",
                            vec![("key", Value::Int(key)), ("val", Value::Int(val))],
                        )
                        .map(Some),
                };
                match op {
                    Ok(new_oid) => staged.push((key, val, new_oid)),
                    // An injected fault; the transaction is abandoned.
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if failed || !rng.gen_bool(0.7) {
                if db.rollback(tx).is_err() {
                    // Rollback itself hit a fault; recovery finishes the
                    // undo from the log.
                    recover(&db);
                }
                forget_creations(&mut oids, &staged);
                continue;
            }
            match db.commit(tx) {
                Ok(()) => apply(&mut model, &mut oids, &staged),
                Err(_) => {
                    // Commit in doubt: the flush failed, so the commit
                    // record may or may not be stable. Recovery decides;
                    // probe one staged key to learn which way. Disarm the
                    // plan first so the probe itself can't fault (it is
                    // re-armed at the top of the next round).
                    db.clear_faults();
                    recover(&db);
                    let (key, val, _) = staged[0];
                    if probe(&db, key) == Some(val) {
                        apply(&mut model, &mut oids, &staged);
                    } else {
                        forget_creations(&mut oids, &staged);
                    }
                    verify(&db, &model, round);
                }
            }
        }

        db.clear_faults();
        if rng.gen_bool(0.4) {
            db.checkpoint().unwrap();
        }
        recover(&db);
        verify(&db, &model, round);
    }

    let stats = db.stats();
    assert!(stats.fault.total() >= 1, "seed {seed}: the fault plan never fired");
    assert!(
        stats.recovery.completed >= rounds as u64,
        "seed {seed}: expected at least one completed recovery per round"
    );
}

#[test]
fn chaos_smoke_seed_11() {
    chaos_run(11, 4, 12);
}

#[test]
fn chaos_smoke_seed_23() {
    chaos_run(23, 4, 12);
}

#[test]
fn chaos_smoke_seed_47() {
    chaos_run(47, 4, 12);
}

// The same three smokes over the real-file backend: every injected
// fault, torn write, and crash/recover cycle must behave identically
// when pages and the WAL live in actual files with actual fsync.

#[test]
fn chaos_smoke_seed_11_filedisk() {
    let dir = TempDir::new("chaos-11");
    chaos_run_on(StorageSpec::File(dir.path().to_path_buf()), 11, 4, 12);
}

#[test]
fn chaos_smoke_seed_23_filedisk() {
    let dir = TempDir::new("chaos-23");
    chaos_run_on(StorageSpec::File(dir.path().to_path_buf()), 23, 4, 12);
}

#[test]
fn chaos_smoke_seed_47_filedisk() {
    let dir = TempDir::new("chaos-47");
    chaos_run_on(StorageSpec::File(dir.path().to_path_buf()), 47, 4, 12);
}

/// Long-running sweep across many seeds with deeper rounds. Excluded
/// from the default run; `scripts/ci.sh chaos` runs it in release mode.
#[test]
#[ignore = "chaos hammer: run with --release -- --ignored"]
fn chaos_hammer() {
    for seed in 0..24u64 {
        chaos_run(seed * 131 + 7, 8, 30);
    }
}

/// The same contract over the wire: injected faults surface to a
/// remote client as clean decoded `DbError`s on a live connection, the
/// server survives them, and post-recovery state matches the model.
#[test]
fn chaos_over_the_wire() {
    let db = Arc::new(item_db());
    let server = Server::bind(db.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut model: HashMap<i64, i64> = HashMap::new();
    let mut oids: HashMap<i64, Oid> = HashMap::new();

    for round in 0..3i64 {
        let plan = FaultPlan::new(rng.gen::<u64>())
            .probabilistic(FaultKind::PartialFlush, 0.10)
            .probabilistic(FaultKind::WriteError, 0.03);
        db.install_faults(plan);

        for t in 0..10i64 {
            client.begin().unwrap();
            let mut staged: Vec<(i64, i64, Option<Oid>)> = Vec::new();
            let mut failed = false;
            for _ in 0..rng.gen_range(1..3u64) {
                let key = rng.gen_range(0..20i64);
                if staged.iter().any(|&(k, _, _)| k == key) {
                    continue;
                }
                let val = val_for(round, t, key);
                let op = match oids.get(&key) {
                    Some(&oid) => client.set(oid, "val", Value::Int(val)).map(|()| None),
                    None => client
                        .create_object(
                            "Item",
                            vec![("key", Value::Int(key)), ("val", Value::Int(val))],
                        )
                        .map(Some),
                };
                match op {
                    Ok(new_oid) => staged.push((key, val, new_oid)),
                    Err(_) => {
                        // The fault crossed the wire as a decoded error;
                        // the connection itself must still be healthy.
                        client.ping().unwrap();
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                if client.rollback().is_err() {
                    recover(&db);
                }
                forget_creations(&mut oids, &staged);
                continue;
            }
            match client.commit() {
                Ok(()) => apply(&mut model, &mut oids, &staged),
                Err(_) => {
                    db.clear_faults();
                    recover(&db);
                    if staged.is_empty() {
                        continue;
                    }
                    let (key, val, _) = staged[0];
                    if probe(&db, key) == Some(val) {
                        apply(&mut model, &mut oids, &staged);
                    } else {
                        forget_creations(&mut oids, &staged);
                    }
                }
            }
        }

        db.clear_faults();
        recover(&db);

        // Verify through the wire: remote reads see exactly the model.
        let count =
            client.query("select count(*) from Item i").unwrap().rows[0][0].as_int().unwrap();
        assert_eq!(count as usize, model.len(), "round {round}: remote live object count");
        for (&key, &val) in &model {
            let r = client.query(&format!("select i.val from Item i where i.key = {key}")).unwrap();
            assert_eq!(r.rows.len(), 1, "round {round}: key {key} present exactly once");
            assert_eq!(r.rows[0][0], Value::Int(val), "round {round}: key {key} value");
        }
    }

    // The fault and recovery counters must surface in the remote scrape.
    let scrape = client.stats_prometheus().unwrap();
    for series in [
        "orion_fault_read_errors_total",
        "orion_fault_write_errors_total",
        "orion_fault_torn_writes_total",
        "orion_fault_bit_flips_total",
        "orion_fault_partial_flushes_total",
        "orion_recovery_completed_total",
        "orion_recovery_failed_total",
        "orion_recovery_pages_repaired_total",
        "orion_wal_torn_tail_truncations_total",
    ] {
        assert!(scrape.contains(series), "prometheus scrape is missing {series}");
    }
    assert!(db.stats().recovery.completed >= 3, "one completed recovery per round");

    server.shutdown();
}

/// Deterministic end-to-end check that fired faults are visible in both
/// `stats()` and the Prometheus rendering.
#[test]
fn fault_counters_surface_in_stats_and_prometheus() {
    let db = item_db();
    let tx = db.begin();
    let oid = db
        .create_object(&tx, "Item", vec![("key", Value::Int(1)), ("val", Value::Int(1))])
        .unwrap();
    db.commit(tx).unwrap();

    // Force the next page read to fail, then drop the cached frame so
    // the read actually reaches the (faulted) disk.
    db.install_faults(FaultPlan::new(9).fail_nth(FaultKind::ReadError, 1));
    db.crash_and_recover().unwrap_or_else(|_| {
        // The armed fault may fire during recovery itself; either way it
        // must have been counted. Clear and recover for the probe below.
        db.clear_faults();
        db.crash_and_recover().unwrap();
    });
    let tx = db.begin();
    let _ = db.get(&tx, oid, "val"); // may or may not hit the fault, per cache state
    db.commit(tx).unwrap();
    db.clear_faults();

    let stats = db.stats();
    assert!(stats.fault.read_errors >= 1, "the armed read fault never fired");
    let prom = stats.render_prometheus();
    assert!(prom.contains("orion_fault_read_errors_total"));
    assert!(prom.contains("orion_recovery_completed_total"));
}
