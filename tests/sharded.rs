//! Sharded-cluster invariants: money is conserved across shards when
//! a participant crashes mid-commit, and a coordinator that dies
//! between PREPARE and COMMIT is recovered from its decision log —
//! on both storage backends.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::TempDir;
use orion_oodb::net::{Client, ClientConfig, Request, RetryPolicy, Server, ServerConfig};
use orion_oodb::orion::{
    AttrSpec, Database, DbConfig, DbResult, Domain, Oid, PrimitiveType, StorageSpec, Value,
};
use orion_oodb::shard::{
    Decision, DecisionLogSpec, ExplicitPlacement, RouterConfig, ShardRouter, ShardTx,
};

const INITIAL_BALANCE: i64 = 1_000;

/// Fast-retry client config so injected crashes fail over quickly.
fn client_config() -> ClientConfig {
    ClientConfig {
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            ..RetryPolicy::default()
        },
        ..ClientConfig::default()
    }
}

/// A two-shard cluster: `AccountA` extents on shard 0, `AccountB` on
/// shard 1, so every A→B transfer is a genuine cross-shard 2PC.
struct Cluster {
    servers: Vec<Server>,
    dbs: Vec<Arc<Database>>,
    router: ShardRouter,
    /// Crash switch: while set, shard 1 panics on `CommitPrepared`
    /// (after its PREPARE vote, before the commit applies).
    crash_shard1_commit: Arc<AtomicBool>,
}

fn build_cluster(specs: [StorageSpec; 2], log: DecisionLogSpec) -> Cluster {
    let crash = Arc::new(AtomicBool::new(false));
    let mut servers = Vec::new();
    let mut dbs = Vec::new();
    let mut addrs = Vec::new();
    for (i, storage) in specs.into_iter().enumerate() {
        let db = Arc::new(
            Database::try_with_config(DbConfig {
                storage,
                lock_timeout: Duration::from_secs(5),
                ..DbConfig::default()
            })
            .unwrap(),
        );
        let hook = {
            let crash = Arc::clone(&crash);
            let shard1 = i == 1;
            Arc::new(move |req: &Request| {
                if shard1
                    && crash.load(Ordering::SeqCst)
                    && matches!(req, Request::CommitPrepared { .. })
                {
                    panic!("injected participant crash before commit applies");
                }
            })
        };
        let server = Server::bind(
            Arc::clone(&db),
            "127.0.0.1:0",
            ServerConfig { request_hook: Some(hook), ..ServerConfig::default() },
        )
        .unwrap();
        addrs.push(server.local_addr());
        servers.push(server);
        dbs.push(db);
    }
    let router = ShardRouter::connect(
        &addrs,
        RouterConfig {
            placement: Box::new(ExplicitPlacement::new([
                ("AccountA", 0usize),
                ("AccountB", 1usize),
            ])),
            decision_log: log,
            client: client_config(),
        },
    )
    .unwrap();
    Cluster { servers, dbs, router, crash_shard1_commit: crash }
}

fn seed_accounts(router: &ShardRouter, per_class: usize) -> (Vec<Oid>, Vec<Oid>) {
    let attr = vec![AttrSpec::new("balance", Domain::Primitive(PrimitiveType::Int))];
    router.create_class("AccountA", &[], attr.clone()).unwrap();
    router.create_class("AccountB", &[], attr).unwrap();
    let mk = |class: &str| -> Vec<Oid> {
        (0..per_class)
            .map(|_| {
                router
                    .create_object(class, vec![("balance", Value::Int(INITIAL_BALANCE))])
                    .unwrap()
            })
            .collect()
    };
    (mk("AccountA"), mk("AccountB"))
}

fn transfer(tx: &mut ShardTx<'_>, from: Oid, to: Oid, amount: i64) -> DbResult<()> {
    let b_from = tx.get(from, "balance")?.as_int().unwrap();
    let b_to = tx.get(to, "balance")?.as_int().unwrap();
    tx.set(from, "balance", Value::Int(b_from - amount))?;
    tx.set(to, "balance", Value::Int(b_to + amount))?;
    Ok(())
}

fn total_balance(router: &ShardRouter, accounts: &[Oid]) -> i64 {
    accounts.iter().map(|&a| router.get(a, "balance").unwrap().as_int().unwrap()).sum()
}

/// One shard crashes while commits are in flight; after it recovers
/// and the router resolves its in-doubt transactions, no money was
/// created or destroyed and no locks are leaked.
#[test]
fn bank_conservation_across_shards_with_participant_crash() {
    let cl = build_cluster(
        [StorageSpec::Memory, StorageSpec::Memory],
        DecisionLogSpec::Memory,
    );
    let n = 8;
    let (a, b) = seed_accounts(&cl.router, n);
    let expected_total = 2 * n as i64 * INITIAL_BALANCE;

    // Healthy concurrent phase: two writers, disjoint account pairs,
    // all cross-shard (A→B) so every commit is a 2PC.
    std::thread::scope(|scope| {
        for t in 0..2usize {
            let router = &cl.router;
            let (a, b) = (&a, &b);
            scope.spawn(move || {
                for i in 0..10 {
                    let from = a[(t * 4 + i % 4) % a.len()];
                    let to = b[(t * 4 + i % 3) % b.len()];
                    let mut tx = router.begin();
                    transfer(&mut tx, from, to, 7).unwrap();
                    tx.commit().unwrap();
                }
            });
        }
    });
    assert_eq!(total_balance(&cl.router, &a) + total_balance(&cl.router, &b), expected_total);
    assert_eq!(cl.router.metrics().txns_2pc.get(), 20);

    // Crash window: shard 1 dies on every CommitPrepared. The
    // decision is already logged, so commit() reports success and the
    // push is left for resolution; distinct pairs per transfer so the
    // stranded prepared locks don't collide.
    cl.crash_shard1_commit.store(true, Ordering::SeqCst);
    for i in 0..3 {
        let mut tx = cl.router.begin();
        transfer(&mut tx, a[i], b[i], 50).unwrap();
        tx.commit().unwrap();
    }
    cl.crash_shard1_commit.store(false, Ordering::SeqCst);
    assert_eq!(cl.router.metrics().commit_push_failures.get(), 3);

    // Shard 1 restarts: its prepared transactions come back in-doubt,
    // holding their write locks.
    cl.dbs[1].crash_and_recover().unwrap();
    assert_eq!(cl.dbs[1].in_doubt().len(), 3);
    assert_eq!(cl.dbs[1].stats().twopc.prepared, 3);

    // The coordinator's log resolves all three as commits.
    let resolved = cl.router.resolve_in_doubt().unwrap();
    assert_eq!(resolved.len(), 3);
    assert!(resolved.iter().all(|&(shard, _, committed)| shard == 1 && committed));
    assert!(cl.dbs[1].in_doubt().is_empty());

    // Conservation: the 20 healthy + 3 crash-window transfers all
    // applied exactly once on both sides.
    assert_eq!(total_balance(&cl.router, &a) + total_balance(&cl.router, &b), expected_total);
    for (i, &acct) in b.iter().enumerate().take(3) {
        assert_eq!(
            cl.router.get(acct, "balance").unwrap(),
            Value::Int(INITIAL_BALANCE + 50 + 7 * count_into(i, n)),
        );
    }

    // No leaked locks: the same accounts accept a fresh transaction.
    let mut tx = cl.router.begin();
    transfer(&mut tx, a[0], b[0], 1).unwrap();
    tx.commit().unwrap();
    assert_eq!(
        total_balance(&cl.router, &a) + total_balance(&cl.router, &b),
        expected_total
    );
    assert_eq!(cl.dbs[1].stats().twopc.in_doubt_recovered, 3);
    for s in cl.servers {
        s.shutdown();
    }
}

/// How many healthy-phase transfers landed on B\[i\] (mirrors the
/// deterministic pair schedule above: thread t, iteration i targets
/// b[(t*4 + i%3) % n]).
fn count_into(idx: usize, n: usize) -> i64 {
    let mut count = 0;
    for t in 0..2usize {
        for i in 0..10usize {
            if (t * 4 + i % 3) % n == idx {
                count += 1;
            }
        }
    }
    count
}

/// A coordinator that dies after collecting PREPARE votes leaves both
/// participants in-doubt. A replacement router reading the same
/// decision log commits what was decided and presumes abort for what
/// was not — across process-style restarts of the shards themselves,
/// on both storage backends.
#[test]
fn coordinator_crash_between_prepare_and_commit_recovers_from_log() {
    let dir = TempDir::new("shard-coord");
    for backend in ["memory", "file"] {
        let specs = match backend {
            "memory" => [StorageSpec::Memory, StorageSpec::Memory],
            _ => [
                StorageSpec::File(dir.path().join(format!("{backend}-s0"))),
                StorageSpec::File(dir.path().join(format!("{backend}-s1"))),
            ],
        };
        let log_path = dir.path().join(format!("{backend}.dlog"));
        std::fs::create_dir_all(dir.path()).unwrap();
        let cl = build_cluster(specs, DecisionLogSpec::File(log_path.clone()));
        let (a, b) = seed_accounts(&cl.router, 2);

        // The doomed coordinator: votes collected on both shards for
        // two transactions. The first's commit decision reaches the
        // log; the second's never does. Then the coordinator "dies"
        // (connections drop without phase two).
        let mut c0 = Client::connect_with(cl.servers[0].local_addr(), client_config()).unwrap();
        let mut c1 = Client::connect_with(cl.servers[1].local_addr(), client_config()).unwrap();
        let t0 = c0.begin().unwrap();
        c0.set(a[0], "balance", Value::Int(900)).unwrap();
        let t1 = c1.begin().unwrap();
        c1.set(b[0], "balance", Value::Int(1100)).unwrap();
        c0.prepare(t0).unwrap();
        c1.prepare(t1).unwrap();
        cl.router
            .decision_log()
            .record(Decision {
                gtid: 1,
                commit: true,
                participants: vec![(0, t0), (1, t1)],
            })
            .unwrap();
        let u0 = c0.begin().unwrap();
        c0.set(a[1], "balance", Value::Int(0)).unwrap();
        let u1 = c1.begin().unwrap();
        c1.set(b[1], "balance", Value::Int(0)).unwrap();
        c0.prepare(u0).unwrap();
        c1.prepare(u1).unwrap();
        drop(c0);
        drop(c1);

        // Both shards also crash and recover: the prepared state must
        // survive the restart (WAL for the file backend).
        for db in &cl.dbs {
            db.crash_and_recover().unwrap();
            assert_eq!(db.in_doubt().len(), 2);
        }

        // A replacement coordinator opens the same decision log.
        let addrs = [cl.servers[0].local_addr(), cl.servers[1].local_addr()];
        let router2 = ShardRouter::connect(
            &addrs,
            RouterConfig {
                placement: Box::new(ExplicitPlacement::new([
                    ("AccountA", 0usize),
                    ("AccountB", 1usize),
                ])),
                decision_log: DecisionLogSpec::File(log_path),
                client: client_config(),
            },
        )
        .unwrap();
        let resolved = router2.resolve_in_doubt().unwrap();
        assert_eq!(resolved.len(), 4, "backend {backend}");
        assert!(resolved.contains(&(0, t0, true)));
        assert!(resolved.contains(&(1, t1, true)));
        assert!(resolved.contains(&(0, u0, false)));
        assert!(resolved.contains(&(1, u1, false)));

        // Classes weren't created through router2; read through the
        // original router (same cluster, same placement).
        assert_eq!(cl.router.get(a[0], "balance").unwrap(), Value::Int(900));
        assert_eq!(cl.router.get(b[0], "balance").unwrap(), Value::Int(1100));
        assert_eq!(cl.router.get(a[1], "balance").unwrap(), Value::Int(INITIAL_BALANCE));
        assert_eq!(cl.router.get(b[1], "balance").unwrap(), Value::Int(INITIAL_BALANCE));
        for db in &cl.dbs {
            assert!(db.in_doubt().is_empty());
        }
        for s in cl.servers {
            s.shutdown();
        }
    }
}
