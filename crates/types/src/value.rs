//! The attribute value universe.
//!
//! "The value of an attribute of an object is also an object in its own
//! right. Further, an attribute of an object may take on a single value or
//! a set of values" (§3.1, concept 2). Values of primitive classes
//! (integer, float, boolean, string) are stored inline; values of user
//! classes are stored as [`Oid`] references, which is what makes nested
//! objects, the aggregation hierarchy, and pointer swizzling possible.
//! `Blob` carries the "long unstructured data (such as images, audio, and
//! textual documents)" the paper lists among post-relational requirements.

use crate::oid::Oid;
use std::cmp::Ordering;
use std::fmt;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The absence of a value (an unset attribute).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
    /// Reference to another object — the edge of the aggregation graph.
    Ref(Oid),
    /// Set-valued attribute: unordered, duplicate-free collection.
    /// Kept sorted by [`Value::cmp_total`] so equality is structural.
    Set(Vec<Value>),
    /// List-valued attribute: ordered collection, duplicates allowed.
    List(Vec<Value>),
    /// Long unstructured data (images, audio, documents).
    Blob(Vec<u8>),
}

impl Value {
    /// Build a set value, normalizing order and removing duplicates.
    pub fn set(mut items: Vec<Value>) -> Value {
        items.sort_by(Value::cmp_total);
        items.dedup();
        Value::Set(items)
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True iff this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload, accepting `Int` by widening.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The referenced OID, if this is a `Ref`.
    pub fn as_ref_oid(&self) -> Option<Oid> {
        match self {
            Value::Ref(oid) => Some(*oid),
            _ => None,
        }
    }

    /// The element slice, if this is a `Set` or `List`.
    pub fn as_elements(&self) -> Option<&[Value]> {
        match self {
            Value::Set(v) | Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Every OID directly referenced by this value, in order of
    /// appearance. Drives reverse-reference maintenance for nested
    /// indexes and composite-object bookkeeping.
    pub fn collect_refs(&self, out: &mut Vec<Oid>) {
        match self {
            Value::Ref(oid) => out.push(*oid),
            Value::Set(items) | Value::List(items) => {
                for item in items {
                    item.collect_refs(out);
                }
            }
            _ => {}
        }
    }

    /// A short tag naming the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Ref(_) => "ref",
            Value::Set(_) => "set",
            Value::List(_) => "list",
            Value::Blob(_) => "blob",
        }
    }

    /// Total order over all values, used for index keys, `order by`, and
    /// set normalization. Cross-variant comparisons order by variant rank
    /// (`Null < numbers < Bool < Str < Ref < Set < List < Blob`); `Int`
    /// and `Float` compare numerically so that `1` and `1.0` collate
    /// together; NaN sorts above every other float (total order).
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Int(_) | Float(_) => 1,
                Bool(_) => 2,
                Str(_) => 3,
                Ref(_) => 4,
                Set(_) => 5,
                List(_) => 6,
                Blob(_) => 7,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Ref(a), Ref(b)) => a.cmp(b),
            (Set(a), Set(b)) | (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.cmp_total(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Blob(a), Blob(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Structural equality under [`Value::cmp_total`] (so `Int(1)` equals
    /// `Float(1.0)` for predicate purposes).
    pub fn eq_total(&self, other: &Value) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Ref(oid) => write!(f, "@{oid}"),
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}}")
            }
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Blob(bytes) => write!(f, "<blob {} bytes>", bytes.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Oid> for Value {
    fn from(v: Oid) -> Self {
        Value::Ref(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::ClassId;

    #[test]
    fn set_constructor_normalizes() {
        let s1 = Value::set(vec![Value::Int(2), Value::Int(1), Value::Int(2)]);
        let s2 = Value::set(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn numeric_cross_variant_comparison() {
        assert!(Value::Int(1).eq_total(&Value::Float(1.0)));
        assert_eq!(Value::Int(1).cmp_total(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Float(2.5).cmp_total(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn nan_has_a_defined_order() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp_total(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1e300).cmp_total(&nan), Ordering::Less);
    }

    #[test]
    fn variant_rank_order() {
        let vals = [
            Value::Null,
            Value::Int(0),
            Value::Bool(false),
            Value::str("a"),
            Value::Ref(Oid::new(ClassId(0), 1)),
            Value::Set(vec![]),
            Value::List(vec![]),
            Value::Blob(vec![]),
        ];
        for w in vals.windows(2) {
            assert_eq!(w[0].cmp_total(&w[1]), Ordering::Less, "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn collect_refs_walks_nested_collections() {
        let a = Oid::new(ClassId(1), 1);
        let b = Oid::new(ClassId(1), 2);
        let v = Value::List(vec![
            Value::Ref(a),
            Value::Set(vec![Value::Ref(b), Value::Int(3)]),
            Value::str("x"),
        ]);
        let mut refs = Vec::new();
        v.collect_refs(&mut refs);
        assert_eq!(refs, vec![a, b]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::set(vec![Value::Int(2), Value::Int(1)]).to_string(), "{1, 2}");
        assert_eq!(Value::List(vec![Value::Bool(true)]).to_string(), "[true]");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::str("s").as_str(), Some("s"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        let oid = Oid::new(ClassId(2), 9);
        assert_eq!(Value::Ref(oid).as_ref_oid(), Some(oid));
        assert_eq!(Value::str("s").as_int(), None);
    }
}
