//! Foundational types for the orion object-oriented database system.
//!
//! This crate defines the vocabulary shared by every other subsystem:
//!
//! * [`Oid`] — class-tagged logical object identifiers (the paper's
//!   "unique identifier" associated with every object, §3.1 concept 1),
//! * [`Value`] — the universe of attribute values, including references,
//!   sets, lists, and long unstructured blobs (§2.2's "images, audio, and
//!   textual documents"),
//! * [`Domain`] — attribute domains, which may be primitive classes or
//!   arbitrary user classes (§3.1 concept 4),
//! * [`DbError`] / [`DbResult`] — the error type used across the system,
//! * [`codec`] — the binary on-page encoding of values and objects,
//! * [`wire`] — wire-codec primitives on top of [`codec`]: prefixed
//!   strings and the lossless [`DbError`] encoding the network layer
//!   (`orion-net`) ships between client and server.
//!
//! Nothing in this crate depends on storage, schema, or query processing;
//! it is the bottom of the dependency stack.

pub mod codec;
pub mod domain;
pub mod error;
pub mod oid;
pub mod value;
pub mod wire;

pub use domain::{Domain, PrimitiveType};
pub use error::{DbError, DbResult};
pub use oid::{ClassId, Oid, OidAllocator};
pub use value::Value;
