//! Binary on-page encoding of values and object records.
//!
//! Objects are stored in heap-file pages as self-describing records:
//! a header carrying the OID and the schema version the object was last
//! written under (lazy schema evolution reads this to decide whether the
//! record needs adaptation), followed by `(attribute id, value)` pairs.
//! The encoding is deliberately simple, little-endian, and versionless —
//! durability compatibility across releases is a non-goal for a research
//! system, crash consistency is (the WAL stores these same bytes).

use crate::error::{DbError, DbResult};
use crate::oid::Oid;
use crate::value::Value;
use bytes::{Buf, BufMut};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_REF: u8 = 5;
const TAG_SET: u8 = 6;
const TAG_LIST: u8 = 7;
const TAG_BLOB: u8 = 8;

/// Append the encoding of `value` to `out`.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.put_u8(TAG_NULL),
        Value::Int(i) => {
            out.put_u8(TAG_INT);
            out.put_i64_le(*i);
        }
        Value::Float(x) => {
            out.put_u8(TAG_FLOAT);
            out.put_f64_le(*x);
        }
        Value::Bool(b) => {
            out.put_u8(TAG_BOOL);
            out.put_u8(*b as u8);
        }
        Value::Str(s) => {
            out.put_u8(TAG_STR);
            out.put_u32_le(s.len() as u32);
            out.put_slice(s.as_bytes());
        }
        Value::Ref(oid) => {
            out.put_u8(TAG_REF);
            out.put_u64_le(oid.to_raw());
        }
        Value::Set(items) => {
            out.put_u8(TAG_SET);
            out.put_u32_le(items.len() as u32);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::List(items) => {
            out.put_u8(TAG_LIST);
            out.put_u32_le(items.len() as u32);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Blob(bytes) => {
            out.put_u8(TAG_BLOB);
            out.put_u32_le(bytes.len() as u32);
            out.put_slice(bytes);
        }
    }
}

fn need(buf: &&[u8], n: usize) -> DbResult<()> {
    if buf.remaining() < n {
        Err(DbError::Storage(format!(
            "truncated value encoding: need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// Decode one value from the front of `buf`, advancing it.
pub fn decode_value(buf: &mut &[u8]) -> DbResult<Value> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        TAG_FLOAT => {
            need(buf, 8)?;
            Ok(Value::Float(buf.get_f64_le()))
        }
        TAG_BOOL => {
            need(buf, 1)?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        TAG_STR => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let bytes = buf[..len].to_vec();
            buf.advance(len);
            String::from_utf8(bytes)
                .map(Value::Str)
                .map_err(|_| DbError::Storage("invalid UTF-8 in string value".into()))
        }
        TAG_REF => {
            need(buf, 8)?;
            Ok(Value::Ref(Oid::from_raw(buf.get_u64_le())))
        }
        TAG_SET | TAG_LIST => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            let mut items = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                items.push(decode_value(buf)?);
            }
            Ok(if tag == TAG_SET { Value::Set(items) } else { Value::List(items) })
        }
        TAG_BLOB => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let bytes = buf[..len].to_vec();
            buf.advance(len);
            Ok(Value::Blob(bytes))
        }
        other => Err(DbError::Storage(format!("unknown value tag {other}"))),
    }
}

/// A decoded object record: identity, schema version, and attribute
/// values keyed by catalog-assigned attribute id.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectRecord {
    /// The object's identity.
    pub oid: Oid,
    /// Schema version of the object's class at last write; lazy schema
    /// evolution compares this against the catalog's current version.
    pub schema_version: u32,
    /// `(attribute id, value)` pairs, sorted by attribute id.
    pub attrs: Vec<(u32, Value)>,
}

impl ObjectRecord {
    /// Build a record, normalizing attribute order.
    pub fn new(oid: Oid, schema_version: u32, mut attrs: Vec<(u32, Value)>) -> Self {
        attrs.sort_by_key(|(id, _)| *id);
        ObjectRecord { oid, schema_version, attrs }
    }

    /// Look up one attribute's value by id.
    pub fn get(&self, attr_id: u32) -> Option<&Value> {
        self.attrs
            .binary_search_by_key(&attr_id, |(id, _)| *id)
            .ok()
            .map(|i| &self.attrs[i].1)
    }

    /// Set (or insert) one attribute's value.
    pub fn set(&mut self, attr_id: u32, value: Value) {
        match self.attrs.binary_search_by_key(&attr_id, |(id, _)| *id) {
            Ok(i) => self.attrs[i].1 = value,
            Err(i) => self.attrs.insert(i, (attr_id, value)),
        }
    }

    /// Remove one attribute (used by drop-attribute schema evolution).
    pub fn remove(&mut self, attr_id: u32) -> Option<Value> {
        match self.attrs.binary_search_by_key(&attr_id, |(id, _)| *id) {
            Ok(i) => Some(self.attrs.remove(i).1),
            Err(_) => None,
        }
    }

    /// Serialize to the on-page byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.attrs.len() * 12);
        out.put_u64_le(self.oid.to_raw());
        out.put_u32_le(self.schema_version);
        out.put_u16_le(self.attrs.len() as u16);
        for (attr_id, value) in &self.attrs {
            out.put_u32_le(*attr_id);
            encode_value(value, &mut out);
        }
        out
    }

    /// Deserialize from the on-page byte form.
    pub fn decode(mut buf: &[u8]) -> DbResult<ObjectRecord> {
        let buf = &mut buf;
        need(buf, 14)?;
        let oid = Oid::from_raw(buf.get_u64_le());
        let schema_version = buf.get_u32_le();
        let count = buf.get_u16_le() as usize;
        let mut attrs = Vec::with_capacity(count);
        for _ in 0..count {
            need(buf, 4)?;
            let attr_id = buf.get_u32_le();
            attrs.push((attr_id, decode_value(buf)?));
        }
        Ok(ObjectRecord { oid, schema_version, attrs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::ClassId;

    fn roundtrip(v: &Value) -> Value {
        let mut bytes = Vec::new();
        encode_value(v, &mut bytes);
        let mut slice = bytes.as_slice();
        let decoded = decode_value(&mut slice).expect("decode");
        assert!(slice.is_empty(), "decoder must consume exactly the encoding");
        decoded
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Value::Null,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.5),
            Value::Bool(true),
            Value::str("hello κόσμε"),
            Value::Ref(Oid::new(ClassId(12), 99)),
            Value::Blob(vec![0, 1, 2, 255]),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn nested_collection_roundtrips() {
        let v = Value::List(vec![
            Value::set(vec![Value::Int(1), Value::Int(2)]),
            Value::List(vec![Value::str("a"), Value::Null]),
            Value::Ref(Oid::new(ClassId(1), 7)),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut bytes = Vec::new();
        encode_value(&Value::str("hello"), &mut bytes);
        for cut in 0..bytes.len() {
            let mut slice = &bytes[..cut];
            assert!(decode_value(&mut slice).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let mut slice: &[u8] = &[99u8];
        assert!(decode_value(&mut slice).is_err());
    }

    #[test]
    fn record_roundtrip_and_accessors() {
        let oid = Oid::new(ClassId(3), 10);
        let mut rec = ObjectRecord::new(
            oid,
            2,
            vec![(5, Value::Int(1)), (1, Value::str("x")), (9, Value::Null)],
        );
        assert_eq!(rec.attrs[0].0, 1, "attrs are sorted by id");
        assert_eq!(rec.get(5), Some(&Value::Int(1)));
        assert_eq!(rec.get(6), None);
        rec.set(6, Value::Bool(true));
        rec.set(5, Value::Int(2));
        assert_eq!(rec.get(5), Some(&Value::Int(2)));
        assert_eq!(rec.remove(1), Some(Value::str("x")));
        assert_eq!(rec.remove(1), None);

        let decoded = ObjectRecord::decode(&rec.encode()).expect("decode");
        assert_eq!(decoded, rec);
        assert_eq!(decoded.oid, oid);
        assert_eq!(decoded.schema_version, 2);
    }

    #[test]
    fn record_decode_rejects_garbage() {
        assert!(ObjectRecord::decode(&[1, 2, 3]).is_err());
    }
}
