//! Wire codec primitives shared by the network layer (`orion-net`).
//!
//! The on-page value codec (`crate::codec`) already defines how a
//! [`Value`] becomes bytes; this module adds the pieces a wire protocol
//! needs on top: length-prefixed strings, optional strings, and — the
//! load-bearing part — a **lossless** encoding of [`DbError`], so a
//! failure raised deep inside the server surfaces on the client as the
//! *same* variant (a remote `LockTimeout` must still match
//! `DbError::LockTimeout { .. }` in the caller's code, not collapse
//! into a stringly-typed catch-all).
//!
//! Everything here is plain bytes in/bytes out: socket framing (length
//! prefixes per message, timeouts, backpressure) lives in `orion-net`.

use crate::error::{DbError, DbResult};
use crate::oid::{ClassId, Oid};
use crate::value::Value;
use bytes::{Buf, BufMut};

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

/// Decode a length-prefixed UTF-8 string from the front of `buf`.
pub fn get_str(buf: &mut &[u8]) -> DbResult<String> {
    need(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len)?;
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(bytes).map_err(|_| DbError::Protocol("invalid UTF-8 in string".into()))
}

/// Append an optional length-prefixed string (presence byte first).
pub fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.put_u8(0),
        Some(s) => {
            out.put_u8(1);
            put_str(out, s);
        }
    }
}

/// Decode an optional length-prefixed string.
pub fn get_opt_str(buf: &mut &[u8]) -> DbResult<Option<String>> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(get_str(buf)?)),
        other => Err(DbError::Protocol(format!("bad option byte {other}"))),
    }
}

/// Decode a `u64` (little-endian).
pub fn get_u64(buf: &mut &[u8]) -> DbResult<u64> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

/// Decode a `u32` (little-endian).
pub fn get_u32(buf: &mut &[u8]) -> DbResult<u32> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

/// Decode one byte.
pub fn get_u8(buf: &mut &[u8]) -> DbResult<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

/// Require `n` more bytes or fail with a protocol error.
pub fn need(buf: &&[u8], n: usize) -> DbResult<()> {
    if buf.remaining() < n {
        Err(DbError::Protocol(format!(
            "truncated message: need {n} more byte(s), have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// DbError <-> bytes
// ---------------------------------------------------------------------

// One tag per variant. Append-only: reusing a retired tag would let an
// old peer misdecode a new error.
const ERR_UNKNOWN_CLASS: u8 = 0;
const ERR_UNKNOWN_CLASS_ID: u8 = 1;
const ERR_UNKNOWN_ATTRIBUTE: u8 = 2;
const ERR_UNKNOWN_METHOD: u8 = 3;
const ERR_NO_SUCH_OBJECT: u8 = 4;
const ERR_DOMAIN_VIOLATION: u8 = 5;
const ERR_SCHEMA_INVARIANT: u8 = 6;
const ERR_ALREADY_EXISTS: u8 = 7;
const ERR_DEADLOCK: u8 = 8;
const ERR_LOCK_TIMEOUT: u8 = 9;
const ERR_INVALID_TXN_STATE: u8 = 10;
const ERR_STORAGE: u8 = 11;
const ERR_WAL: u8 = 12;
const ERR_PARSE: u8 = 13;
const ERR_QUERY: u8 = 14;
const ERR_AUTHORIZATION_DENIED: u8 = 15;
const ERR_VERSION: u8 = 16;
const ERR_COMPOSITE: u8 = 17;
const ERR_RULE: u8 = 18;
const ERR_FOREIGN: u8 = 19;
const ERR_CONFIG: u8 = 20;
const ERR_NET: u8 = 21;
const ERR_SERVER_BUSY: u8 = 22;
const ERR_PROTOCOL: u8 = 23;
const ERR_INTERNAL: u8 = 24;
const ERR_CORRUPTION: u8 = 25;
const ERR_SHARD: u8 = 26;
const ERR_TXN_IN_DOUBT: u8 = 27;

/// Append the lossless encoding of `err` to `out`.
pub fn encode_error(err: &DbError, out: &mut Vec<u8>) {
    match err {
        DbError::UnknownClass(name) => {
            out.put_u8(ERR_UNKNOWN_CLASS);
            put_str(out, name);
        }
        DbError::UnknownClassId(id) => {
            out.put_u8(ERR_UNKNOWN_CLASS_ID);
            out.put_u16_le(id.raw());
        }
        DbError::UnknownAttribute { class, attribute } => {
            out.put_u8(ERR_UNKNOWN_ATTRIBUTE);
            put_str(out, class);
            put_str(out, attribute);
        }
        DbError::UnknownMethod { class, selector } => {
            out.put_u8(ERR_UNKNOWN_METHOD);
            put_str(out, class);
            put_str(out, selector);
        }
        DbError::NoSuchObject(oid) => {
            out.put_u8(ERR_NO_SUCH_OBJECT);
            out.put_u64_le(oid.to_raw());
        }
        DbError::DomainViolation { class, attribute, expected, got } => {
            out.put_u8(ERR_DOMAIN_VIOLATION);
            put_str(out, class);
            put_str(out, attribute);
            put_str(out, expected);
            put_str(out, got);
        }
        DbError::SchemaInvariant(msg) => {
            out.put_u8(ERR_SCHEMA_INVARIANT);
            put_str(out, msg);
        }
        DbError::AlreadyExists(what) => {
            out.put_u8(ERR_ALREADY_EXISTS);
            put_str(out, what);
        }
        DbError::Deadlock { victim } => {
            out.put_u8(ERR_DEADLOCK);
            out.put_u64_le(*victim);
        }
        DbError::LockTimeout { txn, what } => {
            out.put_u8(ERR_LOCK_TIMEOUT);
            out.put_u64_le(*txn);
            put_str(out, what);
        }
        DbError::InvalidTxnState(msg) => {
            out.put_u8(ERR_INVALID_TXN_STATE);
            put_str(out, msg);
        }
        DbError::Storage(msg) => {
            out.put_u8(ERR_STORAGE);
            put_str(out, msg);
        }
        DbError::Wal(msg) => {
            out.put_u8(ERR_WAL);
            put_str(out, msg);
        }
        DbError::Parse { position, message } => {
            out.put_u8(ERR_PARSE);
            out.put_u64_le(*position as u64);
            put_str(out, message);
        }
        DbError::Query(msg) => {
            out.put_u8(ERR_QUERY);
            put_str(out, msg);
        }
        DbError::AuthorizationDenied { subject, action, target } => {
            out.put_u8(ERR_AUTHORIZATION_DENIED);
            put_str(out, subject);
            put_str(out, action);
            put_str(out, target);
        }
        DbError::Version(msg) => {
            out.put_u8(ERR_VERSION);
            put_str(out, msg);
        }
        DbError::Composite(msg) => {
            out.put_u8(ERR_COMPOSITE);
            put_str(out, msg);
        }
        DbError::Rule(msg) => {
            out.put_u8(ERR_RULE);
            put_str(out, msg);
        }
        DbError::Foreign(msg) => {
            out.put_u8(ERR_FOREIGN);
            put_str(out, msg);
        }
        DbError::Config(msg) => {
            out.put_u8(ERR_CONFIG);
            put_str(out, msg);
        }
        DbError::Net(msg) => {
            out.put_u8(ERR_NET);
            put_str(out, msg);
        }
        DbError::ServerBusy => out.put_u8(ERR_SERVER_BUSY),
        DbError::Protocol(msg) => {
            out.put_u8(ERR_PROTOCOL);
            put_str(out, msg);
        }
        DbError::Internal(msg) => {
            out.put_u8(ERR_INTERNAL);
            put_str(out, msg);
        }
        DbError::Corruption(msg) => {
            out.put_u8(ERR_CORRUPTION);
            put_str(out, msg);
        }
        DbError::Shard(msg) => {
            out.put_u8(ERR_SHARD);
            put_str(out, msg);
        }
        DbError::TxnInDoubt { txn } => {
            out.put_u8(ERR_TXN_IN_DOUBT);
            out.put_u64_le(*txn);
        }
    }
}

/// Decode one [`DbError`] from the front of `buf`, advancing it.
pub fn decode_error(buf: &mut &[u8]) -> DbResult<DbError> {
    let tag = get_u8(buf)?;
    Ok(match tag {
        ERR_UNKNOWN_CLASS => DbError::UnknownClass(get_str(buf)?),
        ERR_UNKNOWN_CLASS_ID => {
            need(buf, 2)?;
            DbError::UnknownClassId(ClassId(buf.get_u16_le()))
        }
        ERR_UNKNOWN_ATTRIBUTE => {
            DbError::UnknownAttribute { class: get_str(buf)?, attribute: get_str(buf)? }
        }
        ERR_UNKNOWN_METHOD => {
            DbError::UnknownMethod { class: get_str(buf)?, selector: get_str(buf)? }
        }
        ERR_NO_SUCH_OBJECT => DbError::NoSuchObject(Oid::from_raw(get_u64(buf)?)),
        ERR_DOMAIN_VIOLATION => DbError::DomainViolation {
            class: get_str(buf)?,
            attribute: get_str(buf)?,
            expected: get_str(buf)?,
            got: get_str(buf)?,
        },
        ERR_SCHEMA_INVARIANT => DbError::SchemaInvariant(get_str(buf)?),
        ERR_ALREADY_EXISTS => DbError::AlreadyExists(get_str(buf)?),
        ERR_DEADLOCK => DbError::Deadlock { victim: get_u64(buf)? },
        ERR_LOCK_TIMEOUT => DbError::LockTimeout { txn: get_u64(buf)?, what: get_str(buf)? },
        ERR_INVALID_TXN_STATE => DbError::InvalidTxnState(get_str(buf)?),
        ERR_STORAGE => DbError::Storage(get_str(buf)?),
        ERR_WAL => DbError::Wal(get_str(buf)?),
        ERR_PARSE => DbError::Parse { position: get_u64(buf)? as usize, message: get_str(buf)? },
        ERR_QUERY => DbError::Query(get_str(buf)?),
        ERR_AUTHORIZATION_DENIED => DbError::AuthorizationDenied {
            subject: get_str(buf)?,
            action: get_str(buf)?,
            target: get_str(buf)?,
        },
        ERR_VERSION => DbError::Version(get_str(buf)?),
        ERR_COMPOSITE => DbError::Composite(get_str(buf)?),
        ERR_RULE => DbError::Rule(get_str(buf)?),
        ERR_FOREIGN => DbError::Foreign(get_str(buf)?),
        ERR_CONFIG => DbError::Config(get_str(buf)?),
        ERR_NET => DbError::Net(get_str(buf)?),
        ERR_SERVER_BUSY => DbError::ServerBusy,
        ERR_PROTOCOL => DbError::Protocol(get_str(buf)?),
        ERR_INTERNAL => DbError::Internal(get_str(buf)?),
        ERR_CORRUPTION => DbError::Corruption(get_str(buf)?),
        ERR_SHARD => DbError::Shard(get_str(buf)?),
        ERR_TXN_IN_DOUBT => DbError::TxnInDoubt { txn: get_u64(buf)? },
        other => return Err(DbError::Protocol(format!("unknown error tag {other}"))),
    })
}

/// Append an optional value (presence byte + `crate::codec` encoding).
pub fn put_opt_value(out: &mut Vec<u8>, v: Option<&Value>) {
    match v {
        None => out.put_u8(0),
        Some(v) => {
            out.put_u8(1);
            crate::codec::encode_value(v, out);
        }
    }
}

/// Decode an optional value.
pub fn get_opt_value(buf: &mut &[u8]) -> DbResult<Option<Value>> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(crate::codec::decode_value(buf)?)),
        other => Err(DbError::Protocol(format!("bad option byte {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: &DbError) -> DbError {
        let mut bytes = Vec::new();
        encode_error(e, &mut bytes);
        let mut slice = bytes.as_slice();
        let decoded = decode_error(&mut slice).expect("decode");
        assert!(slice.is_empty(), "decoder must consume exactly the encoding of {e:?}");
        decoded
    }

    /// One exemplar per variant. The match below is exhaustive *by
    /// construction*: adding a `DbError` variant without extending this
    /// list breaks the `all_variants_covered` assertion at compile/run
    /// time, so the wire codec can never silently lag the enum.
    fn exemplars() -> Vec<DbError> {
        vec![
            DbError::UnknownClass("Vehicle".into()),
            DbError::UnknownClassId(ClassId(7)),
            DbError::UnknownAttribute { class: "Vehicle".into(), attribute: "wings".into() },
            DbError::UnknownMethod { class: "Vehicle".into(), selector: "fly".into() },
            DbError::NoSuchObject(Oid::new(ClassId(3), 99)),
            DbError::DomainViolation {
                class: "Vehicle".into(),
                attribute: "weight".into(),
                expected: "Int".into(),
                got: "Str".into(),
            },
            DbError::SchemaInvariant("cycle".into()),
            DbError::AlreadyExists("class `X`".into()),
            DbError::Deadlock { victim: 42 },
            DbError::LockTimeout { txn: 17, what: "object 3.5".into() },
            DbError::InvalidTxnState("already committed".into()),
            DbError::Storage("page full".into()),
            DbError::Wal("torn record".into()),
            DbError::Parse { position: 12, message: "expected `from`".into() },
            DbError::Query("no such view".into()),
            DbError::AuthorizationDenied {
                subject: "kim".into(),
                action: "read".into(),
                target: "class Vehicle".into(),
            },
            DbError::Version("immutable".into()),
            DbError::Composite("two parents".into()),
            DbError::Rule("unbound head var".into()),
            DbError::Foreign("adapter down".into()),
            DbError::Config("buffer_pages must be at least 1".into()),
            DbError::Net("connection reset".into()),
            DbError::ServerBusy,
            DbError::Protocol("unknown tag 99".into()),
            DbError::Internal("bug".into()),
            DbError::Corruption("checksum mismatch reading page 3".into()),
            DbError::Shard("no shard owns class `Vehicle`".into()),
            DbError::TxnInDoubt { txn: 88 },
        ]
    }

    #[test]
    fn every_variant_roundtrips_losslessly() {
        for e in exemplars() {
            assert_eq!(roundtrip(&e), e);
        }
    }

    #[test]
    fn all_variants_covered() {
        // Exhaustiveness guard: map each exemplar to its discriminant
        // name via an exhaustive match — a new variant fails to compile
        // here until it gets an exemplar and codec arms.
        let mut seen = std::collections::BTreeSet::new();
        for e in exemplars() {
            let name = match e {
                DbError::UnknownClass(_) => "UnknownClass",
                DbError::UnknownClassId(_) => "UnknownClassId",
                DbError::UnknownAttribute { .. } => "UnknownAttribute",
                DbError::UnknownMethod { .. } => "UnknownMethod",
                DbError::NoSuchObject(_) => "NoSuchObject",
                DbError::DomainViolation { .. } => "DomainViolation",
                DbError::SchemaInvariant(_) => "SchemaInvariant",
                DbError::AlreadyExists(_) => "AlreadyExists",
                DbError::Deadlock { .. } => "Deadlock",
                DbError::LockTimeout { .. } => "LockTimeout",
                DbError::InvalidTxnState(_) => "InvalidTxnState",
                DbError::Storage(_) => "Storage",
                DbError::Wal(_) => "Wal",
                DbError::Parse { .. } => "Parse",
                DbError::Query(_) => "Query",
                DbError::AuthorizationDenied { .. } => "AuthorizationDenied",
                DbError::Version(_) => "Version",
                DbError::Composite(_) => "Composite",
                DbError::Rule(_) => "Rule",
                DbError::Foreign(_) => "Foreign",
                DbError::Config(_) => "Config",
                DbError::Net(_) => "Net",
                DbError::ServerBusy => "ServerBusy",
                DbError::Protocol(_) => "Protocol",
                DbError::Internal(_) => "Internal",
                DbError::Corruption(_) => "Corruption",
                DbError::Shard(_) => "Shard",
                DbError::TxnInDoubt { .. } => "TxnInDoubt",
            };
            assert!(seen.insert(name), "duplicate exemplar for {name}");
        }
        assert_eq!(seen.len(), 28, "one exemplar per DbError variant");
    }

    #[test]
    fn strings_and_options_roundtrip() {
        let mut out = Vec::new();
        put_str(&mut out, "hello κόσμε");
        put_opt_str(&mut out, None);
        put_opt_str(&mut out, Some("kim"));
        put_opt_value(&mut out, Some(&Value::Int(9)));
        put_opt_value(&mut out, None);
        let mut buf = out.as_slice();
        assert_eq!(get_str(&mut buf).unwrap(), "hello κόσμε");
        assert_eq!(get_opt_str(&mut buf).unwrap(), None);
        assert_eq!(get_opt_str(&mut buf).unwrap(), Some("kim".into()));
        assert_eq!(get_opt_value(&mut buf).unwrap(), Some(Value::Int(9)));
        assert_eq!(get_opt_value(&mut buf).unwrap(), None);
        assert!(buf.is_empty());
    }

    #[test]
    fn truncated_error_is_a_protocol_error() {
        let mut bytes = Vec::new();
        encode_error(&DbError::LockTimeout { txn: 3, what: "object".into() }, &mut bytes);
        for cut in 0..bytes.len() {
            let mut slice = &bytes[..cut];
            assert!(decode_error(&mut slice).is_err(), "cut at {cut} must fail");
        }
    }
}
