//! Logical object identifiers.
//!
//! Every real-world entity is "uniformly modeled as an object, and is
//! associated with a unique identifier" (§3.1, concept 1). Like ORION,
//! orion uses *class-tagged* logical OIDs: the identifier embeds the
//! identifier of the class the object is an instance of, so that method
//! dispatch and hierarchy-scoped queries can classify an object without
//! fetching it. The OID is logical — it says nothing about where the
//! object is stored; the object directory maps OIDs to record ids.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a class in the schema catalog.
///
/// Class ids are small dense integers handed out by the catalog; they are
/// embedded in the top 16 bits of every [`Oid`], which caps a database at
/// 65 535 classes (1990's ORION shipped with far fewer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u16);

impl ClassId {
    /// The class id reserved for "no class"; used by bootstrap code paths.
    pub const INVALID: ClassId = ClassId(u16::MAX);

    /// Raw numeric value.
    #[inline]
    pub fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A logical object identifier: 16-bit class id + 48-bit serial number.
///
/// OIDs are totally ordered (first by class, then by serial), which lets
/// posting lists in indexes stay sorted and mergeable, and lets a
/// class-hierarchy index partition one key's postings by class cheaply.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(u64);

const SERIAL_BITS: u32 = 48;
const SERIAL_MASK: u64 = (1 << SERIAL_BITS) - 1;

impl Oid {
    /// Construct an OID from a class id and serial number.
    ///
    /// # Panics
    /// Panics if `serial` does not fit in 48 bits; the allocator never
    /// produces such serials.
    #[inline]
    pub fn new(class: ClassId, serial: u64) -> Self {
        assert!(serial <= SERIAL_MASK, "oid serial overflow: {serial}");
        Oid(((class.0 as u64) << SERIAL_BITS) | serial)
    }

    /// The class this object is an instance of (§3.1 concept 3: an object
    /// belongs to exactly one class).
    #[inline]
    pub fn class(self) -> ClassId {
        ClassId((self.0 >> SERIAL_BITS) as u16)
    }

    /// The per-class serial number.
    #[inline]
    pub fn serial(self) -> u64 {
        self.0 & SERIAL_MASK
    }

    /// The packed 64-bit representation (used by the on-page codec).
    #[inline]
    pub fn to_raw(self) -> u64 {
        self.0
    }

    /// Rebuild an OID from its packed representation.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        Oid(raw)
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({}:{})", self.class().0, self.serial())
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.class().0, self.serial())
    }
}

/// Thread-safe allocator of per-class serial numbers.
///
/// The allocator is a single monotone counter shared by all classes; this
/// wastes some of the 48-bit serial space in exchange for one atomic and
/// no per-class state. Restart recovery re-seeds it above the highest
/// serial found in the object directory.
#[derive(Debug)]
pub struct OidAllocator {
    next: AtomicU64,
}

impl OidAllocator {
    /// A fresh allocator starting at serial 1 (serial 0 is reserved so a
    /// zeroed page can never alias a live OID).
    pub fn new() -> Self {
        OidAllocator { next: AtomicU64::new(1) }
    }

    /// Allocate the next OID for an instance of `class`.
    pub fn allocate(&self, class: ClassId) -> Oid {
        let serial = self.next.fetch_add(1, Ordering::Relaxed);
        Oid::new(class, serial)
    }

    /// Ensure future serials are strictly greater than `floor`; used when
    /// reopening a database so recovered objects are never shadowed.
    pub fn seed_above(&self, floor: u64) {
        let mut cur = self.next.load(Ordering::Relaxed);
        while cur <= floor {
            match self.next.compare_exchange(cur, floor + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The serial the next allocation would receive (diagnostics only).
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

impl Default for OidAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_roundtrips_class_and_serial() {
        let oid = Oid::new(ClassId(7), 123_456);
        assert_eq!(oid.class(), ClassId(7));
        assert_eq!(oid.serial(), 123_456);
        assert_eq!(Oid::from_raw(oid.to_raw()), oid);
    }

    #[test]
    fn oid_order_is_class_then_serial() {
        let a = Oid::new(ClassId(1), 999);
        let b = Oid::new(ClassId(2), 1);
        assert!(a < b);
        let c = Oid::new(ClassId(2), 2);
        assert!(b < c);
    }

    #[test]
    #[should_panic(expected = "serial overflow")]
    fn oid_serial_overflow_panics() {
        let _ = Oid::new(ClassId(0), 1 << 48);
    }

    #[test]
    fn allocator_is_monotone_and_seedable() {
        let alloc = OidAllocator::new();
        let a = alloc.allocate(ClassId(3));
        let b = alloc.allocate(ClassId(3));
        assert!(b.serial() > a.serial());
        alloc.seed_above(1_000);
        let c = alloc.allocate(ClassId(3));
        assert!(c.serial() > 1_000);
        // Seeding below the current value is a no-op.
        alloc.seed_above(5);
        let d = alloc.allocate(ClassId(3));
        assert!(d.serial() > c.serial());
    }

    #[test]
    fn allocator_is_thread_safe() {
        use std::sync::Arc;
        let alloc = Arc::new(OidAllocator::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let alloc = Arc::clone(&alloc);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| alloc.allocate(ClassId(1)).serial()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "serials must be unique across threads");
    }
}
