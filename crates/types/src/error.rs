//! The error type shared across every orion subsystem.

use crate::oid::{ClassId, Oid};
use std::fmt;

/// Result alias used throughout the system.
pub type DbResult<T> = Result<T, DbError>;

/// Every way an orion operation can fail.
///
/// One flat enum rather than per-crate error types: the subsystems are
/// tightly coupled (a query touches schema, storage, index, and locks in
/// one call chain) and the facade would otherwise spend its time wrapping.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// A named class does not exist.
    UnknownClass(String),
    /// A class id is not in the catalog (dangling id).
    UnknownClassId(ClassId),
    /// A named attribute does not exist on the class.
    UnknownAttribute { class: String, attribute: String },
    /// A method selector could not be resolved anywhere up the hierarchy.
    UnknownMethod { class: String, selector: String },
    /// An object id does not resolve to a stored object.
    NoSuchObject(Oid),
    /// A value did not conform to the attribute's domain.
    DomainViolation { class: String, attribute: String, expected: String, got: String },
    /// A schema change would violate a schema invariant (\[BANE87\]).
    SchemaInvariant(String),
    /// Duplicate definition (class, attribute, method, index, view, ...).
    AlreadyExists(String),
    /// The transaction was chosen as a deadlock victim and must abort.
    Deadlock { victim: u64 },
    /// A lock could not be granted within the configured bound.
    LockTimeout { txn: u64, what: String },
    /// The transaction is not in a state that allows the operation.
    InvalidTxnState(String),
    /// Storage-layer failure (page full beyond repair, bad record id...).
    Storage(String),
    /// Write-ahead log corruption or replay failure.
    Wal(String),
    /// Query text failed to lex/parse.
    Parse { position: usize, message: String },
    /// A query was well-formed but semantically invalid for the schema.
    Query(String),
    /// The subject lacks the required authorization.
    AuthorizationDenied { subject: String, action: String, target: String },
    /// Version-management misuse (e.g. updating a working version).
    Version(String),
    /// Composite-object integrity violation (e.g. a part with two parents).
    Composite(String),
    /// Deductive-rule definition or evaluation failure.
    Rule(String),
    /// Federation / foreign-database adapter failure (§5.2).
    Foreign(String),
    /// A configuration value was rejected at database construction.
    Config(String),
    /// Network transport failure (connection refused, reset, timed out).
    Net(String),
    /// The server's accept queue is full; retry later (backpressure).
    ServerBusy,
    /// The peer violated the wire protocol (bad frame, unknown tag).
    Protocol(String),
    /// Catch-all internal invariant breach; indicates a bug in orion.
    Internal(String),
    /// Detected data corruption: a page or log record failed its
    /// checksum (bit rot, torn write). The damaged data must not be
    /// trusted; recovery decides whether it can be rebuilt.
    Corruption(String),
    /// Shard-routing failure: no shard owns the class or object, the
    /// placement policy and topology disagree, or a shard that must be
    /// reached for a non-retryable step is unreachable.
    Shard(String),
    /// A two-phase-commit participant holds this transaction in the
    /// prepared state and cannot resolve it unilaterally; only the
    /// coordinator's logged decision (or presumed abort) may settle it.
    TxnInDoubt { txn: u64 },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownClass(name) => write!(f, "unknown class `{name}`"),
            DbError::UnknownClassId(id) => write!(f, "unknown class id {id}"),
            DbError::UnknownAttribute { class, attribute } => {
                write!(f, "class `{class}` has no attribute `{attribute}`")
            }
            DbError::UnknownMethod { class, selector } => {
                write!(f, "no method `{selector}` found on `{class}` or its superclasses")
            }
            DbError::NoSuchObject(oid) => write!(f, "no such object {oid}"),
            DbError::DomainViolation { class, attribute, expected, got } => write!(
                f,
                "value of kind `{got}` does not conform to domain `{expected}` \
                 of attribute `{class}.{attribute}`"
            ),
            DbError::SchemaInvariant(msg) => write!(f, "schema invariant violated: {msg}"),
            DbError::AlreadyExists(what) => write!(f, "{what} already exists"),
            DbError::Deadlock { victim } => {
                write!(f, "deadlock detected; transaction {victim} chosen as victim")
            }
            DbError::LockTimeout { txn, what } => {
                write!(f, "transaction {txn} timed out waiting for lock on {what}")
            }
            DbError::InvalidTxnState(msg) => write!(f, "invalid transaction state: {msg}"),
            DbError::Storage(msg) => write!(f, "storage error: {msg}"),
            DbError::Wal(msg) => write!(f, "write-ahead log error: {msg}"),
            DbError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            DbError::Query(msg) => write!(f, "query error: {msg}"),
            DbError::AuthorizationDenied { subject, action, target } => {
                write!(f, "subject `{subject}` is not authorized to {action} {target}")
            }
            DbError::Version(msg) => write!(f, "version error: {msg}"),
            DbError::Composite(msg) => write!(f, "composite object error: {msg}"),
            DbError::Rule(msg) => write!(f, "rule error: {msg}"),
            DbError::Foreign(msg) => write!(f, "foreign database error: {msg}"),
            DbError::Config(msg) => write!(f, "configuration error: {msg}"),
            DbError::Net(msg) => write!(f, "network error: {msg}"),
            DbError::ServerBusy => write!(f, "server busy: accept queue is full, retry later"),
            DbError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            DbError::Internal(msg) => write!(f, "internal error: {msg}"),
            DbError::Corruption(msg) => write!(f, "data corruption detected: {msg}"),
            DbError::Shard(msg) => write!(f, "shard routing error: {msg}"),
            DbError::TxnInDoubt { txn } => {
                write!(f, "transaction {txn} is prepared and in doubt; awaiting coordinator")
            }
        }
    }
}

impl std::error::Error for DbError {}

impl DbError {
    /// Errors that abort the surrounding transaction when they surface
    /// (the caller must not retry the statement inside the same txn).
    pub fn is_txn_fatal(&self) -> bool {
        matches!(
            self,
            DbError::Deadlock { .. }
                | DbError::Wal(_)
                | DbError::Internal(_)
                | DbError::Corruption(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DbError::UnknownAttribute { class: "Vehicle".into(), attribute: "wings".into() };
        assert_eq!(e.to_string(), "class `Vehicle` has no attribute `wings`");
        let e = DbError::Deadlock { victim: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn fatality_classification() {
        assert!(DbError::Deadlock { victim: 1 }.is_txn_fatal());
        assert!(!DbError::UnknownClass("X".into()).is_txn_fatal());
        assert!(DbError::Internal("bug".into()).is_txn_fatal());
        assert!(DbError::Corruption("checksum mismatch".into()).is_txn_fatal());
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(DbError::Query("bad".into()));
        assert!(e.to_string().contains("bad"));
    }
}
