//! Attribute domains.
//!
//! "The domain (type) of an attribute of a class may be any class. The
//! domain class may be a primitive class, such as integer, string, or
//! boolean. It may be a general class with its own set of attributes and
//! methods. The domain of an attribute of a class C may be the class C."
//! (§3.1, concept 4.) Domains are therefore either primitive classes,
//! user classes (by [`ClassId`], permitting self-reference and cycles in
//! the aggregation graph), or set/list constructors over another domain.

use crate::oid::ClassId;
use crate::value::Value;
use std::fmt;

/// The system-defined primitive classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimitiveType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
    /// Long unstructured data.
    Blob,
}

impl PrimitiveType {
    /// Canonical name as used by the schema language.
    pub fn name(self) -> &'static str {
        match self {
            PrimitiveType::Int => "int",
            PrimitiveType::Float => "float",
            PrimitiveType::Bool => "bool",
            PrimitiveType::Str => "string",
            PrimitiveType::Blob => "blob",
        }
    }

    /// Parse a primitive type name.
    pub fn parse(name: &str) -> Option<PrimitiveType> {
        match name {
            "int" | "integer" => Some(PrimitiveType::Int),
            "float" | "real" => Some(PrimitiveType::Float),
            "bool" | "boolean" => Some(PrimitiveType::Bool),
            "string" | "str" => Some(PrimitiveType::Str),
            "blob" => Some(PrimitiveType::Blob),
            _ => None,
        }
    }
}

impl fmt::Display for PrimitiveType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The domain of an attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Domain {
    /// A primitive class.
    Primitive(PrimitiveType),
    /// A user-defined class; values are object references.
    Class(ClassId),
    /// A set of elements of the inner domain (§3.1 concept 2:
    /// "an attribute ... may take on a single value or a set of values").
    SetOf(Box<Domain>),
    /// An ordered list of elements of the inner domain.
    ListOf(Box<Domain>),
    /// Any value at all; used by system attributes and views.
    Any,
}

impl Domain {
    /// Shorthand for a set-of-class domain, the most common set domain.
    pub fn set_of_class(class: ClassId) -> Domain {
        Domain::SetOf(Box::new(Domain::Class(class)))
    }

    /// Does a value conform to this domain, given a subclass test?
    ///
    /// `is_subclass(sub, sup)` must return true iff `sub` equals `sup` or
    /// is a direct or indirect subclass — the schema crate supplies it.
    /// `Null` conforms to every domain (unset attribute). A reference
    /// conforms to a class domain when the referenced object's class is
    /// the domain class *or any of its subclasses*, the paper's
    /// "interpretation of a class as the generalization of all its
    /// subclasses ... extended to the domain of an attribute" (§3.2).
    pub fn admits<F>(&self, value: &Value, is_subclass: &F) -> bool
    where
        F: Fn(ClassId, ClassId) -> bool,
    {
        match (self, value) {
            (_, Value::Null) => true,
            (Domain::Any, _) => true,
            (Domain::Primitive(PrimitiveType::Int), Value::Int(_)) => true,
            (Domain::Primitive(PrimitiveType::Float), Value::Float(_) | Value::Int(_)) => true,
            (Domain::Primitive(PrimitiveType::Bool), Value::Bool(_)) => true,
            (Domain::Primitive(PrimitiveType::Str), Value::Str(_)) => true,
            (Domain::Primitive(PrimitiveType::Blob), Value::Blob(_)) => true,
            (Domain::Class(domain_class), Value::Ref(oid)) => {
                is_subclass(oid.class(), *domain_class)
            }
            (Domain::SetOf(inner), Value::Set(items)) => {
                items.iter().all(|item| inner.admits(item, is_subclass))
            }
            (Domain::ListOf(inner), Value::List(items)) => {
                items.iter().all(|item| inner.admits(item, is_subclass))
            }
            _ => false,
        }
    }

    /// The class referenced at the leaf of this domain, if any; i.e. the
    /// domain class a nested query path steps into. Sets and lists are
    /// transparent (a predicate on a set-valued attribute quantifies over
    /// elements).
    pub fn leaf_class(&self) -> Option<ClassId> {
        match self {
            Domain::Class(c) => Some(*c),
            Domain::SetOf(inner) | Domain::ListOf(inner) => inner.leaf_class(),
            _ => None,
        }
    }

    /// Is this domain (transitively) a reference domain?
    pub fn is_reference(&self) -> bool {
        self.leaf_class().is_some()
    }

    /// Domain specialization test for schema evolution: a subclass may
    /// override an inherited attribute's domain only with the *same*
    /// domain or one whose leaf class is a subclass of the original's
    /// (invariant from \[BANE87\]).
    pub fn specializes<F>(&self, general: &Domain, is_subclass: &F) -> bool
    where
        F: Fn(ClassId, ClassId) -> bool,
    {
        match (self, general) {
            (a, b) if a == b => true,
            (_, Domain::Any) => true,
            (Domain::Class(sub), Domain::Class(sup)) => is_subclass(*sub, *sup),
            (Domain::SetOf(a), Domain::SetOf(b)) | (Domain::ListOf(a), Domain::ListOf(b)) => {
                a.specializes(b, is_subclass)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Primitive(p) => write!(f, "{p}"),
            Domain::Class(c) => write!(f, "{c}"),
            Domain::SetOf(inner) => write!(f, "set<{inner}>"),
            Domain::ListOf(inner) => write!(f, "list<{inner}>"),
            Domain::Any => write!(f, "any"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::Oid;

    fn no_subclassing(a: ClassId, b: ClassId) -> bool {
        a == b
    }

    #[test]
    fn primitive_admission() {
        let is_sub = no_subclassing;
        assert!(Domain::Primitive(PrimitiveType::Int).admits(&Value::Int(1), &is_sub));
        assert!(!Domain::Primitive(PrimitiveType::Int).admits(&Value::str("x"), &is_sub));
        // Int widens into Float domains.
        assert!(Domain::Primitive(PrimitiveType::Float).admits(&Value::Int(1), &is_sub));
        assert!(!Domain::Primitive(PrimitiveType::Bool).admits(&Value::Int(0), &is_sub));
    }

    #[test]
    fn null_conforms_everywhere() {
        let is_sub = no_subclassing;
        assert!(Domain::Primitive(PrimitiveType::Str).admits(&Value::Null, &is_sub));
        assert!(Domain::Class(ClassId(4)).admits(&Value::Null, &is_sub));
    }

    #[test]
    fn class_domain_uses_subclass_test() {
        let vehicle = ClassId(1);
        let truck = ClassId(2);
        let company = ClassId(3);
        let is_sub = |a: ClassId, b: ClassId| a == b || (a == truck && b == vehicle);
        let dom = Domain::Class(vehicle);
        assert!(dom.admits(&Value::Ref(Oid::new(truck, 1)), &is_sub));
        assert!(dom.admits(&Value::Ref(Oid::new(vehicle, 1)), &is_sub));
        assert!(!dom.admits(&Value::Ref(Oid::new(company, 1)), &is_sub));
    }

    #[test]
    fn set_domain_checks_elements() {
        let is_sub = no_subclassing;
        let dom = Domain::SetOf(Box::new(Domain::Primitive(PrimitiveType::Int)));
        assert!(dom.admits(&Value::set(vec![Value::Int(1), Value::Int(2)]), &is_sub));
        assert!(!dom.admits(&Value::set(vec![Value::Int(1), Value::str("x")]), &is_sub));
        assert!(!dom.admits(&Value::Int(1), &is_sub), "scalar is not a set");
    }

    #[test]
    fn leaf_class_pierces_collections() {
        let c = ClassId(9);
        assert_eq!(Domain::set_of_class(c).leaf_class(), Some(c));
        assert_eq!(Domain::Primitive(PrimitiveType::Int).leaf_class(), None);
        assert!(Domain::set_of_class(c).is_reference());
    }

    #[test]
    fn specialization() {
        let vehicle = ClassId(1);
        let truck = ClassId(2);
        let is_sub = |a: ClassId, b: ClassId| a == b || (a == truck && b == vehicle);
        assert!(Domain::Class(truck).specializes(&Domain::Class(vehicle), &is_sub));
        assert!(!Domain::Class(vehicle).specializes(&Domain::Class(truck), &is_sub));
        assert!(Domain::set_of_class(truck).specializes(&Domain::set_of_class(vehicle), &is_sub));
        assert!(Domain::Class(truck).specializes(&Domain::Any, &is_sub));
        assert!(!Domain::Primitive(PrimitiveType::Int)
            .specializes(&Domain::Primitive(PrimitiveType::Float), &is_sub));
    }
}
