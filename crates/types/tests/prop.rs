//! Property-based tests for the value model and codec.

use orion_types::codec::{decode_value, encode_value, ObjectRecord};
use orion_types::{ClassId, Oid, Value};
use proptest::prelude::*;
use std::cmp::Ordering;

/// Strategy producing arbitrary values, nested up to 3 levels deep.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 ]{0,16}".prop_map(Value::Str),
        (any::<u16>(), 0u64..1 << 32).prop_map(|(c, s)| Value::Ref(Oid::new(ClassId(c), s))),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Blob),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::set),
            proptest::collection::vec(inner, 0..6).prop_map(Value::List),
        ]
    })
}

proptest! {
    #[test]
    fn codec_roundtrip(v in arb_value()) {
        let mut bytes = Vec::new();
        encode_value(&v, &mut bytes);
        let mut slice = bytes.as_slice();
        let decoded = decode_value(&mut slice).expect("decode");
        prop_assert!(slice.is_empty());
        // NaN != NaN under PartialEq; compare with the total order instead.
        prop_assert_eq!(decoded.cmp_total(&v), Ordering::Equal);
    }

    #[test]
    fn cmp_total_is_reflexive(v in arb_value()) {
        prop_assert_eq!(v.cmp_total(&v), Ordering::Equal);
    }

    #[test]
    fn cmp_total_is_antisymmetric(a in arb_value(), b in arb_value()) {
        let ab = a.cmp_total(&b);
        let ba = b.cmp_total(&a);
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn cmp_total_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.cmp_total(y));
        // If sorted, pairwise order must hold end-to-end.
        prop_assert_ne!(v[0].cmp_total(&v[2]), Ordering::Greater);
    }

    #[test]
    fn set_constructor_is_idempotent(items in proptest::collection::vec(arb_value(), 0..8)) {
        let once = Value::set(items);
        if let Value::Set(inner) = once.clone() {
            let twice = Value::set(inner);
            prop_assert_eq!(once.cmp_total(&twice), Ordering::Equal);
        } else {
            unreachable!();
        }
    }

    #[test]
    fn record_roundtrip(
        class in any::<u16>(),
        serial in 0u64..1 << 40,
        version in any::<u32>(),
        attrs in proptest::collection::btree_map(any::<u32>(), arb_value(), 0..12),
    ) {
        let rec = ObjectRecord::new(
            Oid::new(ClassId(class), serial),
            version,
            attrs.into_iter().collect(),
        );
        let decoded = ObjectRecord::decode(&rec.encode()).expect("decode");
        prop_assert_eq!(decoded.oid, rec.oid);
        prop_assert_eq!(decoded.schema_version, rec.schema_version);
        prop_assert_eq!(decoded.attrs.len(), rec.attrs.len());
        for ((id_a, val_a), (id_b, val_b)) in decoded.attrs.iter().zip(rec.attrs.iter()) {
            prop_assert_eq!(id_a, id_b);
            prop_assert_eq!(val_a.cmp_total(val_b), Ordering::Equal);
        }
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut slice = bytes.as_slice();
        let _ = decode_value(&mut slice); // must not panic
        let _ = ObjectRecord::decode(&bytes); // must not panic
    }
}
