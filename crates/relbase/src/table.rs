//! Tables, scans, indexes, and joins.

use crate::row::{decode_row, encode_row};
use orion_index::{BTree, KeyVal};
use orion_storage::heap::Rid;
use orion_storage::{StorageEngine, TxnId};
use orion_types::{DbError, DbResult, PrimitiveType, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::Bound;

/// Identifier of a row within a table.
pub type RowId = u64;

/// A column declaration.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name, unique within the table.
    pub name: String,
    /// Column type (relational columns are primitive; references between
    /// tables are foreign-key *values*, resolved by joins — that is the
    /// point of the baseline).
    pub ty: PrimitiveType,
}

impl ColumnDef {
    /// Shorthand constructor.
    pub fn new(name: &str, ty: PrimitiveType) -> Self {
        ColumnDef { name: name.to_owned(), ty }
    }
}

#[derive(Debug)]
struct Table {
    columns: Vec<ColumnDef>,
    rows: HashMap<RowId, Rid>,
    next_row: RowId,
    /// column position → index over its values.
    indexes: HashMap<usize, BTree<KeyVal, Vec<RowId>>>,
}

impl Table {
    fn column_pos(&self, name: &str) -> DbResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| DbError::Query(format!("no column `{name}`")))
    }
}

/// Which join algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// O(n·m) nested loops.
    NestedLoop,
    /// Outer scan + inner index probe (requires an index on the inner
    /// join column).
    IndexNestedLoop,
    /// Build a hash table on the inner side, probe with the outer.
    Hash,
}

/// The relational database: tables over a transactional storage engine.
pub struct RelDb {
    engine: StorageEngine,
    tables: Mutex<HashMap<String, Table>>,
}

impl RelDb {
    /// A fresh database with a buffer pool of `pool_pages` frames.
    pub fn new(pool_pages: usize) -> Self {
        RelDb { engine: StorageEngine::new(pool_pages), tables: Mutex::new(HashMap::new()) }
    }

    /// The underlying storage engine (I/O stats for experiments).
    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// Begin a transaction.
    pub fn begin(&self) -> TxnId {
        self.engine.begin()
    }

    /// Commit a transaction.
    pub fn commit(&self, txn: TxnId) -> DbResult<()> {
        self.engine.commit(txn)
    }

    /// Create a table.
    pub fn create_table(&self, name: &str, columns: Vec<ColumnDef>) -> DbResult<()> {
        let mut tables = self.tables.lock();
        if tables.contains_key(name) {
            return Err(DbError::AlreadyExists(format!("table `{name}`")));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.as_str()) {
                return Err(DbError::Query(format!("duplicate column `{}`", c.name)));
            }
        }
        tables.insert(
            name.to_owned(),
            Table { columns, rows: HashMap::new(), next_row: 1, indexes: HashMap::new() },
        );
        Ok(())
    }

    /// Create a B-tree index on one column, populated from current rows.
    pub fn create_index(&self, table: &str, column: &str) -> DbResult<()> {
        // Collect rows first (can't hold the table lock across reads).
        let rows = self.scan(table)?;
        let mut tables = self.tables.lock();
        let t = tables.get_mut(table).ok_or_else(|| DbError::Query(format!("no table `{table}`")))?;
        let pos = t.column_pos(column)?;
        if t.indexes.contains_key(&pos) {
            return Err(DbError::AlreadyExists(format!("index on `{table}.{column}`")));
        }
        let mut tree: BTree<KeyVal, Vec<RowId>> = BTree::new();
        for (rowid, values) in rows {
            let key = KeyVal(values[pos].clone());
            match tree.get_mut(&key) {
                Some(list) => list.push(rowid),
                None => {
                    tree.insert(key, vec![rowid]);
                }
            }
        }
        t.indexes.insert(pos, tree);
        Ok(())
    }

    fn check_types(t: &Table, values: &[Value]) -> DbResult<()> {
        if values.len() != t.columns.len() {
            return Err(DbError::Query(format!(
                "expected {} values, got {}",
                t.columns.len(),
                values.len()
            )));
        }
        for (c, v) in t.columns.iter().zip(values) {
            let ok = matches!(
                (c.ty, v),
                (_, Value::Null)
                    | (PrimitiveType::Int, Value::Int(_))
                    | (PrimitiveType::Float, Value::Float(_))
                    | (PrimitiveType::Float, Value::Int(_))
                    | (PrimitiveType::Bool, Value::Bool(_))
                    | (PrimitiveType::Str, Value::Str(_))
                    | (PrimitiveType::Blob, Value::Blob(_))
            );
            if !ok {
                return Err(DbError::Query(format!(
                    "value {v} does not fit column `{}` of type {}",
                    c.name, c.ty
                )));
            }
        }
        Ok(())
    }

    /// Insert a row; returns its row id.
    pub fn insert(&self, txn: TxnId, table: &str, values: Vec<Value>) -> DbResult<RowId> {
        let mut tables = self.tables.lock();
        let t = tables.get_mut(table).ok_or_else(|| DbError::Query(format!("no table `{table}`")))?;
        Self::check_types(t, &values)?;
        let rowid = t.next_row;
        t.next_row += 1;
        let rid = self.engine.insert(txn, &encode_row(rowid, &values), None)?;
        t.rows.insert(rowid, rid);
        for (pos, index) in t.indexes.iter_mut() {
            let key = KeyVal(values[*pos].clone());
            match index.get_mut(&key) {
                Some(list) => list.push(rowid),
                None => {
                    index.insert(key, vec![rowid]);
                }
            }
        }
        Ok(rowid)
    }

    /// Fetch one row by id.
    pub fn get(&self, table: &str, rowid: RowId) -> DbResult<Vec<Value>> {
        let rid = {
            let tables = self.tables.lock();
            let t = tables.get(table).ok_or_else(|| DbError::Query(format!("no table `{table}`")))?;
            *t.rows
                .get(&rowid)
                .ok_or_else(|| DbError::Query(format!("no row {rowid} in `{table}`")))?
        };
        let bytes = self.engine.read(rid)?;
        Ok(decode_row(&bytes)?.1)
    }

    /// Update one row in place.
    pub fn update(&self, txn: TxnId, table: &str, rowid: RowId, values: Vec<Value>) -> DbResult<()> {
        let old = self.get(table, rowid)?;
        let mut tables = self.tables.lock();
        let t = tables.get_mut(table).ok_or_else(|| DbError::Query(format!("no table `{table}`")))?;
        Self::check_types(t, &values)?;
        let rid = *t.rows.get(&rowid).expect("checked by get above");
        let new_rid = self.engine.update(txn, rid, &encode_row(rowid, &values))?;
        t.rows.insert(rowid, new_rid);
        for (pos, index) in t.indexes.iter_mut() {
            let old_key = KeyVal(old[*pos].clone());
            if let Some(list) = index.get_mut(&old_key) {
                list.retain(|r| *r != rowid);
                if list.is_empty() {
                    index.remove(&old_key);
                }
            }
            let new_key = KeyVal(values[*pos].clone());
            match index.get_mut(&new_key) {
                Some(list) => list.push(rowid),
                None => {
                    index.insert(new_key, vec![rowid]);
                }
            }
        }
        Ok(())
    }

    /// Delete one row.
    pub fn delete(&self, txn: TxnId, table: &str, rowid: RowId) -> DbResult<()> {
        let old = self.get(table, rowid)?;
        let mut tables = self.tables.lock();
        let t = tables.get_mut(table).ok_or_else(|| DbError::Query(format!("no table `{table}`")))?;
        let rid = t.rows.remove(&rowid).expect("checked by get above");
        self.engine.delete(txn, rid)?;
        for (pos, index) in t.indexes.iter_mut() {
            let key = KeyVal(old[*pos].clone());
            if let Some(list) = index.get_mut(&key) {
                list.retain(|r| *r != rowid);
                if list.is_empty() {
                    index.remove(&key);
                }
            }
        }
        Ok(())
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &str) -> DbResult<usize> {
        let tables = self.tables.lock();
        let t = tables.get(table).ok_or_else(|| DbError::Query(format!("no table `{table}`")))?;
        Ok(t.rows.len())
    }

    /// Full scan: every `(rowid, values)` in the table.
    pub fn scan(&self, table: &str) -> DbResult<Vec<(RowId, Vec<Value>)>> {
        let rids: Vec<(RowId, Rid)> = {
            let tables = self.tables.lock();
            let t =
                tables.get(table).ok_or_else(|| DbError::Query(format!("no table `{table}`")))?;
            let mut v: Vec<(RowId, Rid)> = t.rows.iter().map(|(r, rid)| (*r, *rid)).collect();
            v.sort_unstable_by_key(|(r, _)| *r);
            v
        };
        let mut out = Vec::with_capacity(rids.len());
        for (rowid, rid) in rids {
            let bytes = self.engine.read(rid)?;
            out.push((rowid, decode_row(&bytes)?.1));
        }
        Ok(out)
    }

    /// Selection `column = key`, using an index when one exists.
    pub fn select_eq(&self, table: &str, column: &str, key: &Value) -> DbResult<Vec<(RowId, Vec<Value>)>> {
        let rowids: Option<Vec<RowId>> = {
            let tables = self.tables.lock();
            let t =
                tables.get(table).ok_or_else(|| DbError::Query(format!("no table `{table}`")))?;
            let pos = t.column_pos(column)?;
            t.indexes.get(&pos).map(|idx| idx.get(&KeyVal(key.clone())).cloned().unwrap_or_default())
        };
        match rowids {
            Some(ids) => ids.into_iter().map(|r| Ok((r, self.get(table, r)?))).collect(),
            None => {
                let pos = {
                    let tables = self.tables.lock();
                    tables.get(table).unwrap().column_pos(column)?
                };
                Ok(self
                    .scan(table)?
                    .into_iter()
                    .filter(|(_, values)| values[pos].eq_total(key))
                    .collect())
            }
        }
    }

    /// Range selection `lower <= column <= upper` (index-assisted).
    pub fn select_range(
        &self,
        table: &str,
        column: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> DbResult<Vec<(RowId, Vec<Value>)>> {
        let pos;
        let rowids: Option<Vec<RowId>> = {
            let tables = self.tables.lock();
            let t =
                tables.get(table).ok_or_else(|| DbError::Query(format!("no table `{table}`")))?;
            pos = t.column_pos(column)?;
            t.indexes.get(&pos).map(|idx| {
                let lk;
                let lower = match lower {
                    Bound::Included(v) => {
                        lk = KeyVal(v.clone());
                        Bound::Included(&lk)
                    }
                    Bound::Excluded(v) => {
                        lk = KeyVal(v.clone());
                        Bound::Excluded(&lk)
                    }
                    Bound::Unbounded => Bound::Unbounded,
                };
                let uk;
                let upper = match upper {
                    Bound::Included(v) => {
                        uk = KeyVal(v.clone());
                        Bound::Included(&uk)
                    }
                    Bound::Excluded(v) => {
                        uk = KeyVal(v.clone());
                        Bound::Excluded(&uk)
                    }
                    Bound::Unbounded => Bound::Unbounded,
                };
                idx.range(lower, upper).flat_map(|(_, list)| list.iter().copied()).collect()
            })
        };
        match rowids {
            Some(ids) => ids.into_iter().map(|r| Ok((r, self.get(table, r)?))).collect(),
            None => {
                let in_range = |v: &Value| {
                    let lo_ok = match lower {
                        Bound::Included(l) => v.cmp_total(l) != std::cmp::Ordering::Less,
                        Bound::Excluded(l) => v.cmp_total(l) == std::cmp::Ordering::Greater,
                        Bound::Unbounded => true,
                    };
                    let hi_ok = match upper {
                        Bound::Included(u) => v.cmp_total(u) != std::cmp::Ordering::Greater,
                        Bound::Excluded(u) => v.cmp_total(u) == std::cmp::Ordering::Less,
                        Bound::Unbounded => true,
                    };
                    lo_ok && hi_ok
                };
                Ok(self
                    .scan(table)?
                    .into_iter()
                    .filter(|(_, values)| in_range(&values[pos]))
                    .collect())
            }
        }
    }

    /// Equi-join `left.lcol = right.rcol` with the chosen algorithm.
    /// Returns pairs of full rows.
    pub fn join(
        &self,
        left: &str,
        lcol: &str,
        right: &str,
        rcol: &str,
        algo: JoinAlgo,
    ) -> DbResult<Vec<(Vec<Value>, Vec<Value>)>> {
        let lpos = {
            let tables = self.tables.lock();
            tables
                .get(left)
                .ok_or_else(|| DbError::Query(format!("no table `{left}`")))?
                .column_pos(lcol)?
        };
        let rpos = {
            let tables = self.tables.lock();
            tables
                .get(right)
                .ok_or_else(|| DbError::Query(format!("no table `{right}`")))?
                .column_pos(rcol)?
        };
        let outer = self.scan(left)?;
        let mut out = Vec::new();
        match algo {
            JoinAlgo::NestedLoop => {
                let inner = self.scan(right)?;
                for (_, lrow) in &outer {
                    for (_, rrow) in &inner {
                        if lrow[lpos].eq_total(&rrow[rpos]) && !lrow[lpos].is_null() {
                            out.push((lrow.clone(), rrow.clone()));
                        }
                    }
                }
            }
            JoinAlgo::IndexNestedLoop => {
                for (_, lrow) in &outer {
                    if lrow[lpos].is_null() {
                        continue;
                    }
                    for (_, rrow) in self.select_eq(right, rcol, &lrow[lpos])? {
                        out.push((lrow.clone(), rrow));
                    }
                }
            }
            JoinAlgo::Hash => {
                let inner = self.scan(right)?;
                let mut build: std::collections::BTreeMap<KeyVal, Vec<usize>> =
                    std::collections::BTreeMap::new();
                for (i, (_, rrow)) in inner.iter().enumerate() {
                    if !rrow[rpos].is_null() {
                        build.entry(KeyVal(rrow[rpos].clone())).or_default().push(i);
                    }
                }
                for (_, lrow) in &outer {
                    if lrow[lpos].is_null() {
                        continue;
                    }
                    if let Some(matches) = build.get(&KeyVal(lrow[lpos].clone())) {
                        for &i in matches {
                            out.push((lrow.clone(), inner[i].1.clone()));
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

impl std::fmt::Debug for RelDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelDb").field("tables", &self.tables.lock().len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RelDb {
        let db = RelDb::new(64);
        db.create_table(
            "company",
            vec![
                ColumnDef::new("id", PrimitiveType::Int),
                ColumnDef::new("name", PrimitiveType::Str),
                ColumnDef::new("location", PrimitiveType::Str),
            ],
        )
        .unwrap();
        db.create_table(
            "vehicle",
            vec![
                ColumnDef::new("id", PrimitiveType::Int),
                ColumnDef::new("weight", PrimitiveType::Int),
                ColumnDef::new("company_id", PrimitiveType::Int),
            ],
        )
        .unwrap();
        let txn = db.begin();
        db.insert(
            txn,
            "company",
            vec![Value::Int(1), Value::str("MotorCo"), Value::str("Detroit")],
        )
        .unwrap();
        db.insert(txn, "company", vec![Value::Int(2), Value::str("ChipCo"), Value::str("Austin")])
            .unwrap();
        for i in 1..=8i64 {
            db.insert(
                txn,
                "vehicle",
                vec![Value::Int(i), Value::Int(1000 * i), Value::Int(1 + (i % 2))],
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
        db
    }

    #[test]
    fn create_insert_scan() {
        let db = sample();
        assert_eq!(db.row_count("vehicle").unwrap(), 8);
        let rows = db.scan("vehicle").unwrap();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].1[1], Value::Int(1000));
    }

    #[test]
    fn type_checking() {
        let db = sample();
        let txn = db.begin();
        assert!(db.insert(txn, "company", vec![Value::Int(3)]).is_err(), "arity");
        assert!(db
            .insert(txn, "company", vec![Value::str("x"), Value::Int(1), Value::Int(2)])
            .is_err());
        assert!(db
            .insert(txn, "company", vec![Value::Int(3), Value::Null, Value::Null])
            .is_ok(), "nulls allowed");
        db.commit(txn).unwrap();
    }

    #[test]
    fn select_with_and_without_index() {
        let db = sample();
        let unindexed = db.select_eq("vehicle", "weight", &Value::Int(4000)).unwrap();
        assert_eq!(unindexed.len(), 1);
        db.create_index("vehicle", "weight").unwrap();
        let indexed = db.select_eq("vehicle", "weight", &Value::Int(4000)).unwrap();
        assert_eq!(indexed, unindexed);
        let ranged = db
            .select_range(
                "vehicle",
                "weight",
                Bound::Included(&Value::Int(3000)),
                Bound::Excluded(&Value::Int(6000)),
            )
            .unwrap();
        assert_eq!(ranged.len(), 3);
    }

    #[test]
    fn update_and_delete_maintain_indexes() {
        let db = sample();
        db.create_index("vehicle", "weight").unwrap();
        let txn = db.begin();
        let (rowid, mut row) = db.select_eq("vehicle", "weight", &Value::Int(2000)).unwrap()[0]
            .clone();
        row[1] = Value::Int(2500);
        db.update(txn, "vehicle", rowid, row).unwrap();
        assert!(db.select_eq("vehicle", "weight", &Value::Int(2000)).unwrap().is_empty());
        assert_eq!(db.select_eq("vehicle", "weight", &Value::Int(2500)).unwrap().len(), 1);
        db.delete(txn, "vehicle", rowid).unwrap();
        assert!(db.select_eq("vehicle", "weight", &Value::Int(2500)).unwrap().is_empty());
        assert_eq!(db.row_count("vehicle").unwrap(), 7);
        db.commit(txn).unwrap();
    }

    #[test]
    fn three_join_algorithms_agree() {
        let db = sample();
        db.create_index("company", "id").unwrap();
        let nl = db.join("vehicle", "company_id", "company", "id", JoinAlgo::NestedLoop).unwrap();
        let inl =
            db.join("vehicle", "company_id", "company", "id", JoinAlgo::IndexNestedLoop).unwrap();
        let hash = db.join("vehicle", "company_id", "company", "id", JoinAlgo::Hash).unwrap();
        assert_eq!(nl.len(), 8);
        let norm = |mut v: Vec<(Vec<Value>, Vec<Value>)>| {
            v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            v
        };
        assert_eq!(norm(nl.clone()), norm(inl));
        assert_eq!(norm(nl), norm(hash));
    }

    #[test]
    fn figure1_query_relationally() {
        // The paper's query, as SQL would express it: one join + filters.
        let db = sample();
        db.create_index("company", "id").unwrap();
        let joined =
            db.join("vehicle", "company_id", "company", "id", JoinAlgo::IndexNestedLoop).unwrap();
        let hits: Vec<_> = joined
            .into_iter()
            .filter(|(v, c)| {
                v[1].as_int().unwrap() > 7500 && c[2].as_str() == Some("Detroit")
            })
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0[1], Value::Int(8000));
    }

    #[test]
    fn duplicate_table_and_missing_table_errors() {
        let db = sample();
        assert!(db.create_table("vehicle", vec![]).is_err());
        assert!(db.scan("nope").is_err());
        assert!(db.create_index("vehicle", "nope").is_err());
    }
}
