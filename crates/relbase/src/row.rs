//! Row (tuple) encoding: a row id followed by column values, reusing
//! the orion value codec so rows and objects cost the same bytes.

use orion_types::codec::{decode_value, encode_value};
use orion_types::{DbError, DbResult, Value};

use bytes::{Buf, BufMut};

/// Encode a row as `rowid | column count | values...`.
pub fn encode_row(rowid: u64, values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + values.len() * 9);
    out.put_u64_le(rowid);
    out.put_u16_le(values.len() as u16);
    for v in values {
        encode_value(v, &mut out);
    }
    out
}

/// Decode a row.
pub fn decode_row(mut bytes: &[u8]) -> DbResult<(u64, Vec<Value>)> {
    let buf = &mut bytes;
    if buf.remaining() < 10 {
        return Err(DbError::Storage("truncated row".into()));
    }
    let rowid = buf.get_u64_le();
    let count = buf.get_u16_le() as usize;
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(decode_value(buf)?);
    }
    Ok((rowid, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let values = vec![Value::Int(7), Value::str("x"), Value::Null, Value::Float(1.5)];
        let bytes = encode_row(42, &values);
        let (rowid, decoded) = decode_row(&bytes).unwrap();
        assert_eq!(rowid, 42);
        assert_eq!(decoded, values);
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(decode_row(&[1, 2, 3]).is_err());
    }
}
