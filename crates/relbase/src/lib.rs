//! relbase: a minimal relational engine — the comparison baseline the
//! paper's claims are measured against.
//!
//! §3.3: "If, for example, relational database systems are used to manage
//! objects for such applications, the applications have to use joins to
//! express the traversal from one object to other objects ... simply
//! intolerably expensive." §5.6: an OODB benchmark "should ... be useful
//! in allowing a meaningful comparison with conventional database
//! systems." That comparison needs an actual relational engine executing
//! joins — so here is one, **built on the same storage substrate as
//! orion** (same slotted pages, buffer pool, WAL) so that measured
//! differences come from the execution model, not the I/O stack.
//!
//! Features: tables with typed columns, transactional insert/update/
//! delete, full scans with predicates, B-tree column indexes, and three
//! join algorithms (nested-loop, index nested-loop, hash).

pub mod row;
pub mod table;

pub use row::{decode_row, encode_row};
pub use table::{ColumnDef, JoinAlgo, RelDb, RowId};
