//! Property tests: relbase against an in-memory relational model —
//! selections with/without indexes, and all three join algorithms.

use orion_types::{PrimitiveType, Value};
use proptest::prelude::*;
use relbase::{ColumnDef, JoinAlgo, RelDb};
use std::ops::Bound;

fn setup(rows: &[(i64, i64)], indexed: bool) -> RelDb {
    let db = RelDb::new(64);
    db.create_table(
        "t",
        vec![ColumnDef::new("k", PrimitiveType::Int), ColumnDef::new("v", PrimitiveType::Int)],
    )
    .unwrap();
    let txn = db.begin();
    for (k, v) in rows {
        db.insert(txn, "t", vec![Value::Int(*k), Value::Int(*v)]).unwrap();
    }
    db.commit(txn).unwrap();
    if indexed {
        db.create_index("t", "k").unwrap();
    }
    db
}

proptest! {
    #[test]
    fn select_matches_model(
        rows in proptest::collection::vec((-8i64..8, -8i64..8), 0..40),
        probe in -8i64..8,
        range in (-8i64..8, -8i64..8),
        indexed in any::<bool>(),
    ) {
        let db = setup(&rows, indexed);
        // Point selection.
        let got: Vec<i64> = db
            .select_eq("t", "k", &Value::Int(probe))
            .unwrap()
            .into_iter()
            .map(|(_, r)| r[1].as_int().unwrap())
            .collect();
        let mut want: Vec<i64> =
            rows.iter().filter(|(k, _)| *k == probe).map(|(_, v)| *v).collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got_sorted, want);

        // Range selection.
        let (lo, hi) = (range.0.min(range.1), range.0.max(range.1));
        let got = db
            .select_range("t", "k", Bound::Included(&Value::Int(lo)), Bound::Excluded(&Value::Int(hi)))
            .unwrap();
        let want = rows.iter().filter(|(k, _)| *k >= lo && *k < hi).count();
        prop_assert_eq!(got.len(), want);
    }

    #[test]
    fn joins_agree_with_each_other_and_the_model(
        left in proptest::collection::vec((-5i64..5, -5i64..5), 0..20),
        right in proptest::collection::vec((-5i64..5, -5i64..5), 0..20),
    ) {
        let db = RelDb::new(64);
        for (name, rows) in [("l", &left), ("r", &right)] {
            db.create_table(
                name,
                vec![ColumnDef::new("k", PrimitiveType::Int), ColumnDef::new("v", PrimitiveType::Int)],
            )
            .unwrap();
            let txn = db.begin();
            for (k, v) in rows.iter() {
                db.insert(txn, name, vec![Value::Int(*k), Value::Int(*v)]).unwrap();
            }
            db.commit(txn).unwrap();
        }
        db.create_index("r", "k").unwrap();

        let model: usize = left
            .iter()
            .map(|(lk, _)| right.iter().filter(|(rk, _)| rk == lk).count())
            .sum();
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::IndexNestedLoop, JoinAlgo::Hash] {
            let joined = db.join("l", "k", "r", "k", algo).unwrap();
            prop_assert_eq!(joined.len(), model, "{:?}", algo);
            for (lrow, rrow) in &joined {
                prop_assert_eq!(&lrow[0], &rrow[0]);
            }
        }
    }

    #[test]
    fn updates_and_deletes_keep_indexes_consistent(
        rows in proptest::collection::vec((-6i64..6, -6i64..6), 1..25),
        edits in proptest::collection::vec((any::<usize>(), -6i64..6, any::<bool>()), 0..25),
    ) {
        let db = setup(&rows, true);
        let mut model: Vec<Option<(i64, i64)>> = rows.iter().map(|r| Some(*r)).collect();
        let txn = db.begin();
        for (pick, newk, delete) in edits {
            let live: Vec<usize> =
                (0..model.len()).filter(|i| model[*i].is_some()).collect();
            if live.is_empty() {
                break;
            }
            let idx = live[pick % live.len()];
            let rowid = (idx + 1) as u64;
            if delete {
                db.delete(txn, "t", rowid).unwrap();
                model[idx] = None;
            } else {
                let v = model[idx].unwrap().1;
                db.update(txn, "t", rowid, vec![Value::Int(newk), Value::Int(v)]).unwrap();
                model[idx] = Some((newk, v));
            }
        }
        db.commit(txn).unwrap();
        // Every key probe agrees with the model.
        for k in -6i64..6 {
            let got = db.select_eq("t", "k", &Value::Int(k)).unwrap().len();
            let want = model.iter().flatten().filter(|(mk, _)| *mk == k).count();
            prop_assert_eq!(got, want, "key {}", k);
        }
        prop_assert_eq!(
            db.row_count("t").unwrap(),
            model.iter().flatten().count()
        );
    }
}
