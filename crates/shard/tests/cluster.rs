//! Cluster-level behavior of the partition router: DDL broadcast,
//! OID routing, fan-out merge fidelity against a single node, the
//! 1PC/2PC commit paths, and in-doubt resolution from the decision
//! log.

use std::net::SocketAddr;
use std::sync::Arc;

use orion_core::{AttrSpec, Database, Domain, PrimitiveType, Value};
use orion_net::{Client, Server, ServerConfig};
use orion_shard::{Decision, ExplicitPlacement, RouterConfig, ShardRouter};

struct Cluster {
    servers: Vec<Server>,
    dbs: Vec<Arc<Database>>,
    addrs: Vec<SocketAddr>,
}

fn cluster(n: usize) -> Cluster {
    let mut servers = Vec::new();
    let mut dbs = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..n {
        let db = Arc::new(Database::open_in_memory());
        let server =
            Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
        addrs.push(server.local_addr());
        servers.push(server);
        dbs.push(db);
    }
    Cluster { servers, dbs, addrs }
}

fn router_for(cluster: &Cluster, placement: ExplicitPlacement) -> ShardRouter {
    ShardRouter::connect(
        &cluster.addrs,
        RouterConfig { placement: Box::new(placement), ..RouterConfig::default() },
    )
    .unwrap()
}

fn int_attr(name: &str) -> AttrSpec {
    AttrSpec::new(name, Domain::Primitive(PrimitiveType::Int))
}

#[test]
fn ddl_broadcast_and_oid_routing() {
    let cl = cluster(2);
    let router = router_for(&cl, ExplicitPlacement::new([("A", 0usize), ("B", 1usize)]));

    let a_id = router.create_class("A", &[], vec![int_attr("x")]).unwrap();
    let b_id = router.create_class("B", &[], vec![int_attr("x")]).unwrap();
    assert_ne!(a_id, b_id);
    assert_eq!(router.class_id("A"), Some(a_id));

    let a = router.create_object("A", vec![("x", Value::Int(1))]).unwrap();
    let b = router.create_object("B", vec![("x", Value::Int(2))]).unwrap();

    // Each extent lives wholly on its owning shard.
    let on = |shard: usize, class: &str| {
        let mut c = Client::connect(cl.addrs[shard]).unwrap();
        c.query(&format!("select count(*) from {class} c")).unwrap().rows[0][0].clone()
    };
    assert_eq!(on(0, "A"), Value::Int(1));
    assert_eq!(on(1, "A"), Value::Int(0));
    assert_eq!(on(0, "B"), Value::Int(0));
    assert_eq!(on(1, "B"), Value::Int(1));

    // OID routing: get/set/delete find the right shard without hints.
    assert_eq!(router.get(a, "x").unwrap(), Value::Int(1));
    router.set(b, "x", Value::Int(20)).unwrap();
    assert_eq!(router.get(b, "x").unwrap(), Value::Int(20));
    router.delete(a).unwrap();
    assert_eq!(on(0, "A"), Value::Int(0));

    assert_eq!(router.metrics().passthrough_queries.get(), 0);
    for s in cl.servers {
        s.shutdown();
    }
}

/// The same workload on one node and on a 2-shard cluster must
/// produce byte-identical query results: class ids agree (broadcast
/// DDL), per-class OID serials agree (extents are whole), and the
/// router's merge reproduces the executor's order-by semantics.
#[test]
fn fanout_merge_is_byte_identical_to_single_node() {
    // Single node.
    let single = Database::open_in_memory();
    single.create_class("Part", &[], vec![int_attr("weight")]).unwrap();
    single.create_class("Widget", &["Part"], vec![]).unwrap();
    single.create_class("Gadget", &["Part"], vec![]).unwrap();
    let tx = single.begin();
    for (class, w) in
        [("Widget", 30), ("Gadget", 10), ("Widget", 50), ("Gadget", 40), ("Widget", 20)]
    {
        single.create_object(&tx, class, vec![("weight", Value::Int(w))]).unwrap();
    }
    single.commit(tx).unwrap();

    // Cluster: Widget and Gadget extents on different shards.
    let cl = cluster(2);
    let router = router_for(
        &cl,
        ExplicitPlacement::new([("Part", 0usize), ("Widget", 0usize), ("Gadget", 1usize)]),
    );
    router.create_class("Part", &[], vec![int_attr("weight")]).unwrap();
    router.create_class("Widget", &["Part"], vec![]).unwrap();
    router.create_class("Gadget", &["Part"], vec![]).unwrap();
    for (class, w) in
        [("Widget", 30), ("Gadget", 10), ("Widget", 50), ("Gadget", 40), ("Widget", 20)]
    {
        router.create_object(class, vec![("weight", Value::Int(w))]).unwrap();
    }

    let queries = [
        "select p.weight from Part* p order by p.weight",
        "select p.weight from Part* p order by p.weight desc",
        "select p.weight from Part* p order by p.weight desc limit 3",
        "select count(*) from Part* p",
        "select p.weight from Part* p where p.weight > 25 order by p.weight",
    ];
    for q in queries {
        let tx = single.begin();
        let want = single.query(&tx, q).unwrap();
        single.commit(tx).unwrap();
        // The router's fan-out legs are pipelined (sent before any
        // reply is read); the merged result must still be
        // byte-identical to the single-node answer.
        let got = router.query(q).unwrap();
        assert_eq!(
            orion_net::Response::Query { rows: got.rows.clone(), oids: vec![] }.encode(),
            orion_net::Response::Query { rows: want.rows.clone(), oids: vec![] }.encode(),
            "encoded rows diverged for {q}"
        );
        assert_eq!(got.rows, want.rows, "rows diverged for {q}");
        assert_eq!(got.oids.len(), want.oids.len(), "cardinality diverged for {q}");
    }

    // Object projection with an unprojected order key: the router
    // fetches keys with one extra hop; the *objects* must come back
    // in the same order, observed through their attributes (OID
    // serials are shard-local, so identities differ by design).
    let q = "select p from Part* p order by p.weight desc";
    let tx = single.begin();
    let want = single.query(&tx, q).unwrap();
    let want_weights: Vec<Value> =
        want.oids.iter().map(|&o| single.get(&tx, o, "weight").unwrap()).collect();
    single.commit(tx).unwrap();
    let got = router.query(q).unwrap();
    let got_weights: Vec<Value> =
        got.oids.iter().map(|&o| router.get(o, "weight").unwrap()).collect();
    assert_eq!(got_weights, want_weights);
    assert!(router.metrics().fanout_queries.get() >= 5);

    // Single-class scope stays a one-hop passthrough.
    let got = router.query("select w from Widget w order by w.weight").unwrap();
    assert_eq!(got.oids.len(), 3);
    assert_eq!(router.metrics().passthrough_queries.get(), 1);
    for s in cl.servers {
        s.shutdown();
    }
}

#[test]
fn single_shard_transactions_use_one_phase() {
    let cl = cluster(2);
    let router = router_for(&cl, ExplicitPlacement::new([("A", 0usize), ("B", 1usize)]));
    router.create_class("A", &[], vec![int_attr("x")]).unwrap();

    let mut tx = router.begin();
    let a = tx.create_object("A", vec![("x", Value::Int(7))]).unwrap();
    // In-tx query on the same shard sees the uncommitted write.
    assert_eq!(tx.query("select count(*) from A a").unwrap().rows[0][0], Value::Int(1));
    tx.commit().unwrap();

    assert_eq!(router.get(a, "x").unwrap(), Value::Int(7));
    assert_eq!(router.metrics().txns_1pc.get(), 1);
    assert_eq!(router.metrics().txns_2pc.get(), 0);
    assert!(router.decision_log().decisions().is_empty());
    for s in cl.servers {
        s.shutdown();
    }
}

#[test]
fn cross_shard_commit_rollback_and_drop() {
    let cl = cluster(2);
    let router = router_for(&cl, ExplicitPlacement::new([("A", 0usize), ("B", 1usize)]));
    router.create_class("A", &[], vec![int_attr("x")]).unwrap();
    router.create_class("B", &[], vec![int_attr("x")]).unwrap();
    let a = router.create_object("A", vec![("x", Value::Int(100))]).unwrap();
    let b = router.create_object("B", vec![("x", Value::Int(0))]).unwrap();

    // Commit: both shards move atomically, decision is logged.
    let mut tx = router.begin();
    tx.set(a, "x", Value::Int(60)).unwrap();
    tx.set(b, "x", Value::Int(40)).unwrap();
    assert_eq!(tx.touched_shards(), vec![0, 1]);
    tx.commit().unwrap();
    assert_eq!(router.get(a, "x").unwrap(), Value::Int(60));
    assert_eq!(router.get(b, "x").unwrap(), Value::Int(40));
    assert_eq!(router.metrics().txns_2pc.get(), 1);
    let decisions = router.decision_log().decisions();
    assert_eq!(decisions.len(), 1);
    assert!(decisions[0].commit);
    assert_eq!(decisions[0].participants.len(), 2);

    // Rollback: nothing moves.
    let mut tx = router.begin();
    tx.set(a, "x", Value::Int(0)).unwrap();
    tx.set(b, "x", Value::Int(100)).unwrap();
    tx.rollback().unwrap();
    assert_eq!(router.get(a, "x").unwrap(), Value::Int(60));

    // Drop without commit: best-effort rollback, locks released.
    {
        let mut tx = router.begin();
        tx.set(a, "x", Value::Int(1)).unwrap();
    }
    assert_eq!(router.get(a, "x").unwrap(), Value::Int(60));
    for s in cl.servers {
        s.shutdown();
    }
}

/// A participant left prepared (its coordinator vanished) is resolved
/// from the decision log: logged commit → applied, no log entry →
/// presumed abort.
#[test]
fn in_doubt_resolution_follows_the_decision_log() {
    let cl = cluster(2);
    let router = router_for(&cl, ExplicitPlacement::new([("A", 0usize), ("B", 1usize)]));
    router.create_class("A", &[], vec![int_attr("x")]).unwrap();
    let a1 = router.create_object("A", vec![("x", Value::Int(1))]).unwrap();
    let a2 = router.create_object("A", vec![("x", Value::Int(2))]).unwrap();

    // Simulate two orphaned coordinators: both prepared on shard 0,
    // one decision logged as commit, the other never logged.
    let mut orphan = Client::connect(cl.addrs[0]).unwrap();
    let t1 = orphan.begin().unwrap();
    orphan.set(a1, "x", Value::Int(11)).unwrap();
    orphan.prepare(t1).unwrap();
    let t2 = orphan.begin().unwrap();
    orphan.set(a2, "x", Value::Int(22)).unwrap();
    orphan.prepare(t2).unwrap();
    drop(orphan); // disconnect must not roll back prepared txns

    router
        .decision_log()
        .record(Decision { gtid: 999, commit: true, participants: vec![(0, t1)] })
        .unwrap();

    let resolved = router.resolve_in_doubt().unwrap();
    assert_eq!(resolved.len(), 2);
    assert!(resolved.contains(&(0, t1, true)));
    assert!(resolved.contains(&(0, t2, false)));

    assert_eq!(router.get(a1, "x").unwrap(), Value::Int(11)); // committed
    assert_eq!(router.get(a2, "x").unwrap(), Value::Int(2)); // presumed abort
    assert_eq!(router.metrics().in_doubt_resolved.get(), 2);

    // Idempotent: nothing left to resolve.
    assert!(router.resolve_in_doubt().unwrap().is_empty());
    for s in cl.servers {
        s.shutdown();
    }
}

#[test]
fn prepare_failure_aborts_everywhere() {
    let cl = cluster(2);
    let router = router_for(&cl, ExplicitPlacement::new([("A", 0usize), ("B", 1usize)]));
    router.create_class("A", &[], vec![int_attr("x")]).unwrap();
    router.create_class("B", &[], vec![int_attr("x")]).unwrap();
    let a = router.create_object("A", vec![("x", Value::Int(5))]).unwrap();
    let b = router.create_object("B", vec![("x", Value::Int(5))]).unwrap();

    // A competing writer holds the lock on `b`, so the router's
    // transaction cannot prepare there once its own writes conflict…
    // actually contention surfaces at `set` time under 2PL, so force a
    // vote failure instead: crash shard 1's server mid-transaction by
    // shutting it down after phase-one connections are open.
    let mut tx = router.begin();
    tx.set(a, "x", Value::Int(6)).unwrap();
    tx.set(b, "x", Value::Int(6)).unwrap();
    let mut servers = cl.servers.into_iter();
    let shard0_server = servers.next().unwrap();
    servers.next().unwrap().shutdown(); // shard 1 dies before the vote
    let err = tx.commit();
    // Shard 1 is gone, so prepare there fails and the whole
    // transaction aborts; shard 0 must not keep the half.
    assert!(err.is_err());
    assert_eq!(router.get(a, "x").unwrap(), Value::Int(5));
    assert!(router.decision_log().decisions().is_empty());
    assert_eq!(router.metrics().decisions_abort.get(), 1);
    // No prepared leftovers on the surviving shard.
    assert!(cl.dbs[0].in_doubt().is_empty());
    shard0_server.shutdown();
}

#[test]
fn metrics_render_per_shard_series() {
    let cl = cluster(2);
    let router = router_for(&cl, ExplicitPlacement::new([("A", 0usize)]));
    router.create_class("A", &[], vec![int_attr("x")]).unwrap();
    router.create_object("A", vec![("x", Value::Int(1))]).unwrap();
    let text = router.metrics_prometheus();
    assert!(text.contains("orion_shard_requests_total{shard=\"0\"}"));
    assert!(text.contains("orion_shard_requests_total{shard=\"1\"}"));
    assert!(text.contains("orion_shard_txns_2pc_total"));
    for s in cl.servers {
        s.shutdown();
    }
}
