//! The partition router: one facade-shaped endpoint fronting N
//! `orion-net` servers.
//!
//! Classes are the distribution unit (see `placement`): DDL is
//! broadcast to every shard so the schema — and therefore every class
//! id — is identical cluster-wide, while each class's *extent* lives
//! wholly on the shard its placement names. Because an OID encodes its
//! class, any object request routes without a directory lookup. OID
//! *serials* come from each shard's own facade (a node-global
//! counter), so an object's identity is not byte-equal to what a
//! single node would have assigned — but an extent lives wholly on
//! one shard and class ids are cluster-agreed, so OIDs stay unique
//! across the whole cluster; it is the *result rows* of a query that
//! are reproduced byte-identically.
//!
//! Queries whose scope (the target class, plus its known subclasses
//! for `Class*` hierarchy queries) maps to one shard pass through with
//! a single hop and are returned verbatim. Multi-shard scopes fan out:
//! the same text runs on every owning shard and the router merges —
//! `count(*)` sums, `order by` re-sorts with the executor's exact
//! comparison (total order on the key, ascending ties by candidate
//! position, descending as that comparison fully reversed), `limit`
//! truncates after the merge (safe to push down per shard: the global
//! top-K is a subset of the per-shard top-Ks). Among *equal* keys the
//! merged candidate position is shard-major, which is deterministic
//! but need not match a single node's interleaved insertion order.
//!
//! Cross-shard transactions run two-phase commit: every touched shard
//! gets its own connection and session transaction; `commit` prepares
//! all of them, durably logs the commit decision (`decision_log`),
//! then pushes `CommitPrepared` to each participant. A participant
//! that crashes after voting recovers its prepared transaction as
//! in-doubt and [`ShardRouter::resolve_in_doubt`] pushes the logged
//! outcome (no log entry = presumed abort). Transactions that touch
//! one shard commit in a single hop (1PC fast path).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;
use std::net::{SocketAddr, ToSocketAddrs};

use orion_core::{AttrSpec, IndexKind};
use orion_net::{Client, ClientConfig};
use orion_obs::{render, Counter};
use orion_query::{parse, Path, Query, QueryResult, SelectItem};
use orion_types::{DbError, DbResult, Oid, Value};
use parking_lot::{Mutex, RwLock};

use crate::decision_log::{Decision, DecisionLog, DecisionLogSpec};
use crate::placement::{HashPlacement, PlacementPolicy};

/// Router construction knobs.
pub struct RouterConfig {
    /// Class → shard assignment. Default: [`HashPlacement`].
    pub placement: Box<dyn PlacementPolicy>,
    /// Where the 2PC coordinator logs its commit decisions. Default:
    /// in-memory (pair it with a file for crash-surviving coordination).
    pub decision_log: DecisionLogSpec,
    /// Per-connection client configuration (timeouts, retries).
    pub client: ClientConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            placement: Box::new(HashPlacement),
            decision_log: DecisionLogSpec::Memory,
            client: ClientConfig::default(),
        }
    }
}

/// Router-side counters, rendered by
/// [`ShardRouter::metrics_prometheus`].
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Requests routed to each shard (autocommit + transactional).
    pub requests: Vec<Counter>,
    /// Error replies per shard.
    pub errors: Vec<Counter>,
    /// Single-shard queries forwarded verbatim.
    pub passthrough_queries: Counter,
    /// Multi-shard queries merged by the router.
    pub fanout_queries: Counter,
    /// Transactions committed on the single-shard fast path.
    pub txns_1pc: Counter,
    /// Transactions committed via two-phase commit.
    pub txns_2pc: Counter,
    /// Coordinator commit decisions logged.
    pub decisions_commit: Counter,
    /// Coordinator aborts (vote failures and rollbacks).
    pub decisions_abort: Counter,
    /// Phase-two pushes that failed (left for in-doubt resolution).
    pub commit_push_failures: Counter,
    /// In-doubt participant transactions resolved at recovery.
    pub in_doubt_resolved: Counter,
}

#[derive(Debug, Clone)]
struct ClassMeta {
    id: u16,
    supers: Vec<String>,
}

/// The partition router. Thread-safe: shared connections are
/// mutex-guarded, transactions dial their own.
pub struct ShardRouter {
    addrs: Vec<SocketAddr>,
    shards: Vec<Mutex<Client>>,
    placement: Box<dyn PlacementPolicy>,
    client_config: ClientConfig,
    /// Schema as created *through this router*: name → meta, and the
    /// broadcast-agreed class id → name (for OID routing).
    classes: RwLock<HashMap<String, ClassMeta>>,
    class_names: RwLock<HashMap<u16, String>>,
    log: DecisionLog,
    metrics: RouterMetrics,
}

impl ShardRouter {
    /// Dial every shard and return the router. Shard order is
    /// significant: placement indexes into `addrs` as given, so every
    /// router for a cluster must list the shards identically.
    pub fn connect<A: ToSocketAddrs>(addrs: &[A], config: RouterConfig) -> DbResult<ShardRouter> {
        if addrs.is_empty() {
            return Err(DbError::Shard("a cluster needs at least one shard".into()));
        }
        let mut shards = Vec::with_capacity(addrs.len());
        let mut resolved = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let client = Client::connect_with(addr, config.client.clone())?;
            resolved.push(client.server_addr());
            shards.push(Mutex::new(client));
        }
        let metrics = RouterMetrics {
            requests: (0..shards.len()).map(|_| Counter::new()).collect(),
            errors: (0..shards.len()).map(|_| Counter::new()).collect(),
            ..RouterMetrics::default()
        };
        Ok(ShardRouter {
            addrs: resolved,
            shards,
            placement: config.placement,
            client_config: config.client,
            classes: RwLock::new(HashMap::new()),
            class_names: RwLock::new(HashMap::new()),
            log: DecisionLog::open(&config.decision_log)?,
            metrics,
        })
    }

    /// Number of shards in the cluster.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The broadcast-agreed class id for a class created through this
    /// router.
    pub fn class_id(&self, class: &str) -> Option<u16> {
        self.classes.read().get(class).map(|m| m.id)
    }

    /// Router-side counters.
    pub fn metrics(&self) -> &RouterMetrics {
        &self.metrics
    }

    /// The coordinator's decision log (for inspection).
    pub fn decision_log(&self) -> &DecisionLog {
        &self.log
    }

    fn with_shard<T>(&self, shard: usize, f: impl FnOnce(&mut Client) -> DbResult<T>) -> DbResult<T> {
        self.metrics.requests[shard].inc();
        let mut client = self.shards[shard].lock();
        let result = f(&mut client);
        if result.is_err() {
            self.metrics.errors[shard].inc();
        }
        result
    }

    fn shard_for_class(&self, class: &str) -> DbResult<usize> {
        self.placement
            .place(class, self.shards.len())
            .ok_or_else(|| DbError::Shard(format!("no shard placement for class '{class}'")))
    }

    fn shard_for_oid(&self, oid: Oid) -> DbResult<usize> {
        let raw = oid.class().0;
        let name = self
            .class_names
            .read()
            .get(&raw)
            .cloned()
            .ok_or_else(|| {
                DbError::Shard(format!(
                    "class id {raw} of {oid:?} is unknown to the router; create classes through the router"
                ))
            })?;
        self.shard_for_class(&name)
    }

    /// The target class plus (for hierarchy queries) every known
    /// transitive subclass, per the DDL that went through this router.
    fn scope_classes(&self, target: &str, hierarchy: bool) -> Vec<String> {
        let mut scope = vec![target.to_string()];
        if !hierarchy {
            return scope;
        }
        let classes = self.classes.read();
        let mut set: HashSet<&str> = HashSet::from([target]);
        let mut grew = true;
        while grew {
            grew = false;
            for (name, meta) in classes.iter() {
                if !set.contains(name.as_str())
                    && meta.supers.iter().any(|s| set.contains(s.as_str()))
                {
                    set.insert(name);
                    scope.push(name.clone());
                    grew = true;
                }
            }
        }
        scope
    }

    fn owning_shards(&self, classes: &[String]) -> DbResult<Vec<usize>> {
        let mut owners = BTreeSet::new();
        for class in classes {
            owners.insert(self.shard_for_class(class)?);
        }
        Ok(owners.into_iter().collect())
    }

    // ------------------------------------------------------------------
    // DDL: broadcast, schema is global.

    /// Create a class on every shard; all shards must agree on the id.
    pub fn create_class(
        &self,
        name: &str,
        supers: &[&str],
        attrs: Vec<AttrSpec>,
    ) -> DbResult<u16> {
        let mut agreed: Option<u16> = None;
        for shard in 0..self.shards.len() {
            let id = self.with_shard(shard, |c| c.create_class(name, supers, attrs.clone()))?;
            match agreed {
                None => agreed = Some(id),
                Some(prev) if prev == id => {}
                Some(prev) => {
                    return Err(DbError::Shard(format!(
                        "class id divergence for '{name}': shard 0 said {prev}, shard {shard} said {id}; \
                         shards must receive identical DDL"
                    )))
                }
            }
        }
        let id = agreed.expect("at least one shard");
        self.classes.write().insert(
            name.to_string(),
            ClassMeta { id, supers: supers.iter().map(|s| s.to_string()).collect() },
        );
        self.class_names.write().insert(id, name.to_string());
        Ok(id)
    }

    /// Create an index on every shard.
    pub fn create_index(
        &self,
        name: &str,
        kind: IndexKind,
        class: &str,
        path: &[&str],
    ) -> DbResult<()> {
        for shard in 0..self.shards.len() {
            let kind = kind.clone();
            self.with_shard(shard, |c| c.create_index(name, kind, class, path))?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Autocommit DML: one hop to the owning shard.

    /// Create an object on its class's owning shard.
    pub fn create_object(&self, class: &str, attrs: Vec<(&str, Value)>) -> DbResult<Oid> {
        let shard = self.shard_for_class(class)?;
        self.with_shard(shard, |c| c.create_object(class, attrs))
    }

    /// Read one attribute from the owning shard.
    pub fn get(&self, oid: Oid, attr: &str) -> DbResult<Value> {
        let shard = self.shard_for_oid(oid)?;
        self.with_shard(shard, |c| c.get(oid, attr))
    }

    /// Update one attribute on the owning shard.
    pub fn set(&self, oid: Oid, attr: &str, value: Value) -> DbResult<()> {
        let shard = self.shard_for_oid(oid)?;
        self.with_shard(shard, |c| c.set(oid, attr, value))
    }

    /// Delete an object on its owning shard.
    pub fn delete(&self, oid: Oid) -> DbResult<()> {
        let shard = self.shard_for_oid(oid)?;
        self.with_shard(shard, |c| c.delete(oid))
    }

    // ------------------------------------------------------------------
    // Queries: passthrough or fan-out + merge.

    /// Run a declarative query against the cluster.
    pub fn query(&self, text: &str) -> DbResult<QueryResult> {
        let q = parse(text)?;
        let owners = self.owning_shards(&self.scope_classes(&q.target, q.hierarchy))?;
        if owners.len() == 1 {
            self.metrics.passthrough_queries.inc();
            return self.with_shard(owners[0], |c| c.query(text));
        }
        self.metrics.fanout_queries.inc();
        // Pipelined fan-out: write the query to every owning shard
        // before reading any reply, so the legs execute concurrently
        // and the fan-out costs one round trip, not one per shard.
        // Guards are taken in ascending shard order (the router-wide
        // lock order) and — together with the pipelines borrowing them
        // — dropped before merge(), which may re-lock shards to resolve
        // ORDER BY keys.
        let partials = {
            let mut guards = Vec::with_capacity(owners.len());
            for &shard in &owners {
                self.metrics.requests[shard].inc();
                guards.push(self.shards[shard].lock());
            }
            let mut pipes = Vec::with_capacity(guards.len());
            for (i, guard) in guards.iter_mut().enumerate() {
                match guard.pipeline().and_then(|mut p| p.send_query(text).map(|()| p)) {
                    Ok(pipe) => pipes.push(pipe),
                    Err(e) => {
                        self.metrics.errors[owners[i]].inc();
                        return Err(e);
                    }
                }
            }
            let mut partials = Vec::with_capacity(pipes.len());
            let mut failed: Option<DbError> = None;
            for (i, pipe) in pipes.iter_mut().enumerate() {
                // Keep receiving past a failed leg so the healthy
                // connections stay in sync (a skipped reply would
                // poison them on drop); report the first failure.
                match pipe.recv_query() {
                    Ok(result) => partials.push((owners[i], result)),
                    Err(e) => {
                        self.metrics.errors[owners[i]].inc();
                        failed.get_or_insert(e);
                    }
                }
            }
            if let Some(e) = failed {
                return Err(e);
            }
            partials
        };
        self.merge(&q, partials)
    }

    /// Merge per-shard results preserving the single-node semantics of
    /// the executor (see module docs for the tie-order caveat).
    fn merge(&self, q: &Query, partials: Vec<(usize, QueryResult)>) -> DbResult<QueryResult> {
        if q.select == [SelectItem::Count] {
            let mut total: i64 = 0;
            for (_, p) in &partials {
                match p.rows.first().and_then(|r| r.first()) {
                    Some(Value::Int(n)) => total += n,
                    other => {
                        return Err(DbError::Shard(format!(
                            "shard returned malformed count(*) row: {other:?}"
                        )))
                    }
                }
            }
            return Ok(QueryResult { rows: vec![vec![Value::Int(total)]], oids: vec![] });
        }

        let merged = match &q.order_by {
            Some((path, ascending)) => {
                let mut entries = Vec::new();
                let key_col = key_column(q, path);
                let mut pos = 0usize;
                for (shard, p) in partials {
                    for (i, row) in p.rows.into_iter().enumerate() {
                        let oid = *p.oids.get(i).ok_or_else(|| {
                            DbError::Shard("shard result rows/oids misaligned".into())
                        })?;
                        let key = match key_col {
                            Some(col) => row[col].clone(),
                            None => self.order_key(shard, oid, path)?,
                        };
                        entries.push((key, pos, row, oid));
                        pos += 1;
                    }
                }
                let ascending = *ascending;
                entries.sort_by(|a, b| {
                    let ord = a.0.cmp_total(&b.0).then(a.1.cmp(&b.1));
                    if ascending {
                        ord
                    } else {
                        ord.reverse()
                    }
                });
                let mut rows = Vec::with_capacity(entries.len());
                let mut oids = Vec::with_capacity(entries.len());
                for (_, _, row, oid) in entries {
                    rows.push(row);
                    oids.push(oid);
                }
                QueryResult { rows, oids }
            }
            None => {
                let mut rows = Vec::new();
                let mut oids = Vec::new();
                for (_, mut p) in partials {
                    rows.append(&mut p.rows);
                    oids.append(&mut p.oids);
                }
                QueryResult { rows, oids }
            }
        };
        let mut merged = merged;
        if let Some(limit) = q.limit {
            merged.rows.truncate(limit);
            merged.oids.truncate(limit);
        }
        Ok(merged)
    }

    /// Fetch the order-by key for a row whose projection does not
    /// include it (one extra hop to the shard that produced the row).
    fn order_key(&self, shard: usize, oid: Oid, path: &Path) -> DbResult<Value> {
        match path.steps.as_slice() {
            [attr] => self.with_shard(shard, |c| c.get(oid, attr)),
            _ => Err(DbError::Shard(format!(
                "fan-out cannot order by '{path}': project the path in the select list"
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Transactions.

    /// Open a cluster transaction. Each touched shard gets its own
    /// connection and session transaction, lazily.
    pub fn begin(&self) -> ShardTx<'_> {
        ShardTx { router: self, parts: BTreeMap::new() }
    }

    /// Resolve every in-doubt transaction on every shard against the
    /// coordinator's decision log: logged commit → `CommitPrepared`,
    /// anything else → presumed abort. Returns the resolutions as
    /// `(shard, local txn, committed)`.
    pub fn resolve_in_doubt(&self) -> DbResult<Vec<(usize, u64, bool)>> {
        let mut resolved = Vec::new();
        for shard in 0..self.shards.len() {
            let txns = self.with_shard(shard, |c| c.resolve(None))?;
            for txn in txns {
                let commit = self.log.decision_for(shard as u32, txn).unwrap_or(false);
                self.with_shard(shard, |c| {
                    if commit {
                        c.commit_prepared(txn)
                    } else {
                        c.abort_prepared(txn)
                    }
                })?;
                self.metrics.in_doubt_resolved.inc();
                resolved.push((shard, txn, commit));
            }
        }
        Ok(resolved)
    }

    /// Render the router's own counters in the Prometheus text format
    /// (per-shard series labelled `shard="<index>"`).
    pub fn metrics_prometheus(&self) -> String {
        let m = &self.metrics;
        let mut out = String::with_capacity(1024);
        out.push_str("# HELP orion_shard_requests_total Requests routed to each shard\n");
        out.push_str("# TYPE orion_shard_requests_total counter\n");
        for (i, c) in m.requests.iter().enumerate() {
            let _ = writeln!(out, "orion_shard_requests_total{{shard=\"{i}\"}} {}", c.get());
        }
        out.push_str("# HELP orion_shard_errors_total Error replies per shard\n");
        out.push_str("# TYPE orion_shard_errors_total counter\n");
        for (i, c) in m.errors.iter().enumerate() {
            let _ = writeln!(out, "orion_shard_errors_total{{shard=\"{i}\"}} {}", c.get());
        }
        render::counter(
            &mut out,
            "orion_shard_passthrough_queries_total",
            "Queries forwarded verbatim to a single shard",
            m.passthrough_queries.get(),
        );
        render::counter(
            &mut out,
            "orion_shard_fanout_queries_total",
            "Queries fanned out and merged by the router",
            m.fanout_queries.get(),
        );
        render::counter(
            &mut out,
            "orion_shard_txns_1pc_total",
            "Transactions committed on the single-shard fast path",
            m.txns_1pc.get(),
        );
        render::counter(
            &mut out,
            "orion_shard_txns_2pc_total",
            "Transactions committed via two-phase commit",
            m.txns_2pc.get(),
        );
        render::counter(
            &mut out,
            "orion_shard_decisions_commit_total",
            "Coordinator commit decisions logged",
            m.decisions_commit.get(),
        );
        render::counter(
            &mut out,
            "orion_shard_decisions_abort_total",
            "Coordinator abort outcomes",
            m.decisions_abort.get(),
        );
        render::counter(
            &mut out,
            "orion_shard_commit_push_failures_total",
            "Phase-two pushes left for in-doubt resolution",
            m.commit_push_failures.get(),
        );
        render::counter(
            &mut out,
            "orion_shard_in_doubt_resolved_total",
            "In-doubt participant transactions resolved",
            m.in_doubt_resolved.get(),
        );
        out
    }
}

/// Find the select-list column that projects the order-by path.
fn key_column(q: &Query, path: &Path) -> Option<usize> {
    q.select.iter().position(|item| matches!(item, SelectItem::Path(p) if p == path))
}

struct Part {
    client: Client,
    txn: u64,
}

/// A cluster transaction: per-shard connections opened lazily, atomic
/// commit across all of them. Dropping without `commit`/`rollback`
/// rolls back every participant (best effort; a lost connection rolls
/// back server-side on disconnect anyway).
pub struct ShardTx<'a> {
    router: &'a ShardRouter,
    parts: BTreeMap<usize, Part>,
}

impl ShardTx<'_> {
    fn part(&mut self, shard: usize) -> DbResult<&mut Part> {
        if !self.parts.contains_key(&shard) {
            let mut client =
                Client::connect_with(self.router.addrs[shard], self.router.client_config.clone())?;
            let txn = client.begin()?;
            self.parts.insert(shard, Part { client, txn });
        }
        Ok(self.parts.get_mut(&shard).expect("just inserted"))
    }

    fn on_shard<T>(
        &mut self,
        shard: usize,
        f: impl FnOnce(&mut Client) -> DbResult<T>,
    ) -> DbResult<T> {
        self.router.metrics.requests[shard].inc();
        let part = self.part(shard)?;
        let result = f(&mut part.client);
        if result.is_err() {
            self.router.metrics.errors[shard].inc();
        }
        result
    }

    /// Shards this transaction has touched so far.
    pub fn touched_shards(&self) -> Vec<usize> {
        self.parts.keys().copied().collect()
    }

    /// Create an object within the transaction.
    pub fn create_object(&mut self, class: &str, attrs: Vec<(&str, Value)>) -> DbResult<Oid> {
        let shard = self.router.shard_for_class(class)?;
        self.on_shard(shard, |c| c.create_object(class, attrs))
    }

    /// Read one attribute within the transaction.
    pub fn get(&mut self, oid: Oid, attr: &str) -> DbResult<Value> {
        let shard = self.router.shard_for_oid(oid)?;
        self.on_shard(shard, |c| c.get(oid, attr))
    }

    /// Update one attribute within the transaction.
    pub fn set(&mut self, oid: Oid, attr: &str, value: Value) -> DbResult<()> {
        let shard = self.router.shard_for_oid(oid)?;
        self.on_shard(shard, |c| c.set(oid, attr, value))
    }

    /// Delete an object within the transaction.
    pub fn delete(&mut self, oid: Oid) -> DbResult<()> {
        let shard = self.router.shard_for_oid(oid)?;
        self.on_shard(shard, |c| c.delete(oid))
    }

    /// Run a query within the transaction. Only single-shard scopes
    /// are supported here (the hop uses this transaction's connection,
    /// so the query sees its uncommitted writes); fan-out inside an
    /// explicit transaction is refused.
    pub fn query(&mut self, text: &str) -> DbResult<QueryResult> {
        let q = parse(text)?;
        let owners = self
            .router
            .owning_shards(&self.router.scope_classes(&q.target, q.hierarchy))?;
        match owners.as_slice() {
            [shard] => self.on_shard(*shard, |c| c.query(text)),
            _ => Err(DbError::Shard(
                "fan-out queries inside an explicit transaction are not supported; \
                 commit first or narrow the scope to one shard"
                    .into(),
            )),
        }
    }

    /// Commit atomically. One shard: plain single-hop commit. Several:
    /// two-phase commit — PREPARE everywhere, log the decision
    /// durably, then push COMMIT to each participant. Once the
    /// decision is logged the transaction *is* committed: a
    /// participant that cannot be reached afterwards is completed by
    /// [`ShardRouter::resolve_in_doubt`].
    pub fn commit(mut self) -> DbResult<()> {
        let parts = std::mem::take(&mut self.parts);
        let router = self.router;
        let mut iter = parts.into_iter();
        match iter.len() {
            0 => Ok(()),
            1 => {
                let (shard, mut part) = iter.next().expect("len checked");
                router.metrics.requests[shard].inc();
                let result = part.client.commit();
                if result.is_err() {
                    router.metrics.errors[shard].inc();
                } else {
                    router.metrics.txns_1pc.inc();
                }
                result
            }
            _ => {
                // Phase one: collect votes in shard order.
                let mut prepared: Vec<(usize, Part)> = Vec::new();
                for (shard, mut part) in iter.by_ref() {
                    router.metrics.requests[shard].inc();
                    if let Err(e) = part.client.prepare(part.txn) {
                        router.metrics.errors[shard].inc();
                        // The no-voter already rolled back server-side;
                        // undo the rest and presume abort.
                        for (_, mut p) in prepared {
                            let _ = p.client.abort_prepared(p.txn);
                        }
                        for (_, mut p) in iter {
                            let _ = p.client.rollback();
                        }
                        router.metrics.decisions_abort.inc();
                        return Err(e);
                    }
                    prepared.push((shard, part));
                }
                // Decision point: force the commit record before any
                // participant learns the outcome.
                let decision = Decision {
                    gtid: router.log.next_gtid(),
                    commit: true,
                    participants: prepared.iter().map(|(s, p)| (*s as u32, p.txn)).collect(),
                };
                if let Err(e) = router.log.record(decision) {
                    for (_, mut p) in prepared {
                        let _ = p.client.abort_prepared(p.txn);
                    }
                    router.metrics.decisions_abort.inc();
                    return Err(e);
                }
                router.metrics.decisions_commit.inc();
                // Phase two: the outcome is decided; push it. Failures
                // here leave the participant in-doubt for
                // resolve_in_doubt, they do not undo the commit.
                for (shard, mut part) in prepared {
                    router.metrics.requests[shard].inc();
                    if part.client.commit_prepared(part.txn).is_err() {
                        router.metrics.errors[shard].inc();
                        router.metrics.commit_push_failures.inc();
                    }
                }
                router.metrics.txns_2pc.inc();
                Ok(())
            }
        }
    }

    /// Roll back on every touched shard.
    pub fn rollback(mut self) -> DbResult<()> {
        let parts = std::mem::take(&mut self.parts);
        let mut first_err = None;
        for (shard, mut part) in parts {
            self.router.metrics.requests[shard].inc();
            if let Err(e) = part.client.rollback() {
                self.router.metrics.errors[shard].inc();
                first_err.get_or_insert(e);
            }
        }
        self.router.metrics.decisions_abort.inc();
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Drop for ShardTx<'_> {
    fn drop(&mut self) {
        for (_, part) in std::mem::take(&mut self.parts) {
            let mut part = part;
            let _ = part.client.rollback();
        }
    }
}
