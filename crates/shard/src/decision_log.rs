//! The coordinator's durable decision log.
//!
//! Two-phase commit's one forced coordinator write: once every
//! participant has acknowledged PREPARE, the commit decision is
//! appended here and fsynced *before* any `CommitPrepared` goes out.
//! A coordinator that crashes between the phases replays this log on
//! restart and pushes the logged outcome to every in-doubt
//! participant; a transaction with no logged decision is aborted
//! (presumed abort), so abort decisions never need to be logged for
//! correctness — they are recorded anyway for observability.
//!
//! Frame format per entry, mirroring the WAL's:
//! `[len u32][crc32 u32][body]`, body =
//! `gtid u64 | commit u8 | n u32 | (shard u32, local_txn u64) * n`,
//! all little-endian. Replay stops at the first short or corrupt
//! frame and truncates the file there, so a torn tail from a crash
//! mid-append reads as "no decision" — which presumed abort makes
//! safe.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use orion_storage::crc32;
use orion_types::{DbError, DbResult};
use parking_lot::Mutex;

/// A logged coordinator outcome for one global transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Coordinator-local global transaction id.
    pub gtid: u64,
    /// `true` = commit, `false` = abort.
    pub commit: bool,
    /// The participants as `(shard index, shard-local txn id)` pairs.
    pub participants: Vec<(u32, u64)>,
}

/// Where the decision log lives.
#[derive(Debug, Clone)]
pub enum DecisionLogSpec {
    /// Volatile: decisions survive only as long as the router. Fine
    /// for tests and for clusters whose shards are also in-memory.
    Memory,
    /// An append-only file, fsynced per decision.
    File(PathBuf),
}

struct LogInner {
    entries: Vec<Decision>,
    file: Option<File>,
}

/// The decision log: replayed on open, appended on every commit
/// decision, consulted by in-doubt resolution.
pub struct DecisionLog {
    inner: Mutex<LogInner>,
}

fn encode(d: &Decision) -> Vec<u8> {
    let mut body = Vec::with_capacity(13 + 12 * d.participants.len());
    body.extend_from_slice(&d.gtid.to_le_bytes());
    body.push(u8::from(d.commit));
    body.extend_from_slice(&(d.participants.len() as u32).to_le_bytes());
    for &(shard, txn) in &d.participants {
        body.extend_from_slice(&shard.to_le_bytes());
        body.extend_from_slice(&txn.to_le_bytes());
    }
    let mut frame = Vec::with_capacity(8 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

fn u32_at(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn u64_at(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// Decode every whole, checksummed frame; return the entries plus the
/// byte offset of the valid prefix.
fn replay(bytes: &[u8]) -> (Vec<Decision>, usize) {
    let mut entries = Vec::new();
    let mut at = 0usize;
    loop {
        if bytes.len() - at < 8 {
            return (entries, at);
        }
        let len = u32_at(bytes, at) as usize;
        let crc = u32_at(bytes, at + 4);
        if bytes.len() - at - 8 < len || len < 13 {
            return (entries, at);
        }
        let body = &bytes[at + 8..at + 8 + len];
        if crc32(body) != crc {
            return (entries, at);
        }
        let gtid = u64_at(body, 0);
        let commit = body[8] != 0;
        let n = u32_at(body, 9) as usize;
        if len != 13 + 12 * n {
            return (entries, at);
        }
        let participants = (0..n)
            .map(|i| (u32_at(body, 13 + 12 * i), u64_at(body, 17 + 12 * i)))
            .collect();
        entries.push(Decision { gtid, commit, participants });
        at += 8 + len;
    }
}

impl DecisionLog {
    /// Open (and for files, replay) the log.
    pub fn open(spec: &DecisionLogSpec) -> DbResult<DecisionLog> {
        let inner = match spec {
            DecisionLogSpec::Memory => LogInner { entries: Vec::new(), file: None },
            DecisionLogSpec::File(path) => {
                let mut file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(false)
                    .open(path)
                    .map_err(|e| DbError::Shard(format!("decision log open: {e}")))?;
                let mut bytes = Vec::new();
                file.read_to_end(&mut bytes)
                    .map_err(|e| DbError::Shard(format!("decision log read: {e}")))?;
                let (entries, valid) = replay(&bytes);
                if valid < bytes.len() {
                    // Torn tail from a crash mid-append: drop it so the
                    // next append starts on a frame boundary.
                    file.set_len(valid as u64)
                        .and_then(|()| file.seek(SeekFrom::End(0)).map(drop))
                        .map_err(|e| DbError::Shard(format!("decision log truncate: {e}")))?;
                }
                LogInner { entries, file: Some(file) }
            }
        };
        Ok(DecisionLog { inner: Mutex::new(inner) })
    }

    /// The next unused global transaction id.
    pub fn next_gtid(&self) -> u64 {
        let inner = self.inner.lock();
        inner.entries.iter().map(|d| d.gtid).max().unwrap_or(0) + 1
    }

    /// Durably append a decision. For file-backed logs the entry is
    /// written and fsynced before this returns; only then may the
    /// coordinator send phase two.
    pub fn record(&self, decision: Decision) -> DbResult<()> {
        let mut inner = self.inner.lock();
        if let Some(file) = inner.file.as_mut() {
            file.write_all(&encode(&decision))
                .and_then(|()| file.sync_data())
                .map_err(|e| DbError::Shard(format!("decision log append: {e}")))?;
        }
        inner.entries.push(decision);
        Ok(())
    }

    /// The logged outcome for a participant, if any: `Some(true)` =
    /// commit, `Some(false)` = explicit abort, `None` = no decision
    /// (presumed abort).
    pub fn decision_for(&self, shard: u32, local_txn: u64) -> Option<bool> {
        let inner = self.inner.lock();
        inner
            .entries
            .iter()
            .rev()
            .find(|d| d.participants.contains(&(shard, local_txn)))
            .map(|d| d.commit)
    }

    /// All logged decisions, oldest first.
    pub fn decisions(&self) -> Vec<Decision> {
        self.inner.lock().entries.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(gtid: u64, commit: bool, parts: &[(u32, u64)]) -> Decision {
        Decision { gtid, commit, participants: parts.to_vec() }
    }

    #[test]
    fn memory_log_records_and_resolves() {
        let log = DecisionLog::open(&DecisionLogSpec::Memory).unwrap();
        assert_eq!(log.next_gtid(), 1);
        log.record(d(1, true, &[(0, 7), (1, 3)])).unwrap();
        log.record(d(2, false, &[(0, 8)])).unwrap();
        assert_eq!(log.next_gtid(), 3);
        assert_eq!(log.decision_for(0, 7), Some(true));
        assert_eq!(log.decision_for(1, 3), Some(true));
        assert_eq!(log.decision_for(0, 8), Some(false));
        assert_eq!(log.decision_for(1, 8), None);
    }

    #[test]
    fn file_log_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("orion-dlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.dlog");
        let _ = std::fs::remove_file(&path);
        let spec = DecisionLogSpec::File(path.clone());
        {
            let log = DecisionLog::open(&spec).unwrap();
            log.record(d(1, true, &[(0, 5), (2, 9)])).unwrap();
            log.record(d(2, false, &[(1, 6)])).unwrap();
        }
        let log = DecisionLog::open(&spec).unwrap();
        assert_eq!(log.decisions().len(), 2);
        assert_eq!(log.decision_for(2, 9), Some(true));
        assert_eq!(log.decision_for(1, 6), Some(false));
        assert_eq!(log.next_gtid(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_presumed_abort() {
        let dir = std::env::temp_dir().join(format!("orion-dlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.dlog");
        let _ = std::fs::remove_file(&path);
        let spec = DecisionLogSpec::File(path.clone());
        {
            let log = DecisionLog::open(&spec).unwrap();
            log.record(d(1, true, &[(0, 5)])).unwrap();
            log.record(d(2, true, &[(1, 6)])).unwrap();
        }
        // Tear the last frame mid-body, as a crash mid-append would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let log = DecisionLog::open(&spec).unwrap();
        assert_eq!(log.decisions().len(), 1);
        assert_eq!(log.decision_for(0, 5), Some(true));
        // The torn decision is gone: presumed abort.
        assert_eq!(log.decision_for(1, 6), None);
        // And the file was healed: a new append lands on a clean boundary.
        log.record(d(2, false, &[(1, 6)])).unwrap();
        let log = DecisionLog::open(&spec).unwrap();
        assert_eq!(log.decisions().len(), 2);
        assert_eq!(log.decision_for(1, 6), Some(false));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let dir = std::env::temp_dir().join(format!("orion-dlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crc.dlog");
        let _ = std::fs::remove_file(&path);
        let spec = DecisionLogSpec::File(path.clone());
        {
            let log = DecisionLog::open(&spec).unwrap();
            log.record(d(1, true, &[(0, 5)])).unwrap();
            log.record(d(2, true, &[(0, 6)])).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a bit in the second frame's body
        std::fs::write(&path, &bytes).unwrap();
        let log = DecisionLog::open(&spec).unwrap();
        assert_eq!(log.decisions().len(), 1);
        assert_eq!(log.decision_for(0, 6), None);
        std::fs::remove_file(&path).unwrap();
    }
}
