//! Class placement: which shard owns a class's extent.
//!
//! Partitioning is *by class*, not by key range: an OODB extent is the
//! natural distribution unit because every object carries its class in
//! its OID, so the router can route any `Oid` without a directory
//! lookup. Subclasses may live on different shards than their
//! superclass — a hierarchy query then fans out to every owning shard
//! and the router merges (see `router`).

use std::collections::HashMap;

/// Maps a class name to the index of the shard that owns its extent.
///
/// Implementations must be deterministic: the same `(class, shards)`
/// pair must always yield the same answer, because every router (and
/// every recovery) recomputes placement independently.
pub trait PlacementPolicy: Send + Sync {
    /// The owning shard for `class` out of `shards` total, or `None`
    /// if the policy cannot place it (the router reports a routing
    /// error rather than guessing).
    fn place(&self, class: &str, shards: usize) -> Option<usize>;
}

/// Default policy: FNV-1a hash of the class name, modulo shard count.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashPlacement;

/// FNV-1a, 64-bit. Stable across runs and platforms (no `RandomState`),
/// which placement requires.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl PlacementPolicy for HashPlacement {
    fn place(&self, class: &str, shards: usize) -> Option<usize> {
        if shards == 0 {
            return None;
        }
        Some((fnv1a(class.as_bytes()) % shards as u64) as usize)
    }
}

/// Explicit class → shard map, with a hash fallback for unmapped
/// classes so new classes never dead-end.
#[derive(Debug, Default, Clone)]
pub struct ExplicitPlacement {
    map: HashMap<String, usize>,
    strict: bool,
}

impl ExplicitPlacement {
    /// Build from `(class, shard)` pairs; unmapped classes fall back
    /// to [`HashPlacement`].
    pub fn new(pairs: impl IntoIterator<Item = (impl Into<String>, usize)>) -> Self {
        ExplicitPlacement {
            map: pairs.into_iter().map(|(c, s)| (c.into(), s)).collect(),
            strict: false,
        }
    }

    /// Refuse to place unmapped classes instead of hashing them.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }
}

impl PlacementPolicy for ExplicitPlacement {
    fn place(&self, class: &str, shards: usize) -> Option<usize> {
        match self.map.get(class) {
            Some(&s) if s < shards => Some(s),
            Some(_) => None,
            None if self.strict => None,
            None => HashPlacement.place(class, shards),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_placement_is_deterministic_and_in_range() {
        for shards in 1..6 {
            for class in ["Account", "Vehicle", "Vehicle2", "a", ""] {
                let s = HashPlacement.place(class, shards).unwrap();
                assert!(s < shards);
                assert_eq!(HashPlacement.place(class, shards), Some(s));
            }
        }
        assert_eq!(HashPlacement.place("Account", 0), None);
    }

    #[test]
    fn explicit_placement_maps_and_falls_back() {
        let p = ExplicitPlacement::new([("A", 0usize), ("B", 1usize)]);
        assert_eq!(p.place("A", 2), Some(0));
        assert_eq!(p.place("B", 2), Some(1));
        // Fallback hashes; strict refuses.
        assert!(p.place("C", 2).is_some());
        assert_eq!(p.clone().strict().place("C", 2), None);
        // Mapped beyond the cluster size is a refusal, not a wrap.
        assert_eq!(p.place("B", 1), None);
    }
}
