//! orion-shard: the database as a *partitioned* network service.
//!
//! The paper's shared-server architecture (§2) scales up by adding
//! workstations; this crate scales the server side *out*. A
//! [`ShardRouter`] fronts N independent `orion-net` servers and keeps
//! the facade shape: DDL, object CRUD, declarative queries, and
//! multi-statement transactions all look like one database.
//!
//! Three mechanisms make that work:
//!
//! * **Class placement** ([`PlacementPolicy`]) — classes are the
//!   distribution unit. Schema is broadcast so class ids agree
//!   cluster-wide; each class's extent lives wholly on one shard, so
//!   any OID routes by its embedded class id.
//! * **Query fan-out** — a query whose scope maps to one shard passes
//!   through verbatim (one hop); hierarchy scopes spanning shards run
//!   everywhere and the router merges with the executor's own
//!   order-by/limit semantics.
//! * **Two-phase commit** — cross-shard transactions PREPARE on every
//!   participant, the coordinator forces its decision to a
//!   [`DecisionLog`], then pushes COMMIT. Participants that crash
//!   after voting recover as in-doubt and
//!   [`ShardRouter::resolve_in_doubt`] completes them from the log;
//!   unlogged transactions are presumed aborted.

pub mod decision_log;
pub mod placement;
pub mod router;

pub use decision_log::{Decision, DecisionLog, DecisionLogSpec};
pub use placement::{ExplicitPlacement, HashPlacement, PlacementPolicy};
pub use router::{RouterConfig, RouterMetrics, ShardRouter, ShardTx};
