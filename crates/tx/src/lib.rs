//! Concurrency control for orion.
//!
//! "The semantics of these facilities in object-oriented database
//! systems must be extended/modified to be consistent with the semantics
//! of the core object-oriented concepts" (§3.1) — and §3.2 lists
//! concurrency control among the components the class hierarchy impacts
//! (\[GARZ88\]). This crate provides:
//!
//! * [`LockMode`] — the classic granular modes `IS, IX, S, SIX, X`,
//! * [`LockManager`] — a blocking lock table over the granularity
//!   hierarchy *database → class → instance*, with intention locking,
//!   lock upgrades, FIFO-less grant (barging allowed), waits-for
//!   deadlock detection (the requester that would close a cycle aborts),
//!   and timeouts,
//! * class-hierarchy locking: schema changes take `X` on a class *and
//!   its subtree*, which the facade passes in explicitly (the catalog
//!   owns subtree computation),
//! * [`CommitClock`] / [`SnapshotRegistry`] — the MVCC half: commit
//!   timestamps published atomically per write set, plus the
//!   active-snapshot floor that bounds version pruning. Snapshot
//!   readers never enter the lock table at all.
//!
//! Strict two-phase locking is a protocol, not a data structure: the
//! facade acquires locks as it touches objects and calls
//! [`LockManager::release_all`] only at commit/abort.

pub mod manager;
pub mod modes;
pub mod mvcc;

pub use manager::{LockManager, LockStats, LockTarget};
pub use modes::LockMode;
pub use mvcc::{CommitClock, MvccMetrics, MvccStats, SnapshotRegistry};
