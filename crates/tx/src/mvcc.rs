//! MVCC primitives: the commit clock and the snapshot registry.
//!
//! These are the transaction-layer half of snapshot reads. The commit
//! path allocates a monotonically increasing commit timestamp from
//! [`CommitClock`] and *publishes* it only after the transaction's whole
//! write set has been installed in the version store — readers snapshot
//! [`CommitClock::now`], so a half-published commit is never visible.
//! [`SnapshotRegistry`] tracks which snapshot timestamps are still in
//! use by running queries; its oldest entry is the pruning floor below
//! which old record versions may be reclaimed.
//!
//! The object-level version chains themselves live in `orion-core`
//! (they hold decoded records); this module is deliberately free of any
//! record representation so the clock and registry can be unit-tested
//! in isolation.

use orion_obs::{Counter, Gauge, Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------
// CommitClock
// ---------------------------------------------------------------------

/// The commit-timestamp clock. Two counters, deliberately distinct:
///
/// * `next` hands out fresh commit timestamps (`allocate`),
/// * `visible` is the newest *fully published* timestamp (`now`).
///
/// Commit allocates, installs every version under that stamp, and only
/// then advances `visible`. A reader that snapshots `now()` therefore
/// sees either all of a transaction's writes or none of them.
#[derive(Debug)]
pub struct CommitClock {
    next: AtomicU64,
    visible: AtomicU64,
}

impl Default for CommitClock {
    fn default() -> Self {
        Self::new()
    }
}

impl CommitClock {
    /// A fresh clock: no commits yet, `now() == 0`.
    pub fn new() -> Self {
        CommitClock { next: AtomicU64::new(1), visible: AtomicU64::new(0) }
    }

    /// Claim the next commit timestamp (strictly increasing).
    pub fn allocate(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Mark `ts` fully published: snapshots taken from now on see it.
    pub fn publish(&self, ts: u64) {
        self.visible.fetch_max(ts, Ordering::Release);
    }

    /// The newest fully published commit timestamp — what a new
    /// snapshot reads as its consistency point.
    pub fn now(&self) -> u64 {
        self.visible.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------
// SnapshotRegistry
// ---------------------------------------------------------------------

/// A multiset of snapshot timestamps currently held by running queries.
/// The oldest entry is the version-pruning floor: a record version
/// superseded before it may still be the one some query must see.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    active: Mutex<BTreeMap<u64, usize>>,
}

impl SnapshotRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a query is reading at snapshot `ts`.
    pub fn register(&self, ts: u64) {
        *self.active.lock().entry(ts).or_insert(0) += 1;
    }

    /// Atomically snapshot `clock` and pin the result. The clock is
    /// read *inside* the registry lock so that [`Self::floor`] (same
    /// lock) can never hand out a pruning floor above a timestamp a
    /// reader is part-way through pinning — the race that would let a
    /// publisher reclaim versions a fresh snapshot still needs.
    pub fn register_now(&self, clock: &CommitClock) -> u64 {
        let mut active = self.active.lock();
        let ts = clock.now();
        *active.entry(ts).or_insert(0) += 1;
        ts
    }

    /// The version-pruning floor: the oldest pinned snapshot, or the
    /// currently *visible* timestamp when none is pinned. Computed
    /// under the registry lock, so it serializes with
    /// [`Self::register_now`]; because the visible clock is monotonic,
    /// every later registration lands at or above any floor already
    /// handed out — pruning to this floor is always safe.
    pub fn floor(&self, clock: &CommitClock) -> u64 {
        let active = self.active.lock();
        active.keys().next().copied().unwrap_or_else(|| clock.now())
    }

    /// Drop one registration of `ts`. Returns `true` when the oldest
    /// active snapshot advanced (or the registry drained) — the signal
    /// that pruning may make progress.
    pub fn deregister(&self, ts: u64) -> bool {
        let mut active = self.active.lock();
        let was_oldest = active.keys().next() == Some(&ts);
        if let Some(count) = active.get_mut(&ts) {
            *count -= 1;
            if *count == 0 {
                active.remove(&ts);
            }
        }
        was_oldest && active.keys().next() != Some(&ts)
    }

    /// The oldest snapshot still in use, if any.
    pub fn oldest(&self) -> Option<u64> {
        self.active.lock().keys().next().copied()
    }

    /// Number of active snapshot registrations.
    pub fn len(&self) -> usize {
        self.active.lock().values().sum()
    }

    /// Whether no snapshots are active.
    pub fn is_empty(&self) -> bool {
        self.active.lock().is_empty()
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// Metric sinks for the MVCC machinery (rendered as `orion_mvcc_*`).
#[derive(Debug, Default)]
pub struct MvccMetrics {
    /// Snapshots taken (one per query execution).
    pub snapshots: Counter,
    /// Record reads resolved under a snapshot.
    pub snapshot_reads: Counter,
    /// Committed versions appended to version chains.
    pub versions_published: Counter,
    /// Superseded versions reclaimed by pruning.
    pub versions_pruned: Counter,
    /// Version-chain length observed at each publish (unit: links, not
    /// microseconds — the histogram buckets are reused as plain counts).
    pub chain_length: Histogram,
    /// Currently registered snapshots.
    pub active_snapshots: Gauge,
    /// `now() - oldest active snapshot` at the last snapshot capture —
    /// how far pruning lags behind the commit frontier.
    pub oldest_snapshot_lag: Gauge,
}

impl MvccMetrics {
    /// Fresh zeroed sinks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> MvccStats {
        MvccStats {
            snapshots: self.snapshots.get(),
            snapshot_reads: self.snapshot_reads.get(),
            versions_published: self.versions_published.get(),
            versions_pruned: self.versions_pruned.get(),
            chain_length: self.chain_length.snapshot(),
            active_snapshots: self.active_snapshots.get(),
            oldest_snapshot_lag: self.oldest_snapshot_lag.get(),
        }
    }

    /// Zero everything (between benchmark phases).
    pub fn reset(&self) {
        self.snapshots.reset();
        self.snapshot_reads.reset();
        self.versions_published.reset();
        self.versions_pruned.reset();
        self.chain_length.reset();
        self.active_snapshots.reset();
        self.oldest_snapshot_lag.reset();
    }
}

/// Cumulative MVCC counters (a [`MvccMetrics`] snapshot).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MvccStats {
    /// Snapshots taken (one per query execution).
    pub snapshots: u64,
    /// Record reads resolved under a snapshot.
    pub snapshot_reads: u64,
    /// Committed versions appended to version chains.
    pub versions_published: u64,
    /// Superseded versions reclaimed by pruning.
    pub versions_pruned: u64,
    /// Distribution of version-chain lengths at publish time.
    pub chain_length: HistogramSnapshot,
    /// Currently registered snapshots.
    pub active_snapshots: u64,
    /// Commit-frontier lag of the oldest active snapshot.
    pub oldest_snapshot_lag: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_allocates_strictly_increasing_stamps() {
        let clock = CommitClock::new();
        let a = clock.allocate();
        let b = clock.allocate();
        assert!(b > a);
        assert_eq!(clock.now(), 0, "unpublished stamps are invisible");
        clock.publish(a);
        assert_eq!(clock.now(), a);
        clock.publish(b);
        assert_eq!(clock.now(), b);
        // Publishing an older stamp never moves the clock backwards.
        clock.publish(a);
        assert_eq!(clock.now(), b);
    }

    #[test]
    fn registry_tracks_oldest_multiset_style() {
        let reg = SnapshotRegistry::new();
        assert_eq!(reg.oldest(), None);
        reg.register(5);
        reg.register(5);
        reg.register(9);
        assert_eq!(reg.oldest(), Some(5));
        assert_eq!(reg.len(), 3);
        // First deregistration of 5 leaves a second holder: no advance.
        assert!(!reg.deregister(5));
        assert_eq!(reg.oldest(), Some(5));
        // Second one advances the floor to 9.
        assert!(reg.deregister(5));
        assert_eq!(reg.oldest(), Some(9));
        // Draining the registry also counts as an advance.
        assert!(reg.deregister(9));
        assert!(reg.is_empty());
    }

    #[test]
    fn deregister_of_newer_stamp_does_not_signal_advance() {
        let reg = SnapshotRegistry::new();
        reg.register(3);
        reg.register(7);
        assert!(!reg.deregister(7), "floor still pinned at 3");
        assert!(reg.deregister(3));
    }

    #[test]
    fn metrics_snapshot_copies_counters() {
        let m = MvccMetrics::new();
        m.snapshots.inc();
        m.snapshot_reads.add(4);
        m.versions_published.add(2);
        m.chain_length.observe_micros(3);
        m.active_snapshots.set(1);
        let s = m.snapshot();
        assert_eq!(s.snapshots, 1);
        assert_eq!(s.snapshot_reads, 4);
        assert_eq!(s.versions_published, 2);
        assert_eq!(s.chain_length.count, 1);
        assert_eq!(s.active_snapshots, 1);
        m.reset();
        assert_eq!(m.snapshot().snapshot_reads, 0);
    }
}
