//! The lock manager: a blocking lock table over the granularity
//! hierarchy with deadlock detection.

use crate::modes::LockMode;
use orion_obs::{Counter, Histogram, HistogramSnapshot, SpanTimer};
use orion_types::{ClassId, DbError, DbResult, Oid};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// A lockable granule: the database, one class (its extent and
/// definition), or one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockTarget {
    /// The whole database.
    Database,
    /// One class.
    Class(ClassId),
    /// One instance.
    Object(Oid),
}

impl std::fmt::Display for LockTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockTarget::Database => write!(f, "database"),
            LockTarget::Class(c) => write!(f, "class {c}"),
            LockTarget::Object(o) => write!(f, "object {o}"),
        }
    }
}

#[derive(Debug, Default)]
struct TableState {
    /// target → (txn → granted mode).
    granted: HashMap<LockTarget, HashMap<u64, LockMode>>,
    /// txn → targets it holds (for release_all).
    held: HashMap<u64, HashSet<LockTarget>>,
    /// txn → set of txns it currently waits for.
    waits_for: HashMap<u64, HashSet<u64>>,
}

impl TableState {
    /// Would granting `(txn, mode)` on `target` conflict with another
    /// transaction's granted lock?
    fn conflicts(&self, target: &LockTarget, txn: u64, mode: LockMode) -> Vec<u64> {
        match self.granted.get(target) {
            None => Vec::new(),
            Some(holders) => holders
                .iter()
                .filter(|(t, m)| **t != txn && !mode.compatible(**m))
                .map(|(t, _)| *t)
                .collect(),
        }
    }

    fn grant(&mut self, target: LockTarget, txn: u64, mode: LockMode) {
        let holders = self.granted.entry(target).or_default();
        let entry = holders.entry(txn).or_insert(mode);
        *entry = entry.combine(mode);
        self.held.entry(txn).or_default().insert(target);
    }

    /// Does a wait-edge set from `from` reach `to` (cycle check)?
    fn reaches(&self, from: u64, to: u64) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(cur) = stack.pop() {
            if cur == to {
                return true;
            }
            if seen.insert(cur) {
                if let Some(next) = self.waits_for.get(&cur) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }
}

/// A blocking lock manager with deadlock detection.
///
/// Grant policy: a request is granted iff its mode is compatible with
/// every *granted* lock held by other transactions (no FIFO queue —
/// barging is allowed, which can starve writers under heavy read load
/// but keeps the table simple and is irrelevant to the experiments).
/// Deadlock policy: a request that would close a waits-for cycle fails
/// immediately with [`DbError::Deadlock`], naming the requester as the
/// victim; the facade aborts that transaction.
pub struct LockManager {
    state: Mutex<TableState>,
    available: Condvar,
    timeout: Duration,
    acquisitions: Counter,
    /// Acquisitions broken out by granted mode, indexed by
    /// [`mode_index`] (IS, IX, S, SIX, X).
    by_mode: [Counter; 5],
    waits: Counter,
    wait_latency: Histogram,
    deadlocks: Counter,
    timeouts: Counter,
}

/// Stable index of a mode in per-mode counter arrays.
fn mode_index(mode: LockMode) -> usize {
    match mode {
        LockMode::IS => 0,
        LockMode::IX => 1,
        LockMode::S => 2,
        LockMode::SIX => 3,
        LockMode::X => 4,
    }
}

/// Cumulative lock-manager counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LockStats {
    /// Granted acquisitions (covered re-requests included).
    pub acquisitions: u64,
    /// `IS`-mode acquisitions (intention share on ancestors of a read).
    pub is_acquisitions: u64,
    /// `IX`-mode acquisitions (intention exclusive on ancestors of a
    /// write).
    pub ix_acquisitions: u64,
    /// `S`-mode acquisitions (shared reads — with MVCC snapshot reads
    /// enabled, a pure-query workload drives this to ~0).
    pub s_acquisitions: u64,
    /// `SIX`-mode acquisitions (share + intention-exclusive upgrades).
    pub six_acquisitions: u64,
    /// `X`-mode acquisitions (exclusive writes).
    pub x_acquisitions: u64,
    /// Acquisitions that blocked on a conflicting holder at least once.
    pub waits: u64,
    /// Wait-time distribution of those blocked acquisitions (granted or
    /// not — a timed-out wait is still a wait).
    pub wait_latency: HistogramSnapshot,
    /// Requests refused because granting would close a waits-for cycle
    /// (the requester is the chosen victim).
    pub deadlock_victims: u64,
    /// Requests abandoned at the configured wait timeout.
    pub timeouts: u64,
}

impl LockManager {
    /// A lock manager with the default 5-second wait timeout.
    pub fn new() -> Self {
        Self::with_timeout(Duration::from_secs(5))
    }

    /// A lock manager with a custom wait timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        LockManager {
            state: Mutex::new(TableState::default()),
            available: Condvar::new(),
            timeout,
            acquisitions: Counter::new(),
            by_mode: Default::default(),
            waits: Counter::new(),
            wait_latency: Histogram::new(),
            deadlocks: Counter::new(),
            timeouts: Counter::new(),
        }
    }

    /// Snapshot the lock counters.
    pub fn stats(&self) -> LockStats {
        LockStats {
            acquisitions: self.acquisitions.get(),
            is_acquisitions: self.by_mode[mode_index(LockMode::IS)].get(),
            ix_acquisitions: self.by_mode[mode_index(LockMode::IX)].get(),
            s_acquisitions: self.by_mode[mode_index(LockMode::S)].get(),
            six_acquisitions: self.by_mode[mode_index(LockMode::SIX)].get(),
            x_acquisitions: self.by_mode[mode_index(LockMode::X)].get(),
            waits: self.waits.get(),
            wait_latency: self.wait_latency.snapshot(),
            deadlock_victims: self.deadlocks.get(),
            timeouts: self.timeouts.get(),
        }
    }

    /// Reset the lock counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.acquisitions.reset();
        for counter in &self.by_mode {
            counter.reset();
        }
        self.waits.reset();
        self.wait_latency.reset();
        self.deadlocks.reset();
        self.timeouts.reset();
    }

    /// Acquire `mode` on `target` for `txn`, blocking while conflicting
    /// locks are held. Upgrades combine with any mode already held.
    pub fn acquire(&self, txn: u64, target: LockTarget, mode: LockMode) -> DbResult<()> {
        let mut state = self.state.lock();
        // Fast path: already covered by a held mode.
        if let Some(holders) = state.granted.get(&target) {
            if let Some(held) = holders.get(&txn) {
                if held.covers(mode) {
                    self.acquisitions.inc();
                    self.by_mode[mode_index(mode)].inc();
                    return Ok(());
                }
            }
        }
        // The clock is read only once a conflict forces a wait; the
        // uncontended grant path stays clock-free.
        let mut wait_span: Option<SpanTimer> = None;
        let finish_wait = |span: Option<SpanTimer>| {
            if let Some(span) = span {
                span.record(Instant::now(), &self.wait_latency);
            }
        };
        loop {
            let blockers = state.conflicts(&target, txn, mode);
            if blockers.is_empty() {
                state.waits_for.remove(&txn);
                state.grant(target, txn, mode);
                self.acquisitions.inc();
                self.by_mode[mode_index(mode)].inc();
                drop(state);
                finish_wait(wait_span);
                return Ok(());
            }
            // Record wait edges and check for a cycle through us.
            let closes_cycle = blockers.iter().any(|b| state.reaches(*b, txn));
            if closes_cycle {
                state.waits_for.remove(&txn);
                self.deadlocks.inc();
                drop(state);
                finish_wait(wait_span);
                return Err(DbError::Deadlock { victim: txn });
            }
            if wait_span.is_none() {
                self.waits.inc();
                wait_span = Some(SpanTimer::starting_at(Instant::now()));
            }
            state.waits_for.insert(txn, blockers.iter().copied().collect());
            let timed_out = self.available.wait_for(&mut state, self.timeout).timed_out();
            if timed_out {
                state.waits_for.remove(&txn);
                self.timeouts.inc();
                drop(state);
                finish_wait(wait_span);
                return Err(DbError::LockTimeout { txn, what: target.to_string() });
            }
        }
    }

    /// Try to acquire without blocking; `Ok(false)` when it would block.
    pub fn try_acquire(&self, txn: u64, target: LockTarget, mode: LockMode) -> DbResult<bool> {
        let mut state = self.state.lock();
        if state.conflicts(&target, txn, mode).is_empty() {
            state.grant(target, txn, mode);
            self.acquisitions.inc();
            self.by_mode[mode_index(mode)].inc();
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Release every lock held by `txn` (end of strict 2PL).
    pub fn release_all(&self, txn: u64) {
        let mut state = self.state.lock();
        if let Some(targets) = state.held.remove(&txn) {
            for target in targets {
                if let Some(holders) = state.granted.get_mut(&target) {
                    holders.remove(&txn);
                    if holders.is_empty() {
                        state.granted.remove(&target);
                    }
                }
            }
        }
        state.waits_for.remove(&txn);
        self.available.notify_all();
    }

    /// Forcibly release every lock held by every transaction — restart
    /// recovery after a crash (in-flight transactions are gone).
    pub fn reset(&self) {
        let mut state = self.state.lock();
        state.granted.clear();
        state.held.clear();
        state.waits_for.clear();
        self.available.notify_all();
    }

    /// The mode `txn` holds on `target`, if any.
    pub fn held_mode(&self, txn: u64, target: LockTarget) -> Option<LockMode> {
        self.state.lock().granted.get(&target).and_then(|h| h.get(&txn)).copied()
    }

    /// Number of distinct granules currently locked (diagnostics).
    pub fn locked_granules(&self) -> usize {
        self.state.lock().granted.len()
    }

    /// Sizes of the three internal tables, `(granted targets, holding
    /// transactions, waiting transactions)` — hygiene diagnostics: after
    /// every transaction has ended (commit, abort, or deadlock-victim
    /// abort), all three must be zero or the table is leaking entries.
    pub fn table_sizes(&self) -> (usize, usize, usize) {
        let state = self.state.lock();
        (state.granted.len(), state.held.len(), state.waits_for.len())
    }

    /// Do the internal tables hold any trace of `txn`? Used by tests to
    /// prove `release_all` is complete: a transaction that ended must
    /// not linger in `granted`, `held`, or `waits_for` — including as a
    /// *wait-edge target* inside another transaction's entry.
    pub fn knows_txn(&self, txn: u64) -> bool {
        let state = self.state.lock();
        state.held.contains_key(&txn)
            || state.waits_for.contains_key(&txn)
            || state.granted.values().any(|holders| holders.contains_key(&txn))
            || state.waits_for.values().any(|targets| targets.contains(&txn))
    }

    // ------------------------------------------------------------------
    // Protocol helpers: the granularity hierarchy
    // ------------------------------------------------------------------

    /// Lock an object for reading: `IS` on database and class, `S` on
    /// the object.
    pub fn lock_object_read(&self, txn: u64, oid: Oid) -> DbResult<()> {
        self.acquire(txn, LockTarget::Database, LockMode::IS)?;
        self.acquire(txn, LockTarget::Class(oid.class()), LockMode::IS)?;
        self.acquire(txn, LockTarget::Object(oid), LockMode::S)
    }

    /// Lock an object for writing: `IX` on database and class, `X` on
    /// the object.
    pub fn lock_object_write(&self, txn: u64, oid: Oid) -> DbResult<()> {
        self.acquire(txn, LockTarget::Database, LockMode::IX)?;
        self.acquire(txn, LockTarget::Class(oid.class()), LockMode::IX)?;
        self.acquire(txn, LockTarget::Object(oid), LockMode::X)
    }

    /// Lock a class extent for scanning: `IS` on the database, `S` on
    /// the class (covers all its instances at once).
    pub fn lock_class_read(&self, txn: u64, class: ClassId) -> DbResult<()> {
        self.acquire(txn, LockTarget::Database, LockMode::IS)?;
        self.acquire(txn, LockTarget::Class(class), LockMode::S)
    }

    /// Lock a class extent for bulk writes: `IX` on the database, `X` on
    /// the class.
    pub fn lock_class_write(&self, txn: u64, class: ClassId) -> DbResult<()> {
        self.acquire(txn, LockTarget::Database, LockMode::IX)?;
        self.acquire(txn, LockTarget::Class(class), LockMode::X)
    }

    /// Class-hierarchy locking for schema changes (\[GARZ88\]): `X` on the
    /// changed class *and every subclass* (the caller passes the subtree
    /// — the catalog owns that computation).
    pub fn lock_schema_change(&self, txn: u64, subtree: &[ClassId]) -> DbResult<()> {
        self.acquire(txn, LockTarget::Database, LockMode::IX)?;
        for class in subtree {
            self.acquire(txn, LockTarget::Class(*class), LockMode::X)?;
        }
        Ok(())
    }

    /// Hierarchy-scoped query locking: `S` on every class in the scope,
    /// so a schema change (which needs subtree `X`) cannot interleave.
    pub fn lock_hierarchy_read(&self, txn: u64, subtree: &[ClassId]) -> DbResult<()> {
        self.acquire(txn, LockTarget::Database, LockMode::IS)?;
        for class in subtree {
            self.acquire(txn, LockTarget::Class(*class), LockMode::S)?;
        }
        Ok(())
    }
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager").field("locked_granules", &self.locked_granules()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn oid(class: u16, s: u64) -> Oid {
        Oid::new(ClassId(class), s)
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.lock_object_read(1, oid(1, 1)).unwrap();
        lm.lock_object_read(2, oid(1, 1)).unwrap();
        assert_eq!(lm.held_mode(1, LockTarget::Object(oid(1, 1))), Some(LockMode::S));
        lm.release_all(1);
        lm.release_all(2);
        assert_eq!(lm.locked_granules(), 0);
    }

    #[test]
    fn exclusive_conflicts_block_and_timeout() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.lock_object_write(1, oid(1, 1)).unwrap();
        let err = lm.lock_object_write(2, oid(1, 1)).unwrap_err();
        assert!(matches!(err, DbError::LockTimeout { txn: 2, .. }));
    }

    #[test]
    fn intention_locks_let_disjoint_writers_proceed() {
        let lm = LockManager::new();
        lm.lock_object_write(1, oid(1, 1)).unwrap();
        // Different object of the same class: only IX on the class, fine.
        lm.lock_object_write(2, oid(1, 2)).unwrap();
        assert_eq!(lm.held_mode(1, LockTarget::Class(ClassId(1))), Some(LockMode::IX));
    }

    #[test]
    fn class_scan_blocks_object_writer() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.lock_class_read(1, ClassId(1)).unwrap(); // S on class
        // Writer needs IX on the class: incompatible with S.
        let err = lm.lock_object_write(2, oid(1, 5)).unwrap_err();
        assert!(matches!(err, DbError::LockTimeout { .. }));
        lm.release_all(1);
        lm.lock_object_write(2, oid(1, 5)).unwrap();
    }

    #[test]
    fn class_scan_coexists_with_reader() {
        let lm = LockManager::new();
        lm.lock_class_read(1, ClassId(1)).unwrap();
        lm.lock_object_read(2, oid(1, 5)).unwrap(); // IS vs S: fine
    }

    #[test]
    fn schema_change_excludes_hierarchy_readers() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        let subtree = [ClassId(1), ClassId(2), ClassId(3)];
        lm.lock_hierarchy_read(1, &subtree).unwrap();
        let err = lm.lock_schema_change(2, &subtree).unwrap_err();
        assert!(matches!(err, DbError::LockTimeout { .. }));
        lm.release_all(1);
        lm.lock_schema_change(2, &subtree).unwrap();
        // Now even a single-object reader in the subtree blocks.
        let err = lm.lock_object_read(3, oid(2, 1)).unwrap_err();
        assert!(matches!(err, DbError::LockTimeout { .. }));
    }

    #[test]
    fn upgrade_read_to_write() {
        let lm = LockManager::new();
        lm.lock_object_read(1, oid(1, 1)).unwrap();
        lm.lock_object_write(1, oid(1, 1)).unwrap();
        assert_eq!(lm.held_mode(1, LockTarget::Object(oid(1, 1))), Some(LockMode::X));
        // Class mode combined IS + IX = IX.
        assert_eq!(lm.held_mode(1, LockTarget::Class(ClassId(1))), Some(LockMode::IX));
    }

    #[test]
    fn deadlock_detected_on_cross_upgrade() {
        let lm = Arc::new(LockManager::with_timeout(Duration::from_secs(10)));
        let a = oid(1, 1);
        let b = oid(1, 2);
        lm.lock_object_write(1, a).unwrap();
        lm.lock_object_write(2, b).unwrap();
        let lm2 = Arc::clone(&lm);
        let t = std::thread::spawn(move || {
            // Txn 1 wants b (held by 2): blocks.
            lm2.lock_object_write(1, b)
        });
        std::thread::sleep(Duration::from_millis(100));
        // Txn 2 wants a (held by 1): closes the cycle — deadlock.
        let err = lm.lock_object_write(2, a).unwrap_err();
        assert!(matches!(err, DbError::Deadlock { victim: 2 }));
        // Victim aborts, releasing its locks; txn 1 proceeds.
        lm.release_all(2);
        t.join().unwrap().unwrap();
        lm.release_all(1);
        assert_eq!(lm.locked_granules(), 0);
    }

    #[test]
    fn blocked_writer_wakes_on_release() {
        let lm = Arc::new(LockManager::new());
        lm.lock_object_write(1, oid(1, 1)).unwrap();
        let lm2 = Arc::clone(&lm);
        let t = std::thread::spawn(move || lm2.lock_object_write(2, oid(1, 1)));
        std::thread::sleep(Duration::from_millis(50));
        lm.release_all(1);
        t.join().unwrap().unwrap();
        assert_eq!(lm.held_mode(2, LockTarget::Object(oid(1, 1))), Some(LockMode::X));
    }

    #[test]
    fn stats_count_grants_waits_deadlocks_timeouts() {
        let lm = Arc::new(LockManager::with_timeout(Duration::from_millis(50)));
        lm.lock_object_read(1, oid(1, 1)).unwrap(); // 3 grants (IS, IS, S)
        assert_eq!(lm.stats().acquisitions, 3);
        assert_eq!(lm.stats().is_acquisitions, 2, "IS on database + class");
        assert_eq!(lm.stats().s_acquisitions, 1, "S on the object");
        assert_eq!(lm.stats().ix_acquisitions, 0);
        assert_eq!(lm.stats().x_acquisitions, 0);
        assert_eq!(lm.stats().waits, 0);

        // A conflicting writer waits, then times out.
        let err = lm.lock_object_write(2, oid(1, 1)).unwrap_err();
        assert!(matches!(err, DbError::LockTimeout { .. }));
        let s = lm.stats();
        assert_eq!(s.waits, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.wait_latency.count, 1, "the timed-out wait was measured");
        assert!(s.wait_latency.sum_micros >= 50_000, "waited at least the timeout");

        // A blocked-then-granted acquisition records its wait too.
        let lm2 = Arc::clone(&lm);
        let t = std::thread::spawn(move || lm2.lock_object_write(3, oid(1, 1)));
        std::thread::sleep(Duration::from_millis(10));
        lm.release_all(1);
        t.join().unwrap().unwrap();
        let s = lm.stats();
        assert_eq!(s.waits, 2);
        assert_eq!(s.wait_latency.count, 2);

        // Deadlock victims are counted.
        lm.release_all(3);
        lm.reset_stats();
        let a = oid(2, 1);
        let b = oid(2, 2);
        lm.lock_object_write(10, a).unwrap();
        lm.lock_object_write(11, b).unwrap();
        let lm2 = Arc::clone(&lm);
        let t = std::thread::spawn(move || lm2.lock_object_write(10, b));
        std::thread::sleep(Duration::from_millis(10));
        let err = lm.lock_object_write(11, a).unwrap_err();
        assert!(matches!(err, DbError::Deadlock { victim: 11 }));
        assert_eq!(lm.stats().deadlock_victims, 1);
        lm.release_all(11);
        t.join().unwrap().unwrap();
        lm.release_all(10);
    }

    #[test]
    fn try_acquire_never_blocks() {
        let lm = LockManager::new();
        lm.lock_object_write(1, oid(1, 1)).unwrap();
        assert!(!lm.try_acquire(2, LockTarget::Object(oid(1, 1)), LockMode::X).unwrap());
        assert!(lm.try_acquire(2, LockTarget::Object(oid(1, 2)), LockMode::X).unwrap());
    }

    /// Table hygiene: whatever way a transaction ends — plain release
    /// after commit, release after a timeout, or release as a deadlock
    /// victim — `release_all` must leave no trace of it in `granted`,
    /// `held`, or `waits_for`.
    #[test]
    fn release_all_leaves_no_stale_entries() {
        let lm = Arc::new(LockManager::with_timeout(Duration::from_millis(50)));

        // 1. Plain commit path.
        lm.lock_object_write(1, oid(1, 1)).unwrap();
        lm.lock_class_read(1, ClassId(9)).unwrap();
        lm.release_all(1);
        assert!(!lm.knows_txn(1), "committed txn lingers in the table");
        assert_eq!(lm.table_sizes(), (0, 0, 0));

        // 2. Timed-out waiter: its wait edges must not outlive it.
        lm.lock_object_write(2, oid(1, 1)).unwrap();
        let err = lm.lock_object_write(3, oid(1, 1)).unwrap_err();
        assert!(matches!(err, DbError::LockTimeout { .. }));
        lm.release_all(3);
        assert!(!lm.knows_txn(3), "timed-out txn lingers in the table");
        lm.release_all(2);
        assert_eq!(lm.table_sizes(), (0, 0, 0));

        // 3. Deadlock victim: the victim's abort must clear both its
        // grants and its wait edges; the survivor then completes.
        let a = oid(2, 1);
        let b = oid(2, 2);
        lm.lock_object_write(10, a).unwrap();
        lm.lock_object_write(11, b).unwrap();
        let lm2 = Arc::clone(&lm);
        let t = std::thread::spawn(move || lm2.lock_object_write(10, b));
        std::thread::sleep(Duration::from_millis(10));
        let err = lm.lock_object_write(11, a).unwrap_err();
        assert!(matches!(err, DbError::Deadlock { victim: 11 }));
        lm.release_all(11);
        // The survivor's `waits_for` edge pointing at the victim is only
        // refreshed when the survivor wakes, so assert after it is granted.
        t.join().unwrap().unwrap();
        assert!(!lm.knows_txn(11), "deadlock victim lingers in the table");
        lm.release_all(10);
        assert!(!lm.knows_txn(10));
        assert_eq!(lm.table_sizes(), (0, 0, 0), "quiescent table is empty");
    }

    #[test]
    fn concurrent_disjoint_writers_make_progress() {
        let lm = Arc::new(LockManager::new());
        crossbeam::scope(|scope| {
            for t in 0..8u64 {
                let lm = Arc::clone(&lm);
                scope.spawn(move |_| {
                    for i in 0..100u64 {
                        let o = oid(1, t * 1000 + i);
                        lm.lock_object_write(t, o).unwrap();
                    }
                    lm.release_all(t);
                });
            }
        })
        .unwrap();
        assert_eq!(lm.locked_granules(), 0);
    }
}
