//! Granular lock modes and their algebra.

/// The five granular locking modes.
///
/// Intention modes (`IS`, `IX`) are taken on ancestors in the
/// granularity hierarchy before locking a descendant; `SIX` is the
/// classic "read all, write some" combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intention to take `S` locks below.
    IS,
    /// Intention to take `X` locks below.
    IX,
    /// Shared: read this whole granule.
    S,
    /// Shared + intention exclusive: read all, write selected children.
    SIX,
    /// Exclusive: read/write this whole granule.
    X,
}

impl LockMode {
    /// The standard compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IS, X) | (X, IS) => false,
            (IS, _) | (_, IS) => true,
            (IX, IX) => true,
            (IX, _) | (_, IX) => false,
            (S, S) => true,
            (S, _) | (_, S) => false,
            _ => false, // SIX/X vs SIX/X
        }
    }

    /// The least upper bound of two held modes (for lock upgrades):
    /// a transaction holding `a` that requests `b` ends up holding
    /// `a.combine(b)`.
    pub fn combine(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (X, _) | (_, X) => X,
            (SIX, _) | (_, SIX) => SIX,
            (S, IX) | (IX, S) => SIX,
            (S, IS) | (IS, S) => S,
            (IX, IS) | (IS, IX) => IX,
            _ => unreachable!("equal cases handled above"),
        }
    }

    /// Does holding `self` imply the permissions of `other`?
    pub fn covers(self, other: LockMode) -> bool {
        self.combine(other) == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    const ALL: [LockMode; 5] = [IS, IX, S, SIX, X];

    #[test]
    fn matrix_matches_textbook() {
        let expect = [
            // (a, b, compatible)
            (IS, IS, true),
            (IS, IX, true),
            (IS, S, true),
            (IS, SIX, true),
            (IS, X, false),
            (IX, IX, true),
            (IX, S, false),
            (IX, SIX, false),
            (IX, X, false),
            (S, S, true),
            (S, SIX, false),
            (S, X, false),
            (SIX, SIX, false),
            (SIX, X, false),
            (X, X, false),
        ];
        for (a, b, want) in expect {
            assert_eq!(a.compatible(b), want, "{a:?} vs {b:?}");
            assert_eq!(b.compatible(a), want, "matrix is symmetric");
        }
    }

    #[test]
    fn combine_is_commutative_upper_bound() {
        for a in ALL {
            for b in ALL {
                let c = a.combine(b);
                assert_eq!(c, b.combine(a));
                assert!(c.covers(a), "{c:?} covers {a:?}");
                assert!(c.covers(b), "{c:?} covers {b:?}");
            }
        }
    }

    #[test]
    fn classic_upgrade_cases() {
        assert_eq!(S.combine(IX), SIX);
        assert_eq!(S.combine(X), X);
        assert_eq!(IS.combine(IX), IX);
        assert_eq!(SIX.combine(S), SIX);
    }

    #[test]
    fn covers_is_reflexive() {
        for a in ALL {
            assert!(a.covers(a));
        }
        assert!(X.covers(S));
        assert!(!S.covers(X));
        assert!(SIX.covers(IX));
        assert!(!IX.covers(S));
    }
}
