//! Property tests: the B+-tree against `std::collections::BTreeMap`.

use orion_index::BTree;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

#[derive(Debug, Clone)]
enum Op {
    Insert(i32, u32),
    Remove(i32),
    Get(i32),
    Range(i32, i32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let key = -200i32..200;
    proptest::collection::vec(
        prop_oneof![
            (key.clone(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
            key.clone().prop_map(Op::Remove),
            key.clone().prop_map(Op::Get),
            (key.clone(), key).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
        ],
        0..400,
    )
}

proptest! {
    #[test]
    fn btree_matches_std_model(ops in arb_ops(), order in 3usize..16) {
        let mut tree: BTree<i32, u32> = BTree::with_order(order);
        let mut model: BTreeMap<i32, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k), model.get(&k));
                }
                Op::Range(lo, hi) => {
                    let got: Vec<(i32, u32)> = tree
                        .range(Bound::Included(&lo), Bound::Excluded(&hi))
                        .map(|(k, v)| (*k, *v))
                        .collect();
                    let want: Vec<(i32, u32)> =
                        model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        // Final full iteration agrees.
        let got: Vec<(i32, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i32, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn btree_sequential_heavy(n in 1usize..2000, order in 3usize..8) {
        let mut tree: BTree<usize, usize> = BTree::with_order(order);
        for i in 0..n {
            tree.insert(i, i);
        }
        prop_assert_eq!(tree.len(), n);
        for i in (0..n).step_by(3) {
            prop_assert_eq!(tree.remove(&i), Some(i));
        }
        let expect: Vec<usize> = (0..n).filter(|i| i % 3 != 0).collect();
        let got: Vec<usize> = tree.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(got, expect);
    }
}
