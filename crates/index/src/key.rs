//! Ordered key wrapper over [`Value`].

use orion_types::Value;
use std::cmp::Ordering;

/// A [`Value`] usable as a B+-tree key: total order via
/// [`Value::cmp_total`] (so `Int(1)` and `Float(1.0)` collate together,
/// NaN has a defined position, and cross-variant keys rank by kind).
#[derive(Debug, Clone)]
pub struct KeyVal(pub Value);

impl PartialEq for KeyVal {
    fn eq(&self, other: &Self) -> bool {
        self.0.cmp_total(&other.0) == Ordering::Equal
    }
}
impl Eq for KeyVal {}

impl PartialOrd for KeyVal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KeyVal {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp_total(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_order_follows_total_order() {
        let mut keys =
            [KeyVal(Value::Int(3)), KeyVal(Value::Float(1.5)), KeyVal(Value::Int(2))];
        keys.sort();
        assert_eq!(keys[0], KeyVal(Value::Float(1.5)));
        assert_eq!(keys[1], KeyVal(Value::Int(2)));
        assert_eq!(keys[2], KeyVal(Value::Int(3)));
    }

    #[test]
    fn numeric_equality_across_variants() {
        assert_eq!(KeyVal(Value::Int(1)), KeyVal(Value::Float(1.0)));
    }
}
