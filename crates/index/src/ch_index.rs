//! The class-hierarchy index (\[KIM89b\], §3.2).
//!
//! "Since the indexed attribute is common to all classes in the class
//! hierarchy rooted at the user-specified target class, it makes sense
//! to maintain one index on the attribute for all the classes in the
//! class hierarchy rooted at the target class."
//!
//! One B+-tree serves every class in the hierarchy; each key's leaf
//! entry carries a *class directory* — per-class posting lists — so a
//! query scoped to any subset of the hierarchy (the whole subtree, a
//! nested subtree, or a single class) reads one tree and filters the
//! directory, instead of probing one tree per class.

use crate::btree::BTree;
use crate::key::KeyVal;
use orion_types::{ClassId, Oid, Value};
use std::ops::Bound;

/// Per-key directory: posting lists partitioned by class.
#[derive(Debug, Clone, Default)]
pub struct ClassDirectory {
    /// `(class, sorted postings)`, sorted by class id. Hierarchies are
    /// small (tens of classes), so a sorted vec beats a map.
    lists: Vec<(ClassId, Vec<Oid>)>,
}

impl ClassDirectory {
    fn insert(&mut self, oid: Oid) -> bool {
        let class = oid.class();
        match self.lists.binary_search_by_key(&class, |(c, _)| *c) {
            Ok(i) => {
                let postings = &mut self.lists[i].1;
                match postings.binary_search(&oid) {
                    Ok(_) => false,
                    Err(pos) => {
                        postings.insert(pos, oid);
                        true
                    }
                }
            }
            Err(i) => {
                self.lists.insert(i, (class, vec![oid]));
                true
            }
        }
    }

    fn remove(&mut self, oid: Oid) -> bool {
        let class = oid.class();
        if let Ok(i) = self.lists.binary_search_by_key(&class, |(c, _)| *c) {
            let postings = &mut self.lists[i].1;
            if let Ok(pos) = postings.binary_search(&oid) {
                postings.remove(pos);
                if postings.is_empty() {
                    self.lists.remove(i);
                }
                return true;
            }
        }
        false
    }

    fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Append postings for classes in `scope` (sorted; `None` = all).
    fn collect(&self, scope: Option<&[ClassId]>, out: &mut Vec<Oid>) {
        match scope {
            None => {
                for (_, postings) in &self.lists {
                    out.extend_from_slice(postings);
                }
            }
            Some(classes) => {
                // Iterate the smaller side.
                if classes.len() < self.lists.len() {
                    for c in classes {
                        if let Ok(i) = self.lists.binary_search_by_key(c, |(cc, _)| *cc) {
                            out.extend_from_slice(&self.lists[i].1);
                        }
                    }
                } else {
                    for (c, postings) in &self.lists {
                        if classes.binary_search(c).is_ok() {
                            out.extend_from_slice(postings);
                        }
                    }
                }
            }
        }
    }
}

/// A class-hierarchy index: one tree for an attribute across a hierarchy.
#[derive(Debug, Clone, Default)]
pub struct ClassHierarchyIndex {
    tree: BTree<KeyVal, ClassDirectory>,
    entries: usize,
}

impl ClassHierarchyIndex {
    /// An empty index.
    pub fn new() -> Self {
        ClassHierarchyIndex::default()
    }

    /// Register `oid` (whose class is taken from the OID tag) under `key`.
    pub fn insert(&mut self, key: Value, oid: Oid) {
        let k = KeyVal(key);
        match self.tree.get_mut(&k) {
            Some(dir) => {
                if dir.insert(oid) {
                    self.entries += 1;
                }
            }
            None => {
                let mut dir = ClassDirectory::default();
                dir.insert(oid);
                self.tree.insert(k, dir);
                self.entries += 1;
            }
        }
    }

    /// Remove `oid` from under `key`.
    pub fn remove(&mut self, key: &Value, oid: Oid) -> bool {
        let k = KeyVal(key.clone());
        let (removed, now_empty) = match self.tree.get_mut(&k) {
            Some(dir) => (dir.remove(oid), dir.is_empty()),
            None => (false, false),
        };
        if now_empty {
            self.tree.remove(&k);
        }
        if removed {
            self.entries -= 1;
        }
        removed
    }

    /// OIDs under exactly `key`, restricted to `scope` classes (sorted
    /// ascending; `None` = every class in the hierarchy).
    pub fn lookup_eq(&self, key: &Value, scope: Option<&[ClassId]>) -> Vec<Oid> {
        let mut out = Vec::new();
        if let Some(dir) = self.tree.get(&KeyVal(key.clone())) {
            dir.collect(scope, &mut out);
        }
        out
    }

    /// OIDs with keys in range, restricted to `scope`.
    pub fn lookup_range(
        &self,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
        scope: Option<&[ClassId]>,
    ) -> Vec<Oid> {
        let lk;
        let lower = match lower {
            Bound::Included(v) => {
                lk = KeyVal(v.clone());
                Bound::Included(&lk)
            }
            Bound::Excluded(v) => {
                lk = KeyVal(v.clone());
                Bound::Excluded(&lk)
            }
            Bound::Unbounded => Bound::Unbounded,
        };
        let uk;
        let upper = match upper {
            Bound::Included(v) => {
                uk = KeyVal(v.clone());
                Bound::Included(&uk)
            }
            Bound::Excluded(v) => {
                uk = KeyVal(v.clone());
                Bound::Excluded(&uk)
            }
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (_, dir) in self.tree.range(lower, upper) {
            dir.collect(scope, &mut out);
        }
        out
    }

    /// Total `(key, oid)` entries across all classes.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.tree.len()
    }

    /// Smallest and largest keys present, if any.
    pub fn key_bounds(&self) -> Option<(Value, Value)> {
        let lo = self.tree.first_key()?.0.clone();
        let hi = self.tree.last_key()?.0.clone();
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(class: u16, s: u64) -> Oid {
        Oid::new(ClassId(class), s)
    }

    #[test]
    fn directory_partitions_by_class() {
        let mut idx = ClassHierarchyIndex::new();
        // Vehicle = 1, Automobile = 2, Truck = 3.
        idx.insert(Value::Int(8000), oid(1, 1));
        idx.insert(Value::Int(8000), oid(2, 2));
        idx.insert(Value::Int(8000), oid(3, 3));
        idx.insert(Value::Int(5000), oid(3, 4));

        // Whole hierarchy.
        assert_eq!(idx.lookup_eq(&Value::Int(8000), None).len(), 3);
        // Single class.
        assert_eq!(idx.lookup_eq(&Value::Int(8000), Some(&[ClassId(2)])), vec![oid(2, 2)]);
        // Subset.
        let got = idx.lookup_eq(&Value::Int(8000), Some(&[ClassId(1), ClassId(3)]));
        assert_eq!(got, vec![oid(1, 1), oid(3, 3)]);
        // Class not present under the key.
        assert!(idx.lookup_eq(&Value::Int(5000), Some(&[ClassId(2)])).is_empty());
    }

    #[test]
    fn range_scoped_lookup() {
        let mut idx = ClassHierarchyIndex::new();
        for i in 0..100i64 {
            let class = 1 + (i % 3) as u16;
            idx.insert(Value::Int(i), oid(class, i as u64));
        }
        let all = idx.lookup_range(
            Bound::Included(&Value::Int(0)),
            Bound::Excluded(&Value::Int(30)),
            None,
        );
        assert_eq!(all.len(), 30);
        let only_c2 = idx.lookup_range(
            Bound::Included(&Value::Int(0)),
            Bound::Excluded(&Value::Int(30)),
            Some(&[ClassId(2)]),
        );
        assert_eq!(only_c2.len(), 10);
        assert!(only_c2.iter().all(|o| o.class() == ClassId(2)));
    }

    #[test]
    fn remove_cleans_directories() {
        let mut idx = ClassHierarchyIndex::new();
        idx.insert(Value::Int(1), oid(1, 1));
        idx.insert(Value::Int(1), oid(2, 2));
        assert!(idx.remove(&Value::Int(1), oid(1, 1)));
        assert!(!idx.remove(&Value::Int(1), oid(1, 1)));
        assert_eq!(idx.lookup_eq(&Value::Int(1), None), vec![oid(2, 2)]);
        assert!(idx.remove(&Value::Int(1), oid(2, 2)));
        assert_eq!(idx.distinct_keys(), 0);
        assert!(idx.is_empty());
    }

    #[test]
    fn duplicate_insert_no_op() {
        let mut idx = ClassHierarchyIndex::new();
        idx.insert(Value::Int(1), oid(1, 1));
        idx.insert(Value::Int(1), oid(1, 1));
        assert_eq!(idx.len(), 1);
    }
}
