//! Indexing for orion: a from-scratch B+-tree and the three index
//! species the paper's §3.2 derives from the object-oriented data model.
//!
//! "The aggregation and generalization relationships captured in an
//! object-oriented data model require changes to the semantics of
//! indexes ... these relationships suggest different types of indexing:
//! class-hierarchy indexing along a class hierarchy, and nested indexing
//! along an aggregation hierarchy."
//!
//! * [`BTree`] — the underlying arena B+-tree with leaf chaining,
//! * [`SingleClassIndex`] — the relational-style per-class baseline,
//! * [`ClassHierarchyIndex`] — one tree per attribute per hierarchy,
//!   with per-key class directories (\[KIM89b\]; experiment E1),
//! * [`IndexKind::Nested`] — nested-attribute indexes (\[BERT89\];
//!   experiment E2), physically a [`ClassHierarchyIndex`] whose postings
//!   are root objects and whose keys come from the end of an
//!   aggregation path (path evaluation and maintenance live in
//!   `orion-core`, which owns reverse references).

pub mod btree;
pub mod ch_index;
pub mod def;
pub mod key;
pub mod sc_index;

pub use btree::BTree;
pub use ch_index::{ClassDirectory, ClassHierarchyIndex};
pub use def::{IndexDef, IndexImpl, IndexInstance, IndexKind};
pub use key::KeyVal;
pub use sc_index::SingleClassIndex;
