//! An arena-based B+-tree.
//!
//! Why not `std::collections::BTreeMap`? Two reasons. First, the
//! class-hierarchy index needs per-key *class directories* in its leaves
//! and cheap key-range scans restricted to a class subset (\[KIM89b\]) —
//! the stored value is structured, and scans dominate. Second, the index
//! experiments (E1/E2) are about index architecture, so the index has to
//! be ours, with inspectable structure (node counts, height).
//!
//! Design: nodes live in an arena (`Vec<Node>`) addressed by index;
//! leaves form a doubly-linked chain for range scans; deletion removes
//! empty nodes but does not rebalance (the classic lazy-deletion
//! trade-off — structure stays correct, occupancy may degrade under
//! adversarial delete patterns; many production systems do the same).

use std::fmt::Debug;
use std::ops::Bound;

const DEFAULT_ORDER: usize = 64;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf { keys: Vec<K>, vals: Vec<V>, prev: Option<usize>, next: Option<usize> },
    Internal { keys: Vec<K>, children: Vec<usize> },
    Free,
}

/// A B+-tree mapping `K` to `V`.
#[derive(Debug, Clone)]
pub struct BTree<K, V> {
    nodes: Vec<Node<K, V>>,
    root: usize,
    first_leaf: usize,
    order: usize,
    len: usize,
    free: Vec<usize>,
}

impl<K: Ord + Clone + Debug, V> Default for BTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Debug, V> BTree<K, V> {
    /// An empty tree with the default node order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// An empty tree whose nodes hold at most `order` keys.
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "B+-tree order must be at least 3");
        let root = Node::Leaf { keys: Vec::new(), vals: Vec::new(), prev: None, next: None };
        BTree { nodes: vec![root], root: 0, first_leaf: 0, order, len: 0, free: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut at = self.root;
        loop {
            match &self.nodes[at] {
                Node::Internal { children, .. } => {
                    at = children[0];
                    h += 1;
                }
                _ => return h,
            }
        }
    }

    /// Number of live nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| !matches!(n, Node::Free)).count()
    }

    fn alloc(&mut self, node: Node<K, V>) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn release(&mut self, idx: usize) {
        self.nodes[idx] = Node::Free;
        self.free.push(idx);
    }

    /// Descend from the root to the leaf that would hold `key`,
    /// recording `(node, child_position)` for every internal node.
    fn descend(&self, key: &K) -> (usize, Vec<(usize, usize)>) {
        let mut path = Vec::new();
        let mut at = self.root;
        loop {
            match &self.nodes[at] {
                Node::Internal { keys, children } => {
                    // children[i] holds keys < keys[i]; keys[i] is the
                    // minimum key of children[i + 1].
                    let pos = keys.partition_point(|k| k <= key);
                    path.push((at, pos));
                    at = children[pos];
                }
                Node::Leaf { .. } => return (at, path),
                Node::Free => unreachable!("descended into a freed node"),
            }
        }
    }

    /// Get the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let (leaf, _) = self.descend(key);
        match &self.nodes[leaf] {
            Node::Leaf { keys, vals, .. } => {
                keys.binary_search(key).ok().map(|i| &vals[i])
            }
            _ => unreachable!(),
        }
    }

    /// Get a mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let (leaf, _) = self.descend(key);
        match &mut self.nodes[leaf] {
            Node::Leaf { keys, vals, .. } => match keys.binary_search(key) {
                Ok(i) => Some(&mut vals[i]),
                Err(_) => None,
            },
            _ => unreachable!(),
        }
    }

    /// Insert `key → val`; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        let (leaf, path) = self.descend(&key);
        let replaced = match &mut self.nodes[leaf] {
            Node::Leaf { keys, vals, .. } => match keys.binary_search(&key) {
                Ok(i) => Some(std::mem::replace(&mut vals[i], val)),
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, val);
                    None
                }
            },
            _ => unreachable!(),
        };
        if replaced.is_some() {
            return replaced;
        }
        self.len += 1;
        self.split_up(leaf, path);
        None
    }

    /// Split `node` if overfull, propagating up `path`.
    fn split_up(&mut self, mut node: usize, mut path: Vec<(usize, usize)>) {
        loop {
            let (sep, right) = {
                let order = self.order;
                match &mut self.nodes[node] {
                    Node::Leaf { keys, vals, next, .. } => {
                        if keys.len() <= order {
                            return;
                        }
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_vals = vals.split_off(mid);
                        let sep = right_keys[0].clone();
                        let old_next = *next;
                        let right = Node::Leaf {
                            keys: right_keys,
                            vals: right_vals,
                            prev: Some(node),
                            next: old_next,
                        };
                        (sep, right)
                    }
                    Node::Internal { keys, children } => {
                        if keys.len() <= order {
                            return;
                        }
                        let mid = keys.len() / 2;
                        // Separator moves up; right node gets keys after it.
                        let sep = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // drop the separator from the left node
                        let right_children = children.split_off(mid + 1);
                        let right = Node::Internal { keys: right_keys, children: right_children };
                        (sep, right)
                    }
                    Node::Free => unreachable!(),
                }
            };
            let right_idx = self.alloc(right);
            // Fix leaf chain links.
            if let Node::Leaf { next, .. } = &mut self.nodes[node] {
                let old_next = *next;
                *next = Some(right_idx);
                if let Some(n) = old_next {
                    if let Node::Leaf { prev, .. } = &mut self.nodes[n] {
                        *prev = Some(right_idx);
                    }
                }
            }
            match path.pop() {
                Some((parent, pos)) => {
                    match &mut self.nodes[parent] {
                        Node::Internal { keys, children } => {
                            keys.insert(pos, sep);
                            children.insert(pos + 1, right_idx);
                        }
                        _ => unreachable!(),
                    }
                    node = parent;
                }
                None => {
                    // Split the root: grow a new root.
                    let new_root =
                        self.alloc(Node::Internal { keys: vec![sep], children: vec![node, right_idx] });
                    self.root = new_root;
                    return;
                }
            }
        }
    }

    /// Remove `key`; returns its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (leaf, path) = self.descend(key);
        let removed = match &mut self.nodes[leaf] {
            Node::Leaf { keys, vals, .. } => match keys.binary_search(key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(vals.remove(i))
                }
                Err(_) => None,
            },
            _ => unreachable!(),
        };
        let removed = removed?;
        self.len -= 1;
        self.prune_if_empty(leaf, path);
        Some(removed)
    }

    /// Remove `node` from its parent chain if it became empty.
    fn prune_if_empty(&mut self, node: usize, mut path: Vec<(usize, usize)>) {
        let empty = match &self.nodes[node] {
            Node::Leaf { keys, .. } => keys.is_empty(),
            Node::Internal { children, .. } => children.is_empty(),
            Node::Free => return,
        };
        if !empty || node == self.root {
            // Collapse a root with a single child.
            self.collapse_root();
            return;
        }
        // Unlink a leaf from the chain.
        if let Node::Leaf { prev, next, .. } = &self.nodes[node] {
            let (prev, next) = (*prev, *next);
            if let Some(p) = prev {
                if let Node::Leaf { next: pn, .. } = &mut self.nodes[p] {
                    *pn = next;
                }
            }
            if let Some(n) = next {
                if let Node::Leaf { prev: np, .. } = &mut self.nodes[n] {
                    *np = prev;
                }
            }
            if self.first_leaf == node {
                self.first_leaf = next.unwrap_or(self.root);
            }
        }
        let (parent, pos) = path.pop().expect("non-root node must have a parent");
        match &mut self.nodes[parent] {
            Node::Internal { keys, children } => {
                children.remove(pos);
                if pos == 0 {
                    if !keys.is_empty() {
                        keys.remove(0);
                    }
                } else {
                    keys.remove(pos - 1);
                }
            }
            _ => unreachable!(),
        }
        self.release(node);
        self.prune_if_empty(parent, path);
    }

    fn collapse_root(&mut self) {
        loop {
            match &self.nodes[self.root] {
                Node::Internal { children, .. } if children.len() == 1 => {
                    let child = children[0];
                    let old_root = self.root;
                    self.root = child;
                    self.release(old_root);
                }
                Node::Internal { children, .. } if children.is_empty() => {
                    // Everything deleted: reset to a single empty leaf.
                    let old_root = self.root;
                    let leaf = self.alloc(Node::Leaf {
                        keys: Vec::new(),
                        vals: Vec::new(),
                        prev: None,
                        next: None,
                    });
                    self.root = leaf;
                    self.first_leaf = leaf;
                    self.release(old_root);
                }
                _ => return,
            }
        }
    }

    /// Iterate `(key, value)` pairs with keys in `range`, ascending.
    pub fn range<'a>(
        &'a self,
        lower: Bound<&K>,
        upper: Bound<&'a K>,
    ) -> impl Iterator<Item = (&'a K, &'a V)> + 'a {
        // Find the starting leaf and position.
        let (mut leaf, mut pos) = match &lower {
            Bound::Unbounded => (self.first_leaf, 0),
            Bound::Included(k) | Bound::Excluded(k) => {
                let (l, _) = self.descend(k);
                let p = match &self.nodes[l] {
                    Node::Leaf { keys, .. } => match &lower {
                        Bound::Included(k) => keys.partition_point(|x| x < *k),
                        Bound::Excluded(k) => keys.partition_point(|x| x <= *k),
                        Bound::Unbounded => 0,
                    },
                    _ => unreachable!(),
                };
                (l, p)
            }
        };
        // Skip exhausted leaves at the start.
        loop {
            match &self.nodes[leaf] {
                Node::Leaf { keys, next: Some(n), .. } if pos >= keys.len() => {
                    leaf = *n;
                    pos = 0;
                }
                _ => break,
            }
        }
        RangeIter { tree: self, leaf, pos, upper }
    }

    /// Iterate every `(key, value)` pair in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// The number of distinct keys (same as `len`; exists for symmetry
    /// with the posting-list indexes built on top).
    pub fn distinct_keys(&self) -> usize {
        self.len
    }

    /// The smallest key, if any (O(height)).
    pub fn first_key(&self) -> Option<&K> {
        let mut at = self.first_leaf;
        loop {
            match &self.nodes[at] {
                Node::Leaf { keys, next, .. } => {
                    if let Some(k) = keys.first() {
                        return Some(k);
                    }
                    at = (*next)?;
                }
                _ => return None,
            }
        }
    }

    /// The largest key, if any (O(height)).
    pub fn last_key(&self) -> Option<&K> {
        let mut at = self.root;
        loop {
            match &self.nodes[at] {
                Node::Internal { children, .. } => at = *children.last()?,
                Node::Leaf { keys, .. } => return keys.last(),
                Node::Free => return None,
            }
        }
    }
}

struct RangeIter<'a, K, V> {
    tree: &'a BTree<K, V>,
    leaf: usize,
    pos: usize,
    upper: Bound<&'a K>,
}

impl<'a, K: Ord + Clone + Debug, V> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match &self.tree.nodes[self.leaf] {
                Node::Leaf { keys, vals, next, .. } => {
                    if self.pos < keys.len() {
                        let key = &keys[self.pos];
                        let in_range = match self.upper {
                            Bound::Unbounded => true,
                            Bound::Included(u) => key <= u,
                            Bound::Excluded(u) => key < u,
                        };
                        if !in_range {
                            return None;
                        }
                        let val = &vals[self.pos];
                        self.pos += 1;
                        return Some((key, val));
                    }
                    match next {
                        Some(n) => {
                            self.leaf = *n;
                            self.pos = 0;
                        }
                        None => return None,
                    }
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_small() {
        let mut t: BTree<i32, String> = BTree::with_order(4);
        assert!(t.is_empty());
        for i in [5, 1, 9, 3, 7] {
            assert!(t.insert(i, format!("v{i}")).is_none());
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(&3), Some(&"v3".to_string()));
        assert_eq!(t.get(&4), None);
        assert_eq!(t.insert(3, "replaced".into()), Some("v3".into()));
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn splits_grow_height() {
        let mut t: BTree<u32, u32> = BTree::with_order(4);
        for i in 0..200 {
            t.insert(i, i * 2);
        }
        assert!(t.height() >= 3, "order-4 tree with 200 keys must be deep");
        for i in 0..200 {
            assert_eq!(t.get(&i), Some(&(i * 2)));
        }
        // In-order iteration is sorted and complete.
        let keys: Vec<u32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn reverse_and_random_insert_orders() {
        let mut t: BTree<i64, ()> = BTree::with_order(4);
        for i in (0..128).rev() {
            t.insert(i, ());
        }
        let keys: Vec<i64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..128).collect::<Vec<_>>());
    }

    #[test]
    fn range_bounds() {
        let mut t: BTree<i32, i32> = BTree::with_order(4);
        for i in 0..100 {
            t.insert(i, i);
        }
        let got: Vec<i32> =
            t.range(Bound::Included(&10), Bound::Excluded(&15)).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![10, 11, 12, 13, 14]);
        let got: Vec<i32> =
            t.range(Bound::Excluded(&95), Bound::Unbounded).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![96, 97, 98, 99]);
        let got: Vec<i32> =
            t.range(Bound::Unbounded, Bound::Included(&2)).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![0, 1, 2]);
        // Empty range.
        assert_eq!(t.range(Bound::Included(&200), Bound::Unbounded).count(), 0);
        assert_eq!(t.range(Bound::Included(&50), Bound::Excluded(&50)).count(), 0);
    }

    #[test]
    fn range_with_missing_boundary_keys() {
        let mut t: BTree<i32, ()> = BTree::with_order(4);
        for i in (0..100).step_by(10) {
            t.insert(i, ());
        }
        let got: Vec<i32> =
            t.range(Bound::Included(&15), Bound::Included(&45)).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![20, 30, 40]);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut t: BTree<u32, u32> = BTree::with_order(4);
        for i in 0..64 {
            t.insert(i, i);
        }
        for i in (0..64).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
        }
        assert_eq!(t.remove(&0), None, "double remove");
        assert_eq!(t.len(), 32);
        let keys: Vec<u32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (1..64).step_by(2).collect::<Vec<_>>());
        for i in (0..64).step_by(2) {
            t.insert(i, i + 100);
        }
        assert_eq!(t.len(), 64);
        assert_eq!(t.get(&0), Some(&100));
    }

    #[test]
    fn drain_everything_then_reuse() {
        let mut t: BTree<u32, ()> = BTree::with_order(4);
        for i in 0..100 {
            t.insert(i, ());
        }
        for i in 0..100 {
            assert!(t.remove(&i).is_some());
        }
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        // Tree remains usable.
        t.insert(42, ());
        assert_eq!(t.get(&42), Some(&()));
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t: BTree<u32, Vec<u32>> = BTree::with_order(4);
        t.insert(1, vec![1]);
        t.get_mut(&1).unwrap().push(2);
        assert_eq!(t.get(&1), Some(&vec![1, 2]));
        assert!(t.get_mut(&2).is_none());
    }

    #[test]
    fn node_count_shrinks_after_mass_delete() {
        let mut t: BTree<u32, ()> = BTree::with_order(4);
        for i in 0..1000 {
            t.insert(i, ());
        }
        let peak = t.node_count();
        for i in 0..1000 {
            t.remove(&i);
        }
        assert!(t.node_count() < peak / 4, "empty nodes must be pruned");
    }
}
