//! Index descriptors: what an index covers and how it is implemented.

use crate::ch_index::ClassHierarchyIndex;
use crate::sc_index::SingleClassIndex;
use orion_types::{ClassId, Oid, Value};
use std::ops::Bound;

/// The three index species of §3.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexKind {
    /// One attribute of one class (the relational-style baseline).
    SingleClass,
    /// One attribute across the class hierarchy rooted at the target.
    ClassHierarchy,
    /// A nested attribute (path of length ≥ 2) of the target class
    /// hierarchy: keys are values found at the end of the path, postings
    /// are *root* objects (\[BERT89\] nested-attribute index).
    Nested,
}

/// Descriptor for one index.
#[derive(Debug, Clone)]
pub struct IndexDef {
    /// Unique index id.
    pub id: u32,
    /// Human-readable name (unique).
    pub name: String,
    /// Index species.
    pub kind: IndexKind,
    /// The target class (for `SingleClass`) or hierarchy root.
    pub target: ClassId,
    /// The attribute-id path from the target class to the key value;
    /// length 1 for simple indexes, ≥ 2 for nested ones.
    pub path: Vec<u32>,
}

/// The physical index structure behind a descriptor.
///
/// Single-class indexes use a plain posting list per key; hierarchy and
/// nested indexes use per-key class directories (nested postings are
/// root objects, which may themselves span the root's hierarchy).
#[derive(Debug, Clone)]
pub enum IndexImpl {
    /// Plain key → postings.
    Single(SingleClassIndex),
    /// Key → class directory (\[KIM89b\]).
    Hierarchy(ClassHierarchyIndex),
}

impl IndexImpl {
    /// An empty structure appropriate for `kind`.
    pub fn for_kind(kind: &IndexKind) -> IndexImpl {
        match kind {
            IndexKind::SingleClass => IndexImpl::Single(SingleClassIndex::new()),
            IndexKind::ClassHierarchy | IndexKind::Nested => {
                IndexImpl::Hierarchy(ClassHierarchyIndex::new())
            }
        }
    }

    /// Register `oid` under `key`.
    pub fn insert(&mut self, key: Value, oid: Oid) {
        match self {
            IndexImpl::Single(idx) => idx.insert(key, oid),
            IndexImpl::Hierarchy(idx) => idx.insert(key, oid),
        }
    }

    /// Remove `oid` from under `key`.
    pub fn remove(&mut self, key: &Value, oid: Oid) -> bool {
        match self {
            IndexImpl::Single(idx) => idx.remove(key, oid),
            IndexImpl::Hierarchy(idx) => idx.remove(key, oid),
        }
    }

    /// Equality lookup. `scope` restricts to the given (sorted) classes;
    /// single-class indexes ignore it (their postings are one class).
    pub fn lookup_eq(&self, key: &Value, scope: Option<&[ClassId]>) -> Vec<Oid> {
        match self {
            IndexImpl::Single(idx) => idx.lookup_eq(key),
            IndexImpl::Hierarchy(idx) => idx.lookup_eq(key, scope),
        }
    }

    /// Range lookup with optional class scope.
    pub fn lookup_range(
        &self,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
        scope: Option<&[ClassId]>,
    ) -> Vec<Oid> {
        match self {
            IndexImpl::Single(idx) => idx.lookup_range(lower, upper),
            IndexImpl::Hierarchy(idx) => idx.lookup_range(lower, upper, scope),
        }
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        match self {
            IndexImpl::Single(idx) => idx.len(),
            IndexImpl::Hierarchy(idx) => idx.len(),
        }
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct keys (selectivity estimation input).
    pub fn distinct_keys(&self) -> usize {
        match self {
            IndexImpl::Single(idx) => idx.distinct_keys(),
            IndexImpl::Hierarchy(idx) => idx.distinct_keys(),
        }
    }

    /// Smallest and largest keys present (range-selectivity input).
    pub fn key_bounds(&self) -> Option<(Value, Value)> {
        match self {
            IndexImpl::Single(idx) => idx.key_bounds(),
            IndexImpl::Hierarchy(idx) => idx.key_bounds(),
        }
    }
}

/// A descriptor plus its structure: one live index.
#[derive(Debug, Clone)]
pub struct IndexInstance {
    /// What the index covers.
    pub def: IndexDef,
    /// The structure holding the entries.
    pub imp: IndexImpl,
}

impl IndexInstance {
    /// A fresh, empty instance for a descriptor.
    pub fn new(def: IndexDef) -> Self {
        let imp = IndexImpl::for_kind(&def.kind);
        IndexInstance { def, imp }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_interface_over_both_impls() {
        for kind in [IndexKind::SingleClass, IndexKind::ClassHierarchy, IndexKind::Nested] {
            let def = IndexDef {
                id: 1,
                name: "t".into(),
                kind: kind.clone(),
                target: ClassId(1),
                path: vec![1],
            };
            let mut inst = IndexInstance::new(def);
            let a = Oid::new(ClassId(1), 1);
            let b = Oid::new(ClassId(2), 2);
            inst.imp.insert(Value::Int(5), a);
            inst.imp.insert(Value::Int(5), b);
            inst.imp.insert(Value::Int(9), a);
            assert_eq!(inst.imp.len(), 3);
            assert_eq!(inst.imp.lookup_eq(&Value::Int(5), None).len(), 2);
            let ranged = inst.imp.lookup_range(
                Bound::Included(&Value::Int(0)),
                Bound::Excluded(&Value::Int(6)),
                None,
            );
            assert_eq!(ranged.len(), 2);
            assert!(inst.imp.remove(&Value::Int(9), a));
            assert_eq!(inst.imp.len(), 2);
            assert_eq!(inst.imp.distinct_keys(), 1);
        }
    }

    #[test]
    fn scope_only_affects_hierarchy_impls() {
        let mut hier = IndexImpl::for_kind(&IndexKind::ClassHierarchy);
        let a = Oid::new(ClassId(1), 1);
        let b = Oid::new(ClassId(2), 2);
        hier.insert(Value::Int(1), a);
        hier.insert(Value::Int(1), b);
        assert_eq!(hier.lookup_eq(&Value::Int(1), Some(&[ClassId(2)])), vec![b]);
        let mut single = IndexImpl::for_kind(&IndexKind::SingleClass);
        single.insert(Value::Int(1), a);
        // Scope is ignored for single-class indexes by contract.
        assert_eq!(single.lookup_eq(&Value::Int(1), Some(&[ClassId(9)])), vec![a]);
    }
}
