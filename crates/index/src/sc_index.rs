//! The conventional single-class index.
//!
//! "In relational database systems, one index is maintained on an
//! attribute ... of one relation. This technique, if applied directly to
//! an object-oriented database, will mean that one index is needed for an
//! attribute of each class" (§3.2). This is that index: key → sorted
//! posting list of OIDs, for the instances of exactly one class. It is
//! the baseline the class-hierarchy index is measured against (E1).

use crate::btree::BTree;
use crate::key::KeyVal;
use orion_types::{Oid, Value};
use std::ops::Bound;

/// An index over one attribute of one class.
#[derive(Debug, Clone, Default)]
pub struct SingleClassIndex {
    tree: BTree<KeyVal, Vec<Oid>>,
    entries: usize,
}

impl SingleClassIndex {
    /// An empty index.
    pub fn new() -> Self {
        SingleClassIndex::default()
    }

    /// Register `oid` under `key`.
    pub fn insert(&mut self, key: Value, oid: Oid) {
        let k = KeyVal(key);
        match self.tree.get_mut(&k) {
            Some(postings) => {
                if let Err(pos) = postings.binary_search(&oid) {
                    postings.insert(pos, oid);
                    self.entries += 1;
                }
            }
            None => {
                self.tree.insert(k, vec![oid]);
                self.entries += 1;
            }
        }
    }

    /// Remove `oid` from under `key`; returns whether it was present.
    pub fn remove(&mut self, key: &Value, oid: Oid) -> bool {
        let k = KeyVal(key.clone());
        let (removed, now_empty) = match self.tree.get_mut(&k) {
            Some(postings) => match postings.binary_search(&oid) {
                Ok(pos) => {
                    postings.remove(pos);
                    (true, postings.is_empty())
                }
                Err(_) => (false, false),
            },
            None => (false, false),
        };
        if now_empty {
            self.tree.remove(&k);
        }
        if removed {
            self.entries -= 1;
        }
        removed
    }

    /// All OIDs stored under exactly `key`.
    pub fn lookup_eq(&self, key: &Value) -> Vec<Oid> {
        self.tree.get(&KeyVal(key.clone())).cloned().unwrap_or_default()
    }

    /// All OIDs with keys in the given range.
    pub fn lookup_range(&self, lower: Bound<&Value>, upper: Bound<&Value>) -> Vec<Oid> {
        let lk;
        let lower = match lower {
            Bound::Included(v) => {
                lk = KeyVal(v.clone());
                Bound::Included(&lk)
            }
            Bound::Excluded(v) => {
                lk = KeyVal(v.clone());
                Bound::Excluded(&lk)
            }
            Bound::Unbounded => Bound::Unbounded,
        };
        let uk;
        let upper = match upper {
            Bound::Included(v) => {
                uk = KeyVal(v.clone());
                Bound::Included(&uk)
            }
            Bound::Excluded(v) => {
                uk = KeyVal(v.clone());
                Bound::Excluded(&uk)
            }
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (_, postings) in self.tree.range(lower, upper) {
            out.extend_from_slice(postings);
        }
        out
    }

    /// Total `(key, oid)` entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.tree.len()
    }

    /// Smallest and largest keys present, if any.
    pub fn key_bounds(&self) -> Option<(Value, Value)> {
        let lo = self.tree.first_key()?.0.clone();
        let hi = self.tree.last_key()?.0.clone();
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_types::ClassId;

    fn oid(s: u64) -> Oid {
        Oid::new(ClassId(1), s)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut idx = SingleClassIndex::new();
        idx.insert(Value::Int(10), oid(1));
        idx.insert(Value::Int(10), oid(2));
        idx.insert(Value::Int(20), oid(3));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.lookup_eq(&Value::Int(10)), vec![oid(1), oid(2)]);
        assert!(idx.remove(&Value::Int(10), oid(1)));
        assert!(!idx.remove(&Value::Int(10), oid(1)), "second remove is false");
        assert_eq!(idx.lookup_eq(&Value::Int(10)), vec![oid(2)]);
        assert!(idx.remove(&Value::Int(10), oid(2)));
        assert_eq!(idx.lookup_eq(&Value::Int(10)), Vec::<Oid>::new());
        assert_eq!(idx.distinct_keys(), 1, "empty posting lists are dropped");
    }

    #[test]
    fn duplicate_insert_is_a_no_op() {
        let mut idx = SingleClassIndex::new();
        idx.insert(Value::Int(1), oid(1));
        idx.insert(Value::Int(1), oid(1));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn range_lookup() {
        let mut idx = SingleClassIndex::new();
        for i in 0..50 {
            idx.insert(Value::Int(i), oid(i as u64));
        }
        let got = idx.lookup_range(Bound::Included(&Value::Int(10)), Bound::Excluded(&Value::Int(13)));
        assert_eq!(got, vec![oid(10), oid(11), oid(12)]);
        let all = idx.lookup_range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 50);
    }

    #[test]
    fn string_keys() {
        let mut idx = SingleClassIndex::new();
        idx.insert(Value::str("Detroit"), oid(1));
        idx.insert(Value::str("Austin"), oid(2));
        assert_eq!(idx.lookup_eq(&Value::str("Detroit")), vec![oid(1)]);
        let got = idx.lookup_range(
            Bound::Included(&Value::str("A")),
            Bound::Excluded(&Value::str("B")),
        );
        assert_eq!(got, vec![oid(2)]);
    }
}
