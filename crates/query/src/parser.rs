//! Recursive-descent parser for the query language.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query     := SELECT select FROM Ident ['*'] Ident
//!              [WHERE expr] [ORDER BY path [ASC|DESC]] [LIMIT Int]
//! select    := item (',' item)*
//! item      := COUNT '(' '*' ')' | path
//! expr      := or
//! or        := and (OR and)*
//! and       := unary (AND unary)*
//! unary     := NOT unary | '(' expr ')' | pred
//! pred      := path (op literal | CONTAINS literal | IS [NOT] NULL)
//!            | var ISA Ident
//! path      := Ident ('.' Ident)*        -- first Ident is the range var
//! op        := = | != | <> | < | <= | > | >= | LIKE
//! literal   := Int | Float | Str | TRUE | FALSE | NULL
//! ```

use crate::ast::{CmpOp, Expr, Literal, Path, Query, SelectItem};
use crate::lexer::{lex, Token, TokenKind};
use orion_types::{DbError, DbResult};

struct Parser {
    tokens: Vec<Token>,
    at: usize,
    var: Option<String>,
}

/// Parse one query.
pub fn parse(src: &str) -> DbResult<Query> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, at: 0, var: None };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.at].kind
    }

    fn pos(&self) -> usize {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.at].kind.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> DbError {
        DbError::Parse { position: self.pos(), message: message.into() }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.is_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    fn expect_ident(&mut self) -> DbResult<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_eof(&self) -> DbResult<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error("trailing input after query"))
        }
    }

    fn query(&mut self) -> DbResult<Query> {
        self.expect_keyword("select")?;
        // The select list references the range variable before we have
        // parsed the `from` clause, so collect raw paths first and
        // validate the variable afterwards.
        let mut raw_select: Vec<RawItem> = vec![self.select_item()?];
        while matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            raw_select.push(self.select_item()?);
        }

        self.expect_keyword("from")?;
        let target = self.expect_ident()?;
        let hierarchy = if matches!(self.peek(), TokenKind::Star) {
            self.bump();
            true
        } else {
            false
        };
        let var = self.expect_ident()?;
        if RESERVED.iter().any(|k| var.eq_ignore_ascii_case(k)) {
            return Err(self.error(format!("`{var}` is a keyword, not a range variable")));
        }
        self.var = Some(var.clone());

        let select = raw_select
            .into_iter()
            .map(|item| self.bind_item(item, &var))
            .collect::<DbResult<Vec<_>>>()?;

        let predicate = if self.eat_keyword("where") { Some(self.expr()?) } else { None };

        let order_by = if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            let path = self.var_path()?;
            let asc = if self.eat_keyword("desc") {
                false
            } else {
                self.eat_keyword("asc");
                true
            };
            Some((path, asc))
        } else {
            None
        };

        let limit = if self.eat_keyword("limit") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as usize),
                _ => return Err(self.error("expected a non-negative integer after `limit`")),
            }
        } else {
            None
        };

        Ok(Query { select, target, hierarchy, var, predicate, order_by, limit })
    }

    fn select_item(&mut self) -> DbResult<RawItem> {
        if self.is_keyword("count") {
            self.bump();
            if !matches!(self.bump(), TokenKind::LParen) {
                return Err(self.error("expected `(` after count"));
            }
            if !matches!(self.bump(), TokenKind::Star) {
                return Err(self.error("expected `*` in count(*)"));
            }
            if !matches!(self.bump(), TokenKind::RParen) {
                return Err(self.error("expected `)` in count(*)"));
            }
            return Ok(RawItem::Count);
        }
        let head = self.expect_ident()?;
        let mut steps = vec![head];
        while matches!(self.peek(), TokenKind::Dot) {
            self.bump();
            steps.push(self.expect_ident()?);
        }
        Ok(RawItem::Path(steps))
    }

    fn bind_item(&self, item: RawItem, var: &str) -> DbResult<SelectItem> {
        match item {
            RawItem::Count => Ok(SelectItem::Count),
            RawItem::Path(steps) => {
                if steps[0] != var {
                    return Err(DbError::Parse {
                        position: 0,
                        message: format!(
                            "select item must start with range variable `{var}`, found `{}`",
                            steps[0]
                        ),
                    });
                }
                if steps.len() == 1 {
                    Ok(SelectItem::Object)
                } else {
                    Ok(SelectItem::Path(Path { steps: steps[1..].to_vec() }))
                }
            }
        }
    }

    /// A `var.attr.attr` path; returns the path *without* the variable.
    fn var_path(&mut self) -> DbResult<Path> {
        let head = self.expect_ident()?;
        let var = self.var.clone().expect("var bound before predicates");
        if head != var {
            return Err(self.error(format!("expected range variable `{var}`, found `{head}`")));
        }
        let mut steps = Vec::new();
        while matches!(self.peek(), TokenKind::Dot) {
            self.bump();
            steps.push(self.expect_ident()?);
        }
        Ok(Path { steps })
    }

    fn expr(&mut self) -> DbResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("or") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.unary()?;
        while self.eat_keyword("and") {
            let right = self.unary()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> DbResult<Expr> {
        if self.eat_keyword("not") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            let inner = self.expr()?;
            if !matches!(self.bump(), TokenKind::RParen) {
                return Err(self.error("expected `)`"));
            }
            return Ok(inner);
        }
        self.predicate()
    }

    fn predicate(&mut self) -> DbResult<Expr> {
        let path = self.var_path()?;
        // `v isa Truck`
        if path.steps.is_empty() {
            self.expect_keyword("isa")?;
            let class = self.expect_ident()?;
            return Ok(Expr::IsA { class });
        }
        if self.eat_keyword("contains") {
            let value = self.literal()?;
            return Ok(Expr::Contains { path, value });
        }
        if self.eat_keyword("is") {
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            let e = Expr::IsNull { path };
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if self.eat_keyword("like") {
            let value = self.literal()?;
            if !matches!(value, Literal::Str(_)) {
                return Err(self.error("`like` requires a string pattern"));
            }
            return Ok(Expr::Cmp { path, op: CmpOp::Like, value });
        }
        let op = match self.bump() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => return Err(self.error(format!("expected comparison operator, found {other:?}"))),
        };
        let value = self.literal()?;
        Ok(Expr::Cmp { path, op, value })
    }

    fn literal(&mut self) -> DbResult<Literal> {
        if self.eat_keyword("true") {
            return Ok(Literal::Bool(true));
        }
        if self.eat_keyword("false") {
            return Ok(Literal::Bool(false));
        }
        if self.eat_keyword("null") {
            return Ok(Literal::Null);
        }
        match self.bump() {
            TokenKind::Int(i) => Ok(Literal::Int(i)),
            TokenKind::Float(x) => Ok(Literal::Float(x)),
            TokenKind::Str(s) => Ok(Literal::Str(s)),
            other => Err(self.error(format!("expected literal, found {other:?}"))),
        }
    }
}

enum RawItem {
    Count,
    Path(Vec<String>),
}

const RESERVED: &[&str] = &[
    "select", "from", "where", "and", "or", "not", "order", "by", "limit", "contains", "is",
    "null", "isa", "like", "count", "asc", "desc", "true", "false",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_query() {
        // The query from §3.2 of the paper.
        let q = parse(
            "select v from Vehicle v \
             where v.weight > 7500 and v.manufacturer.location = \"Detroit\"",
        )
        .unwrap();
        assert_eq!(q.target, "Vehicle");
        assert!(!q.hierarchy);
        assert_eq!(q.var, "v");
        assert_eq!(q.select, vec![SelectItem::Object]);
        let conjuncts = q.predicate.as_ref().unwrap().conjuncts().len();
        assert_eq!(conjuncts, 2);
    }

    #[test]
    fn hierarchy_scope_star() {
        let q = parse("select v from Vehicle* v").unwrap();
        assert!(q.hierarchy);
        assert!(q.predicate.is_none());
    }

    #[test]
    fn projections_and_count() {
        let q = parse("select v.weight, v.manufacturer.name from Vehicle v").unwrap();
        assert_eq!(
            q.select,
            vec![
                SelectItem::Path(Path::new(vec!["weight"])),
                SelectItem::Path(Path::new(vec!["manufacturer", "name"])),
            ]
        );
        let q = parse("select count(*) from Vehicle* v where v.weight > 0").unwrap();
        assert_eq!(q.select, vec![SelectItem::Count]);
    }

    #[test]
    fn order_and_limit() {
        let q = parse("select v from Vehicle v order by v.weight desc limit 5").unwrap();
        assert_eq!(q.order_by, Some((Path::new(vec!["weight"]), false)));
        assert_eq!(q.limit, Some(5));
        let q = parse("select v from Vehicle v order by v.weight asc").unwrap();
        assert_eq!(q.order_by, Some((Path::new(vec!["weight"]), true)));
    }

    #[test]
    fn boolean_structure_and_precedence() {
        let q = parse(
            "select v from V v where v.a = 1 or v.b = 2 and v.c = 3",
        )
        .unwrap();
        // `and` binds tighter than `or`.
        match q.predicate.unwrap() {
            Expr::Or(_, right) => match *right {
                Expr::And(_, _) => {}
                other => panic!("expected And under Or, got {other:?}"),
            },
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn not_parens_isa_contains_isnull_like() {
        let q = parse(
            "select v from V v where not (v.a = 1) and v isa Truck \
             and v.tags contains \"red\" and v.owner is null and v.name like \"Pro%\"",
        )
        .unwrap();
        let parts = q.predicate.unwrap();
        let conjuncts = parts.conjuncts().len();
        assert_eq!(conjuncts, 5);
    }

    #[test]
    fn is_not_null() {
        let q = parse("select v from V v where v.owner is not null").unwrap();
        match q.predicate.unwrap() {
            Expr::Not(inner) => assert!(matches!(*inner, Expr::IsNull { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse("select from V v").is_err());
        assert!(parse("select v from V v where").is_err());
        assert!(parse("select v from V v where v.x ~ 1").is_err());
        assert!(parse("select v from V v limit -3").is_err());
        assert!(parse("select v from V v extra").is_err(), "trailing tokens rejected");
        assert!(parse("select w from V v where v.x = 1").is_err(), "select var mismatch");
        assert!(parse("select v from V v where w.x = 1").is_err(), "predicate var mismatch");
        assert!(parse("select v from V v where v.name like 5").is_err());
        assert!(parse("select select from V select").is_err(), "keyword as variable");
    }

    #[test]
    fn pretty_print_reparses_to_same_ast() {
        let sources = [
            "select v from Vehicle* v where v.weight > 7500 and \
             v.manufacturer.location = \"Detroit\" order by v.weight desc limit 10",
            "select v.weight from Vehicle v where (v.a = 1 or v.b is null) and not v isa Truck",
            "select count(*) from Company v",
            "select v from V v where v.tags contains \"x\" and v.f >= 2.5",
        ];
        for src in sources {
            let q1 = parse(src).unwrap();
            let printed = q1.to_string();
            let q2 = parse(&printed).unwrap_or_else(|e| panic!("reparse of `{printed}`: {e}"));
            assert_eq!(q1, q2, "fixpoint for `{src}`");
        }
    }
}
