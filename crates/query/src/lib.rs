//! Declarative query processing for orion.
//!
//! "Declarative queries can certainly augment the navigational access in
//! object-oriented database systems, as evidenced by the declarative
//! query languages which have been proposed and implemented in more
//! recent object-oriented database systems, such as ORION, EXTRA/EXCESS,
//! and O2" (§3.3). This crate is orion's declarative side:
//!
//! * [`ast`] / [`lexer`] / [`parser`] — a small OQL-style language with
//!   class- and hierarchy-scoped `from` clauses (`Vehicle` vs
//!   `Vehicle*`) and nested-attribute predicate paths (§3.2),
//! * [`plan()`] — binding plus a cost-based optimizer choosing among
//!   extent scan, single-class index, class-hierarchy index, and
//!   nested-attribute index,
//! * [`exec`] — evaluation over any [`DataSource`], with existential
//!   semantics for set-valued path steps,
//! * [`MemSource`] — an in-memory source for tests and benches.
//!
//! End-to-end convenience: [`run`] parses, plans, and executes.

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod source;

pub use ast::{CmpOp, Expr, Literal, Path, Query, SelectItem};
pub use exec::{
    eval_expr, execute, execute_with, path_values, ExecMetrics, ExecOptions, ExecSnapshot,
    ExecStats, QueryResult,
};
pub use plan::{plan, AccessPath, ExplainReport, PlannedQuery, RunStats};
pub use parser::parse;
pub use source::{DataSource, MemSource};

use orion_schema::Catalog;
use orion_types::DbResult;

/// Parse, plan, and execute `text` in one call.
pub fn run(catalog: &Catalog, source: &dyn DataSource, text: &str) -> DbResult<QueryResult> {
    let query = parse(text)?;
    let planned = plan(catalog, source, query)?;
    execute(catalog, source, &planned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_index::{IndexDef, IndexKind};
    use orion_schema::AttrSpec;
    use orion_types::{ClassId, Domain, Oid, PrimitiveType, Value};

    /// Build the paper's Figure 1 schema and a small population:
    /// 8 vehicles (ids 1..=8) alternating Automobile/Truck, weights
    /// 1000*i, manufacturers alternating Detroit/Austin companies.
    fn fixture() -> (Catalog, MemSource, ClassId, ClassId, ClassId, ClassId) {
        let mut cat = Catalog::new();
        let company = cat
            .create_class(
                "Company",
                &[],
                vec![
                    AttrSpec::new("name", Domain::Primitive(PrimitiveType::Str)),
                    AttrSpec::new("location", Domain::Primitive(PrimitiveType::Str)),
                ],
            )
            .unwrap();
        let vehicle = cat
            .create_class(
                "Vehicle",
                &[],
                vec![
                    AttrSpec::new("weight", Domain::Primitive(PrimitiveType::Int)),
                    AttrSpec::new("manufacturer", Domain::Class(company)),
                ],
            )
            .unwrap();
        let auto = cat
            .create_class(
                "Automobile",
                &[vehicle],
                vec![AttrSpec::new("drivetrain", Domain::Primitive(PrimitiveType::Str))],
            )
            .unwrap();
        let truck = cat
            .create_class(
                "Truck",
                &[vehicle],
                vec![AttrSpec::new("payload", Domain::Primitive(PrimitiveType::Int))],
            )
            .unwrap();

        let weight_id = cat.resolve(vehicle).unwrap().attr("weight").unwrap().id;
        let manu_id = cat.resolve(vehicle).unwrap().attr("manufacturer").unwrap().id;
        let name_id = cat.resolve(company).unwrap().attr("name").unwrap().id;
        let loc_id = cat.resolve(company).unwrap().attr("location").unwrap().id;

        let mut src = MemSource::new();
        let detroit = Oid::new(company, 100);
        let austin = Oid::new(company, 101);
        src.add_object(
            detroit,
            vec![(name_id, Value::str("MotorCo")), (loc_id, Value::str("Detroit"))],
        );
        src.add_object(
            austin,
            vec![(name_id, Value::str("ChipCo")), (loc_id, Value::str("Austin"))],
        );
        for i in 1..=8u64 {
            let class = if i % 2 == 0 { truck } else { auto };
            let manu = if i % 2 == 0 { detroit } else { austin };
            src.add_object(
                Oid::new(class, i),
                vec![(weight_id, Value::Int(1000 * i as i64)), (manu_id, Value::Ref(manu))],
            );
        }
        (cat, src, company, vehicle, auto, truck)
    }

    #[test]
    fn figure1_query_end_to_end() {
        let (cat, src, ..) = fixture();
        // §3.2: vehicles over 7500 lbs made by a Detroit company.
        // Even serials are trucks from Detroit; only 8000 qualifies.
        let result = run(
            &cat,
            &src,
            "select v from Vehicle* v where v.weight > 7500 \
             and v.manufacturer.location = \"Detroit\"",
        )
        .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.oids[0].serial(), 8);
    }

    #[test]
    fn class_vs_hierarchy_scope() {
        let (cat, src, ..) = fixture();
        // Vehicle itself has no direct instances.
        let own = run(&cat, &src, "select v from Vehicle v").unwrap();
        assert_eq!(own.len(), 0);
        let all = run(&cat, &src, "select v from Vehicle* v").unwrap();
        assert_eq!(all.len(), 8);
        let trucks = run(&cat, &src, "select v from Truck v").unwrap();
        assert_eq!(trucks.len(), 4);
    }

    #[test]
    fn isa_and_projection() {
        let (cat, src, ..) = fixture();
        let r = run(
            &cat,
            &src,
            "select v.weight from Vehicle* v where v isa Truck order by v.weight asc",
        )
        .unwrap();
        let weights: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        assert_eq!(weights, vec![2000, 4000, 6000, 8000]);
    }

    #[test]
    fn count_star() {
        let (cat, src, ..) = fixture();
        let r = run(&cat, &src, "select count(*) from Vehicle* v where v.weight <= 3000").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn order_desc_and_limit() {
        let (cat, src, ..) = fixture();
        let r = run(
            &cat,
            &src,
            "select v.weight from Vehicle* v order by v.weight desc limit 3",
        )
        .unwrap();
        let weights: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        assert_eq!(weights, vec![8000, 7000, 6000]);
    }

    #[test]
    fn nested_projection() {
        let (cat, src, ..) = fixture();
        let r = run(
            &cat,
            &src,
            "select v.manufacturer.name from Truck v where v.weight = 2000",
        )
        .unwrap();
        assert_eq!(r.rows, vec![vec![Value::str("MotorCo")]]);
    }

    #[test]
    fn optimizer_uses_hierarchy_index_when_present() {
        let (mut cat, mut src, _, vehicle, ..) = fixture();
        let weight_id = cat.resolve(vehicle).unwrap().attr("weight").unwrap().id;
        src.add_index(IndexDef {
            id: 7,
            name: "vehicle_weight_ch".into(),
            kind: IndexKind::ClassHierarchy,
            target: vehicle,
            path: vec![weight_id],
        });
        // Populate index entries for all 8 vehicles.
        for class in cat.subtree(vehicle).unwrap().iter() {
            for oid in src.scan_class(*class).unwrap() {
                let w = src.get_attr_value(oid, weight_id).unwrap();
                src.index_insert(7, w, oid);
            }
        }
        let _ = &mut cat;
        let q = parse("select v from Vehicle* v where v.weight = 4000").unwrap();
        let planned = plan(&cat, &src, q).unwrap();
        assert!(
            matches!(planned.access, AccessPath::IndexEq { index: 7, .. }),
            "expected index probe, got {}",
            planned.report()
        );
        assert!(planned.residual.is_none(), "single conjunct fully consumed");
        let r = execute(&cat, &src, &planned).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.oids[0].serial(), 4);

        // Range predicate takes the range path.
        let q = parse("select v from Vehicle* v where v.weight >= 6000").unwrap();
        let planned = plan(&cat, &src, q).unwrap();
        assert!(matches!(planned.access, AccessPath::IndexRange { index: 7, .. }));
        let r = execute(&cat, &src, &planned).unwrap();
        assert_eq!(r.len(), 3);

        // Scoped to Truck only: the CH index still serves it.
        let q = parse("select v from Truck v where v.weight = 4000").unwrap();
        let planned = plan(&cat, &src, q).unwrap();
        assert!(matches!(planned.access, AccessPath::IndexEq { index: 7, .. }));
        let r = execute(&cat, &src, &planned).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn single_class_index_not_used_for_hierarchy_queries() {
        let (cat, mut src, _, vehicle, _, truck) = fixture();
        let weight_id = cat.resolve(vehicle).unwrap().attr("weight").unwrap().id;
        src.add_index(IndexDef {
            id: 3,
            name: "truck_weight".into(),
            kind: IndexKind::SingleClass,
            target: truck,
            path: vec![weight_id],
        });
        for oid in src.scan_class(truck).unwrap() {
            let w = src.get_attr_value(oid, weight_id).unwrap();
            src.index_insert(3, w, oid);
        }
        // Hierarchy query cannot use the single-class index.
        let q = parse("select v from Vehicle* v where v.weight = 2000").unwrap();
        let planned = plan(&cat, &src, q).unwrap();
        assert_eq!(planned.access, AccessPath::Scan, "{}", planned.report());
        // Truck-scoped query can.
        let q = parse("select v from Truck v where v.weight = 2000").unwrap();
        let planned = plan(&cat, &src, q).unwrap();
        assert!(matches!(planned.access, AccessPath::IndexEq { index: 3, .. }));
        let r = execute(&cat, &src, &planned).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn residual_keeps_unconsumed_conjuncts() {
        let (cat, mut src, _, vehicle, ..) = fixture();
        let weight_id = cat.resolve(vehicle).unwrap().attr("weight").unwrap().id;
        src.add_index(IndexDef {
            id: 1,
            name: "w".into(),
            kind: IndexKind::ClassHierarchy,
            target: vehicle,
            path: vec![weight_id],
        });
        for class in cat.subtree(vehicle).unwrap().iter() {
            for oid in src.scan_class(*class).unwrap() {
                let w = src.get_attr_value(oid, weight_id).unwrap();
                src.index_insert(1, w, oid);
            }
        }
        let q = parse(
            "select v from Vehicle* v where v.weight = 2000 \
             and v.manufacturer.location = \"Austin\"",
        )
        .unwrap();
        let planned = plan(&cat, &src, q).unwrap();
        assert!(matches!(planned.access, AccessPath::IndexEq { .. }));
        assert!(planned.residual.is_some());
        // Vehicle 2000 is a Truck made in Detroit: residual filters it out.
        let r = execute(&cat, &src, &planned).unwrap();
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn unknown_names_are_query_errors() {
        let (cat, src, ..) = fixture();
        assert!(run(&cat, &src, "select v from Spaceship v").is_err());
        assert!(run(&cat, &src, "select v from Vehicle v where v.wings = 1").is_err());
        assert!(run(&cat, &src, "select v from Vehicle v where v.weight.x = 1").is_err());
        assert!(run(&cat, &src, "select v from Vehicle v where v isa Nothing").is_err());
    }

    #[test]
    fn is_null_and_not() {
        let (cat, mut src, company, vehicle, auto, _) = fixture();
        let weight_id = cat.resolve(vehicle).unwrap().attr("weight").unwrap().id;
        let _ = (company, weight_id);
        // An automobile with no manufacturer.
        src.add_object(Oid::new(auto, 99), vec![(weight_id, Value::Int(500))]);
        let r = run(
            &cat,
            &src,
            "select v from Vehicle* v where v.manufacturer is null",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.oids[0].serial(), 99);
        let r = run(
            &cat,
            &src,
            "select count(*) from Vehicle* v where v.manufacturer is not null",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(8));
    }
}
