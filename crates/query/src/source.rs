//! The `DataSource` abstraction the planner and executor run against.
//!
//! Query processing needs four capabilities — extent scans, attribute
//! access, index metadata, and index lookups — and nothing else. Keeping
//! them behind a trait decouples this crate from the object manager
//! (`orion-core` implements it over the buffer pool, object cache, and
//! lock manager; tests and benches implement it in memory).

use orion_index::IndexDef;
use orion_types::{ClassId, DbResult, Oid, Value};
use std::ops::Bound;

/// What the query processor requires from the layers below.
///
/// `Sync` is a supertrait: the parallel executor shares one source
/// across its scoped worker threads, so implementations must be safe
/// to call concurrently (`orion-core`'s view takes the runtime's
/// shared lock per call; `MemSource` is immutable during execution).
pub trait DataSource: Sync {
    /// All instances of exactly `class` (not its subclasses).
    fn scan_class(&self, class: ClassId) -> DbResult<Vec<Oid>>;

    /// Cardinality of `class`'s own extent (optimizer input).
    fn extent_size(&self, class: ClassId) -> usize;

    /// The stored value of attribute `attr` on `oid`; `Value::Null` when
    /// unset. Implementations resolve through the object cache, so this
    /// is also where fetch accounting happens.
    fn get_attr_value(&self, oid: Oid, attr: u32) -> DbResult<Value>;

    /// Descriptors of every live index.
    fn indexes(&self) -> Vec<IndexDef>;

    /// `(total entries, distinct keys)` for an index (selectivity input).
    fn index_stats(&self, id: u32) -> (usize, usize);

    /// Smallest and largest keys in an index (range-selectivity input).
    /// `None` when the index is empty or the source cannot say.
    fn index_key_bounds(&self, id: u32) -> Option<(Value, Value)> {
        let _ = id;
        None
    }

    /// Equality probe, optionally scoped to a sorted class set.
    fn index_lookup_eq(&self, id: u32, key: &Value, scope: Option<&[ClassId]>)
        -> DbResult<Vec<Oid>>;

    /// Range probe, optionally scoped to a sorted class set.
    fn index_lookup_range(
        &self,
        id: u32,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
        scope: Option<&[ClassId]>,
    ) -> DbResult<Vec<Oid>>;
}

/// A simple in-memory [`DataSource`] for tests, benches, and examples.
#[derive(Debug, Default)]
pub struct MemSource {
    objects: std::collections::HashMap<Oid, std::collections::HashMap<u32, Value>>,
    extents: std::collections::HashMap<ClassId, Vec<Oid>>,
    indexes: Vec<orion_index::IndexInstance>,
}

impl MemSource {
    /// An empty source.
    pub fn new() -> Self {
        MemSource::default()
    }

    /// Add an object with `(attr id, value)` pairs.
    pub fn add_object(&mut self, oid: Oid, attrs: Vec<(u32, Value)>) {
        self.extents.entry(oid.class()).or_default().push(oid);
        self.objects.insert(oid, attrs.into_iter().collect());
    }

    /// Register an index; entries must be added via [`MemSource::index_insert`].
    pub fn add_index(&mut self, def: IndexDef) {
        self.indexes.push(orion_index::IndexInstance::new(def));
    }

    /// Insert an index entry.
    pub fn index_insert(&mut self, id: u32, key: Value, oid: Oid) {
        let inst = self
            .indexes
            .iter_mut()
            .find(|i| i.def.id == id)
            .expect("index id registered");
        inst.imp.insert(key, oid);
    }
}

impl DataSource for MemSource {
    fn scan_class(&self, class: ClassId) -> DbResult<Vec<Oid>> {
        Ok(self.extents.get(&class).cloned().unwrap_or_default())
    }

    fn extent_size(&self, class: ClassId) -> usize {
        self.extents.get(&class).map_or(0, |v| v.len())
    }

    fn get_attr_value(&self, oid: Oid, attr: u32) -> DbResult<Value> {
        Ok(self
            .objects
            .get(&oid)
            .and_then(|attrs| attrs.get(&attr))
            .cloned()
            .unwrap_or(Value::Null))
    }

    fn indexes(&self) -> Vec<IndexDef> {
        self.indexes.iter().map(|i| i.def.clone()).collect()
    }

    fn index_stats(&self, id: u32) -> (usize, usize) {
        self.indexes
            .iter()
            .find(|i| i.def.id == id)
            .map_or((0, 0), |i| (i.imp.len(), i.imp.distinct_keys()))
    }

    fn index_key_bounds(&self, id: u32) -> Option<(Value, Value)> {
        self.indexes.iter().find(|i| i.def.id == id).and_then(|i| i.imp.key_bounds())
    }

    fn index_lookup_eq(
        &self,
        id: u32,
        key: &Value,
        scope: Option<&[ClassId]>,
    ) -> DbResult<Vec<Oid>> {
        Ok(self
            .indexes
            .iter()
            .find(|i| i.def.id == id)
            .map_or_else(Vec::new, |i| i.imp.lookup_eq(key, scope)))
    }

    fn index_lookup_range(
        &self,
        id: u32,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
        scope: Option<&[ClassId]>,
    ) -> DbResult<Vec<Oid>> {
        Ok(self
            .indexes
            .iter()
            .find(|i| i.def.id == id)
            .map_or_else(Vec::new, |i| i.imp.lookup_range(lower, upper, scope)))
    }
}
