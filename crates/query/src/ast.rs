//! The query language AST.
//!
//! The surface language is a small OQL-style `select`:
//!
//! ```text
//! select v from Vehicle* v
//! where v.weight > 7500 and v.manufacturer.location = "Detroit"
//! order by v.weight desc limit 10
//! ```
//!
//! Two design points come straight from §3.2's query model:
//!
//! * `from Vehicle v` targets the class's own instances; `from Vehicle* v`
//!   targets "all instances of the classes in the class hierarchy rooted
//!   at the target class" — the paper's two interpretations of scope.
//! * predicate paths (`v.manufacturer.location`) walk the *nested*
//!   definition of the class: "a query against a class is formulated
//!   against the nested definition of the class". Set-valued steps
//!   quantify existentially over their elements.

use std::fmt;

/// An attribute path from the range variable, e.g. `manufacturer.location`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// Attribute names, outermost first. Empty = the object itself.
    pub steps: Vec<String>,
}

impl Path {
    /// A path from dotted attribute names.
    pub fn new<S: Into<String>>(steps: Vec<S>) -> Self {
        Path { steps: steps.into_iter().map(Into::into).collect() }
    }

    /// The object itself (a bare range variable).
    pub fn this() -> Self {
        Path { steps: Vec::new() }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `like` with `%` wildcards (strings only).
    Like,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Like => "like",
        };
        f.write_str(s)
    }
}

/// A literal in query text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x:?}"),
            Literal::Str(s) => write!(f, "{s:?}"),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Null => write!(f, "null"),
        }
    }
}

/// A boolean predicate over the range variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `path op literal`; set-valued paths quantify existentially.
    Cmp {
        /// The attribute path.
        path: Path,
        /// The operator.
        op: CmpOp,
        /// The literal compared against.
        value: Literal,
    },
    /// `path contains literal` — membership in a set/list attribute.
    Contains {
        /// The set-valued attribute path.
        path: Path,
        /// The element looked for.
        value: Literal,
    },
    /// `path is null` — no non-null value reachable.
    IsNull {
        /// The attribute path.
        path: Path,
    },
    /// `var isa ClassName` — run-time class membership (subclass-aware).
    IsA {
        /// The class name tested against.
        class: String,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Split a conjunctive expression into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuild a conjunction from parts (`None` when empty).
    pub fn conjoin(parts: Vec<Expr>) -> Option<Expr> {
        parts.into_iter().reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Cmp { path, op, value } => write!(f, "{path} {op} {value}"),
            Expr::Contains { path, value } => write!(f, "{path} contains {value}"),
            Expr::IsNull { path } => write!(f, "{path} is null"),
            Expr::IsA { class } => write!(f, "isa {class}"),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
            Expr::Not(e) => write!(f, "(not {e})"),
        }
    }
}

/// What a query projects per result object.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// The object itself (a `Ref` value).
    Object,
    /// A path's value.
    Path(Path),
    /// `count(*)` — the result is a single row with the match count.
    Count,
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Object => write!(f, "<object>"),
            SelectItem::Path(p) => write!(f, "{p}"),
            SelectItem::Count => write!(f, "count(*)"),
        }
    }
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projection list.
    pub select: Vec<SelectItem>,
    /// Target class name.
    pub target: String,
    /// `true` for `Class*`: scope is the hierarchy rooted at the target.
    pub hierarchy: bool,
    /// The range variable.
    pub var: String,
    /// Optional `where` predicate.
    pub predicate: Option<Expr>,
    /// Optional `order by (path, ascending)`.
    pub order_by: Option<(Path, bool)>,
    /// Optional `limit`.
    pub limit: Option<usize>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Object => write!(f, "{}", self.var)?,
                SelectItem::Path(p) => write!(f, "{}.{p}", self.var)?,
                SelectItem::Count => write!(f, "count(*)")?,
            }
        }
        write!(f, " from {}{} {}", self.target, if self.hierarchy { "*" } else { "" }, self.var)?;
        if let Some(p) = &self.predicate {
            write!(f, " where {}", DisplayPred { var: &self.var, expr: p })?;
        }
        if let Some((path, asc)) = &self.order_by {
            write!(f, " order by {}.{path}{}", self.var, if *asc { "" } else { " desc" })?;
        }
        if let Some(n) = self.limit {
            write!(f, " limit {n}")?;
        }
        Ok(())
    }
}

/// Helper rendering an expression with the range variable prefixed onto
/// paths, producing re-parseable text.
struct DisplayPred<'a> {
    var: &'a str,
    expr: &'a Expr,
}

impl fmt::Display for DisplayPred<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.var;
        match self.expr {
            Expr::Cmp { path, op, value } => write!(f, "{v}.{path} {op} {value}"),
            Expr::Contains { path, value } => write!(f, "{v}.{path} contains {value}"),
            Expr::IsNull { path } => write!(f, "{v}.{path} is null"),
            Expr::IsA { class } => write!(f, "{v} isa {class}"),
            Expr::And(a, b) => write!(
                f,
                "({} and {})",
                DisplayPred { var: v, expr: a },
                DisplayPred { var: v, expr: b }
            ),
            Expr::Or(a, b) => write!(
                f,
                "({} or {})",
                DisplayPred { var: v, expr: a },
                DisplayPred { var: v, expr: b }
            ),
            Expr::Not(e) => write!(f, "(not {})", DisplayPred { var: v, expr: e }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let a = Expr::IsNull { path: Path::new(vec!["x"]) };
        let b = Expr::IsA { class: "Truck".into() };
        let c = Expr::Cmp { path: Path::new(vec!["w"]), op: CmpOp::Gt, value: Literal::Int(1) };
        let e = Expr::And(
            Box::new(Expr::And(Box::new(a.clone()), Box::new(b.clone()))),
            Box::new(c.clone()),
        );
        let parts = e.conjuncts();
        assert_eq!(parts, vec![&a, &b, &c]);
        // Or does not split.
        let o = Expr::Or(Box::new(a.clone()), Box::new(b.clone()));
        assert_eq!(o.conjuncts().len(), 1);
        // Rebuild.
        let rebuilt = Expr::conjoin(vec![a.clone(), b, c]).unwrap();
        assert_eq!(rebuilt.conjuncts().len(), 3);
        assert_eq!(Expr::conjoin(vec![]), None);
        assert_eq!(Expr::conjoin(vec![a.clone()]), Some(a));
    }

    #[test]
    fn display_roundtrippable_shape() {
        let q = Query {
            select: vec![SelectItem::Object],
            target: "Vehicle".into(),
            hierarchy: true,
            var: "v".into(),
            predicate: Some(Expr::And(
                Box::new(Expr::Cmp {
                    path: Path::new(vec!["weight"]),
                    op: CmpOp::Gt,
                    value: Literal::Int(7500),
                }),
                Box::new(Expr::Cmp {
                    path: Path::new(vec!["manufacturer", "location"]),
                    op: CmpOp::Eq,
                    value: Literal::Str("Detroit".into()),
                }),
            )),
            order_by: Some((Path::new(vec!["weight"]), false)),
            limit: Some(10),
        };
        let text = q.to_string();
        assert!(text.contains("from Vehicle* v"));
        assert!(text.contains("v.weight > 7500"));
        assert!(text.contains("v.manufacturer.location = \"Detroit\""));
        assert!(text.contains("order by v.weight desc"));
        assert!(text.contains("limit 10"));
    }
}
