//! Hand-written lexer for the query language.

use orion_types::{DbError, DbResult};

/// A token with its byte position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset in the source.
    pub pos: usize,
    /// The token kind and payload.
    pub kind: TokenKind,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, escapes applied).
    Str(String),
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// Tokenize `src`.
pub fn lex(src: &str) -> DbResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '.' => {
                tokens.push(Token { pos, kind: TokenKind::Dot });
                i += 1;
            }
            ',' => {
                tokens.push(Token { pos, kind: TokenKind::Comma });
                i += 1;
            }
            '*' => {
                tokens.push(Token { pos, kind: TokenKind::Star });
                i += 1;
            }
            '(' => {
                tokens.push(Token { pos, kind: TokenKind::LParen });
                i += 1;
            }
            ')' => {
                tokens.push(Token { pos, kind: TokenKind::RParen });
                i += 1;
            }
            '=' => {
                tokens.push(Token { pos, kind: TokenKind::Eq });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { pos, kind: TokenKind::Ne });
                    i += 2;
                } else {
                    return Err(DbError::Parse {
                        position: pos,
                        message: "expected `=` after `!`".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token { pos, kind: TokenKind::Le });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token { pos, kind: TokenKind::Ne });
                    i += 2;
                }
                _ => {
                    tokens.push(Token { pos, kind: TokenKind::Lt });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { pos, kind: TokenKind::Ge });
                    i += 2;
                } else {
                    tokens.push(Token { pos, kind: TokenKind::Gt });
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                let mut out = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(DbError::Parse {
                                position: pos,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(&b) if b as char == quote => {
                            i += 1;
                            break;
                        }
                        Some(&b'\\') => {
                            let esc = bytes.get(i + 1).copied().ok_or(DbError::Parse {
                                position: i,
                                message: "dangling escape".into(),
                            })?;
                            out.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                b'\'' => '\'',
                                other => {
                                    return Err(DbError::Parse {
                                        position: i,
                                        message: format!("unknown escape `\\{}`", other as char),
                                    })
                                }
                            });
                            i += 2;
                        }
                        Some(&b) => {
                            // Multibyte-safe: advance over the full char.
                            let ch_len = utf8_len(b);
                            out.push_str(
                                std::str::from_utf8(&bytes[i..i + ch_len]).map_err(|_| {
                                    DbError::Parse {
                                        position: i,
                                        message: "invalid UTF-8".into(),
                                    }
                                })?,
                            );
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Token { pos, kind: TokenKind::Str(out) });
            }
            '0'..='9' | '-' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
                        return Err(DbError::Parse {
                            position: pos,
                            message: "expected digits after `-`".into(),
                        });
                    }
                }
                while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                    i += 1;
                }
                let mut is_float = false;
                if bytes.get(i) == Some(&b'.') && matches!(bytes.get(i + 1), Some(b'0'..=b'9')) {
                    is_float = true;
                    i += 1;
                    while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| DbError::Parse {
                        position: pos,
                        message: format!("bad float literal `{text}`"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| DbError::Parse {
                        position: pos,
                        message: format!("bad integer literal `{text}`"),
                    })?)
                };
                tokens.push(Token { pos, kind });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i];
                    if b.is_ascii_alphanumeric() || b == b'_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token { pos, kind: TokenKind::Ident(src[start..i].to_owned()) });
            }
            other => {
                return Err(DbError::Parse {
                    position: pos,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Token { pos: src.len(), kind: TokenKind::Eof });
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("select v from Vehicle* v where v.weight >= 7500"),
            vec![
                Ident("select".into()),
                Ident("v".into()),
                Ident("from".into()),
                Ident("Vehicle".into()),
                Star,
                Ident("v".into()),
                Ident("where".into()),
                Ident("v".into()),
                Dot,
                Ident("weight".into()),
                Ge,
                Int(7500),
                Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        use TokenKind::*;
        assert_eq!(kinds("= != <> < <= > >="), vec![Eq, Ne, Ne, Lt, Le, Gt, Ge, Eof]);
    }

    #[test]
    fn string_literals_and_escapes() {
        assert_eq!(
            kinds(r#""Detroit" 'single' "a\"b\n""#),
            vec![
                TokenKind::Str("Detroit".into()),
                TokenKind::Str("single".into()),
                TokenKind::Str("a\"b\n".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 -17 3.5 -0.25"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(-17),
                TokenKind::Float(3.5),
                TokenKind::Float(-0.25),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        match lex("abc $") {
            Err(DbError::Parse { position, .. }) => assert_eq!(position, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(lex("\"unterminated").is_err());
        assert!(lex("- x").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("\"köln 東京\""), vec![TokenKind::Str("köln 東京".into()), TokenKind::Eof]);
    }
}
