//! Binding and cost-based access-path selection.
//!
//! "A major new component, namely the query optimizer, had to be added
//! to the database system to automatically arrive at an optimal plan ...
//! such that the plan will make use of appropriate access methods
//! available in the system" (§2.2) — and the early-OODB criticism the
//! paper rebuts is precisely that object systems regress to navigation
//! (§3.3 point 3). This module is that component for orion: it binds a
//! parsed query against the catalog, extracts sargable conjuncts, and
//! chooses among extent scan, single-class index, class-hierarchy index,
//! and nested-attribute index by estimated cost (experiment E4).

use crate::ast::{CmpOp, Expr, Literal, Path, Query};
use crate::exec::ExecStats;
use crate::source::DataSource;
use orion_index::{IndexDef, IndexKind};
use orion_schema::Catalog;
use orion_types::{ClassId, DbError, DbResult, Value};
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// Convert a literal to a runtime value.
pub fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(x) => Value::Float(*x),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

/// The chosen access path.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan the extents of every class in scope.
    Scan,
    /// Probe index `index` for one key.
    IndexEq {
        /// Index id.
        index: u32,
        /// Probe key.
        key: Value,
    },
    /// Scan index `index` over a key range.
    IndexRange {
        /// Index id.
        index: u32,
        /// Lower bound.
        lower: Bound<Value>,
        /// Upper bound.
        upper: Bound<Value>,
    },
}

/// A bound, optimized query ready for execution.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The original parsed query (names drive execution).
    pub query: Query,
    /// The bound target class.
    pub target: ClassId,
    /// The classes whose extents are in scope, sorted ascending.
    pub scope: Vec<ClassId>,
    /// The chosen access path.
    pub access: AccessPath,
    /// Conjuncts not answered by the access path; evaluated per object.
    pub residual: Option<Expr>,
    /// Estimated result cardinality (diagnostics).
    pub estimated_candidates: usize,
    /// Counters from the most recent execution of this plan (shared
    /// across clones; filled by [`crate::exec::execute_with`]).
    pub exec_stats: Arc<ExecStats>,
}

impl PlannedQuery {
    /// A structured description of the plan: the chosen access path,
    /// scope width, cardinality estimate, residual predicate, and —
    /// once the plan has run — the last execution's parallelism and
    /// path-memo hit rate. Its `Display` is the classic one-line
    /// explain text (experiment E4 asserts on it).
    pub fn report(&self) -> ExplainReport {
        let last_run = if self.exec_stats.executions.load(Relaxed) > 0 {
            Some(RunStats {
                parallelism: self.exec_stats.parallelism.load(Relaxed),
                memo_hits: self.exec_stats.memo_hits.load(Relaxed),
                memo_lookups: self.exec_stats.memo_lookups.load(Relaxed),
            })
        } else {
            None
        };
        ExplainReport {
            access: self.access.clone(),
            scope_classes: self.scope.len(),
            estimated_candidates: self.estimated_candidates,
            residual: self.residual.clone(),
            last_run,
        }
    }

    /// A human-readable plan description.
    #[deprecated(note = "use `report()`, whose `Display` renders the same text")]
    pub fn explain(&self) -> String {
        self.report().to_string()
    }
}

/// Structured explain output for a [`PlannedQuery`]. The `Display`
/// implementation renders the exact one-line text `explain()` has
/// always produced, so existing log scrapes and test assertions keep
/// working while programs match on the fields instead of the string.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// The chosen access path.
    pub access: AccessPath,
    /// Number of class extents in scope.
    pub scope_classes: usize,
    /// Estimated result cardinality.
    pub estimated_candidates: usize,
    /// The residual predicate, if any conjunct survived the access path.
    pub residual: Option<Expr>,
    /// Stats from the most recent execution; `None` until the plan runs.
    pub last_run: Option<RunStats>,
}

/// Execution stats attached to an [`ExplainReport`] after a plan runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Worker threads used.
    pub parallelism: usize,
    /// Path-memo hits.
    pub memo_hits: u64,
    /// Path-memo lookups.
    pub memo_lookups: u64,
}

impl RunStats {
    /// Memo hit rate in whole percent (0 when there were no lookups).
    pub fn memo_hit_pct(&self) -> u64 {
        (self.memo_hits * 100).checked_div(self.memo_lookups).unwrap_or(0)
    }
}

impl std::fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.access {
            AccessPath::Scan => write!(f, "scan of {} class extent(s)", self.scope_classes)?,
            AccessPath::IndexEq { index, key } => write!(f, "index #{index} probe key={key}")?,
            AccessPath::IndexRange { index, .. } => write!(f, "index #{index} range scan")?,
        }
        write!(f, " (~{} candidates)", self.estimated_candidates)?;
        if let Some(e) = &self.residual {
            write!(f, " residual=[{e}]")?;
        }
        if let Some(run) = &self.last_run {
            write!(
                f,
                "; last run: parallelism={}, memo hits {}/{} ({}%)",
                run.parallelism,
                run.memo_hits,
                run.memo_lookups,
                run.memo_hit_pct()
            )?;
        }
        Ok(())
    }
}

/// A sargable constraint on one attribute path: the *merged* bounds of
/// every range conjunct on that path (`w >= a and w < b` becomes one
/// `[a, b)` index range).
#[derive(Debug)]
struct Sarg {
    path_ids: Vec<u32>,
    lower: Bound<Value>,
    upper: Bound<Value>,
    /// Indices into the conjunct list (excluded from the residual when
    /// the index serves this sarg).
    conjuncts: Vec<usize>,
}

/// Keep the tighter of two lower bounds.
fn tighten_lower(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    use std::cmp::Ordering::*;
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match x.cmp_total(y) {
                Greater => a,
                Less => b,
                Equal => {
                    // Excluded is tighter at the same key.
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

/// Keep the tighter of two upper bounds.
fn tighten_upper(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    use std::cmp::Ordering::*;
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match x.cmp_total(y) {
                Less => a,
                Greater => b,
                Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

/// Resolve a name path from `class` into catalog attribute ids.
/// Validates that intermediate steps are reference-valued.
pub fn bind_path(catalog: &Catalog, class: ClassId, path: &Path) -> DbResult<Vec<u32>> {
    let mut ids = Vec::with_capacity(path.steps.len());
    let mut cur = class;
    for (i, step) in path.steps.iter().enumerate() {
        let resolved = catalog.resolve(cur)?;
        let attr = resolved.attr(step).ok_or_else(|| DbError::UnknownAttribute {
            class: resolved.name.clone(),
            attribute: step.clone(),
        })?;
        ids.push(attr.id);
        if i + 1 < path.steps.len() {
            cur = attr.domain.leaf_class().ok_or_else(|| {
                DbError::Query(format!(
                    "attribute `{}` of `{}` has primitive domain `{}`; cannot navigate further",
                    step, resolved.name, attr.domain
                ))
            })?;
        }
    }
    Ok(ids)
}

/// Is every step of `path` single-valued (no set/list domain)? Governs
/// whether range conjuncts on the path may be merged into one sarg.
pub fn path_is_single_valued(catalog: &Catalog, class: ClassId, path: &Path) -> DbResult<bool> {
    let mut cur = class;
    for (i, step) in path.steps.iter().enumerate() {
        let resolved = catalog.resolve(cur)?;
        let attr = resolved.attr(step).ok_or_else(|| DbError::UnknownAttribute {
            class: resolved.name.clone(),
            attribute: step.clone(),
        })?;
        if matches!(attr.domain, orion_types::Domain::SetOf(_) | orion_types::Domain::ListOf(_)) {
            return Ok(false);
        }
        if i + 1 < path.steps.len() {
            match attr.domain.leaf_class() {
                Some(c) => cur = c,
                None => return Ok(true),
            }
        }
    }
    Ok(true)
}

/// Memoized path resolution within one `plan()` call. A query names
/// the same path in several conjuncts (and again in select/order
/// clauses); each distinct path is resolved against the catalog once
/// and its `(attribute ids, single-valued)` pair is reused.
struct PathBinder<'c> {
    catalog: &'c Catalog,
    target: ClassId,
    cache: HashMap<Vec<String>, (Vec<u32>, bool)>,
}

impl<'c> PathBinder<'c> {
    fn new(catalog: &'c Catalog, target: ClassId) -> Self {
        PathBinder { catalog, target, cache: HashMap::new() }
    }

    fn bind(&mut self, path: &Path) -> DbResult<&(Vec<u32>, bool)> {
        if !self.cache.contains_key(&path.steps) {
            let ids = bind_path(self.catalog, self.target, path)?;
            let single = path_is_single_valued(self.catalog, self.target, path)?;
            self.cache.insert(path.steps.clone(), (ids, single));
        }
        Ok(&self.cache[&path.steps])
    }
}

/// Validate every path in the expression against the schema.
fn validate_expr(binder: &mut PathBinder<'_>, expr: &Expr) -> DbResult<()> {
    match expr {
        Expr::Cmp { path, .. } | Expr::Contains { path, .. } | Expr::IsNull { path } => {
            binder.bind(path).map(|_| ())
        }
        Expr::IsA { class: name } => binder.catalog.class_id(name).map(|_| ()),
        Expr::And(a, b) | Expr::Or(a, b) => {
            validate_expr(binder, a)?;
            validate_expr(binder, b)
        }
        Expr::Not(e) => validate_expr(binder, e),
    }
}

/// Bind and optimize a parsed query against the catalog and a source.
pub fn plan(catalog: &Catalog, source: &dyn DataSource, query: Query) -> DbResult<PlannedQuery> {
    let target = catalog.class_id(&query.target)?;
    let scope: Vec<ClassId> = if query.hierarchy {
        catalog.subtree(target)?.as_ref().clone()
    } else {
        vec![target]
    };

    // Validate select/order/predicate paths up front. The binder caches
    // each distinct path's resolution for the rest of this plan() call.
    let mut binder = PathBinder::new(catalog, target);
    for item in &query.select {
        if let crate::ast::SelectItem::Path(p) = item {
            binder.bind(p)?;
        }
    }
    if let Some((p, _)) = &query.order_by {
        binder.bind(p)?;
    }
    if let Some(pred) = &query.predicate {
        validate_expr(&mut binder, pred)?;
    }

    let scan_cost: usize = scope.iter().map(|c| source.extent_size(*c)).sum();

    // Extract sargable conjuncts (groups of range constraints per path).
    let conjuncts: Vec<Expr> =
        query.predicate.as_ref().map(|p| p.conjuncts().into_iter().cloned().collect()).unwrap_or_default();
    let mut sargs: Vec<Sarg> = Vec::new();
    for (i, conj) in conjuncts.iter().enumerate() {
        if let Expr::Cmp { path, op, value } = conj {
            let v = literal_value(value);
            if v.is_null() {
                continue; // `= null` never matches; leave to residual
            }
            let (lower, upper) = match op {
                CmpOp::Eq => (Bound::Included(v.clone()), Bound::Included(v)),
                CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(v)),
                CmpOp::Le => (Bound::Unbounded, Bound::Included(v)),
                CmpOp::Gt => (Bound::Excluded(v), Bound::Unbounded),
                CmpOp::Ge => (Bound::Included(v), Bound::Unbounded),
                CmpOp::Ne | CmpOp::Like => continue,
            };
            let (path_ids, mergeable) = binder.bind(path)?.clone();
            // Merge with an existing sarg on the same path: `w >= a and
            // w < b` becomes one index range. Merging is only sound for
            // single-valued paths — on a set-valued path two conjuncts
            // may be satisfied by *different* elements, so the merged
            // range would under-approximate; such paths keep one sarg
            // per conjunct (each individually exact).
            match sargs.iter_mut().find(|s| mergeable && s.path_ids == path_ids) {
                Some(existing) => {
                    existing.lower = tighten_lower(existing.lower.clone(), lower);
                    existing.upper = tighten_upper(existing.upper.clone(), upper);
                    existing.conjuncts.push(i);
                }
                None => sargs.push(Sarg { path_ids, lower, upper, conjuncts: vec![i] }),
            }
        }
    }

    // Find the cheapest applicable index.
    let mut best: Option<(usize, &Sarg, IndexDef)> = None; // (cost, sarg, index)
    for def in source.indexes() {
        for sarg in &sargs {
            if !index_matches(catalog, &def, &sarg.path_ids, target, &scope) {
                continue;
            }
            let (entries, distinct) = source.index_stats(def.id);
            let is_point = matches!(
                (&sarg.lower, &sarg.upper),
                (Bound::Included(a), Bound::Included(b)) if a.eq_total(b)
            );
            let est = if is_point {
                entries.checked_div(distinct).map_or(0, |v| v.max(1))
            } else {
                // Range selectivity: linear interpolation over the
                // index's numeric key span (a poor man's histogram);
                // non-numeric keys fall back to a quarter of the index.
                let interpolated = source.index_key_bounds(def.id).and_then(|(lo, hi)| {
                    let lo = lo.as_float()?;
                    let hi = hi.as_float()?;
                    let span = hi - lo;
                    if span <= 0.0 {
                        return Some(1usize);
                    }
                    let q_lo = match &sarg.lower {
                        Bound::Included(v) | Bound::Excluded(v) => v.as_float().unwrap_or(lo),
                        Bound::Unbounded => lo,
                    };
                    let q_hi = match &sarg.upper {
                        Bound::Included(v) | Bound::Excluded(v) => v.as_float().unwrap_or(hi),
                        Bound::Unbounded => hi,
                    };
                    let frac = ((q_hi.min(hi) - q_lo.max(lo)) / span).clamp(0.0, 1.0);
                    Some(((entries as f64 * frac) as usize).max(1))
                });
                interpolated.unwrap_or((entries / 4).max(1))
            };
            if best.as_ref().is_none_or(|(c, _, _)| est < *c) {
                best = Some((est, sarg, def.clone()));
            }
        }
    }

    let (access, consumed, estimated) = match best {
        Some((est, sarg, def)) if est < scan_cost => {
            let is_point = matches!(
                (&sarg.lower, &sarg.upper),
                (Bound::Included(a), Bound::Included(b)) if a.eq_total(b)
            );
            let access = if is_point {
                let Bound::Included(key) = sarg.lower.clone() else { unreachable!() };
                AccessPath::IndexEq { index: def.id, key }
            } else {
                AccessPath::IndexRange {
                    index: def.id,
                    lower: sarg.lower.clone(),
                    upper: sarg.upper.clone(),
                }
            };
            (access, sarg.conjuncts.clone(), est)
        }
        _ => (AccessPath::Scan, Vec::new(), scan_cost),
    };

    // The residual keeps every conjunct except the one the index answers.
    // An index on a *set-valued or multi-valued* path is conservative
    // (existential semantics match Eq), so dropping the consumed conjunct
    // is sound: index postings are exactly the objects with a matching
    // reachable value.
    let residual = Expr::conjoin(
        conjuncts
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !consumed.contains(i))
            .map(|(_, e)| e)
            .collect(),
    );

    Ok(PlannedQuery {
        query,
        target,
        scope,
        access,
        residual,
        estimated_candidates: estimated,
        exec_stats: Arc::new(ExecStats::default()),
    })
}

/// Does `def` serve a predicate on `path_ids` for a query over `scope`?
fn index_matches(
    catalog: &Catalog,
    def: &IndexDef,
    path_ids: &[u32],
    target: ClassId,
    scope: &[ClassId],
) -> bool {
    if def.path != path_ids {
        return false;
    }
    match def.kind {
        IndexKind::SingleClass => {
            // Covers exactly one class's extent.
            scope.len() == 1 && scope[0] == def.target
        }
        IndexKind::ClassHierarchy | IndexKind::Nested => {
            // Covers the hierarchy rooted at def.target; applicable when
            // the query scope lies within it.
            catalog.is_subclass(target, def.target)
                && scope.iter().all(|c| catalog.is_subclass(*c, def.target))
        }
    }
}
