//! The query executor.
//!
//! Pulls candidate OIDs from the chosen access path, evaluates the
//! residual predicate by navigating the nested object structure (the
//! paper's "query against the nested definition of the class"), then
//! orders, limits, and projects.
//!
//! Null semantics are two-valued: a comparison against an absent or
//! null value is simply false (`is null` exists to test absence
//! explicitly). Set-valued steps quantify existentially.

use crate::ast::{CmpOp, Expr, Path, Query, SelectItem};
use crate::plan::{literal_value, AccessPath, PlannedQuery};
use crate::source::DataSource;
use orion_schema::Catalog;
use orion_types::{ClassId, DbResult, Oid, Value};
use std::cmp::Ordering;
use std::ops::Bound;

/// A query result: one row per match (or one row for `count(*)`).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Projected rows, aligned with the query's select list.
    pub rows: Vec<Vec<Value>>,
    /// The matching objects (empty for `count(*)`).
    pub oids: Vec<Oid>,
}

impl QueryResult {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Evaluate `path` from `oid`, returning every reachable leaf value.
///
/// Attribute resolution is by *name through the actual class of each
/// object encountered*, so polymorphic references (a `Vehicle` attribute
/// holding a `Truck`) read the right attribute even under shadowing.
pub fn path_values(
    catalog: &Catalog,
    source: &dyn DataSource,
    oid: Oid,
    path: &Path,
) -> DbResult<Vec<Value>> {
    let mut current = vec![Value::Ref(oid)];
    for step in &path.steps {
        let mut next = Vec::new();
        for v in &current {
            let Value::Ref(o) = v else { continue };
            let Ok(resolved) = catalog.resolve(o.class()) else { continue };
            let Some(attr) = resolved.attr(step) else { continue };
            let mut value = source.get_attr_value(*o, attr.id)?;
            if value.is_null() && !attr.default.is_null() {
                value = attr.default.clone();
            }
            match value {
                Value::Null => {}
                Value::Set(items) | Value::List(items) => next.extend(items),
                other => next.push(other),
            }
        }
        current = next;
    }
    Ok(current)
}

/// Match a `like` pattern: `%` matches any run of characters; everything
/// else is literal. Anchored at both ends.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let parts: Vec<&str> = pattern.split('%').collect();
    if parts.len() == 1 {
        return pattern == text;
    }
    let mut at = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            if !text.starts_with(part) {
                return false;
            }
            at = part.len();
        } else if i == parts.len() - 1 {
            return text.len() >= at && text[at..].ends_with(part);
        } else {
            match text[at..].find(part) {
                Some(p) => at += p + part.len(),
                None => return false,
            }
        }
    }
    true
}

/// Evaluate a predicate for one object.
pub fn eval_expr(
    catalog: &Catalog,
    source: &dyn DataSource,
    oid: Oid,
    expr: &Expr,
) -> DbResult<bool> {
    match expr {
        Expr::Cmp { path, op, value } => {
            let want = literal_value(value);
            if want.is_null() {
                // Comparisons against null are false; `is null` tests absence.
                return Ok(false);
            }
            let values = path_values(catalog, source, oid, path)?;
            Ok(values.iter().any(|v| {
                if v.is_null() {
                    return false;
                }
                match op {
                    CmpOp::Eq => v.eq_total(&want),
                    CmpOp::Ne => !v.eq_total(&want),
                    CmpOp::Lt => v.cmp_total(&want) == Ordering::Less,
                    CmpOp::Le => v.cmp_total(&want) != Ordering::Greater,
                    CmpOp::Gt => v.cmp_total(&want) == Ordering::Greater,
                    CmpOp::Ge => v.cmp_total(&want) != Ordering::Less,
                    CmpOp::Like => match (v.as_str(), want.as_str()) {
                        (Some(text), Some(pattern)) => like_match(pattern, text),
                        _ => false,
                    },
                }
            }))
        }
        Expr::Contains { path, value } => {
            let want = literal_value(value);
            let values = path_values(catalog, source, oid, path)?;
            Ok(values.iter().any(|v| v.eq_total(&want)))
        }
        Expr::IsNull { path } => {
            let values = path_values(catalog, source, oid, path)?;
            Ok(values.iter().all(|v| v.is_null()) || values.is_empty())
        }
        Expr::IsA { class } => {
            let cid = catalog.class_id(class)?;
            Ok(catalog.is_subclass(oid.class(), cid))
        }
        Expr::And(a, b) => {
            Ok(eval_expr(catalog, source, oid, a)? && eval_expr(catalog, source, oid, b)?)
        }
        Expr::Or(a, b) => {
            Ok(eval_expr(catalog, source, oid, a)? || eval_expr(catalog, source, oid, b)?)
        }
        Expr::Not(e) => Ok(!eval_expr(catalog, source, oid, e)?),
    }
}

/// Execute a planned query.
pub fn execute(
    catalog: &Catalog,
    source: &dyn DataSource,
    plan: &PlannedQuery,
) -> DbResult<QueryResult> {
    let scope: &[ClassId] = &plan.scope;
    // 1. Candidates from the access path.
    let mut candidates: Vec<Oid> = match &plan.access {
        AccessPath::Scan => {
            let mut out = Vec::new();
            for class in scope {
                out.extend(source.scan_class(*class)?);
            }
            out
        }
        AccessPath::IndexEq { index, key } => source.index_lookup_eq(*index, key, Some(scope))?,
        AccessPath::IndexRange { index, lower, upper } => {
            let lower = match lower {
                Bound::Included(v) => Bound::Included(v),
                Bound::Excluded(v) => Bound::Excluded(v),
                Bound::Unbounded => Bound::Unbounded,
            };
            let upper = match upper {
                Bound::Included(v) => Bound::Included(v),
                Bound::Excluded(v) => Bound::Excluded(v),
                Bound::Unbounded => Bound::Unbounded,
            };
            source.index_lookup_range(*index, lower, upper, Some(scope))?
        }
    };
    // Index results may contain classes outside scope for single-class
    // indexes probed with a wider scope — filter defensively.
    candidates.retain(|o| scope.binary_search(&o.class()).is_ok());

    // 2. Residual predicate.
    let mut matches: Vec<Oid> = Vec::new();
    for oid in candidates {
        let keep = match &plan.residual {
            Some(expr) => eval_expr(catalog, source, oid, expr)?,
            None => true,
        };
        if keep {
            matches.push(oid);
            // Early exit: no ordering means any `limit` objects do.
            if plan.query.order_by.is_none() {
                if let Some(limit) = plan.query.limit {
                    if matches.len() >= limit && !is_count(&plan.query) {
                        break;
                    }
                }
            }
        }
    }

    // 3. count(*) short-circuits projection.
    if is_count(&plan.query) {
        return Ok(QueryResult {
            rows: vec![vec![Value::Int(matches.len() as i64)]],
            oids: Vec::new(),
        });
    }

    // 4. Order.
    if let Some((path, asc)) = &plan.query.order_by {
        let mut keyed: Vec<(Value, Oid)> = Vec::with_capacity(matches.len());
        for oid in matches {
            let key = path_values(catalog, source, oid, path)?
                .into_iter()
                .next()
                .unwrap_or(Value::Null);
            keyed.push((key, oid));
        }
        keyed.sort_by(|a, b| a.0.cmp_total(&b.0));
        if !asc {
            keyed.reverse();
        }
        matches = keyed.into_iter().map(|(_, o)| o).collect();
    }

    // 5. Limit.
    if let Some(limit) = plan.query.limit {
        matches.truncate(limit);
    }

    // 6. Project.
    let mut rows = Vec::with_capacity(matches.len());
    for &oid in &matches {
        let mut row = Vec::with_capacity(plan.query.select.len());
        for item in &plan.query.select {
            match item {
                SelectItem::Object => row.push(Value::Ref(oid)),
                SelectItem::Path(path) => {
                    let mut values = path_values(catalog, source, oid, path)?;
                    row.push(match values.len() {
                        0 => Value::Null,
                        1 => values.pop().expect("len checked"),
                        _ => Value::set(values),
                    });
                }
                SelectItem::Count => unreachable!("count handled above"),
            }
        }
        rows.push(row);
    }
    Ok(QueryResult { rows, oids: matches })
}

fn is_count(query: &Query) -> bool {
    matches!(query.select.as_slice(), [SelectItem::Count])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_matching() {
        assert!(like_match("Detroit", "Detroit"));
        assert!(!like_match("Detroit", "detroit"));
        assert!(like_match("Det%", "Detroit"));
        assert!(like_match("%troit", "Detroit"));
        assert!(like_match("%tro%", "Detroit"));
        assert!(like_match("D%t%t", "Detroit"));
        assert!(!like_match("D%x%", "Detroit"));
        assert!(like_match("%", "anything"));
        assert!(like_match("%", ""));
        assert!(!like_match("a%b", "ab_c"));
        assert!(like_match("a%b", "ab"));
    }
}
