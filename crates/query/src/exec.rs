//! The query executor.
//!
//! Pulls candidate OIDs from the chosen access path, evaluates the
//! residual predicate by navigating the nested object structure (the
//! paper's "query against the nested definition of the class"), then
//! orders, limits, and projects.
//!
//! Null semantics are two-valued: a comparison against an absent or
//! null value is simply false (`is null` exists to test absence
//! explicitly). Set-valued steps quantify existentially.
//!
//! Evaluation is data-parallel: the candidate vector is partitioned
//! into contiguous chunks, one scoped thread per chunk, and per-chunk
//! outputs are concatenated *in chunk order* — so the parallel and
//! serial executors produce byte-identical results (including
//! `order by` tie handling) regardless of scheduling. A per-query
//! `(object, path) → values` memo shared by all workers fetches each
//! attribute path once across the residual, order, and projection
//! phases.

use crate::ast::{CmpOp, Expr, Path, Query, SelectItem};
use crate::plan::{literal_value, AccessPath, PlannedQuery};
use crate::source::DataSource;
use orion_obs::{Counter, Gauge};
use orion_schema::Catalog;
use orion_types::{ClassId, DbResult, Oid, Value};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{Hash, Hasher};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// A query result: one row per match (or one row for `count(*)`).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Projected rows, aligned with the query's select list.
    pub rows: Vec<Vec<Value>>,
    /// The matching objects (empty for `count(*)`).
    pub oids: Vec<Oid>,
}

impl QueryResult {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Execution tuning for [`execute_with`].
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Worker threads for candidate evaluation: `0` sizes to the
    /// machine's available parallelism (for large candidate sets),
    /// `1` forces the serial path, `n > 1` forces `n` workers.
    pub threads: usize,
    /// Cross-query metrics sink shared by every plan executed with
    /// these options (a `Database` attaches its own). `None` disables
    /// global accounting; the per-plan [`ExecStats`] is always kept.
    pub metrics: Option<Arc<ExecMetrics>>,
}

impl ExecOptions {
    /// Options with an explicit worker count and no metrics sink.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions { threads, metrics: None }
    }
}

/// Cross-query executor metrics, accumulated over every execution that
/// carries the same [`ExecOptions::metrics`] sink. All counters are
/// lock-free atomics: workers update them without coordination and a
/// snapshot never blocks a running query.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Completed query executions.
    pub queries: Counter,
    /// Candidate objects pulled from access paths (before the residual
    /// predicate runs).
    pub rows_scanned: Counter,
    /// Objects that survived the residual predicate.
    pub rows_matched: Counter,
    /// Path-memo hits, summed across executions.
    pub memo_hits: Counter,
    /// Path-memo lookups, summed across executions.
    pub memo_lookups: Counter,
    /// Plans that chose an index access path (counted at prepare time).
    pub index_picks: Counter,
    /// Plans that chose a full extent scan (counted at prepare time).
    pub scan_picks: Counter,
    /// Worker threads used by the most recent execution.
    pub last_parallelism: Gauge,
}

impl ExecMetrics {
    /// A point-in-time copy of every counter. Fields are read
    /// individually (`Relaxed`), so a snapshot taken mid-query may be
    /// skewed across fields but each value is exact, never torn.
    pub fn snapshot(&self) -> ExecSnapshot {
        ExecSnapshot {
            queries: self.queries.get(),
            rows_scanned: self.rows_scanned.get(),
            rows_matched: self.rows_matched.get(),
            memo_hits: self.memo_hits.get(),
            memo_lookups: self.memo_lookups.get(),
            index_picks: self.index_picks.get(),
            scan_picks: self.scan_picks.get(),
            last_parallelism: self.last_parallelism.get(),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.queries.reset();
        self.rows_scanned.reset();
        self.rows_matched.reset();
        self.memo_hits.reset();
        self.memo_lookups.reset();
        self.index_picks.reset();
        self.scan_picks.reset();
        self.last_parallelism.reset();
    }
}

/// Plain-value snapshot of [`ExecMetrics`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecSnapshot {
    /// Completed query executions.
    pub queries: u64,
    /// Candidate objects pulled from access paths.
    pub rows_scanned: u64,
    /// Objects that survived the residual predicate.
    pub rows_matched: u64,
    /// Path-memo hits.
    pub memo_hits: u64,
    /// Path-memo lookups.
    pub memo_lookups: u64,
    /// Plans that chose an index access path.
    pub index_picks: u64,
    /// Plans that chose a full extent scan.
    pub scan_picks: u64,
    /// Worker threads used by the most recent execution.
    pub last_parallelism: u64,
}

/// Counters describing the most recent execution of a plan, surfaced
/// through [`PlannedQuery::explain`].
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Completed executions of this plan.
    pub executions: AtomicU64,
    /// Worker threads used by the last execution.
    pub parallelism: AtomicUsize,
    /// Path-memo hits during the last execution.
    pub memo_hits: AtomicU64,
    /// Path-memo lookups during the last execution.
    pub memo_lookups: AtomicU64,
}

/// Below this many candidates per worker, another thread does not pay
/// for its spawn (auto sizing only; explicit thread counts are obeyed).
const PAR_MIN_PER_THREAD: usize = 64;

fn resolve_threads(requested: usize, items: usize) -> usize {
    if requested > 0 {
        return requested.min(items.max(1));
    }
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hw.min(items / PAR_MIN_PER_THREAD).max(1)
}

/// Map `f` over `items` on `threads` scoped workers, preserving item
/// order in the output: chunks are contiguous slices and per-chunk
/// outputs are concatenated in chunk order, so the result is the same
/// vector a sequential map would produce.
fn par_chunks<T, R, F>(items: &[T], threads: usize, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| s.spawn(move || slice.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("query worker panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------------
// Per-query path memo
// ---------------------------------------------------------------------

const MEMO_SHARDS: usize = 16;

/// One memo shard: `(object, interned path index) → shared value list`.
type MemoShard = Mutex<HashMap<(Oid, usize), Arc<Vec<Value>>>>;

/// Per-query cache of `(object, path) → reachable values`. The
/// residual, order, and projection phases often walk the same attribute
/// path for the same object; each distinct pair is fetched from the
/// source once and shared (behind an `Arc`) afterwards. Sharded so
/// parallel workers rarely contend on one map.
struct QueryMemo {
    /// The query's distinct paths, interned to indices.
    paths: Vec<Path>,
    shards: Vec<MemoShard>,
    hits: AtomicU64,
    lookups: AtomicU64,
}

fn intern(paths: &mut Vec<Path>, p: &Path) {
    if !paths.iter().any(|q| q == p) {
        paths.push(p.clone());
    }
}

fn expr_paths(expr: &Expr, paths: &mut Vec<Path>) {
    match expr {
        Expr::Cmp { path, .. } | Expr::Contains { path, .. } | Expr::IsNull { path } => {
            intern(paths, path);
        }
        Expr::IsA { .. } => {}
        Expr::And(a, b) | Expr::Or(a, b) => {
            expr_paths(a, paths);
            expr_paths(b, paths);
        }
        Expr::Not(e) => expr_paths(e, paths),
    }
}

impl QueryMemo {
    fn for_plan(plan: &PlannedQuery) -> Self {
        let mut paths = Vec::new();
        if let Some(expr) = &plan.residual {
            expr_paths(expr, &mut paths);
        }
        if let Some((p, _)) = &plan.query.order_by {
            intern(&mut paths, p);
        }
        for item in &plan.query.select {
            if let SelectItem::Path(p) = item {
                intern(&mut paths, p);
            }
        }
        QueryMemo {
            paths,
            shards: (0..MEMO_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
        }
    }

    fn values(
        &self,
        catalog: &Catalog,
        source: &dyn DataSource,
        oid: Oid,
        path: &Path,
    ) -> DbResult<Arc<Vec<Value>>> {
        let Some(idx) = self.paths.iter().position(|p| p == path) else {
            return path_values(catalog, source, oid, path).map(Arc::new);
        };
        self.lookups.fetch_add(1, Relaxed);
        let mut h = DefaultHasher::new();
        (oid, idx).hash(&mut h);
        let shard = &self.shards[h.finish() as usize % MEMO_SHARDS];
        if let Some(hit) = shard.lock().unwrap_or_else(|e| e.into_inner()).get(&(oid, idx)) {
            self.hits.fetch_add(1, Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Compute outside the shard lock; a racing duplicate fetch is
        // harmless (last insert wins, values are equal).
        let computed = Arc::new(path_values(catalog, source, oid, path)?);
        shard
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((oid, idx), Arc::clone(&computed));
        Ok(computed)
    }
}

/// Evaluate `path` from `oid`, returning every reachable leaf value.
///
/// Attribute resolution is by *name through the actual class of each
/// object encountered*, so polymorphic references (a `Vehicle` attribute
/// holding a `Truck`) read the right attribute even under shadowing.
pub fn path_values(
    catalog: &Catalog,
    source: &dyn DataSource,
    oid: Oid,
    path: &Path,
) -> DbResult<Vec<Value>> {
    let mut current = vec![Value::Ref(oid)];
    for step in &path.steps {
        let mut next = Vec::new();
        for v in &current {
            let Value::Ref(o) = v else { continue };
            let Ok(resolved) = catalog.resolve(o.class()) else { continue };
            let Some(attr) = resolved.attr(step) else { continue };
            let mut value = source.get_attr_value(*o, attr.id)?;
            if value.is_null() && !attr.default.is_null() {
                value = attr.default.clone();
            }
            match value {
                Value::Null => {}
                Value::Set(items) | Value::List(items) => next.extend(items),
                other => next.push(other),
            }
        }
        current = next;
    }
    Ok(current)
}

/// Match a `like` pattern: `%` matches any run of characters; everything
/// else is literal. Anchored at both ends.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let parts: Vec<&str> = pattern.split('%').collect();
    if parts.len() == 1 {
        return pattern == text;
    }
    let mut at = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            if !text.starts_with(part) {
                return false;
            }
            at = part.len();
        } else if i == parts.len() - 1 {
            return text.len() >= at && text[at..].ends_with(part);
        } else {
            match text[at..].find(part) {
                Some(p) => at += p + part.len(),
                None => return false,
            }
        }
    }
    true
}

/// Shared, immutable evaluation context: catalog, source, and the
/// optional per-query memo. One instance serves every worker thread.
struct EvalCtx<'a> {
    catalog: &'a Catalog,
    source: &'a dyn DataSource,
    memo: Option<&'a QueryMemo>,
}

impl EvalCtx<'_> {
    fn values(&self, oid: Oid, path: &Path) -> DbResult<Arc<Vec<Value>>> {
        match self.memo {
            Some(m) => m.values(self.catalog, self.source, oid, path),
            None => path_values(self.catalog, self.source, oid, path).map(Arc::new),
        }
    }

    fn eval(&self, oid: Oid, expr: &Expr) -> DbResult<bool> {
        match expr {
            Expr::Cmp { path, op, value } => {
                let want = literal_value(value);
                if want.is_null() {
                    // Comparisons against null are false; `is null` tests absence.
                    return Ok(false);
                }
                let values = self.values(oid, path)?;
                Ok(values.iter().any(|v| {
                    if v.is_null() {
                        return false;
                    }
                    match op {
                        CmpOp::Eq => v.eq_total(&want),
                        CmpOp::Ne => !v.eq_total(&want),
                        CmpOp::Lt => v.cmp_total(&want) == Ordering::Less,
                        CmpOp::Le => v.cmp_total(&want) != Ordering::Greater,
                        CmpOp::Gt => v.cmp_total(&want) == Ordering::Greater,
                        CmpOp::Ge => v.cmp_total(&want) != Ordering::Less,
                        CmpOp::Like => match (v.as_str(), want.as_str()) {
                            (Some(text), Some(pattern)) => like_match(pattern, text),
                            _ => false,
                        },
                    }
                }))
            }
            Expr::Contains { path, value } => {
                let want = literal_value(value);
                let values = self.values(oid, path)?;
                Ok(values.iter().any(|v| v.eq_total(&want)))
            }
            Expr::IsNull { path } => {
                let values = self.values(oid, path)?;
                Ok(values.iter().all(|v| v.is_null()) || values.is_empty())
            }
            Expr::IsA { class } => {
                let cid = self.catalog.class_id(class)?;
                Ok(self.catalog.is_subclass(oid.class(), cid))
            }
            Expr::And(a, b) => Ok(self.eval(oid, a)? && self.eval(oid, b)?),
            Expr::Or(a, b) => Ok(self.eval(oid, a)? || self.eval(oid, b)?),
            Expr::Not(e) => Ok(!self.eval(oid, e)?),
        }
    }
}

/// Evaluate a predicate for one object.
pub fn eval_expr(
    catalog: &Catalog,
    source: &dyn DataSource,
    oid: Oid,
    expr: &Expr,
) -> DbResult<bool> {
    EvalCtx { catalog, source, memo: None }.eval(oid, expr)
}

/// One `order by` sort key with its original position. The ordering
/// reproduces the reference semantics exactly: ascending is a stable
/// sort by key (ties keep candidate order), descending is that sort
/// *reversed* (ties in reverse candidate order) — so descending
/// compares both key and position reversed.
struct SortEntry {
    key: Value,
    pos: usize,
    oid: Oid,
    asc: bool,
}

impl PartialEq for SortEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for SortEntry {}

impl PartialOrd for SortEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SortEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        let base = self.key.cmp_total(&other.key).then(self.pos.cmp(&other.pos));
        if self.asc {
            base
        } else {
            base.reverse()
        }
    }
}

/// Execute a planned query with default options (auto parallelism).
pub fn execute(
    catalog: &Catalog,
    source: &dyn DataSource,
    plan: &PlannedQuery,
) -> DbResult<QueryResult> {
    execute_with(catalog, source, plan, &ExecOptions::default())
}

/// Execute a planned query.
///
/// The parallel path (`threads > 1`) partitions work by candidate
/// position and merges in candidate order, so its `QueryResult` is
/// byte-identical to the serial path's — including error selection
/// (the first failing candidate in order wins) and the `limit`
/// early-exit semantics (errors past the point where the serial
/// executor would have stopped are discarded, not surfaced).
pub fn execute_with(
    catalog: &Catalog,
    source: &dyn DataSource,
    plan: &PlannedQuery,
    opts: &ExecOptions,
) -> DbResult<QueryResult> {
    let scope: &[ClassId] = &plan.scope;
    // 1. Candidates from the access path.
    let mut candidates: Vec<Oid> = match &plan.access {
        AccessPath::Scan => {
            let mut out = Vec::new();
            for class in scope {
                out.extend(source.scan_class(*class)?);
            }
            out
        }
        AccessPath::IndexEq { index, key } => source.index_lookup_eq(*index, key, Some(scope))?,
        AccessPath::IndexRange { index, lower, upper } => {
            let lower = match lower {
                Bound::Included(v) => Bound::Included(v),
                Bound::Excluded(v) => Bound::Excluded(v),
                Bound::Unbounded => Bound::Unbounded,
            };
            let upper = match upper {
                Bound::Included(v) => Bound::Included(v),
                Bound::Excluded(v) => Bound::Excluded(v),
                Bound::Unbounded => Bound::Unbounded,
            };
            source.index_lookup_range(*index, lower, upper, Some(scope))?
        }
    };
    // Index results may contain classes outside scope for single-class
    // indexes probed with a wider scope — filter defensively.
    candidates.retain(|o| scope.binary_search(&o.class()).is_ok());
    let scanned = candidates.len();

    let threads = resolve_threads(opts.threads, candidates.len());
    let memo = QueryMemo::for_plan(plan);
    let ctx = EvalCtx { catalog, source, memo: Some(&memo) };

    // Early exit: no ordering means any `limit` objects do.
    let early_limit = if plan.query.order_by.is_none() && !is_count(&plan.query) {
        plan.query.limit
    } else {
        None
    };

    // 2. Residual predicate.
    let mut matches: Vec<Oid> = Vec::new();
    match &plan.residual {
        None => {
            matches = candidates;
            if let Some(limit) = early_limit {
                matches.truncate(limit);
            }
        }
        Some(expr) => {
            if threads <= 1 {
                for oid in candidates {
                    if ctx.eval(oid, expr)? {
                        matches.push(oid);
                        if early_limit.is_some_and(|l| matches.len() >= l) {
                            break;
                        }
                    }
                }
            } else {
                let evals = par_chunks(&candidates, threads, &|&oid| ctx.eval(oid, expr));
                for (oid, keep) in candidates.iter().zip(evals) {
                    if keep? {
                        matches.push(*oid);
                        if early_limit.is_some_and(|l| matches.len() >= l) {
                            break;
                        }
                    }
                }
            }
        }
    }

    // 3. count(*) short-circuits projection.
    if is_count(&plan.query) {
        finish_stats(plan, &memo, threads, opts, scanned, matches.len());
        return Ok(QueryResult {
            rows: vec![vec![Value::Int(matches.len() as i64)]],
            oids: Vec::new(),
        });
    }

    // 4. Order (bounded top-K when a limit is present).
    if let Some((path, asc)) = &plan.query.order_by {
        let order_key =
            |oid: &Oid| ctx.values(*oid, path).map(|v| v.first().cloned().unwrap_or(Value::Null));
        let keys = par_chunks(&matches, threads, &order_key);
        let mut entries: Vec<SortEntry> = Vec::with_capacity(matches.len());
        for (pos, (oid, key)) in matches.iter().zip(keys).enumerate() {
            entries.push(SortEntry { key: key?, pos, oid: *oid, asc: *asc });
        }
        matches = match plan.query.limit {
            // A full sort of N matches to keep K is wasted work: a
            // bounded max-heap of K entries evicts the current worst as
            // it goes, then drains in final order.
            Some(limit) if limit < entries.len() => {
                let mut heap: BinaryHeap<SortEntry> = BinaryHeap::with_capacity(limit + 1);
                for e in entries {
                    heap.push(e);
                    if heap.len() > limit {
                        heap.pop();
                    }
                }
                heap.into_sorted_vec().into_iter().map(|e| e.oid).collect()
            }
            _ => {
                entries.sort();
                entries.into_iter().map(|e| e.oid).collect()
            }
        };
    }

    // 5. Limit.
    if let Some(limit) = plan.query.limit {
        matches.truncate(limit);
    }

    // 6. Project.
    let project = |oid: &Oid| -> DbResult<Vec<Value>> {
        let mut row = Vec::with_capacity(plan.query.select.len());
        for item in &plan.query.select {
            match item {
                SelectItem::Object => row.push(Value::Ref(*oid)),
                SelectItem::Path(path) => {
                    let values = ctx.values(*oid, path)?;
                    row.push(match values.len() {
                        0 => Value::Null,
                        1 => values[0].clone(),
                        _ => Value::set(values.as_ref().clone()),
                    });
                }
                SelectItem::Count => unreachable!("count handled above"),
            }
        }
        Ok(row)
    };
    let rows = par_chunks(&matches, threads, &project)
        .into_iter()
        .collect::<DbResult<Vec<_>>>()?;

    finish_stats(plan, &memo, threads, opts, scanned, matches.len());
    Ok(QueryResult { rows, oids: matches })
}

fn finish_stats(
    plan: &PlannedQuery,
    memo: &QueryMemo,
    threads: usize,
    opts: &ExecOptions,
    scanned: usize,
    matched: usize,
) {
    let stats = &plan.exec_stats;
    let hits = memo.hits.load(Relaxed);
    let lookups = memo.lookups.load(Relaxed);
    stats.parallelism.store(threads, Relaxed);
    stats.memo_hits.store(hits, Relaxed);
    stats.memo_lookups.store(lookups, Relaxed);
    stats.executions.fetch_add(1, Relaxed);
    if let Some(metrics) = &opts.metrics {
        metrics.queries.inc();
        metrics.rows_scanned.add(scanned as u64);
        metrics.rows_matched.add(matched as u64);
        metrics.memo_hits.add(hits);
        metrics.memo_lookups.add(lookups);
        metrics.last_parallelism.set(threads as u64);
    }
}

fn is_count(query: &Query) -> bool {
    matches!(query.select.as_slice(), [SelectItem::Count])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_matching() {
        assert!(like_match("Detroit", "Detroit"));
        assert!(!like_match("Detroit", "detroit"));
        assert!(like_match("Det%", "Detroit"));
        assert!(like_match("%troit", "Detroit"));
        assert!(like_match("%tro%", "Detroit"));
        assert!(like_match("D%t%t", "Detroit"));
        assert!(!like_match("D%x%", "Detroit"));
        assert!(like_match("%", "anything"));
        assert!(like_match("%", ""));
        assert!(!like_match("a%b", "ab_c"));
        assert!(like_match("a%b", "ab"));
    }

    #[test]
    fn thread_resolution() {
        // Explicit counts are obeyed (capped by the candidate count).
        assert_eq!(resolve_threads(4, 1000), 4);
        assert_eq!(resolve_threads(4, 2), 2);
        assert_eq!(resolve_threads(1, 1000), 1);
        // Auto sizing refuses to spawn for small inputs.
        assert_eq!(resolve_threads(0, 10), 1);
        assert_eq!(resolve_threads(0, PAR_MIN_PER_THREAD - 1), 1);
    }

    #[test]
    fn par_chunks_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_chunks(&items, 7, &|&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Degenerate shapes.
        assert_eq!(par_chunks(&items[..1], 4, &|&x| x), vec![0]);
        let empty: Vec<u64> = Vec::new();
        assert_eq!(par_chunks(&empty, 4, &|&x| x), empty);
    }
}
