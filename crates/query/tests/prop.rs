//! Property tests for query processing: whatever access path the
//! optimizer picks, the answer must equal brute-force predicate
//! evaluation over a full scan — for random schemas, data, predicates,
//! and index configurations.

use orion_index::{IndexDef, IndexKind};
use orion_query::ast::{CmpOp, Expr, Literal, Path, Query, SelectItem};
use orion_query::{eval_expr, execute, plan, DataSource, MemSource};
use orion_schema::{AttrSpec, Catalog};
use orion_types::{ClassId, Domain, Oid, PrimitiveType, Value};
use proptest::prelude::*;
use std::collections::HashSet;

/// Three-class hierarchy: Base <- Mid <- Leaf, attrs `num` (int) and
/// `tag` (string), plus a reference `buddy` to Base for nested paths.
struct Fixture {
    catalog: Catalog,
    source: MemSource,
    base: ClassId,
}

fn build(
    rows: &[(u8, i64, u8, Option<u8>)],
    with_ch_index: bool,
    with_nested_index: bool,
) -> Fixture {
    let mut catalog = Catalog::new();
    let base = catalog
        .create_class(
            "Base",
            &[],
            vec![
                AttrSpec::new("num", Domain::Primitive(PrimitiveType::Int)),
                AttrSpec::new("tag", Domain::Primitive(PrimitiveType::Str)),
            ],
        )
        .unwrap();
    // Self-referential attribute for nested predicates.
    orion_schema::SchemaChange::AddAttribute {
        class: base,
        spec: AttrSpec::new("buddy", Domain::Class(base)),
    }
    .apply(&mut catalog)
    .unwrap();
    let mid = catalog.create_class("Mid", &[base], vec![]).unwrap();
    let leaf = catalog.create_class("Leaf", &[mid], vec![]).unwrap();
    let classes = [base, mid, leaf];

    let resolved = catalog.resolve(base).unwrap();
    let num_id = resolved.attr("num").unwrap().id;
    let tag_id = resolved.attr("tag").unwrap().id;
    let buddy_id = resolved.attr("buddy").unwrap().id;

    let mut source = MemSource::new();
    let oids: Vec<Oid> = rows
        .iter()
        .enumerate()
        .map(|(i, (class, _, _, _))| Oid::new(classes[*class as usize % 3], i as u64 + 1))
        .collect();
    for (i, (_, num, tag, buddy)) in rows.iter().enumerate() {
        let mut attrs = vec![
            (num_id, Value::Int(*num)),
            (tag_id, Value::Str(format!("t{}", tag % 4))),
        ];
        if let Some(b) = buddy {
            attrs.push((buddy_id, Value::Ref(oids[*b as usize % oids.len().max(1)])));
        }
        source.add_object(oids[i], attrs);
    }
    if with_ch_index {
        source.add_index(IndexDef {
            id: 1,
            name: "num_ch".into(),
            kind: IndexKind::ClassHierarchy,
            target: base,
            path: vec![num_id],
        });
        for (i, (_, num, _, _)) in rows.iter().enumerate() {
            source.index_insert(1, Value::Int(*num), oids[i]);
        }
    }
    if with_nested_index {
        source.add_index(IndexDef {
            id: 2,
            name: "buddy_num".into(),
            kind: IndexKind::Nested,
            target: base,
            path: vec![buddy_id, num_id],
        });
        for (i, (_, _, _, buddy)) in rows.iter().enumerate() {
            if let Some(b) = buddy {
                let target = &rows[*b as usize % rows.len()];
                source.index_insert(2, Value::Int(target.1), oids[i]);
            }
        }
    }
    Fixture { catalog, source, base }
}

#[derive(Debug, Clone)]
enum PredShape {
    NumCmp(u8, i64),
    NumRange(i64, i64),
    TagEq(u8),
    BuddyNum(u8, i64),
    IsLeaf,
    NumNull,
    AndOrNot(Box<PredShape>, Box<PredShape>, u8),
}

fn arb_pred() -> impl Strategy<Value = PredShape> {
    let leaf = prop_oneof![
        (0u8..6, -20i64..20).prop_map(|(op, v)| PredShape::NumCmp(op, v)),
        (-20i64..20, -20i64..20).prop_map(|(a, b)| PredShape::NumRange(a.min(b), a.max(b))),
        (any::<u8>()).prop_map(PredShape::TagEq),
        (0u8..6, -20i64..20).prop_map(|(op, v)| PredShape::BuddyNum(op, v)),
        Just(PredShape::IsLeaf),
        Just(PredShape::NumNull),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        (inner.clone(), inner, any::<u8>())
            .prop_map(|(a, b, k)| PredShape::AndOrNot(Box::new(a), Box::new(b), k))
    })
}

fn to_expr(shape: &PredShape) -> Expr {
    let op_of = |k: u8| match k % 6 {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    };
    match shape {
        PredShape::NumCmp(op, v) => Expr::Cmp {
            path: Path::new(vec!["num"]),
            op: op_of(*op),
            value: Literal::Int(*v),
        },
        PredShape::NumRange(lo, hi) => Expr::And(
            Box::new(Expr::Cmp {
                path: Path::new(vec!["num"]),
                op: CmpOp::Ge,
                value: Literal::Int(*lo),
            }),
            Box::new(Expr::Cmp {
                path: Path::new(vec!["num"]),
                op: CmpOp::Lt,
                value: Literal::Int(*hi),
            }),
        ),
        PredShape::TagEq(t) => Expr::Cmp {
            path: Path::new(vec!["tag"]),
            op: CmpOp::Eq,
            value: Literal::Str(format!("t{}", t % 4)),
        },
        PredShape::BuddyNum(op, v) => Expr::Cmp {
            path: Path::new(vec!["buddy", "num"]),
            op: op_of(*op),
            value: Literal::Int(*v),
        },
        PredShape::IsLeaf => Expr::IsA { class: "Leaf".into() },
        PredShape::NumNull => Expr::IsNull { path: Path::new(vec!["num"]) },
        PredShape::AndOrNot(a, b, k) => {
            let (a, b) = (Box::new(to_expr(a)), Box::new(to_expr(b)));
            match k % 3 {
                0 => Expr::And(a, b),
                1 => Expr::Or(a, b),
                _ => Expr::Not(a),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn planned_execution_matches_brute_force(
        rows in proptest::collection::vec(
            (any::<u8>(), -20i64..20, any::<u8>(), proptest::option::of(any::<u8>())),
            1..40,
        ),
        pred in arb_pred(),
        ch_index in any::<bool>(),
        nested_index in any::<bool>(),
        hierarchy in any::<bool>(),
    ) {
        let fx = build(&rows, ch_index, nested_index);
        let expr = to_expr(&pred);
        let query = Query {
            select: vec![SelectItem::Object],
            target: "Base".into(),
            hierarchy,
            var: "x".into(),
            predicate: Some(expr.clone()),
            order_by: None,
            limit: None,
        };
        let planned = plan(&fx.catalog, &fx.source, query).unwrap();
        let result = execute(&fx.catalog, &fx.source, &planned).unwrap();
        let got: HashSet<Oid> = result.oids.iter().copied().collect();

        // Brute force: scan the scope, evaluate the predicate directly.
        let scope: Vec<ClassId> = if hierarchy {
            fx.catalog.subtree(fx.base).unwrap().as_ref().clone()
        } else {
            vec![fx.base]
        };
        let mut want = HashSet::new();
        for class in scope {
            for oid in fx.source.scan_class(class).unwrap() {
                if eval_expr(&fx.catalog, &fx.source, oid, &expr).unwrap() {
                    want.insert(oid);
                }
            }
        }
        prop_assert_eq!(
            &got, &want,
            "plan {} disagreed with brute force", planned.report()
        );

        // count(*) agrees with the row set.
        let count_query = Query {
            select: vec![SelectItem::Count],
            target: "Base".into(),
            hierarchy,
            var: "x".into(),
            predicate: Some(expr),
            order_by: None,
            limit: None,
        };
        let planned = plan(&fx.catalog, &fx.source, count_query).unwrap();
        let result = execute(&fx.catalog, &fx.source, &planned).unwrap();
        prop_assert_eq!(&result.rows[0][0], &Value::Int(want.len() as i64));
    }

    /// Order by + limit return the top of the brute-force ordering.
    #[test]
    fn order_and_limit_agree_with_sorting(
        rows in proptest::collection::vec(
            (any::<u8>(), -20i64..20, any::<u8>(), proptest::option::of(any::<u8>())),
            1..30,
        ),
        asc in any::<bool>(),
        limit in 0usize..10,
    ) {
        let fx = build(&rows, false, false);
        let query = Query {
            select: vec![SelectItem::Path(Path::new(vec!["num"]))],
            target: "Base".into(),
            hierarchy: true,
            var: "x".into(),
            predicate: None,
            order_by: Some((Path::new(vec!["num"]), asc)),
            limit: Some(limit),
        };
        let planned = plan(&fx.catalog, &fx.source, query).unwrap();
        let result = execute(&fx.catalog, &fx.source, &planned).unwrap();
        let got: Vec<i64> = result.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut all: Vec<i64> = rows.iter().map(|(_, n, _, _)| *n).collect();
        all.sort_unstable();
        if !asc {
            all.reverse();
        }
        all.truncate(limit);
        prop_assert_eq!(got, all);
    }
}
