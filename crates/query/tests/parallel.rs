//! The parallel executor must be indistinguishable from the serial one:
//! same rows, same oids, same order — including `order by` ties — for
//! every query shape. Chunked evaluation with in-order concatenation
//! makes this hold by construction; these tests pin it down.

use orion_query::exec::{execute_with, ExecOptions};
use orion_query::{parse, plan, MemSource};
use orion_schema::{AttrSpec, Catalog};
use orion_types::{ClassId, Domain, Oid, PrimitiveType, Value};

/// A three-class hierarchy with enough instances to exercise chunking,
/// deliberately full of duplicate sort keys (weight = serial / 10).
fn fixture(n: u64) -> (Catalog, MemSource, ClassId) {
    let mut cat = Catalog::new();
    let company = cat
        .create_class(
            "Company",
            &[],
            vec![AttrSpec::new("location", Domain::Primitive(PrimitiveType::Str))],
        )
        .unwrap();
    let vehicle = cat
        .create_class(
            "Vehicle",
            &[],
            vec![
                AttrSpec::new("weight", Domain::Primitive(PrimitiveType::Int)),
                AttrSpec::new("manufacturer", Domain::Class(company)),
            ],
        )
        .unwrap();
    let auto = cat.create_class("Automobile", &[vehicle], vec![]).unwrap();
    let truck = cat.create_class("Truck", &[vehicle], vec![]).unwrap();

    let weight_id = cat.resolve(vehicle).unwrap().attr("weight").unwrap().id;
    let manu_id = cat.resolve(vehicle).unwrap().attr("manufacturer").unwrap().id;
    let loc_id = cat.resolve(company).unwrap().attr("location").unwrap().id;

    let mut src = MemSource::new();
    let cities = ["Detroit", "Austin", "Toledo"];
    let companies: Vec<Oid> = cities
        .iter()
        .enumerate()
        .map(|(i, city)| {
            let oid = Oid::new(company, 1000 + i as u64);
            src.add_object(oid, vec![(loc_id, Value::str(*city))]);
            oid
        })
        .collect();
    for i in 0..n {
        let class = if i % 2 == 0 { truck } else { auto };
        src.add_object(
            Oid::new(class, i),
            vec![
                // Tens of duplicates per key: order-by ties everywhere.
                (weight_id, Value::Int((i / 10) as i64)),
                (manu_id, Value::Ref(companies[(i % 3) as usize])),
            ],
        );
    }
    (cat, src, vehicle)
}

const QUERIES: &[&str] = &[
    "select v from Vehicle* v where v.weight > 10 and v.manufacturer.location = \"Detroit\"",
    "select v.weight from Vehicle* v where v.manufacturer.location != \"Austin\" \
     order by v.weight asc",
    "select v, v.weight from Vehicle* v order by v.weight desc limit 17",
    "select v.manufacturer.location from Vehicle* v where v.weight >= 5 \
     order by v.weight asc limit 40",
    "select v from Vehicle* v where v.weight < 30 limit 25",
    "select count(*) from Vehicle* v where v.manufacturer.location = \"Toledo\"",
    "select v from Truck v where v.weight <= 12 order by v.weight desc",
];

#[test]
fn parallel_results_match_serial_exactly() {
    let (cat, src, _) = fixture(600);
    for text in QUERIES {
        let planned = plan(&cat, &src, parse(text).unwrap()).unwrap();
        let serial =
            execute_with(&cat, &src, &planned, &ExecOptions::with_threads(1)).unwrap();
        for threads in [2, 4, 8] {
            let parallel =
                execute_with(&cat, &src, &planned, &ExecOptions::with_threads(threads)).unwrap();
            assert_eq!(
                serial, parallel,
                "`{text}` diverged at {threads} threads ({})",
                planned.report()
            );
        }
    }
}

#[test]
fn desc_ties_reproduce_reversed_stable_order() {
    // The reference semantics sort ascending (stable: ties keep
    // candidate order) and then reverse, so descending ties appear in
    // *reverse* candidate order. The bounded top-K heap must agree.
    let (cat, src, _) = fixture(100);
    let planned = plan(
        &cat,
        &src,
        parse("select v from Vehicle* v order by v.weight desc limit 15").unwrap(),
    )
    .unwrap();
    let unlimited = plan(
        &cat,
        &src,
        parse("select v from Vehicle* v order by v.weight desc").unwrap(),
    )
    .unwrap();
    for threads in [1, 4] {
        let opts = ExecOptions::with_threads(threads);
        let top = execute_with(&cat, &src, &planned, &opts).unwrap();
        let full = execute_with(&cat, &src, &unlimited, &opts).unwrap();
        assert_eq!(top.oids, full.oids[..15], "top-K must be a prefix of the full sort");
    }
}

#[test]
fn explain_reports_parallelism_and_memo_rate() {
    let (cat, src, _) = fixture(600);
    // Weight appears in the residual, the order key, and the projection:
    // the memo collapses three walks per object into one.
    let planned = plan(
        &cat,
        &src,
        parse("select v.weight from Vehicle* v where v.weight >= 0 order by v.weight asc")
            .unwrap(),
    )
    .unwrap();
    assert!(planned.report().last_run.is_none(), "no run recorded before execution");
    execute_with(&cat, &src, &planned, &ExecOptions::with_threads(4)).unwrap();
    let report = planned.report();
    let run = report.last_run.expect("execution recorded");
    assert_eq!(run.parallelism, 4);
    // 600 objects × 3 phases = 1800 lookups, only 600 misses.
    assert_eq!(run.memo_lookups, 1800);
    assert_eq!(run.memo_hits, 1200);
    assert_eq!(run.memo_hit_pct(), 66);
    let text = report.to_string();
    assert!(text.contains("parallelism=4"), "missing thread count: {text}");
    assert!(text.contains("memo hits 1200/1800 (66%)"), "missing memo stats: {text}");
    // The deprecated string API renders the identical line.
    #[allow(deprecated)]
    let legacy = planned.explain();
    assert_eq!(legacy, text);
}

#[test]
fn exec_metrics_accumulate_across_queries() {
    use orion_query::ExecMetrics;
    use std::sync::Arc;

    let (cat, src, _) = fixture(300);
    let metrics = Arc::new(ExecMetrics::default());
    let opts = ExecOptions { threads: 2, metrics: Some(Arc::clone(&metrics)) };

    let planned = plan(
        &cat,
        &src,
        parse("select v from Vehicle* v where v.weight < 10").unwrap(),
    )
    .unwrap();
    execute_with(&cat, &src, &planned, &opts).unwrap();
    let s1 = metrics.snapshot();
    assert_eq!(s1.queries, 1);
    assert_eq!(s1.rows_scanned, 300, "every candidate counted");
    assert_eq!(s1.rows_matched, 100, "weights 0..=9 cover serials 0..100");
    assert_eq!(s1.last_parallelism, 2);

    // A second execution accumulates rather than overwrites.
    execute_with(&cat, &src, &planned, &opts).unwrap();
    let s2 = metrics.snapshot();
    assert_eq!(s2.queries, 2);
    assert_eq!(s2.rows_scanned, 600);
    assert_eq!(s2.rows_matched, 200);

    metrics.reset();
    assert_eq!(metrics.snapshot(), Default::default());
}
