//! The transactional storage engine: record operations with write-ahead
//! logging, rollback via compensation records, quiescent checkpoints,
//! and redo/undo restart recovery.
//!
//! Isolation is *not* this layer's job — the lock manager (`orion-tx`)
//! serializes conflicting record access above it. This layer guarantees
//! atomicity and durability: committed operations survive a crash,
//! uncommitted ones roll back, even when the crash lands mid-rollback
//! (experiment E13).

use crate::backend::StorageBackend;
use crate::buffer::BufferPool;
use crate::disk::{PageId, SimDisk};
use crate::fault::{FaultInjector, FaultPlan, FaultStats};
use crate::heap::{HeapFile, Rid};
use crate::slotted;
use crate::wal::{ClrAction, LogRecord, Lsn, Wal};
use orion_obs::Counter;
use orion_types::{DbError, DbResult};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A storage-level transaction id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[derive(Debug, Clone)]
enum UndoOp {
    Insert { rid: Rid },
    Update { rid: Rid, before: Vec<u8> },
    Delete { rid: Rid, before: Vec<u8> },
}

#[derive(Debug, Default)]
struct TxnState {
    ops: Vec<(Lsn, UndoOp)>,
}

/// Recovery-outcome counters: how often restart recovery ran, whether
/// it completed, and how much damage it had to repair along the way.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Recovery runs that completed (analysis + redo + undo).
    pub completed: u64,
    /// Recovery runs that failed with an error (e.g. interior log
    /// corruption, or an injected fault still armed during restart).
    pub failed: u64,
    /// Corrupt pages detected at restart and rebuilt by log replay.
    pub pages_repaired: u64,
}

/// The transactional storage engine.
pub struct StorageEngine {
    disk: Arc<dyn StorageBackend>,
    pool: Arc<BufferPool>,
    wal: Arc<Wal>,
    heap: Mutex<HeapFile>,
    active: Mutex<HashMap<u64, TxnState>>,
    /// Two-phase-commit participants: transactions whose effects are
    /// fully logged and forced but whose outcome belongs to a remote
    /// coordinator. Undo state is retained so a later abort decision
    /// can still roll them back; restart recovery rebuilds this map
    /// from `Prepare` records without a matching `Commit`/`Abort`.
    prepared: Mutex<HashMap<u64, TxnState>>,
    next_txn: AtomicU64,
    faults: Mutex<Option<Arc<FaultInjector>>>,
    /// Stats folded in from injectors that were since uninstalled, so
    /// fault counters are cumulative across plans.
    fault_base: Mutex<FaultStats>,
    recoveries_completed: Counter,
    recoveries_failed: Counter,
    pages_repaired: Counter,
}

impl StorageEngine {
    /// A fresh in-memory engine with a buffer pool of `pool_pages`
    /// frames (a [`SimDisk`] backend).
    pub fn new(pool_pages: usize) -> Self {
        Self::with_backend(Arc::new(SimDisk::new()), pool_pages)
            .expect("a fresh in-memory backend cannot fail to open")
    }

    /// An engine over an explicit storage backend. The WAL's stable
    /// mirror is loaded from the backend's log device, so constructing
    /// over a non-empty [`crate::backend::FileDisk`] and calling
    /// [`StorageEngine::recover`] resumes a previous process's state.
    pub fn with_backend(
        backend: Arc<dyn StorageBackend>,
        pool_pages: usize,
    ) -> DbResult<Self> {
        let wal = Arc::new(Wal::with_backend(Arc::clone(&backend))?);
        let pool =
            Arc::new(BufferPool::new(Arc::clone(&backend), pool_pages, Some(Arc::clone(&wal))));
        Ok(StorageEngine {
            disk: backend,
            pool,
            wal,
            heap: Mutex::new(HeapFile::new()),
            active: Mutex::new(HashMap::new()),
            prepared: Mutex::new(HashMap::new()),
            next_txn: AtomicU64::new(1),
            faults: Mutex::new(None),
            fault_base: Mutex::new(FaultStats::default()),
            recoveries_completed: Counter::default(),
            recoveries_failed: Counter::default(),
            pages_repaired: Counter::default(),
        })
    }

    fn fold_fault_stats(&self) {
        if let Some(inj) = self.faults.lock().take() {
            let s = inj.stats();
            let mut base = self.fault_base.lock();
            base.read_errors += s.read_errors;
            base.write_errors += s.write_errors;
            base.torn_writes += s.torn_writes;
            base.bit_flips += s.bit_flips;
            base.partial_flushes += s.partial_flushes;
        }
    }

    /// Install a fault plan: a single injector shared by the disk and
    /// the WAL starts firing according to `plan`'s triggers. Replaces
    /// any previously installed plan (its counts are retained in
    /// [`StorageEngine::fault_stats`]).
    pub fn install_faults(&self, plan: FaultPlan) -> Arc<FaultInjector> {
        let inj = Arc::new(FaultInjector::new(plan));
        self.fold_fault_stats();
        self.disk.set_fault_injector(Some(Arc::clone(&inj)));
        self.wal.set_fault_injector(Some(Arc::clone(&inj)));
        *self.faults.lock() = Some(Arc::clone(&inj));
        inj
    }

    /// Remove any installed fault plan; subsequent I/O is clean.
    pub fn clear_faults(&self) {
        self.fold_fault_stats();
        self.disk.set_fault_injector(None);
        self.wal.set_fault_injector(None);
    }

    /// Cumulative injected-fault counters, across every plan installed
    /// over this engine's lifetime.
    pub fn fault_stats(&self) -> FaultStats {
        let base = *self.fault_base.lock();
        let live = self.faults.lock().as_ref().map(|f| f.stats()).unwrap_or_default();
        FaultStats {
            read_errors: base.read_errors + live.read_errors,
            write_errors: base.write_errors + live.write_errors,
            torn_writes: base.torn_writes + live.torn_writes,
            bit_flips: base.bit_flips + live.bit_flips,
            partial_flushes: base.partial_flushes + live.partial_flushes,
        }
    }

    /// Recovery-outcome counters.
    pub fn recovery_stats(&self) -> RecoveryStats {
        RecoveryStats {
            completed: self.recoveries_completed.get(),
            failed: self.recoveries_failed.get(),
            pages_repaired: self.pages_repaired.get(),
        }
    }

    /// The buffer pool (stats, capacity).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The storage backend (stats).
    pub fn disk(&self) -> &Arc<dyn StorageBackend> {
        &self.disk
    }

    /// The write-ahead log.
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction.
    pub fn begin(&self) -> TxnId {
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed);
        self.wal.append(&LogRecord::Begin { txn: id });
        self.active.lock().insert(id, TxnState::default());
        TxnId(id)
    }

    fn record_op(&self, txn: TxnId, lsn: Lsn, op: UndoOp) -> DbResult<()> {
        let mut active = self.active.lock();
        let state = active
            .get_mut(&txn.0)
            .ok_or_else(|| DbError::InvalidTxnState(format!("{txn} is not active")))?;
        state.ops.push((lsn, op));
        Ok(())
    }

    /// Commit: force the log through the commit record.
    ///
    /// An error from the force (e.g. an injected partial flush) leaves
    /// the commit *in doubt*: the record may or may not be stable. The
    /// transaction is over either way — crash-and-recover resolves the
    /// outcome atomically (all of it or none of it).
    pub fn commit(&self, txn: TxnId) -> DbResult<()> {
        if self.active.lock().remove(&txn.0).is_none() {
            return Err(DbError::InvalidTxnState(format!("{txn} is not active")));
        }
        self.wal.append(&LogRecord::Commit { txn: txn.0 });
        self.wal.commit_flush()
    }

    /// Roll back every operation of `txn`, logging compensation records,
    /// then mark the transaction aborted.
    pub fn abort(&self, txn: TxnId) -> DbResult<()> {
        let state = self
            .active
            .lock()
            .remove(&txn.0)
            .ok_or_else(|| DbError::InvalidTxnState(format!("{txn} is not active")))?;
        self.undo_and_abort(txn, &state)
    }

    fn undo_and_abort(&self, txn: TxnId, state: &TxnState) -> DbResult<()> {
        for (lsn, op) in state.ops.iter().rev() {
            let action = match op {
                UndoOp::Insert { rid } => ClrAction::Remove { rid: *rid },
                UndoOp::Update { rid, before } => {
                    ClrAction::Overwrite { rid: *rid, bytes: before.clone() }
                }
                UndoOp::Delete { rid, before } => {
                    ClrAction::ReInsert { rid: *rid, bytes: before.clone() }
                }
            };
            let clr_lsn = self.wal.append(&LogRecord::Clr {
                txn: txn.0,
                compensates: lsn.0,
                action: action.clone(),
            });
            self.apply_clr(&action, clr_lsn)?;
        }
        self.wal.append(&LogRecord::Abort { txn: txn.0 });
        self.wal.flush()
    }

    // ------------------------------------------------------------------
    // Two-phase commit (participant half)
    // ------------------------------------------------------------------

    /// Phase one of two-phase commit: force the log through a `Prepare`
    /// record. On success the transaction leaves the active set and can
    /// no longer abort unilaterally — only
    /// [`StorageEngine::commit_prepared`] or
    /// [`StorageEngine::abort_prepared`] (the coordinator's decision)
    /// may settle it, and restart recovery reinstates it as in doubt
    /// rather than undoing it.
    ///
    /// If the force fails, the transaction returns to the active set so
    /// the caller can roll it back normally; a half-stable `Prepare`
    /// record followed by the rollback's `Abort` record is resolved as
    /// aborted by recovery.
    pub fn prepare(&self, txn: TxnId) -> DbResult<()> {
        let state = self
            .active
            .lock()
            .remove(&txn.0)
            .ok_or_else(|| DbError::InvalidTxnState(format!("{txn} is not active")))?;
        self.wal.append(&LogRecord::Prepare { txn: txn.0 });
        match self.wal.commit_flush() {
            Ok(()) => {
                self.prepared.lock().insert(txn.0, state);
                Ok(())
            }
            Err(e) => {
                self.active.lock().insert(txn.0, state);
                Err(e)
            }
        }
    }

    /// Phase two, commit branch: force a `Commit` record for a prepared
    /// transaction. Idempotent by transaction id — committing a
    /// transaction that is no longer prepared (the decision already
    /// arrived, possibly on a retransmitted frame) returns `Ok(false)`.
    /// Returns `Err` only for a transaction still in the *active* set,
    /// which must go through [`StorageEngine::commit`] instead.
    pub fn commit_prepared(&self, txn: TxnId) -> DbResult<bool> {
        if self.prepared.lock().remove(&txn.0).is_none() {
            if self.active.lock().contains_key(&txn.0) {
                return Err(DbError::InvalidTxnState(format!(
                    "{txn} is active, not prepared; use commit"
                )));
            }
            return Ok(false);
        }
        self.wal.append(&LogRecord::Commit { txn: txn.0 });
        self.wal.commit_flush()?;
        Ok(true)
    }

    /// Phase two, abort branch: undo a prepared transaction from its
    /// retained undo state, exactly like a normal rollback. Idempotent
    /// by transaction id like [`StorageEngine::commit_prepared`].
    pub fn abort_prepared(&self, txn: TxnId) -> DbResult<bool> {
        let state = match self.prepared.lock().remove(&txn.0) {
            Some(state) => state,
            None => {
                if self.active.lock().contains_key(&txn.0) {
                    return Err(DbError::InvalidTxnState(format!(
                        "{txn} is active, not prepared; use abort"
                    )));
                }
                return Ok(false);
            }
        };
        self.undo_and_abort(txn, &state)?;
        Ok(true)
    }

    /// Transaction ids currently prepared and awaiting a coordinator
    /// decision (sorted). After restart recovery these are the in-doubt
    /// transactions rebuilt from the log.
    pub fn prepared_txns(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.prepared.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The record ids a prepared transaction touched, each with the
    /// retained pre-image when the op carries one (updates and
    /// deletes; inserts have none — their record is in place). After
    /// restart recovery the facade uses this to re-assert exclusive
    /// ownership of in-doubt objects before traffic resumes.
    pub fn prepared_ops(&self, txn: u64) -> Vec<(Rid, Option<Vec<u8>>)> {
        self.prepared
            .lock()
            .get(&txn)
            .map(|state| {
                state
                    .ops
                    .iter()
                    .map(|(_, op)| match op {
                        UndoOp::Insert { rid } => (*rid, None),
                        UndoOp::Update { rid, before } => (*rid, Some(before.clone())),
                        UndoOp::Delete { rid, before } => (*rid, Some(before.clone())),
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn apply_clr(&self, action: &ClrAction, lsn: Lsn) -> DbResult<()> {
        match action {
            ClrAction::Remove { rid } => self.pool.with_page_mut(rid.page, |page| {
                slotted::delete(page, rid.slot);
                slotted::set_page_lsn(page, lsn.0);
            })?,
            ClrAction::Overwrite { rid, bytes } => {
                self.pool.with_page_mut(rid.page, |page| -> DbResult<()> {
                    if !slotted::update(page, rid.slot, bytes) {
                        slotted::delete(page, rid.slot);
                        slotted::insert_at(page, rid.slot, bytes)?;
                    }
                    slotted::set_page_lsn(page, lsn.0);
                    Ok(())
                })??
            }
            ClrAction::ReInsert { rid, bytes } => {
                self.pool.with_page_mut(rid.page, |page| -> DbResult<()> {
                    slotted::insert_at(page, rid.slot, bytes)?;
                    slotted::set_page_lsn(page, lsn.0);
                    Ok(())
                })??
            }
        }
        self.refresh_free(match action {
            ClrAction::Remove { rid }
            | ClrAction::Overwrite { rid, .. }
            | ClrAction::ReInsert { rid, .. } => rid.page,
        })?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Record operations
    //
    // Long records ("long unstructured data (such as images, audio, and
    // textual documents)", paper §2.2) are chained transparently across
    // overflow segments: every stored cell starts with a tag byte
    // (whole / head / tail); head and tail segments carry a pointer to
    // the next segment. Callers only ever see logical byte strings and
    // head record ids.
    // ------------------------------------------------------------------

    fn refresh_free(&self, page: PageId) -> DbResult<()> {
        let free = self.pool.with_page(page, slotted::usable_free)?;
        self.heap.lock().note_free(page, free);
        Ok(())
    }

    /// Largest logical record the engine accepts (sanity cap).
    pub const MAX_LOGICAL_RECORD: usize = 16 << 20;

    const TAG_WHOLE: u8 = 0;
    const TAG_HEAD: u8 = 1;
    const TAG_TAIL: u8 = 2;
    /// Bytes of a segment header: tag + next page (u32) + next slot (u16).
    const SEG_HEADER: usize = 7;
    /// Sentinel "no next segment".
    const NO_NEXT: u32 = u32::MAX;

    fn payload_per_segment() -> usize {
        slotted::MAX_RECORD - Self::SEG_HEADER
    }

    fn encode_whole(bytes: &[u8]) -> Vec<u8> {
        let mut raw = Vec::with_capacity(bytes.len() + 1);
        raw.push(Self::TAG_WHOLE);
        raw.extend_from_slice(bytes);
        raw
    }

    fn encode_segment(tag: u8, next: Option<Rid>, chunk: &[u8]) -> Vec<u8> {
        let mut raw = Vec::with_capacity(chunk.len() + Self::SEG_HEADER);
        raw.push(tag);
        match next {
            Some(rid) => {
                raw.extend_from_slice(&rid.page.0.to_le_bytes());
                raw.extend_from_slice(&rid.slot.to_le_bytes());
            }
            None => {
                raw.extend_from_slice(&Self::NO_NEXT.to_le_bytes());
                raw.extend_from_slice(&0u16.to_le_bytes());
            }
        }
        raw.extend_from_slice(chunk);
        raw
    }

    /// Parse a raw cell into `(tag, next, payload)`.
    fn parse_raw(raw: &[u8]) -> DbResult<(u8, Option<Rid>, &[u8])> {
        let tag = *raw.first().ok_or_else(|| DbError::Storage("empty cell".into()))?;
        match tag {
            Self::TAG_WHOLE => Ok((tag, None, &raw[1..])),
            Self::TAG_HEAD | Self::TAG_TAIL => {
                if raw.len() < Self::SEG_HEADER {
                    return Err(DbError::Storage("truncated segment header".into()));
                }
                let page = u32::from_le_bytes(raw[1..5].try_into().unwrap());
                let slot = u16::from_le_bytes(raw[5..7].try_into().unwrap());
                let next = if page == Self::NO_NEXT {
                    None
                } else {
                    Some(Rid { page: PageId(page), slot })
                };
                Ok((tag, next, &raw[Self::SEG_HEADER..]))
            }
            other => Err(DbError::Storage(format!("unknown record tag {other}"))),
        }
    }

    /// Insert one raw (already tagged) cell.
    fn insert_raw(&self, txn: TxnId, raw: &[u8], hint: Option<PageId>) -> DbResult<Rid> {
        debug_assert!(raw.len() <= slotted::MAX_RECORD);
        let need = raw.len() + 8; // cell + slot entry, with slack
        loop {
            let candidate = self.heap.lock().pick_page(need, hint);
            // Clustering discipline: when a placement hint was given but
            // the hinted page is full, a *fresh* page keeps the cluster
            // contiguous — falling back to global first-fit would
            // scatter the overflow among unrelated objects (§4.2).
            let candidate = match (candidate, hint) {
                (Some(p), Some(h)) if p != h => None,
                (c, _) => c,
            };
            let pid = match candidate {
                Some(p) => p,
                None => {
                    let p = self.pool.allocate_slotted()?;
                    let free = self.pool.with_page(p, slotted::usable_free)?;
                    self.heap.lock().note_free(p, free);
                    p
                }
            };
            let slot = self.pool.with_page_mut(pid, |page| slotted::insert(page, raw))?;
            match slot {
                Some(slot) => {
                    let rid = Rid { page: pid, slot };
                    let lsn = self.wal.append(&LogRecord::Insert {
                        txn: txn.0,
                        rid,
                        bytes: raw.to_vec(),
                    });
                    self.pool.with_page_mut(pid, |page| slotted::set_page_lsn(page, lsn.0))?;
                    self.refresh_free(pid)?;
                    self.record_op(txn, lsn, UndoOp::Insert { rid })?;
                    return Ok(rid);
                }
                None => {
                    // Stale free estimate; refresh and retry elsewhere.
                    self.refresh_free(pid)?;
                    let still = self.heap.lock().pick_page(need, None);
                    if still == Some(pid) {
                        return Err(DbError::Internal(format!(
                            "page {pid} claims {need} free bytes but rejects insert"
                        )));
                    }
                }
            }
        }
    }

    fn read_raw(&self, rid: Rid) -> DbResult<Vec<u8>> {
        self.pool
            .with_page(rid.page, |page| slotted::get(page, rid.slot).map(|r| r.to_vec()))?
            .ok_or_else(|| DbError::Storage(format!("no record at {rid}")))
    }

    fn delete_raw(&self, txn: TxnId, rid: Rid) -> DbResult<()> {
        let before = self.read_raw(rid)?;
        self.pool.with_page_mut(rid.page, |page| slotted::delete(page, rid.slot))?;
        let lsn = self.wal.append(&LogRecord::Delete { txn: txn.0, rid, before: before.clone() });
        self.pool.with_page_mut(rid.page, |page| slotted::set_page_lsn(page, lsn.0))?;
        self.refresh_free(rid.page)?;
        self.record_op(txn, lsn, UndoOp::Delete { rid, before })?;
        Ok(())
    }

    /// The chain of rids making up the record at `head` (head first).
    fn chain_rids(&self, head: Rid) -> DbResult<Vec<Rid>> {
        let mut rids = vec![head];
        let raw = self.read_raw(head)?;
        let (tag, mut next, _) = Self::parse_raw(&raw)?;
        if tag == Self::TAG_TAIL {
            return Err(DbError::Storage(format!("{head} is an overflow segment, not a record")));
        }
        while let Some(rid) = next {
            rids.push(rid);
            let raw = self.read_raw(rid)?;
            let (tag, n, _) = Self::parse_raw(&raw)?;
            if tag != Self::TAG_TAIL {
                return Err(DbError::Storage(format!("broken overflow chain at {rid}")));
            }
            next = n;
        }
        Ok(rids)
    }

    /// Insert a record; `hint` asks for placement on a specific page
    /// (composite-object clustering). Long records are chained across
    /// overflow segments transparently. Returns the head record id.
    pub fn insert(&self, txn: TxnId, bytes: &[u8], hint: Option<PageId>) -> DbResult<Rid> {
        if bytes.len() > Self::MAX_LOGICAL_RECORD {
            return Err(DbError::Storage(format!(
                "record of {} bytes exceeds the {} byte cap",
                bytes.len(),
                Self::MAX_LOGICAL_RECORD
            )));
        }
        if bytes.len() < slotted::MAX_RECORD {
            return self.insert_raw(txn, &Self::encode_whole(bytes), hint);
        }
        // Chain: insert tail segments back-to-front so each knows its
        // successor, then the head.
        let seg = Self::payload_per_segment();
        let chunks: Vec<&[u8]> = bytes.chunks(seg).collect();
        let mut next: Option<Rid> = None;
        for chunk in chunks[1..].iter().rev() {
            let raw = Self::encode_segment(Self::TAG_TAIL, next, chunk);
            next = Some(self.insert_raw(txn, &raw, hint)?);
        }
        let head_raw = Self::encode_segment(Self::TAG_HEAD, next, chunks[0]);
        self.insert_raw(txn, &head_raw, hint)
    }

    /// Read a record's bytes (reassembling overflow chains).
    pub fn read(&self, rid: Rid) -> DbResult<Vec<u8>> {
        let raw = self.read_raw(rid)?;
        let (tag, mut next, payload) = Self::parse_raw(&raw)?;
        match tag {
            Self::TAG_WHOLE => Ok(payload.to_vec()),
            Self::TAG_HEAD => {
                let mut out = payload.to_vec();
                while let Some(seg_rid) = next {
                    let raw = self.read_raw(seg_rid)?;
                    let (tag, n, payload) = Self::parse_raw(&raw)?;
                    if tag != Self::TAG_TAIL {
                        return Err(DbError::Storage(format!(
                            "broken overflow chain at {seg_rid}"
                        )));
                    }
                    out.extend_from_slice(payload);
                    next = n;
                }
                Ok(out)
            }
            _ => Err(DbError::Storage(format!("{rid} is an overflow segment, not a record"))),
        }
    }

    /// Does a live record (head) exist at `rid`?
    pub fn exists(&self, rid: Rid) -> DbResult<bool> {
        let raw = self
            .pool
            .with_page(rid.page, |page| slotted::get(page, rid.slot).map(|r| r.to_vec()))?;
        match raw {
            Some(raw) => Ok(matches!(Self::parse_raw(&raw)?.0, Self::TAG_WHOLE | Self::TAG_HEAD)),
            None => Ok(false),
        }
    }

    /// Update a record. Small-to-small updates try in place; everything
    /// else re-chains (delete + insert). Returns the (possibly new) rid.
    pub fn update(&self, txn: TxnId, rid: Rid, bytes: &[u8]) -> DbResult<Rid> {
        let before_raw = self.read_raw(rid)?;
        let (tag, _, _) = Self::parse_raw(&before_raw)?;
        if tag == Self::TAG_WHOLE && bytes.len() < slotted::MAX_RECORD {
            let after_raw = Self::encode_whole(bytes);
            let in_place = self
                .pool
                .with_page_mut(rid.page, |page| slotted::update(page, rid.slot, &after_raw))?;
            if in_place {
                let lsn = self.wal.append(&LogRecord::Update {
                    txn: txn.0,
                    rid,
                    before: before_raw.clone(),
                    after: after_raw,
                });
                self.pool.with_page_mut(rid.page, |page| slotted::set_page_lsn(page, lsn.0))?;
                self.refresh_free(rid.page)?;
                self.record_op(txn, lsn, UndoOp::Update { rid, before: before_raw })?;
                return Ok(rid);
            }
        }
        self.delete(txn, rid)?;
        self.insert(txn, bytes, Some(rid.page))
    }

    /// Delete a record (and its whole overflow chain).
    pub fn delete(&self, txn: TxnId, rid: Rid) -> DbResult<()> {
        for seg in self.chain_rids(rid)? {
            self.delete_raw(txn, seg)?;
        }
        Ok(())
    }

    /// Visit every live *logical* record (directory rebuild, eager
    /// schema migration, statistics). Overflow chains are reassembled
    /// and reported once, under their head rid.
    pub fn scan_all(&self, mut f: impl FnMut(Rid, &[u8])) -> DbResult<()> {
        let pages = self.disk.page_count();
        for p in 0..pages {
            let pid = PageId(p);
            // Collect this page's cells first: the closure must not call
            // back into the pool (chain reads would).
            let cells: Vec<(u16, Vec<u8>)> = self.pool.with_page(pid, |page| {
                slotted::iter(page).map(|(slot, rec)| (slot, rec.to_vec())).collect()
            })?;
            for (slot, raw) in cells {
                let rid = Rid { page: pid, slot };
                match Self::parse_raw(&raw)? {
                    (Self::TAG_WHOLE, _, payload) => f(rid, payload),
                    (Self::TAG_HEAD, _, _) => {
                        let assembled = self.read(rid)?;
                        f(rid, &assembled);
                    }
                    _ => {} // tail segments are part of some head
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkpoint, crash, recovery
    // ------------------------------------------------------------------

    /// Quiescent checkpoint: flush every dirty page, then log and force a
    /// checkpoint record. Restart recovery starts scanning here. Fails if
    /// any transaction is active.
    pub fn checkpoint(&self) -> DbResult<()> {
        if !self.active.lock().is_empty() {
            return Err(DbError::InvalidTxnState(
                "checkpoint requires no active transactions".into(),
            ));
        }
        // A prepared transaction's operations must stay inside the
        // recovery scan until its outcome is logged, so the quiescent
        // point also excludes in-doubt participants.
        if !self.prepared.lock().is_empty() {
            return Err(DbError::InvalidTxnState(
                "checkpoint requires no prepared (in-doubt) transactions".into(),
            ));
        }
        self.pool.flush_all()?;
        // Page durability barrier before the checkpoint record claims
        // the pages are stable (a real fsync on a file backend).
        self.disk.sync()?;
        self.wal.append(&LogRecord::Checkpoint);
        self.wal.flush()
    }

    /// Simulate a crash: the buffer pool and the unforced log tail are
    /// lost; the disk image and the stable log survive.
    pub fn crash(&self) {
        self.pool.crash();
        self.wal.crash();
        self.active.lock().clear();
        // Volatile like everything else: recovery rebuilds the in-doubt
        // set from forced Prepare records.
        self.prepared.lock().clear();
    }

    /// Restart recovery: analysis, redo, undo — then rebuild the
    /// free-space map. Idempotent: running it twice is harmless.
    ///
    /// Hardened against injected damage: a torn WAL tail is truncated by
    /// [`Wal::stable_records`], and a page whose checksum fails is
    /// rebuilt from scratch by replaying the *full* log against it (the
    /// log is never truncated from the front, and page-LSN guards make
    /// the wider replay a no-op for intact pages). Only interior log
    /// corruption is unrecoverable.
    pub fn recover(&self) -> DbResult<()> {
        match self.recover_inner() {
            Ok(()) => {
                self.recoveries_completed.inc();
                Ok(())
            }
            Err(e) => {
                self.recoveries_failed.inc();
                Err(e)
            }
        }
    }

    fn recover_inner(&self) -> DbResult<()> {
        let records = self.wal.stable_records()?;

        // Seed the transaction-id allocator past every id the log has
        // ever seen, so a cold-started process never reuses one.
        let max_txn = records
            .iter()
            .map(|(_, r)| match r {
                LogRecord::Begin { txn }
                | LogRecord::Commit { txn }
                | LogRecord::Abort { txn }
                | LogRecord::Prepare { txn }
                | LogRecord::Insert { txn, .. }
                | LogRecord::Update { txn, .. }
                | LogRecord::Delete { txn, .. }
                | LogRecord::Clr { txn, .. } => *txn,
                LogRecord::Checkpoint | LogRecord::Pad => 0,
            })
            .max()
            .unwrap_or(0);
        self.next_txn.fetch_max(max_txn + 1, Ordering::Relaxed);

        // --- Scrub: detect and repair rotted pages before touching them.
        let mut repaired = false;
        for p in 0..self.disk.page_count() {
            let pid = PageId(p);
            match self.pool.with_page(pid, |_| ()) {
                Ok(()) => {}
                Err(DbError::Corruption(_)) => {
                    self.pool.repair_page(pid)?;
                    self.pages_repaired.inc();
                    repaired = true;
                }
                Err(other) => return Err(other),
            }
        }

        // Start at the last quiescent checkpoint — unless a page had to
        // be rebuilt, in which case its whole history must replay.
        let start = if repaired {
            0
        } else {
            records
                .iter()
                .rposition(|(_, r)| matches!(r, LogRecord::Checkpoint))
                .map(|i| i + 1)
                .unwrap_or(0)
        };
        let tail = &records[start..];

        // --- Analysis ---
        let mut committed: HashSet<u64> = HashSet::new();
        let mut aborted: HashSet<u64> = HashSet::new();
        let mut prepared: HashSet<u64> = HashSet::new();
        let mut compensated: HashMap<u64, HashSet<u64>> = HashMap::new();
        let mut ops: HashMap<u64, Vec<(Lsn, UndoOp)>> = HashMap::new();
        for (lsn, rec) in tail {
            match rec {
                LogRecord::Commit { txn } => {
                    committed.insert(*txn);
                }
                LogRecord::Abort { txn } => {
                    aborted.insert(*txn);
                }
                LogRecord::Prepare { txn } => {
                    prepared.insert(*txn);
                }
                LogRecord::Clr { txn, compensates, .. } => {
                    compensated.entry(*txn).or_default().insert(*compensates);
                }
                LogRecord::Insert { txn, rid, .. } => {
                    ops.entry(*txn).or_default().push((*lsn, UndoOp::Insert { rid: *rid }));
                }
                LogRecord::Update { txn, rid, before, .. } => ops
                    .entry(*txn)
                    .or_default()
                    .push((*lsn, UndoOp::Update { rid: *rid, before: before.clone() })),
                LogRecord::Delete { txn, rid, before } => ops
                    .entry(*txn)
                    .or_default()
                    .push((*lsn, UndoOp::Delete { rid: *rid, before: before.clone() })),
                LogRecord::Begin { .. } | LogRecord::Checkpoint | LogRecord::Pad => {}
            }
        }

        // --- Redo (history repeats, committed or not) ---
        for (lsn, rec) in tail {
            match rec {
                LogRecord::Insert { rid, bytes, .. } => {
                    self.redo_apply(*lsn, *rid, |page| slotted::insert_at(page, rid.slot, bytes))?;
                }
                LogRecord::Update { rid, after, .. } => {
                    self.redo_apply(*lsn, *rid, |page| {
                        if !slotted::update(page, rid.slot, after) {
                            slotted::delete(page, rid.slot);
                            slotted::insert_at(page, rid.slot, after)?;
                        }
                        Ok(())
                    })?;
                }
                LogRecord::Delete { rid, .. } => {
                    self.redo_apply(*lsn, *rid, |page| {
                        slotted::delete(page, rid.slot);
                        Ok(())
                    })?;
                }
                LogRecord::Clr { action, .. } => {
                    let rid = match action {
                        ClrAction::Remove { rid }
                        | ClrAction::Overwrite { rid, .. }
                        | ClrAction::ReInsert { rid, .. } => *rid,
                    };
                    self.redo_apply(*lsn, rid, |page| {
                        match action {
                            ClrAction::Remove { rid } => {
                                slotted::delete(page, rid.slot);
                            }
                            ClrAction::Overwrite { rid, bytes } => {
                                if !slotted::update(page, rid.slot, bytes) {
                                    slotted::delete(page, rid.slot);
                                    slotted::insert_at(page, rid.slot, bytes)?;
                                }
                            }
                            ClrAction::ReInsert { rid, bytes } => {
                                slotted::insert_at(page, rid.slot, bytes)?;
                            }
                        }
                        Ok(())
                    })?;
                }
                _ => {}
            }
        }

        // --- Reinstate in-doubt transactions (prepared, undecided) ---
        // A forced Prepare record without a later Commit or Abort means
        // the coordinator owns the outcome: the transaction is *not* a
        // loser. Its undo state is rebuilt from the log (minus any
        // operations a crash-interrupted abort already compensated) so a
        // later coordinator decision can still settle it either way.
        {
            let mut in_doubt = self.prepared.lock();
            in_doubt.clear();
            for txn in &prepared {
                if committed.contains(txn) || aborted.contains(txn) {
                    continue;
                }
                let done = compensated.get(txn).cloned().unwrap_or_default();
                let retained: Vec<(Lsn, UndoOp)> = ops
                    .get(txn)
                    .map(|v| {
                        v.iter().filter(|(lsn, _)| !done.contains(&lsn.0)).cloned().collect()
                    })
                    .unwrap_or_default();
                in_doubt.insert(*txn, TxnState { ops: retained });
            }
        }

        // --- Undo losers (no commit, no abort, no forced prepare) ---
        let mut loser_ids: Vec<u64> = ops
            .keys()
            .filter(|t| {
                !committed.contains(t) && !aborted.contains(t) && !prepared.contains(t)
            })
            .copied()
            .collect();
        loser_ids.sort_unstable();
        for txn in loser_ids {
            let done = compensated.get(&txn).cloned().unwrap_or_default();
            let txn_ops = &ops[&txn];
            for (lsn, op) in txn_ops.iter().rev() {
                if done.contains(&lsn.0) {
                    continue;
                }
                let action = match op {
                    UndoOp::Insert { rid } => ClrAction::Remove { rid: *rid },
                    UndoOp::Update { rid, before } => {
                        ClrAction::Overwrite { rid: *rid, bytes: before.clone() }
                    }
                    UndoOp::Delete { rid, before } => {
                        ClrAction::ReInsert { rid: *rid, bytes: before.clone() }
                    }
                };
                let clr_lsn = self.wal.append(&LogRecord::Clr {
                    txn,
                    compensates: lsn.0,
                    action: action.clone(),
                });
                self.apply_clr(&action, clr_lsn)?;
            }
            self.wal.append(&LogRecord::Abort { txn });
        }
        self.wal.flush()?;

        // --- Rebuild the free-space map ---
        let mut heap = self.heap.lock();
        heap.clear();
        drop(heap);
        for p in 0..self.disk.page_count() {
            self.refresh_free(PageId(p))?;
        }
        Ok(())
    }

    /// Apply one logical redo record through the normal page-write
    /// API. Replay is unconditional and idempotent: records are
    /// re-applied in log order, so the last writer of a slot wins
    /// exactly as it did online, and `insert_at`/`update`/`delete` all
    /// tolerate re-execution over an already-current page. The page LSN
    /// only ratchets forward (`max`), keeping the online write-ahead
    /// invariant intact without gating replay on it.
    fn redo_apply(
        &self,
        lsn: Lsn,
        rid: Rid,
        apply: impl FnOnce(&mut [u8]) -> DbResult<()>,
    ) -> DbResult<()> {
        self.pool.with_page_mut(rid.page, |page| -> DbResult<()> {
            apply(page)?;
            let cur = slotted::page_lsn(page);
            slotted::set_page_lsn(page, cur.max(lsn.0));
            Ok(())
        })??;
        Ok(())
    }
}

impl std::fmt::Debug for StorageEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageEngine")
            .field("pages", &self.disk.page_count())
            .field("active_txns", &self.active.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(engine: &StorageEngine) -> Vec<(Rid, Vec<u8>)> {
        let mut out = Vec::new();
        engine.scan_all(|rid, bytes| out.push((rid, bytes.to_vec()))).unwrap();
        out.sort();
        out
    }

    #[test]
    fn insert_read_update_delete() {
        let engine = StorageEngine::new(8);
        let txn = engine.begin();
        let rid = engine.insert(txn, b"alpha", None).unwrap();
        assert_eq!(engine.read(rid).unwrap(), b"alpha");
        let rid2 = engine.update(txn, rid, b"beta!").unwrap();
        assert_eq!(rid2, rid, "same-size update stays in place");
        assert_eq!(engine.read(rid).unwrap(), b"beta!");
        engine.delete(txn, rid).unwrap();
        assert!(engine.read(rid).is_err());
        engine.commit(txn).unwrap();
    }

    #[test]
    fn abort_rolls_back_everything() {
        let engine = StorageEngine::new(8);
        let setup = engine.begin();
        let keep = engine.insert(setup, b"keep", None).unwrap();
        engine.commit(setup).unwrap();

        let txn = engine.begin();
        let gone = engine.insert(txn, b"gone", None).unwrap();
        engine.update(txn, keep, b"kep2").unwrap();
        engine.delete(txn, keep).unwrap();
        engine.abort(txn).unwrap();

        assert!(engine.read(gone).is_err(), "inserted record removed");
        assert_eq!(engine.read(keep).unwrap(), b"keep", "survivor restored");
        assert_eq!(collect(&engine).len(), 1);
    }

    #[test]
    fn commit_survives_crash() {
        let engine = StorageEngine::new(4);
        let txn = engine.begin();
        let rid = engine.insert(txn, b"durable", None).unwrap();
        engine.commit(txn).unwrap();
        engine.crash();
        engine.recover().unwrap();
        assert_eq!(engine.read(rid).unwrap(), b"durable");
    }

    #[test]
    fn uncommitted_lost_or_undone_after_crash() {
        let engine = StorageEngine::new(4);
        let t1 = engine.begin();
        let committed = engine.insert(t1, b"yes", None).unwrap();
        engine.commit(t1).unwrap();

        let t2 = engine.begin();
        let _doomed = engine.insert(t2, b"no", None).unwrap();
        // Force the log so t2's insert is stable but unmerged — recovery
        // must redo then undo it.
        engine.wal().flush().unwrap();
        engine.crash();
        engine.recover().unwrap();
        let records = collect(&engine);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].0, committed);
        assert_eq!(records[0].1, b"yes");
    }

    #[test]
    fn update_by_loser_is_undone_at_recovery() {
        let engine = StorageEngine::new(4);
        let t1 = engine.begin();
        let rid = engine.insert(t1, b"original", None).unwrap();
        engine.commit(t1).unwrap();

        let t2 = engine.begin();
        engine.update(t2, rid, b"tampered").unwrap();
        engine.wal().flush().unwrap();
        // Also push the dirty page to disk to exercise undo of flushed data.
        engine.pool().flush_all().unwrap();
        engine.crash();
        engine.recover().unwrap();
        assert_eq!(engine.read(rid).unwrap(), b"original");
    }

    #[test]
    fn recovery_is_idempotent() {
        let engine = StorageEngine::new(4);
        let t1 = engine.begin();
        let a = engine.insert(t1, b"aa", None).unwrap();
        engine.commit(t1).unwrap();
        let t2 = engine.begin();
        engine.update(t2, a, b"zz").unwrap();
        engine.wal().flush().unwrap();
        engine.crash();
        engine.recover().unwrap();
        let first = collect(&engine);
        engine.recover().unwrap();
        let second = collect(&engine);
        assert_eq!(first, second);
        assert_eq!(engine.read(a).unwrap(), b"aa");
    }

    #[test]
    fn crash_after_abort_stays_rolled_back() {
        let engine = StorageEngine::new(4);
        let t1 = engine.begin();
        let rid = engine.insert(t1, b"base", None).unwrap();
        engine.commit(t1).unwrap();

        let t2 = engine.begin();
        engine.delete(t2, rid).unwrap();
        engine.abort(t2).unwrap(); // logs CLRs + Abort, flushed
        engine.crash();
        engine.recover().unwrap();
        assert_eq!(engine.read(rid).unwrap(), b"base", "no double-undo");
        assert_eq!(collect(&engine).len(), 1);
    }

    #[test]
    fn checkpoint_bounds_recovery_scan() {
        let engine = StorageEngine::new(4);
        let t1 = engine.begin();
        let a = engine.insert(t1, b"one", None).unwrap();
        engine.commit(t1).unwrap();
        engine.checkpoint().unwrap();
        let t2 = engine.begin();
        let b = engine.insert(t2, b"two", None).unwrap();
        engine.commit(t2).unwrap();
        engine.crash();
        engine.recover().unwrap();
        assert_eq!(engine.read(a).unwrap(), b"one");
        assert_eq!(engine.read(b).unwrap(), b"two");
    }

    #[test]
    fn checkpoint_refuses_active_txns() {
        let engine = StorageEngine::new(4);
        let t = engine.begin();
        assert!(engine.checkpoint().is_err());
        engine.commit(t).unwrap();
        engine.checkpoint().unwrap();
    }

    #[test]
    fn growing_update_relocates_when_page_full() {
        let engine = StorageEngine::new(8);
        let txn = engine.begin();
        // Fill a page almost completely.
        let big = vec![1u8; 1900];
        let r1 = engine.insert(txn, &big, None).unwrap();
        let r2 = engine.insert(txn, &big, None).unwrap();
        assert_eq!(r1.page, r2.page);
        // Growing r1 beyond the page forces relocation; rid changes.
        let huge = vec![2u8; 3000];
        let r1b = engine.update(txn, r1, &huge).unwrap();
        assert_ne!(r1b.page, r1.page);
        assert_eq!(engine.read(r1b).unwrap(), huge);
        assert!(engine.read(r1).is_err(), "old rid is dead");
        engine.commit(txn).unwrap();
    }

    #[test]
    fn long_records_chain_across_pages() {
        let engine = StorageEngine::new(8);
        let txn = engine.begin();
        // Three pages' worth of "multimedia" data.
        let blob: Vec<u8> = (0..3 * slotted::MAX_RECORD).map(|i| (i % 251) as u8).collect();
        let rid = engine.insert(txn, &blob, None).unwrap();
        assert_eq!(engine.read(rid).unwrap(), blob);
        assert!(engine.exists(rid).unwrap());
        // Scan reports the logical record once, reassembled.
        let mut seen = Vec::new();
        engine.scan_all(|r, bytes| seen.push((r, bytes.len()))).unwrap();
        assert_eq!(seen, vec![(rid, blob.len())]);
        // Update to an even longer chain.
        let bigger: Vec<u8> = (0..4 * slotted::MAX_RECORD).map(|i| (i % 13) as u8).collect();
        let rid2 = engine.update(txn, rid, &bigger).unwrap();
        assert_eq!(engine.read(rid2).unwrap(), bigger);
        // And back down to a small in-page record.
        let rid3 = engine.update(txn, rid2, b"tiny").unwrap();
        assert_eq!(engine.read(rid3).unwrap(), b"tiny");
        engine.commit(txn).unwrap();
        // Only the logical record remains after all that churn.
        let mut count = 0;
        engine.scan_all(|_, _| count += 1).unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn long_record_survives_crash_and_rolls_back() {
        let engine = StorageEngine::new(4);
        let blob: Vec<u8> = (0..2 * slotted::MAX_RECORD + 77).map(|i| (i % 199) as u8).collect();
        let t1 = engine.begin();
        let committed = engine.insert(t1, &blob, None).unwrap();
        engine.commit(t1).unwrap();

        let t2 = engine.begin();
        let doomed = engine.insert(t2, &blob, None).unwrap();
        engine.wal().flush().unwrap();
        let _ = doomed;
        engine.crash();
        engine.recover().unwrap();
        assert_eq!(engine.read(committed).unwrap(), blob, "chain intact after recovery");
        let mut count = 0;
        engine.scan_all(|_, _| count += 1).unwrap();
        assert_eq!(count, 1, "loser chain fully undone");

        // Abort path: a chain delete rolls back as a unit.
        let t3 = engine.begin();
        engine.delete(t3, committed).unwrap();
        engine.abort(t3).unwrap();
        assert_eq!(engine.read(committed).unwrap(), blob);
    }

    #[test]
    fn absurdly_large_record_rejected() {
        let engine = StorageEngine::new(4);
        let txn = engine.begin();
        let too_big = vec![0u8; StorageEngine::MAX_LOGICAL_RECORD + 1];
        assert!(engine.insert(txn, &too_big, None).is_err());
        engine.commit(txn).unwrap();
    }

    #[test]
    fn placement_hint_clusters_records() {
        let engine = StorageEngine::new(16);
        let txn = engine.begin();
        let root = engine.insert(txn, b"root", None).unwrap();
        // Fill elsewhere so the default choice would differ.
        for _ in 0..10 {
            engine.insert(txn, &[7u8; 64], None).unwrap();
        }
        let part = engine.insert(txn, b"part", Some(root.page)).unwrap();
        assert_eq!(part.page, root.page, "hint honored while space remains");
        engine.commit(txn).unwrap();
    }

    #[test]
    fn many_records_span_pages_and_scan_finds_all() {
        let engine = StorageEngine::new(8);
        let txn = engine.begin();
        let payload = vec![9u8; 512];
        let mut rids = Vec::new();
        for _ in 0..50 {
            rids.push(engine.insert(txn, &payload, None).unwrap());
        }
        engine.commit(txn).unwrap();
        assert!(engine.disk().page_count() > 1, "spilled to multiple pages");
        assert_eq!(collect(&engine).len(), 50);
        for rid in rids {
            assert_eq!(engine.read(rid).unwrap().len(), 512);
        }
    }

    #[test]
    fn operations_on_unknown_txn_fail() {
        let engine = StorageEngine::new(4);
        let ghost = TxnId(999);
        assert!(engine.insert(ghost, b"x", None).is_err());
        assert!(engine.commit(ghost).is_err());
        assert!(engine.abort(ghost).is_err());
    }

    use crate::fault::{FaultKind, FaultPlan};

    #[test]
    fn torn_commit_flush_resolves_at_recovery() {
        let engine = StorageEngine::new(4);
        let t1 = engine.begin();
        let base = engine.insert(t1, b"base", None).unwrap();
        engine.commit(t1).unwrap();

        let t2 = engine.begin();
        let maybe = engine.insert(t2, b"maybe", None).unwrap();
        engine.install_faults(FaultPlan::new(77).fail_nth(FaultKind::PartialFlush, 1));
        let outcome = engine.commit(t2);
        assert!(outcome.is_err(), "partial flush surfaces as an error");
        engine.clear_faults();
        engine.crash();
        engine.recover().unwrap();
        // The commit is in doubt, but the outcome must be atomic: either
        // both records exist or only the committed base does.
        assert_eq!(engine.read(base).unwrap(), b"base");
        let n = collect(&engine).len();
        match engine.read(maybe) {
            Ok(bytes) => {
                assert_eq!(bytes, b"maybe");
                assert_eq!(n, 2);
            }
            Err(_) => assert_eq!(n, 1),
        }
        let rs = engine.recovery_stats();
        assert_eq!(rs.completed, 1);
        assert!(engine.fault_stats().partial_flushes >= 1);
    }

    #[test]
    fn bit_rotted_page_is_repaired_by_full_replay() {
        let engine = StorageEngine::new(4);
        let t1 = engine.begin();
        let a = engine.insert(t1, b"alpha", None).unwrap();
        let b = engine.insert(t1, b"bravo", None).unwrap();
        engine.commit(t1).unwrap();
        engine.checkpoint().unwrap();
        // Rot the page after the checkpoint wrote it out.
        engine.install_faults(FaultPlan::new(123).fail_nth(FaultKind::BitFlip, 1));
        engine.crash();
        assert!(
            matches!(engine.read(a), Err(DbError::Corruption(_))),
            "rot detected on read"
        );
        engine.clear_faults();
        engine.crash();
        engine.recover().unwrap();
        assert_eq!(engine.read(a).unwrap(), b"alpha", "page rebuilt from the log");
        assert_eq!(engine.read(b).unwrap(), b"bravo");
        assert_eq!(engine.recovery_stats().pages_repaired, 1);
    }

    #[test]
    fn injected_read_error_is_clean_and_transient() {
        let engine = StorageEngine::new(4);
        let t1 = engine.begin();
        let rid = engine.insert(t1, b"blip", None).unwrap();
        engine.commit(t1).unwrap();
        engine.pool().flush_all().unwrap();
        engine.pool().crash(); // drop the cached frame so reads hit the disk
        engine.install_faults(FaultPlan::new(9).fail_nth(FaultKind::ReadError, 1));
        let err = engine.read(rid).unwrap_err();
        assert!(matches!(err, DbError::Storage(_)), "transient I/O error: {err:?}");
        // The next read succeeds: nothing was damaged.
        assert_eq!(engine.read(rid).unwrap(), b"blip");
    }

    #[test]
    fn prepared_txn_survives_crash_as_in_doubt() {
        let engine = StorageEngine::new(4);
        let t1 = engine.begin();
        let base = engine.insert(t1, b"base", None).unwrap();
        engine.commit(t1).unwrap();

        let t2 = engine.begin();
        let staged = engine.insert(t2, b"staged", None).unwrap();
        engine.update(t2, base, b"mut!").unwrap();
        engine.prepare(t2).unwrap();
        assert_eq!(engine.prepared_txns(), vec![t2.0]);
        assert!(engine.checkpoint().is_err(), "checkpoint must exclude in-doubt txns");

        engine.crash();
        engine.recover().unwrap();
        // Reinstated, not undone: the redo left its effects in place.
        assert_eq!(engine.prepared_txns(), vec![t2.0]);
        assert_eq!(engine.read(staged).unwrap(), b"staged");
        assert_eq!(engine.read(base).unwrap(), b"mut!");

        // Coordinator decides commit: effects are final and durable.
        assert!(engine.commit_prepared(t2).unwrap());
        engine.crash();
        engine.recover().unwrap();
        assert!(engine.prepared_txns().is_empty());
        assert_eq!(engine.read(staged).unwrap(), b"staged");
        assert_eq!(engine.read(base).unwrap(), b"mut!");
    }

    #[test]
    fn abort_prepared_rolls_back_after_recovery() {
        let engine = StorageEngine::new(4);
        let t1 = engine.begin();
        let base = engine.insert(t1, b"base", None).unwrap();
        engine.commit(t1).unwrap();

        let t2 = engine.begin();
        let staged = engine.insert(t2, b"staged", None).unwrap();
        engine.update(t2, base, b"mut!").unwrap();
        engine.prepare(t2).unwrap();
        engine.crash();
        engine.recover().unwrap();

        // Coordinator decides abort: the retained undo state rolls the
        // reinstated transaction back completely.
        assert!(engine.abort_prepared(t2).unwrap());
        assert!(engine.prepared_txns().is_empty());
        assert!(engine.read(staged).is_err(), "staged insert removed");
        assert_eq!(engine.read(base).unwrap(), b"base", "update undone");
        engine.crash();
        engine.recover().unwrap();
        assert_eq!(engine.read(base).unwrap(), b"base", "abort is durable");
        assert_eq!(collect(&engine).len(), 1);
    }

    #[test]
    fn prepared_decisions_are_idempotent_by_txn_id() {
        let engine = StorageEngine::new(4);
        let t = engine.begin();
        engine.insert(t, b"x", None).unwrap();
        engine.prepare(t).unwrap();
        assert!(engine.commit_prepared(t).unwrap(), "first decision applies");
        assert!(!engine.commit_prepared(t).unwrap(), "retransmission is a no-op");
        assert!(!engine.abort_prepared(t).unwrap(), "late conflicting frame is a no-op");

        // An *active* transaction rejects phase-two verbs outright.
        let t2 = engine.begin();
        assert!(engine.commit_prepared(t2).is_err());
        assert!(engine.abort_prepared(t2).is_err());
        engine.commit(t2).unwrap();
    }

    #[test]
    fn crash_mid_abort_prepared_finishes_via_reinstatement() {
        let engine = StorageEngine::new(4);
        let t1 = engine.begin();
        let base = engine.insert(t1, b"base", None).unwrap();
        engine.commit(t1).unwrap();

        let t2 = engine.begin();
        engine.update(t2, base, b"bad!").unwrap();
        engine.insert(t2, b"extra", None).unwrap();
        engine.prepare(t2).unwrap();
        // The abort decision lands, but its Abort record never reaches
        // stable storage: only the CLRs (flushed as a side effect of the
        // next force) survive the crash.
        engine.abort_prepared(t2).unwrap();
        engine.crash();
        engine.recover().unwrap();
        // Whether the Abort record survived or not, the outcome must be
        // a full rollback — either already aborted, or reinstated with
        // only the uncompensated suffix left to undo.
        if engine.prepared_txns().contains(&t2.0) {
            assert!(engine.abort_prepared(t2).unwrap());
        }
        assert_eq!(engine.read(base).unwrap(), b"base");
        assert_eq!(collect(&engine).len(), 1);
    }

    #[test]
    fn recovery_failure_is_counted_and_retry_succeeds() {
        let engine = StorageEngine::new(4);
        let t1 = engine.begin();
        let rid = engine.insert(t1, b"kept", None).unwrap();
        engine.commit(t1).unwrap();
        engine.pool().flush_all().unwrap();
        engine.crash();
        // A read error during the restart scrub fails recovery cleanly.
        engine.install_faults(FaultPlan::new(4).fail_nth(FaultKind::ReadError, 1));
        assert!(engine.recover().is_err());
        engine.clear_faults();
        engine.recover().unwrap();
        assert_eq!(engine.read(rid).unwrap(), b"kept");
        let rs = engine.recovery_stats();
        assert_eq!((rs.failed, rs.completed), (1, 1));
    }
}
