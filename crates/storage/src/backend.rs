//! The storage-backend abstraction: a page device plus an append-only
//! log device behind one trait, so the engine runs unchanged over the
//! simulated disk or a real file system.
//!
//! The durability contract (the Qinhuai fsync/torn-write assumptions
//! that the PR-5 CRC framing already meets):
//!
//! * **Pages** are written as whole blocks; a write may *tear* (persist
//!   a prefix), but the per-page checksum sidecar makes the tear
//!   detectable as [`DbError::Corruption`] on the next read. `sync` is
//!   the durability barrier for page writes.
//! * **The log device** is byte-addressed and append-only; `log_sync`
//!   is the durability barrier (the real `fsync` in [`FileDisk`]). A
//!   crash may leave a torn suffix, which the WAL's frame CRCs detect
//!   and truncate — the log interior is never silently damaged.
//! * `verify` never consults the fault injector: it is recovery's
//!   damage probe, not an I/O path.
//!
//! [`FileDisk`] stores pages in `pages.dat` as fixed blocks of
//! `[crc32 | reserved | PAGE_SIZE data]` — the checksum sidecar is part
//! of the block, written in the same syscall, and left stale by a torn
//! write exactly like [`SimDisk`]'s — and the log in `wal.log` as the
//! raw framed bytes the WAL hands it.

use crate::disk::{DiskStats, PageId, SimDisk, PAGE_SIZE};
use crate::fault::{crc32, FaultInjector, FaultKind, FaultSite};
use orion_types::{DbError, DbResult};
use parking_lot::{Mutex, RwLock};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// A durable medium: a page-addressed block device plus an append-only
/// byte-addressed log device, with explicit durability barriers.
///
/// Implementations: [`SimDisk`] (in-memory, fault-injectable, "durable"
/// across simulated crashes) and [`FileDisk`] (`std::fs` with real
/// `fsync`). The engine, buffer pool, and WAL only ever see this trait.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    // -- page device -------------------------------------------------

    /// Allocate a fresh zeroed page and return its id.
    fn allocate(&self) -> DbResult<PageId>;

    /// Number of allocated pages.
    fn page_count(&self) -> u32;

    /// Read a page into `buf`, verifying its checksum; a mismatch (torn
    /// write, bit rot) is [`DbError::Corruption`] and `buf` is left
    /// untouched.
    fn read(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> DbResult<()>;

    /// Write `buf` to a page, updating its checksum on completion.
    fn write(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> DbResult<()>;

    /// Is the stored page internally consistent (checksum matches)?
    /// Never consults the fault injector.
    fn verify(&self, id: PageId) -> DbResult<bool>;

    /// Durability barrier for page writes (fsync of the page file).
    fn sync(&self) -> DbResult<()>;

    // -- log device --------------------------------------------------

    /// Append raw bytes to the log device (already CRC-framed by the
    /// WAL). Durable only after the next [`StorageBackend::log_sync`].
    fn log_append(&self, bytes: &[u8]) -> DbResult<()>;

    /// Durability barrier for the log device (the real fsync).
    fn log_sync(&self) -> DbResult<()>;

    /// Current byte length of the log device.
    fn log_len(&self) -> DbResult<u64>;

    /// Read the entire log device (startup: the WAL rebuilds its stable
    /// mirror from this).
    fn log_read(&self) -> DbResult<Vec<u8>>;

    /// Truncate the log device to `len` bytes (torn-tail repair; the
    /// WAL immediately re-appends a pad frame over the gap).
    fn log_truncate(&self, len: u64) -> DbResult<()>;

    // -- shared plumbing ---------------------------------------------

    /// Install (or with `None`, remove) a fault injector consulted on
    /// page reads and writes.
    fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>);

    /// Snapshot the I/O counters.
    fn stats(&self) -> DiskStats;

    /// Reset the I/O counters (between benchmark phases).
    fn reset_stats(&self);
}

impl StorageBackend for SimDisk {
    fn allocate(&self) -> DbResult<PageId> {
        Ok(SimDisk::allocate(self))
    }

    fn page_count(&self) -> u32 {
        SimDisk::page_count(self)
    }

    fn read(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> DbResult<()> {
        SimDisk::read(self, id, buf)
    }

    fn write(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        SimDisk::write(self, id, buf)
    }

    fn verify(&self, id: PageId) -> DbResult<bool> {
        SimDisk::verify(self, id)
    }

    fn sync(&self) -> DbResult<()> {
        Ok(()) // memory is "durable" the moment the write lands
    }

    fn log_append(&self, bytes: &[u8]) -> DbResult<()> {
        SimDisk::log_append(self, bytes);
        Ok(())
    }

    fn log_sync(&self) -> DbResult<()> {
        Ok(())
    }

    fn log_len(&self) -> DbResult<u64> {
        Ok(SimDisk::log_len(self))
    }

    fn log_read(&self) -> DbResult<Vec<u8>> {
        Ok(SimDisk::log_read(self))
    }

    fn log_truncate(&self, len: u64) -> DbResult<()> {
        SimDisk::log_truncate(self, len);
        Ok(())
    }

    fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        SimDisk::set_fault_injector(self, injector)
    }

    fn stats(&self) -> DiskStats {
        SimDisk::stats(self)
    }

    fn reset_stats(&self) {
        SimDisk::reset_stats(self)
    }
}

/// Bytes per on-disk page block: checksum sidecar + reserved + data.
const BLOCK_HEADER: u64 = 8;
const BLOCK_SIZE: u64 = BLOCK_HEADER + PAGE_SIZE as u64;

fn io_err(ctx: &str, e: std::io::Error) -> DbError {
    DbError::Storage(format!("{ctx}: {e}"))
}

/// A real-file storage backend: pages in `<dir>/pages.dat`, the log in
/// `<dir>/wal.log`, durability barriers via `File::sync_data`.
///
/// Fault-injection semantics mirror [`SimDisk`] exactly — a torn write
/// persists a data prefix and leaves the stored checksum stale, bit rot
/// damages the stored block persistently — so the chaos suite runs
/// unchanged over real files.
pub struct FileDisk {
    dir: PathBuf,
    pages: Mutex<File>,
    page_count: AtomicU32,
    log: Mutex<File>,
    log_bytes: AtomicU64,
    faults: RwLock<Option<Arc<FaultInjector>>>,
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
}

impl FileDisk {
    /// Open (creating if needed) a file-backed disk rooted at `dir`.
    /// A trailing partial page block — a crash mid-allocation — is
    /// trimmed away; the WAL handles its own torn tail.
    pub fn open(dir: impl AsRef<Path>) -> DbResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| io_err(&format!("creating {}", dir.display()), e))?;
        let pages_path = dir.join("pages.dat");
        let pages = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&pages_path)
            .map_err(|e| io_err(&format!("opening {}", pages_path.display()), e))?;
        let len = pages.metadata().map_err(|e| io_err("stat pages.dat", e))?.len();
        let count = len / BLOCK_SIZE;
        if len != count * BLOCK_SIZE {
            pages
                .set_len(count * BLOCK_SIZE)
                .map_err(|e| io_err("trimming torn page block", e))?;
        }
        let log_path = dir.join("wal.log");
        let log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)
            .map_err(|e| io_err(&format!("opening {}", log_path.display()), e))?;
        let log_bytes = log.metadata().map_err(|e| io_err("stat wal.log", e))?.len();
        Ok(FileDisk {
            dir,
            pages: Mutex::new(pages),
            page_count: AtomicU32::new(count as u32),
            log: Mutex::new(log),
            log_bytes: AtomicU64::new(log_bytes),
            faults: RwLock::new(None),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
        })
    }

    /// The directory this disk lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn read_block(file: &mut File, id: PageId) -> DbResult<(u32, Box<[u8; PAGE_SIZE]>)> {
        file.seek(SeekFrom::Start(id.0 as u64 * BLOCK_SIZE))
            .map_err(|e| io_err(&format!("seeking page {id}"), e))?;
        let mut header = [0u8; BLOCK_HEADER as usize];
        file.read_exact(&mut header).map_err(|e| io_err(&format!("reading page {id}"), e))?;
        let crc = u32::from_le_bytes(header[..4].try_into().unwrap());
        let mut data = Box::new([0u8; PAGE_SIZE]);
        file.read_exact(&mut data[..]).map_err(|e| io_err(&format!("reading page {id}"), e))?;
        Ok((crc, data))
    }

    fn check_bounds(&self, id: PageId, op: &str) -> DbResult<()> {
        if id.0 >= self.page_count.load(Ordering::Acquire) {
            return Err(DbError::Storage(format!("{op} of unallocated page {id}")));
        }
        Ok(())
    }
}

impl StorageBackend for FileDisk {
    fn allocate(&self) -> DbResult<PageId> {
        let mut file = self.pages.lock();
        let count = self.page_count.load(Ordering::Acquire);
        let id = PageId(count);
        let mut block = vec![0u8; BLOCK_SIZE as usize];
        let crc = crc32(&[0u8; PAGE_SIZE]);
        block[..4].copy_from_slice(&crc.to_le_bytes());
        file.seek(SeekFrom::Start(count as u64 * BLOCK_SIZE))
            .map_err(|e| io_err("seeking for allocation", e))?;
        file.write_all(&block).map_err(|e| io_err("allocating page", e))?;
        self.page_count.store(count + 1, Ordering::Release);
        self.allocations.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    fn page_count(&self) -> u32 {
        self.page_count.load(Ordering::Acquire)
    }

    fn read(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> DbResult<()> {
        let shot = self.faults.read().as_ref().and_then(|f| f.fire(FaultSite::DiskRead));
        self.check_bounds(id, "read")?;
        let mut file = self.pages.lock();
        match shot.map(|s| (s.kind, s.entropy)) {
            Some((FaultKind::ReadError, _)) => {
                return Err(DbError::Storage(format!("injected I/O error reading page {id}")));
            }
            Some((FaultKind::BitFlip, entropy)) => {
                // Persistent bit rot: damage the stored data (the
                // checksum field is untouched, so reads now mismatch).
                let bit = (entropy % (PAGE_SIZE as u64 * 8)) as usize;
                let off = id.0 as u64 * BLOCK_SIZE + BLOCK_HEADER + (bit / 8) as u64;
                let mut byte = [0u8; 1];
                file.seek(SeekFrom::Start(off)).map_err(|e| io_err("seeking for bit flip", e))?;
                file.read_exact(&mut byte).map_err(|e| io_err("reading for bit flip", e))?;
                byte[0] ^= 1 << (bit % 8);
                file.seek(SeekFrom::Start(off)).map_err(|e| io_err("seeking for bit flip", e))?;
                file.write_all(&byte).map_err(|e| io_err("writing bit flip", e))?;
            }
            _ => {}
        }
        let (crc, data) = Self::read_block(&mut file, id)?;
        if crc32(&data[..]) != crc {
            return Err(DbError::Corruption(format!("checksum mismatch reading page {id}")));
        }
        buf.copy_from_slice(&data[..]);
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        let shot = self.faults.read().as_ref().and_then(|f| f.fire(FaultSite::DiskWrite));
        self.check_bounds(id, "write")?;
        let mut file = self.pages.lock();
        match shot.map(|s| (s.kind, s.entropy)) {
            Some((FaultKind::WriteError, _)) => {
                return Err(DbError::Storage(format!("injected I/O error writing page {id}")));
            }
            Some((FaultKind::TornWrite, entropy)) => {
                // Persist a data prefix, fail, and leave the stored
                // checksum stale — the next read reports Corruption.
                let prefix = 1 + (entropy % (PAGE_SIZE as u64 - 1)) as usize;
                file.seek(SeekFrom::Start(id.0 as u64 * BLOCK_SIZE + BLOCK_HEADER))
                    .map_err(|e| io_err("seeking torn write", e))?;
                file.write_all(&buf[..prefix]).map_err(|e| io_err("torn write", e))?;
                return Err(DbError::Storage(format!(
                    "injected torn write on page {id}: {prefix} of {PAGE_SIZE} bytes persisted"
                )));
            }
            _ => {}
        }
        let mut block = Vec::with_capacity(BLOCK_SIZE as usize);
        block.extend_from_slice(&crc32(buf).to_le_bytes());
        block.extend_from_slice(&0u32.to_le_bytes());
        block.extend_from_slice(buf);
        file.seek(SeekFrom::Start(id.0 as u64 * BLOCK_SIZE))
            .map_err(|e| io_err(&format!("seeking page {id}"), e))?;
        file.write_all(&block).map_err(|e| io_err(&format!("writing page {id}"), e))?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn verify(&self, id: PageId) -> DbResult<bool> {
        self.check_bounds(id, "verify")?;
        let mut file = self.pages.lock();
        let (crc, data) = Self::read_block(&mut file, id)?;
        Ok(crc32(&data[..]) == crc)
    }

    fn sync(&self) -> DbResult<()> {
        self.pages.lock().sync_data().map_err(|e| io_err("fsync pages.dat", e))
    }

    fn log_append(&self, bytes: &[u8]) -> DbResult<()> {
        let mut file = self.log.lock();
        let at = self.log_bytes.load(Ordering::Acquire);
        file.seek(SeekFrom::Start(at)).map_err(|e| io_err("seeking log end", e))?;
        file.write_all(bytes).map_err(|e| io_err("appending to wal.log", e))?;
        self.log_bytes.store(at + bytes.len() as u64, Ordering::Release);
        Ok(())
    }

    fn log_sync(&self) -> DbResult<()> {
        self.log.lock().sync_data().map_err(|e| io_err("fsync wal.log", e))
    }

    fn log_len(&self) -> DbResult<u64> {
        Ok(self.log_bytes.load(Ordering::Acquire))
    }

    fn log_read(&self) -> DbResult<Vec<u8>> {
        let mut file = self.log.lock();
        let len = self.log_bytes.load(Ordering::Acquire) as usize;
        let mut out = vec![0u8; len];
        file.seek(SeekFrom::Start(0)).map_err(|e| io_err("seeking log start", e))?;
        file.read_exact(&mut out).map_err(|e| io_err("reading wal.log", e))?;
        Ok(out)
    }

    fn log_truncate(&self, len: u64) -> DbResult<()> {
        let file = self.log.lock();
        file.set_len(len).map_err(|e| io_err("truncating wal.log", e))?;
        self.log_bytes.store(len, Ordering::Release);
        Ok(())
    }

    fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.faults.write() = injector;
    }

    fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
        }
    }

    fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for FileDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileDisk")
            .field("dir", &self.dir)
            .field("pages", &self.page_count())
            .field("stats", &StorageBackend::stats(self))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::sync::atomic::AtomicU64 as TestCounter;

    static DIR_SEQ: TestCounter = TestCounter::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "orion-filedisk-{tag}-{}-{n}",
            std::process::id()
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn roundtrip_and_reopen() {
        let dir = temp_dir("roundtrip");
        let _guard = Cleanup(dir.clone());
        let disk = FileDisk::open(&dir).unwrap();
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();
        assert_eq!((a, b), (PageId(0), PageId(1)));
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        disk.write(b, &buf).unwrap();
        disk.sync().unwrap();
        disk.log_append(b"hello log").unwrap();
        disk.log_sync().unwrap();
        drop(disk);
        // A fresh handle over the same directory sees everything.
        let disk = FileDisk::open(&dir).unwrap();
        assert_eq!(StorageBackend::page_count(&disk), 2);
        let mut out = [0u8; PAGE_SIZE];
        disk.read(b, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);
        disk.read(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
        assert_eq!(disk.log_read().unwrap(), b"hello log");
        assert_eq!(disk.log_len().unwrap(), 9);
    }

    #[test]
    fn out_of_bounds_access_is_an_error() {
        let dir = temp_dir("bounds");
        let _guard = Cleanup(dir.clone());
        let disk = FileDisk::open(&dir).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(disk.read(PageId(0), &mut buf).is_err());
        assert!(disk.write(PageId(3), &buf).is_err());
    }

    #[test]
    fn torn_write_persists_prefix_and_corrupts_block() {
        let dir = temp_dir("torn");
        let _guard = Cleanup(dir.clone());
        let disk = FileDisk::open(&dir).unwrap();
        let p = disk.allocate().unwrap();
        disk.write(p, &[1u8; PAGE_SIZE]).unwrap();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(5).fail_nth(FaultKind::TornWrite, 1)));
        disk.set_fault_injector(Some(inj));
        assert!(disk.write(p, &[2u8; PAGE_SIZE]).is_err());
        disk.set_fault_injector(None);
        let mut buf = [0u8; PAGE_SIZE];
        assert!(
            matches!(disk.read(p, &mut buf), Err(DbError::Corruption(_))),
            "half-old half-new block fails its checksum"
        );
        assert!(!disk.verify(p).unwrap());
        // A completed rewrite heals the block.
        disk.write(p, &[3u8; PAGE_SIZE]).unwrap();
        disk.read(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 3));
    }

    #[test]
    fn bit_flip_is_persistent_corruption() {
        let dir = temp_dir("rot");
        let _guard = Cleanup(dir.clone());
        let disk = FileDisk::open(&dir).unwrap();
        let p = disk.allocate().unwrap();
        disk.write(p, &[9u8; PAGE_SIZE]).unwrap();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(42).fail_nth(FaultKind::BitFlip, 1)));
        disk.set_fault_injector(Some(inj));
        let mut buf = [0u8; PAGE_SIZE];
        assert!(matches!(disk.read(p, &mut buf), Err(DbError::Corruption(_))));
        disk.set_fault_injector(None);
        // The rot survives reopening the files.
        drop(disk);
        let disk = FileDisk::open(&dir).unwrap();
        assert!(matches!(disk.read(p, &mut buf), Err(DbError::Corruption(_))));
        assert!(!disk.verify(p).unwrap());
    }

    #[test]
    fn log_truncate_and_reappend() {
        let dir = temp_dir("logtrunc");
        let _guard = Cleanup(dir.clone());
        let disk = FileDisk::open(&dir).unwrap();
        disk.log_append(b"abcdef").unwrap();
        disk.log_truncate(3).unwrap();
        disk.log_append(b"XY").unwrap();
        disk.log_sync().unwrap();
        assert_eq!(disk.log_read().unwrap(), b"abcXY");
    }

    #[test]
    fn torn_trailing_allocation_is_trimmed_at_open() {
        let dir = temp_dir("trim");
        let _guard = Cleanup(dir.clone());
        let disk = FileDisk::open(&dir).unwrap();
        disk.allocate().unwrap();
        drop(disk);
        // Simulate a crash mid-allocation: a partial trailing block.
        let path = dir.join("pages.dat");
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(BLOCK_SIZE + 17).unwrap();
        drop(f);
        let disk = FileDisk::open(&dir).unwrap();
        assert_eq!(StorageBackend::page_count(&disk), 1, "partial block trimmed");
    }
}
