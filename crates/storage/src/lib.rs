//! The storage substrate for orion: simulated disk, buffer management,
//! slotted pages, heap files, write-ahead logging, and crash recovery.
//!
//! The paper requires that an OODB "supports all the database features
//! found in conventional database systems" (§3.1, requirement 2) —
//! durability and recovery included — and singles out *physical
//! clustering* as one of the components needing new architectural
//! techniques (§4.2). This crate provides:
//!
//! * [`StorageBackend`] — the block-granularity device contract
//!   (page read/write/allocate plus a raw log device with explicit
//!   durability barriers). Two implementations ship: [`SimDisk`] and
//!   [`FileDisk`].
//! * [`SimDisk`] — a page-addressed simulated disk with read/write
//!   accounting. Substitution note (see DESIGN.md): the paper's claims
//!   about clustering and indexing are claims about I/O counts and
//!   locality, which the accounting captures exactly; a spinning 1990
//!   disk would only scale the constants.
//! * [`FileDisk`] — the same contract over real files (`std::fs`) with
//!   real `fsync`, so a database survives process exit.
//! * [`slotted`] — the slotted-page record layout with per-page LSNs.
//! * [`BufferPool`] — an LRU buffer cache with dirty tracking, a
//!   write-ahead hook (no page leaves the pool before its log does), and
//!   hit/miss/eviction counters (experiment E10 reads these).
//! * [`HeapFile`] — record storage with free-space tracking and
//!   placement hints for composite-object clustering.
//! * [`Wal`] / [`StorageEngine`] — physiological logging with
//!   redo/undo restart recovery, quiescent checkpoints, and a `crash()`
//!   test hook that drops all volatile state (experiment E13).
//! * [`fault`] — a deterministic, seeded fault-injection subsystem
//!   (I/O errors, torn writes, bit flips, partial WAL flushes) wired
//!   into the disk and the log, plus the CRC32 used for page checksums
//!   and WAL record framing. Recovery is hardened against everything
//!   the injector can produce.

pub mod backend;
pub mod buffer;
pub mod disk;
pub mod engine;
pub mod fault;
pub mod heap;
pub mod slotted;
pub mod wal;

pub use backend::{FileDisk, StorageBackend};
pub use buffer::{BufferPool, PoolStats};
pub use disk::{DiskStats, PageId, SimDisk, PAGE_SIZE};
pub use engine::{RecoveryStats, StorageEngine, TxnId};
pub use fault::{crc32, FaultInjector, FaultKind, FaultPlan, FaultSite, FaultStats, Trigger};
pub use heap::{HeapFile, Rid};
pub use wal::{LogRecord, Lsn, Wal, WalStats};
