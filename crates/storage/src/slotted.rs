//! Slotted-page record layout.
//!
//! Layout within a 4096-byte page:
//!
//! ```text
//! +-----------+------------+-----------+-------------------+-----------+
//! | lsn (u64) | nslots u16 | cell  u16 | slot dir (4B * n) |  free ... |
//! +-----------+------------+-----------+-------------------+-----------+
//!                                                 cells grow <--------+
//! ```
//!
//! Each slot directory entry is `(offset: u16, len: u16)`; `offset == 0`
//! marks an empty (deleted) slot whose number can be reused — record ids
//! must stay stable for the object directory, so slots are never
//! compacted away, only cells are.

use orion_types::{DbError, DbResult};

use crate::disk::PAGE_SIZE;

const HEADER: usize = 12; // lsn(8) + nslots(2) + cell_start(2)
const SLOT: usize = 4;

/// Largest record a page can store (one slot, empty page).
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER - SLOT;

fn get_u16(page: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([page[at], page[at + 1]])
}
fn put_u16(page: &mut [u8], at: usize, v: u16) {
    page[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

/// Read the page LSN (the WAL position of the last change to this page).
pub fn page_lsn(page: &[u8]) -> u64 {
    u64::from_le_bytes(page[0..8].try_into().expect("page header"))
}

/// Set the page LSN.
pub fn set_page_lsn(page: &mut [u8], lsn: u64) {
    page[0..8].copy_from_slice(&lsn.to_le_bytes());
}

/// Initialize an empty slotted page in-place.
pub fn init(page: &mut [u8]) {
    page[..HEADER].fill(0);
    put_u16(page, 8, 0); // nslots
    put_u16(page, 10, PAGE_SIZE as u16); // cell_start = PAGE_SIZE
}

/// Number of slots in the directory (live + deleted).
pub fn slot_count(page: &[u8]) -> u16 {
    get_u16(page, 8)
}

fn cell_start(page: &[u8]) -> usize {
    let raw = get_u16(page, 10) as usize;
    if raw == 0 {
        PAGE_SIZE
    } else {
        raw
    }
}

fn slot_entry(page: &[u8], slot: u16) -> (usize, usize) {
    let at = HEADER + slot as usize * SLOT;
    (get_u16(page, at) as usize, get_u16(page, at + 2) as usize)
}

fn set_slot_entry(page: &mut [u8], slot: u16, offset: usize, len: usize) {
    let at = HEADER + slot as usize * SLOT;
    put_u16(page, at, offset as u16);
    put_u16(page, at + 2, len as u16);
}

/// Contiguous free bytes between the slot directory and the cell area.
pub fn contiguous_free(page: &[u8]) -> usize {
    cell_start(page).saturating_sub(HEADER + slot_count(page) as usize * SLOT)
}

/// Total reclaimable free bytes (after compaction), assuming the next
/// insert reuses an existing empty slot if one exists.
pub fn usable_free(page: &[u8]) -> usize {
    let mut used_cells = 0usize;
    let n = slot_count(page);
    let mut has_empty = false;
    for s in 0..n {
        let (off, len) = slot_entry(page, s);
        if off == 0 {
            has_empty = true;
        } else {
            used_cells += len;
        }
    }
    let dir = HEADER + n as usize * SLOT + if has_empty { 0 } else { SLOT };
    (PAGE_SIZE - used_cells).saturating_sub(dir)
}

/// Number of live records on the page.
pub fn live_count(page: &[u8]) -> usize {
    (0..slot_count(page)).filter(|&s| slot_entry(page, s).0 != 0).count()
}

/// Get the record stored in `slot`, if live.
pub fn get(page: &[u8], slot: u16) -> Option<&[u8]> {
    if slot >= slot_count(page) {
        return None;
    }
    let (off, len) = slot_entry(page, slot);
    if off == 0 {
        None
    } else {
        Some(&page[off..off + len])
    }
}

/// Rewrite the cell area compactly, preserving slot numbers.
pub fn compact(page: &mut [u8]) {
    let n = slot_count(page);
    let mut cells: Vec<(u16, Vec<u8>)> = Vec::new();
    for s in 0..n {
        let (off, len) = slot_entry(page, s);
        if off != 0 {
            cells.push((s, page[off..off + len].to_vec()));
        }
    }
    let mut cursor = PAGE_SIZE;
    for (s, bytes) in cells {
        cursor -= bytes.len();
        page[cursor..cursor + bytes.len()].copy_from_slice(&bytes);
        set_slot_entry(page, s, cursor, bytes.len());
    }
    put_u16(page, 10, cursor as u16);
}

fn alloc_cell(page: &mut [u8], want_slot: Option<u16>, len: usize) -> Option<u16> {
    // Pick the slot: requested, a reusable empty one, or a new one.
    let n = slot_count(page);
    let (slot, new_slot) = match want_slot {
        Some(s) if s < n => (s, false),
        Some(s) => {
            // Redo may need to recreate a slot beyond the current count;
            // grow the directory with empty slots up to `s`.
            let extra = (s - n + 1) as usize * SLOT;
            if contiguous_free(page) < extra + len {
                compact(page);
                if contiguous_free(page) < extra + len {
                    return None;
                }
            }
            for ns in n..=s {
                set_slot_entry(page, ns, 0, 0);
            }
            put_u16(page, 8, s + 1);
            (s, false)
        }
        None => {
            let empty = (0..n).find(|&s| slot_entry(page, s).0 == 0);
            match empty {
                Some(s) => (s, false),
                None => (n, true),
            }
        }
    };
    let dir_growth = if new_slot { SLOT } else { 0 };
    if contiguous_free(page) < len + dir_growth {
        compact(page);
        if contiguous_free(page) < len + dir_growth {
            return None;
        }
    }
    if new_slot {
        put_u16(page, 8, n + 1);
        set_slot_entry(page, slot, 0, 0);
    }
    let cursor = cell_start(page) - len;
    set_slot_entry(page, slot, cursor, len);
    put_u16(page, 10, cursor as u16);
    Some(slot)
}

/// Insert a record; returns the slot, or `None` if the page is full.
pub fn insert(page: &mut [u8], record: &[u8]) -> Option<u16> {
    if record.len() > MAX_RECORD {
        return None;
    }
    let slot = alloc_cell(page, None, record.len())?;
    let (off, len) = slot_entry(page, slot);
    page[off..off + len].copy_from_slice(record);
    Some(slot)
}

/// Insert a record at a specific slot (recovery redo). Fails if the slot
/// is live with different contents and there is no room.
pub fn insert_at(page: &mut [u8], slot: u16, record: &[u8]) -> DbResult<()> {
    if slot < slot_count(page) && slot_entry(page, slot).0 != 0 {
        // Live: treat as overwrite (idempotent redo).
        return update(page, slot, record)
            .then_some(())
            .ok_or_else(|| DbError::Storage("redo insert_at: page full".into()));
    }
    let got = alloc_cell(page, Some(slot), record.len())
        .ok_or_else(|| DbError::Storage("redo insert_at: page full".into()))?;
    debug_assert_eq!(got, slot);
    let (off, len) = slot_entry(page, slot);
    page[off..off + len].copy_from_slice(record);
    Ok(())
}

/// Update the record in `slot` in place; returns `false` when the new
/// bytes do not fit on this page (caller relocates the record).
pub fn update(page: &mut [u8], slot: u16, record: &[u8]) -> bool {
    if slot >= slot_count(page) || slot_entry(page, slot).0 == 0 {
        return false;
    }
    let (off, len) = slot_entry(page, slot);
    if record.len() <= len {
        page[off..off + record.len()].copy_from_slice(record);
        set_slot_entry(page, slot, off, record.len());
        return true;
    }
    // Grow: release the old cell, allocate a new one under the same
    // slot. The old bytes must be saved first: a failed allocation may
    // still have *compacted* the page, relocating live cells over the
    // freed region, so restoring the old slot entry by offset would
    // point into other records' data.
    let old_bytes = page[off..off + len].to_vec();
    set_slot_entry(page, slot, 0, 0);
    match alloc_cell(page, Some(slot), record.len()) {
        Some(_) => {
            let (off, len) = slot_entry(page, slot);
            page[off..off + len].copy_from_slice(record);
            true
        }
        None => {
            // Put the old record back (it fit before; compaction only
            // ever increases contiguous space, so this cannot fail).
            let restored = alloc_cell(page, Some(slot), old_bytes.len())
                .expect("previous cell must fit after compaction");
            debug_assert_eq!(restored, slot);
            let (off, len) = slot_entry(page, slot);
            page[off..off + len].copy_from_slice(&old_bytes);
            false
        }
    }
}

/// Delete the record in `slot`; returns `true` if it was live.
pub fn delete(page: &mut [u8], slot: u16) -> bool {
    if slot >= slot_count(page) || slot_entry(page, slot).0 == 0 {
        return false;
    }
    set_slot_entry(page, slot, 0, 0);
    true
}

/// Iterate live `(slot, record)` pairs.
pub fn iter(page: &[u8]) -> impl Iterator<Item = (u16, &[u8])> {
    (0..slot_count(page)).filter_map(move |s| get(page, s).map(|r| (s, r)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut page = vec![0u8; PAGE_SIZE];
        init(&mut page);
        page
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut page = fresh();
        let a = insert(&mut page, b"hello").unwrap();
        let b = insert(&mut page, b"world!").unwrap();
        assert_ne!(a, b);
        assert_eq!(get(&page, a), Some(&b"hello"[..]));
        assert_eq!(get(&page, b), Some(&b"world!"[..]));
        assert_eq!(live_count(&page), 2);
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut page = fresh();
        let a = insert(&mut page, b"aaaa").unwrap();
        let _b = insert(&mut page, b"bbbb").unwrap();
        assert!(delete(&mut page, a));
        assert!(!delete(&mut page, a), "double delete is a no-op");
        assert_eq!(get(&page, a), None);
        let c = insert(&mut page, b"cccc").unwrap();
        assert_eq!(c, a, "slot numbers are recycled");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut page = fresh();
        let a = insert(&mut page, b"0123456789").unwrap();
        assert!(update(&mut page, a, b"xy"));
        assert_eq!(get(&page, a), Some(&b"xy"[..]));
        assert!(update(&mut page, a, b"a-much-longer-record-than-before"));
        assert_eq!(get(&page, a), Some(&b"a-much-longer-record-than-before"[..]));
    }

    #[test]
    fn update_missing_slot_fails() {
        let mut page = fresh();
        assert!(!update(&mut page, 0, b"x"));
        let a = insert(&mut page, b"x").unwrap();
        delete(&mut page, a);
        assert!(!update(&mut page, a, b"y"));
    }

    #[test]
    fn fills_up_then_rejects() {
        let mut page = fresh();
        let rec = [7u8; 128];
        let mut n = 0;
        while insert(&mut page, &rec).is_some() {
            n += 1;
        }
        // 128-byte cells + 4-byte slots into (4096 - 12).
        assert_eq!(n, (PAGE_SIZE - HEADER) / (128 + SLOT));
        assert!(insert(&mut page, &rec).is_none());
        // But a tiny record may still fit.
        assert!(usable_free(&page) < 128 + SLOT);
    }

    #[test]
    fn compaction_reclaims_fragmentation() {
        let mut page = fresh();
        let big = vec![1u8; 1000];
        let slots: Vec<u16> = (0..4).map(|_| insert(&mut page, &big).unwrap()).collect();
        // Delete two middle records: contiguous free stays small, usable
        // free is large.
        delete(&mut page, slots[1]);
        delete(&mut page, slots[2]);
        let huge = vec![2u8; 1900];
        let s = insert(&mut page, &huge).expect("compaction should make room");
        assert_eq!(get(&page, s), Some(&huge[..]));
        assert_eq!(get(&page, slots[0]), Some(&big[..]), "survivors intact");
        assert_eq!(get(&page, slots[3]), Some(&big[..]));
    }

    #[test]
    fn failed_grow_after_compaction_preserves_contents() {
        // Regression: a grow that frees its cell, compacts, and still
        // fails must restore the *bytes*, not just the old slot entry —
        // compaction may have moved other cells over the freed region.
        let mut page = fresh();
        let a = insert(&mut page, &[0xAA; 1300]).unwrap();
        let b = insert(&mut page, &[0xBB; 1300]).unwrap();
        let c = insert(&mut page, &[0xCC; 1300]).unwrap();
        // Fragment: drop the middle record so compaction has work to do.
        assert!(delete(&mut page, b));
        // Fill most of the reclaimed space so a big grow cannot fit.
        let d = insert(&mut page, &[0xDD; 1100]).unwrap();
        // Growing `a` far beyond what is free fails...
        assert!(!update(&mut page, a, &[0xEE; 3000]));
        // ...and every record still reads back exactly.
        assert_eq!(get(&page, a), Some(&[0xAA; 1300][..]));
        assert_eq!(get(&page, c), Some(&[0xCC; 1300][..]));
        assert_eq!(get(&page, d), Some(&[0xDD; 1100][..]));
    }

    #[test]
    fn insert_at_is_idempotent_for_redo() {
        let mut page = fresh();
        insert_at(&mut page, 3, b"redo-me").unwrap();
        assert_eq!(slot_count(&page), 4);
        assert_eq!(get(&page, 3), Some(&b"redo-me"[..]));
        assert_eq!(get(&page, 0), None);
        // Redoing the same insert is harmless.
        insert_at(&mut page, 3, b"redo-me").unwrap();
        assert_eq!(get(&page, 3), Some(&b"redo-me"[..]));
        assert_eq!(live_count(&page), 1);
    }

    #[test]
    fn max_record_fits_exactly() {
        let mut page = fresh();
        let rec = vec![9u8; MAX_RECORD];
        let s = insert(&mut page, &rec).unwrap();
        assert_eq!(get(&page, s).unwrap().len(), MAX_RECORD);
        assert!(insert(&mut page, &[1u8; MAX_RECORD + 1]).is_none());
    }

    #[test]
    fn lsn_header_roundtrip() {
        let mut page = fresh();
        assert_eq!(page_lsn(&page), 0);
        set_page_lsn(&mut page, 0xDEAD_BEEF);
        assert_eq!(page_lsn(&page), 0xDEAD_BEEF);
        // Records unaffected.
        let a = insert(&mut page, b"x").unwrap();
        assert_eq!(page_lsn(&page), 0xDEAD_BEEF);
        assert_eq!(get(&page, a), Some(&b"x"[..]));
    }

    #[test]
    fn iter_yields_live_records_in_slot_order() {
        let mut page = fresh();
        let a = insert(&mut page, b"a").unwrap();
        let b = insert(&mut page, b"b").unwrap();
        let c = insert(&mut page, b"c").unwrap();
        delete(&mut page, b);
        let seen: Vec<(u16, Vec<u8>)> = iter(&page).map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(seen, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }
}
