//! The buffer pool: an LRU page cache between the storage engine and the
//! simulated disk.
//!
//! "One should remember that conventional database systems do not allow
//! applications to directly access objects in the page buffers" (§3.3) —
//! and neither does orion: page bytes are only reachable inside the
//! closures passed to [`BufferPool::with_page`] / `with_page_mut`, which
//! pin the frame for exactly the closure's duration. The pool honors the
//! write-ahead rule: a dirty page is never written to disk before the
//! log records up to its page LSN are stable.

use crate::backend::StorageBackend;
use crate::disk::{PageId, PAGE_SIZE};
use crate::slotted;
use crate::wal::{Lsn, Wal};
use orion_types::{DbError, DbResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Buffer pool counters; experiment E10 reads misses as its I/O metric.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests satisfied without disk I/O.
    pub hits: u64,
    /// Page requests that had to read from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back to disk.
    pub writebacks: u64,
}

struct Frame {
    pid: PageId,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    last_used: u64,
}

#[derive(Default)]
struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    tick: u64,
}

/// An LRU buffer pool over any [`StorageBackend`].
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    disk: Arc<dyn StorageBackend>,
    capacity: usize,
    wal: Option<Arc<Wal>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl BufferPool {
    /// A pool holding up to `capacity` pages. `wal`, when present, is
    /// flushed up to a dirty page's LSN before that page is written.
    pub fn new(disk: Arc<dyn StorageBackend>, capacity: usize, wal: Option<Arc<Wal>>) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            inner: Mutex::new(PoolInner::default()),
            disk,
            capacity,
            wal,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    /// The configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The underlying storage backend.
    pub fn disk(&self) -> &Arc<dyn StorageBackend> {
        &self.disk
    }

    fn write_back(&self, frame: &Frame) -> DbResult<()> {
        if let Some(wal) = &self.wal {
            wal.flush_to(Lsn(slotted::page_lsn(&frame.data[..])))?;
        }
        self.disk.write(frame.pid, &frame.data)?;
        self.writebacks.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Locate `pid` in the pool, loading (and possibly evicting) as
    /// needed. Returns the frame index. Caller holds the inner lock.
    fn ensure_loaded(&self, inner: &mut PoolInner, pid: PageId) -> DbResult<usize> {
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(&idx) = inner.map.get(&pid) {
            inner.frames[idx].last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(idx);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.disk.read(pid, &mut data)?;
        let idx = if inner.frames.len() < self.capacity {
            inner.frames.push(Frame { pid, data, dirty: false, last_used: tick });
            inner.frames.len() - 1
        } else {
            // Evict the least recently used frame.
            let victim = inner
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .ok_or_else(|| DbError::Internal("empty pool at capacity".into()))?;
            let old = &inner.frames[victim];
            if old.dirty {
                self.write_back(old)?;
            }
            inner.map.remove(&old.pid);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            inner.frames[victim] = Frame { pid, data, dirty: false, last_used: tick };
            victim
        };
        inner.map.insert(pid, idx);
        Ok(idx)
    }

    /// Run `f` against the page's bytes (read-only access).
    ///
    /// The closure must not call back into the pool — frames are pinned
    /// by the pool lock for the closure's duration.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&[u8]) -> R) -> DbResult<R> {
        let mut inner = self.inner.lock();
        let idx = self.ensure_loaded(&mut inner, pid)?;
        Ok(f(&inner.frames[idx].data[..]))
    }

    /// Run `f` against the page's bytes mutably; the frame is marked
    /// dirty. Same no-reentrancy rule as [`BufferPool::with_page`].
    pub fn with_page_mut<R>(&self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> DbResult<R> {
        let mut inner = self.inner.lock();
        let idx = self.ensure_loaded(&mut inner, pid)?;
        inner.frames[idx].dirty = true;
        Ok(f(&mut inner.frames[idx].data[..]))
    }

    /// Allocate a fresh page on disk, initialize it as an empty slotted
    /// page in the pool, and return its id.
    pub fn allocate_slotted(&self) -> DbResult<PageId> {
        let pid = self.disk.allocate()?;
        self.with_page_mut(pid, slotted::init)?;
        Ok(pid)
    }

    /// Replace a page the disk reports as corrupt with a freshly
    /// initialized slotted page, installed *dirty* in the pool without
    /// reading the damaged bytes. Recovery calls this before replaying
    /// the log: redo then rebuilds the page's contents from history
    /// (page-LSN guards start from zero, so every record re-applies).
    pub fn repair_page(&self, pid: PageId) -> DbResult<()> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let mut data = Box::new([0u8; PAGE_SIZE]);
        slotted::init(&mut data[..]);
        if let Some(&idx) = inner.map.get(&pid) {
            inner.frames[idx] = Frame { pid, data, dirty: true, last_used: tick };
            return Ok(());
        }
        if inner.frames.len() >= self.capacity {
            let victim = inner
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .ok_or_else(|| DbError::Internal("empty pool at capacity".into()))?;
            let old = &inner.frames[victim];
            if old.dirty {
                self.write_back(old)?;
            }
            let old_pid = old.pid;
            inner.map.remove(&old_pid);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            inner.frames[victim] = Frame { pid, data, dirty: true, last_used: tick };
            inner.map.insert(pid, victim);
        } else {
            inner.frames.push(Frame { pid, data, dirty: true, last_used: tick });
            let idx = inner.frames.len() - 1;
            inner.map.insert(pid, idx);
        }
        Ok(())
    }

    /// Write every dirty frame back to disk (checkpoint step).
    pub fn flush_all(&self) -> DbResult<()> {
        let mut inner = self.inner.lock();
        for frame in inner.frames.iter_mut() {
            if frame.dirty {
                if let Some(wal) = &self.wal {
                    wal.flush_to(Lsn(slotted::page_lsn(&frame.data[..])))?;
                }
                self.disk.write(frame.pid, &frame.data)?;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Simulate a crash: every frame — dirty or clean — is discarded
    /// without any write-back.
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.map.clear();
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Reset the counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::disk::SimDisk;

    fn pool(cap: usize) -> (Arc<SimDisk>, BufferPool) {
        let disk = Arc::new(SimDisk::new());
        let pool = BufferPool::new(Arc::clone(&disk) as Arc<dyn StorageBackend>, cap, None);
        (disk, pool)
    }

    #[test]
    fn read_after_write_through_pool() {
        let (_disk, pool) = pool(4);
        let pid = pool.allocate_slotted().unwrap();
        let slot = pool.with_page_mut(pid, |p| slotted::insert(p, b"hello").unwrap()).unwrap();
        let got =
            pool.with_page(pid, |p| slotted::get(p, slot).map(|r| r.to_vec())).unwrap();
        assert_eq!(got, Some(b"hello".to_vec()));
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (_disk, pool) = pool(4);
        let pid = pool.allocate_slotted().unwrap(); // miss (load) happens here
        pool.reset_stats();
        pool.with_page(pid, |_| ()).unwrap();
        pool.with_page(pid, |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (2, 0));
    }

    #[test]
    fn eviction_respects_capacity_and_writes_back_dirty() {
        let (disk, pool) = pool(2);
        let p0 = pool.allocate_slotted().unwrap();
        let p1 = pool.allocate_slotted().unwrap();
        let p2 = pool.allocate_slotted().unwrap(); // evicts one of p0/p1
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.writebacks >= 1, "evicted page was dirty (freshly initialized)");
        // All three pages remain readable and valid slotted pages.
        for pid in [p0, p1, p2] {
            let n = pool.with_page(pid, slotted::slot_count).unwrap();
            assert_eq!(n, 0);
        }
        assert!(disk.stats().writes >= 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (_disk, pool) = pool(2);
        let p0 = pool.allocate_slotted().unwrap();
        let p1 = pool.allocate_slotted().unwrap();
        pool.with_page(p0, |_| ()).unwrap(); // p0 now more recent than p1
        let _p2 = pool.allocate_slotted().unwrap(); // should evict p1
        pool.reset_stats();
        pool.with_page(p0, |_| ()).unwrap();
        assert_eq!(pool.stats().hits, 1, "p0 survived eviction");
        pool.with_page(p1, |_| ()).unwrap();
        assert_eq!(pool.stats().misses, 1, "p1 was the LRU victim");
    }

    #[test]
    fn crash_discards_unflushed_writes() {
        let (_disk, pool) = pool(4);
        let pid = pool.allocate_slotted().unwrap();
        pool.flush_all().unwrap();
        pool.with_page_mut(pid, |p| {
            slotted::insert(p, b"doomed").unwrap();
        })
        .unwrap();
        pool.crash();
        // The insert never reached disk; the flushed empty page did.
        let n = pool.with_page(pid, slotted::live_count).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn flush_all_persists() {
        let (_disk, pool) = pool(4);
        let pid = pool.allocate_slotted().unwrap();
        pool.with_page_mut(pid, |p| {
            slotted::insert(p, b"kept").unwrap();
        })
        .unwrap();
        pool.flush_all().unwrap();
        pool.crash();
        let n = pool.with_page(pid, slotted::live_count).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn repair_page_replaces_corrupt_frame() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan};
        let (disk, pool) = pool(4);
        let pid = pool.allocate_slotted().unwrap();
        pool.with_page_mut(pid, |p| {
            slotted::insert(p, b"rotting").unwrap();
        })
        .unwrap();
        pool.flush_all().unwrap();
        pool.crash();
        let inj =
            Arc::new(FaultInjector::new(FaultPlan::new(5).fail_nth(FaultKind::BitFlip, 1)));
        disk.set_fault_injector(Some(inj));
        assert!(pool.with_page(pid, |_| ()).is_err(), "bit rot detected on load");
        disk.set_fault_injector(None);
        assert!(pool.with_page(pid, |_| ()).is_err(), "the rot is persistent");
        pool.repair_page(pid).unwrap();
        let n = pool.with_page(pid, slotted::live_count).unwrap();
        assert_eq!(n, 0, "repaired page is a fresh empty slotted page");
    }

    #[test]
    fn write_ahead_rule_flushes_wal_before_page() {
        let wal = Arc::new(Wal::new());
        let disk = Arc::new(SimDisk::new());
        let pool =
            BufferPool::new(Arc::clone(&disk) as Arc<dyn StorageBackend>, 1, Some(Arc::clone(&wal)));
        let pid = pool.allocate_slotted().unwrap();
        let lsn = wal.append(&crate::wal::LogRecord::Begin { txn: 1 });
        pool.with_page_mut(pid, |p| slotted::set_page_lsn(p, lsn.0)).unwrap();
        assert_eq!(wal.stable_len(), 0);
        // Loading another page evicts pid, which must first force the WAL.
        let _p2 = pool.allocate_slotted().unwrap();
        assert!(wal.stable_len() > 0, "WAL forced before dirty page write");
    }
}
