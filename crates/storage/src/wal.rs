//! Write-ahead logging.
//!
//! The log is physiological: records name a record id (`page`, `slot`)
//! and carry byte images. A `stable` prefix models what reached the
//! durable log device; the `tail` models the in-memory log buffer, which
//! a crash discards. `flush` (called on commit and by the buffer pool's
//! write-ahead hook) moves the tail into the stable prefix.
//!
//! Rollback uses ARIES-style compensation: undoing an operation appends
//! a [`LogRecord::Clr`] naming the LSN it compensates, so that restart
//! recovery never undoes the same operation twice even if the crash hits
//! mid-rollback.

use crate::heap::Rid;
use orion_obs::{Counter, Histogram, HistogramSnapshot, SpanTimer};
use orion_types::{DbError, DbResult};
use parking_lot::Mutex;
use std::time::Instant;

use bytes::{Buf, BufMut};

/// A log sequence number: the byte offset of a record's start in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

/// The physical action a compensation record applies.
#[derive(Debug, Clone, PartialEq)]
pub enum ClrAction {
    /// Re-insert `bytes` at `rid` (compensates a delete).
    ReInsert {
        /// Target record id.
        rid: Rid,
        /// The before-image being restored.
        bytes: Vec<u8>,
    },
    /// Overwrite `rid` with `bytes` (compensates an update).
    Overwrite {
        /// Target record id.
        rid: Rid,
        /// The before-image being restored.
        bytes: Vec<u8>,
    },
    /// Remove the record at `rid` (compensates an insert).
    Remove {
        /// Target record id.
        rid: Rid,
    },
}

/// A write-ahead log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// Transaction start.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// A record was inserted.
    Insert {
        /// Transaction id.
        txn: u64,
        /// Where the record landed.
        rid: Rid,
        /// The record bytes (redo image).
        bytes: Vec<u8>,
    },
    /// A record was overwritten in place.
    Update {
        /// Transaction id.
        txn: u64,
        /// The record id.
        rid: Rid,
        /// Before-image (undo).
        before: Vec<u8>,
        /// After-image (redo).
        after: Vec<u8>,
    },
    /// A record was deleted.
    Delete {
        /// Transaction id.
        txn: u64,
        /// The record id.
        rid: Rid,
        /// Before-image (undo).
        before: Vec<u8>,
    },
    /// Transaction committed (forced to stable storage).
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// Transaction fully rolled back.
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// Compensation: `action` undoes the operation logged at
    /// `compensates`.
    Clr {
        /// Transaction id.
        txn: u64,
        /// LSN of the operation this record compensates.
        compensates: u64,
        /// The physical undo action.
        action: ClrAction,
    },
    /// Quiescent checkpoint: all pages flushed, no transaction active.
    /// Recovery starts scanning here.
    Checkpoint,
}

impl LogRecord {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<u64> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::Clr { txn, .. } => Some(*txn),
            LogRecord::Checkpoint => None,
        }
    }
}

fn put_rid(out: &mut Vec<u8>, rid: Rid) {
    out.put_u32_le(rid.page.0);
    out.put_u16_le(rid.slot);
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.put_u32_le(bytes.len() as u32);
    out.put_slice(bytes);
}

fn get_rid(buf: &mut &[u8]) -> Rid {
    let page = crate::disk::PageId(buf.get_u32_le());
    let slot = buf.get_u16_le();
    Rid { page, slot }
}

fn get_bytes(buf: &mut &[u8]) -> Vec<u8> {
    let len = buf.get_u32_le() as usize;
    let out = buf[..len].to_vec();
    buf.advance(len);
    out
}

const T_BEGIN: u8 = 1;
const T_INSERT: u8 = 2;
const T_UPDATE: u8 = 3;
const T_DELETE: u8 = 4;
const T_COMMIT: u8 = 5;
const T_ABORT: u8 = 6;
const T_CLR: u8 = 7;
const T_CHECKPOINT: u8 = 8;
const A_REINSERT: u8 = 1;
const A_OVERWRITE: u8 = 2;
const A_REMOVE: u8 = 3;

fn encode(rec: &LogRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    match rec {
        LogRecord::Begin { txn } => {
            body.put_u8(T_BEGIN);
            body.put_u64_le(*txn);
        }
        LogRecord::Insert { txn, rid, bytes } => {
            body.put_u8(T_INSERT);
            body.put_u64_le(*txn);
            put_rid(&mut body, *rid);
            put_bytes(&mut body, bytes);
        }
        LogRecord::Update { txn, rid, before, after } => {
            body.put_u8(T_UPDATE);
            body.put_u64_le(*txn);
            put_rid(&mut body, *rid);
            put_bytes(&mut body, before);
            put_bytes(&mut body, after);
        }
        LogRecord::Delete { txn, rid, before } => {
            body.put_u8(T_DELETE);
            body.put_u64_le(*txn);
            put_rid(&mut body, *rid);
            put_bytes(&mut body, before);
        }
        LogRecord::Commit { txn } => {
            body.put_u8(T_COMMIT);
            body.put_u64_le(*txn);
        }
        LogRecord::Abort { txn } => {
            body.put_u8(T_ABORT);
            body.put_u64_le(*txn);
        }
        LogRecord::Clr { txn, compensates, action } => {
            body.put_u8(T_CLR);
            body.put_u64_le(*txn);
            body.put_u64_le(*compensates);
            match action {
                ClrAction::ReInsert { rid, bytes } => {
                    body.put_u8(A_REINSERT);
                    put_rid(&mut body, *rid);
                    put_bytes(&mut body, bytes);
                }
                ClrAction::Overwrite { rid, bytes } => {
                    body.put_u8(A_OVERWRITE);
                    put_rid(&mut body, *rid);
                    put_bytes(&mut body, bytes);
                }
                ClrAction::Remove { rid } => {
                    body.put_u8(A_REMOVE);
                    put_rid(&mut body, *rid);
                }
            }
        }
        LogRecord::Checkpoint => {
            body.put_u8(T_CHECKPOINT);
        }
    }
    let mut framed = Vec::with_capacity(body.len() + 4);
    framed.put_u32_le(body.len() as u32);
    framed.extend_from_slice(&body);
    framed
}

fn decode(mut body: &[u8]) -> DbResult<LogRecord> {
    let buf = &mut body;
    if buf.remaining() < 1 {
        return Err(DbError::Wal("empty log record".into()));
    }
    let tag = buf.get_u8();
    let rec = match tag {
        T_BEGIN => LogRecord::Begin { txn: buf.get_u64_le() },
        T_INSERT => {
            let txn = buf.get_u64_le();
            let rid = get_rid(buf);
            let bytes = get_bytes(buf);
            LogRecord::Insert { txn, rid, bytes }
        }
        T_UPDATE => {
            let txn = buf.get_u64_le();
            let rid = get_rid(buf);
            let before = get_bytes(buf);
            let after = get_bytes(buf);
            LogRecord::Update { txn, rid, before, after }
        }
        T_DELETE => {
            let txn = buf.get_u64_le();
            let rid = get_rid(buf);
            let before = get_bytes(buf);
            LogRecord::Delete { txn, rid, before }
        }
        T_COMMIT => LogRecord::Commit { txn: buf.get_u64_le() },
        T_ABORT => LogRecord::Abort { txn: buf.get_u64_le() },
        T_CLR => {
            let txn = buf.get_u64_le();
            let compensates = buf.get_u64_le();
            let atag = buf.get_u8();
            let action = match atag {
                A_REINSERT => {
                    let rid = get_rid(buf);
                    let bytes = get_bytes(buf);
                    ClrAction::ReInsert { rid, bytes }
                }
                A_OVERWRITE => {
                    let rid = get_rid(buf);
                    let bytes = get_bytes(buf);
                    ClrAction::Overwrite { rid, bytes }
                }
                A_REMOVE => ClrAction::Remove { rid: get_rid(buf) },
                other => return Err(DbError::Wal(format!("bad CLR action tag {other}"))),
            };
            LogRecord::Clr { txn, compensates, action }
        }
        T_CHECKPOINT => LogRecord::Checkpoint,
        other => return Err(DbError::Wal(format!("bad log record tag {other}"))),
    };
    Ok(rec)
}

#[derive(Debug, Default)]
struct WalInner {
    stable: Vec<u8>,
    tail: Vec<u8>,
}

/// Cumulative WAL counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended to the log buffer.
    pub appends: u64,
    /// Forces of the log buffer to stable storage (the simulated fsync).
    pub flushes: u64,
    /// Bytes moved into the stable prefix by those flushes.
    pub flushed_bytes: u64,
    /// Latency distribution of non-empty flushes.
    pub flush_latency: HistogramSnapshot,
}

/// The write-ahead log.
#[derive(Debug, Default)]
pub struct Wal {
    inner: Mutex<WalInner>,
    appends: Counter,
    flushes: Counter,
    flushed_bytes: Counter,
    flush_latency: Histogram,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Append a record to the log buffer; returns its LSN.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let framed = encode(rec);
        let mut inner = self.inner.lock();
        let lsn = Lsn((inner.stable.len() + inner.tail.len()) as u64);
        inner.tail.extend_from_slice(&framed);
        self.appends.inc();
        lsn
    }

    /// Force the log buffer to stable storage. The flush — the simulated
    /// fsync — is timed; an already-empty tail is a free no-op and is
    /// neither counted nor timed.
    pub fn flush(&self) {
        let span = SpanTimer::starting_at(Instant::now());
        let moved = {
            let mut inner = self.inner.lock();
            let tail = std::mem::take(&mut inner.tail);
            inner.stable.extend_from_slice(&tail);
            tail.len() as u64
        };
        if moved > 0 {
            self.flushes.inc();
            self.flushed_bytes.add(moved);
            span.record(Instant::now(), &self.flush_latency);
        }
    }

    /// Snapshot the WAL counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.get(),
            flushes: self.flushes.get(),
            flushed_bytes: self.flushed_bytes.get(),
            flush_latency: self.flush_latency.snapshot(),
        }
    }

    /// Reset the WAL counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.appends.reset();
        self.flushes.reset();
        self.flushed_bytes.reset();
        self.flush_latency.reset();
    }

    /// Force the log up to (and including) `lsn` — the write-ahead rule
    /// invoked by the buffer pool before writing a dirty page. The tail
    /// is flushed wholesale when `lsn` lies inside it.
    pub fn flush_to(&self, lsn: Lsn) {
        let needs = {
            let inner = self.inner.lock();
            lsn.0 >= inner.stable.len() as u64
        };
        if needs {
            self.flush();
        }
    }

    /// Byte length of the stable prefix.
    pub fn stable_len(&self) -> u64 {
        self.inner.lock().stable.len() as u64
    }

    /// Total log length including the unforced tail.
    pub fn total_len(&self) -> u64 {
        let inner = self.inner.lock();
        (inner.stable.len() + inner.tail.len()) as u64
    }

    /// Simulate a crash: the unforced tail is lost.
    pub fn crash(&self) {
        self.inner.lock().tail.clear();
    }

    /// Read every record in the *stable* prefix, with its LSN.
    pub fn stable_records(&self) -> DbResult<Vec<(Lsn, LogRecord)>> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        let mut at = 0usize;
        let stable = &inner.stable;
        while at + 4 <= stable.len() {
            let len = u32::from_le_bytes(stable[at..at + 4].try_into().unwrap()) as usize;
            if at + 4 + len > stable.len() {
                return Err(DbError::Wal(format!("torn log record at offset {at}")));
            }
            let rec = decode(&stable[at + 4..at + 4 + len])?;
            out.push((Lsn(at as u64), rec));
            at += 4 + len;
        }
        if at != stable.len() {
            return Err(DbError::Wal(format!("trailing garbage at offset {at}")));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::PageId;

    fn rid(p: u32, s: u16) -> Rid {
        Rid { page: PageId(p), slot: s }
    }

    #[test]
    fn encode_decode_all_variants() {
        let records = vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::Insert { txn: 1, rid: rid(2, 3), bytes: b"abc".to_vec() },
            LogRecord::Update {
                txn: 1,
                rid: rid(2, 3),
                before: b"abc".to_vec(),
                after: b"defg".to_vec(),
            },
            LogRecord::Delete { txn: 1, rid: rid(2, 3), before: b"defg".to_vec() },
            LogRecord::Clr {
                txn: 1,
                compensates: 99,
                action: ClrAction::ReInsert { rid: rid(2, 3), bytes: b"x".to_vec() },
            },
            LogRecord::Clr {
                txn: 1,
                compensates: 100,
                action: ClrAction::Overwrite { rid: rid(2, 3), bytes: b"y".to_vec() },
            },
            LogRecord::Clr { txn: 1, compensates: 101, action: ClrAction::Remove { rid: rid(2, 3) } },
            LogRecord::Commit { txn: 1 },
            LogRecord::Abort { txn: 2 },
            LogRecord::Checkpoint,
        ];
        let wal = Wal::new();
        let lsns: Vec<Lsn> = records.iter().map(|r| wal.append(r)).collect();
        assert!(lsns.windows(2).all(|w| w[0] < w[1]), "LSNs are monotone");
        wal.flush();
        let read: Vec<LogRecord> =
            wal.stable_records().unwrap().into_iter().map(|(_, r)| r).collect();
        assert_eq!(read, records);
    }

    #[test]
    fn crash_loses_unflushed_tail_only() {
        let wal = Wal::new();
        wal.append(&LogRecord::Begin { txn: 1 });
        wal.flush();
        wal.append(&LogRecord::Commit { txn: 1 });
        wal.crash();
        let recs = wal.stable_records().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, LogRecord::Begin { txn: 1 });
    }

    #[test]
    fn flush_to_honors_write_ahead_rule() {
        let wal = Wal::new();
        let l1 = wal.append(&LogRecord::Begin { txn: 1 });
        wal.flush();
        let l2 = wal.append(&LogRecord::Commit { txn: 1 });
        // l1 already stable: no-op.
        wal.flush_to(l1);
        assert_eq!(wal.stable_records().unwrap().len(), 1);
        // l2 in the tail: flushes.
        wal.flush_to(l2);
        assert_eq!(wal.stable_records().unwrap().len(), 2);
    }

    #[test]
    fn txn_accessor() {
        assert_eq!(LogRecord::Begin { txn: 7 }.txn(), Some(7));
        assert_eq!(LogRecord::Checkpoint.txn(), None);
    }

    #[test]
    fn stats_count_appends_and_nonempty_flushes() {
        let wal = Wal::new();
        wal.flush(); // empty: not counted
        assert_eq!(wal.stats().flushes, 0);
        wal.append(&LogRecord::Begin { txn: 1 });
        wal.append(&LogRecord::Commit { txn: 1 });
        wal.flush();
        wal.flush(); // empty again: not counted
        let s = wal.stats();
        assert_eq!(s.appends, 2);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.flushed_bytes, wal.stable_len());
        assert_eq!(s.flush_latency.count, 1);
        wal.reset_stats();
        assert_eq!(wal.stats(), WalStats::default());
    }
}
