//! Write-ahead logging.
//!
//! The log is physiological: records name a record id (`page`, `slot`)
//! and carry byte images. A `stable` prefix models what reached the
//! durable log device; the `tail` models the in-memory log buffer, which
//! a crash discards. `flush` (called on commit and by the buffer pool's
//! write-ahead hook) moves the tail into the stable prefix.
//!
//! Every record is framed as `len (u32) | crc32 (u32) | body`, so a torn
//! or rotted record is *detected*, never replayed as garbage. Reading
//! the stable log applies the ARIES tail discipline: a torn or
//! CRC-invalid record with nothing valid after it marks end-of-log and
//! is truncated away (the padded gap keeps LSNs monotone — see
//! [`LogRecord::Pad`]); a corrupt record *followed by* valid records
//! means the log interior is damaged, which is unrecoverable and
//! reported as [`DbError::Corruption`].
//!
//! A partial flush (injected via [`crate::fault`]) promotes only part of
//! the tail and fails; the remainder stays buffered, so the log heals on
//! the next successful flush — unless a crash intervenes, which is
//! exactly the torn-tail case above. The write-ahead hook
//! [`Wal::flush_to`] compares against the *record-complete* stable
//! length, so a page whose log record is only half-stable is never
//! written to disk.
//!
//! Rollback uses ARIES-style compensation: undoing an operation appends
//! a [`LogRecord::Clr`] naming the LSN it compensates, so that restart
//! recovery never undoes the same operation twice even if the crash hits
//! mid-rollback.

use crate::backend::StorageBackend;
use crate::fault::{crc32, FaultInjector, FaultKind, FaultSite};
use crate::heap::Rid;
use orion_obs::{Counter, Histogram, HistogramSnapshot, SpanTimer};
use orion_types::{DbError, DbResult};
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Buf, BufMut};

/// A log sequence number: the byte offset of a record's start in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

/// The physical action a compensation record applies.
#[derive(Debug, Clone, PartialEq)]
pub enum ClrAction {
    /// Re-insert `bytes` at `rid` (compensates a delete).
    ReInsert {
        /// Target record id.
        rid: Rid,
        /// The before-image being restored.
        bytes: Vec<u8>,
    },
    /// Overwrite `rid` with `bytes` (compensates an update).
    Overwrite {
        /// Target record id.
        rid: Rid,
        /// The before-image being restored.
        bytes: Vec<u8>,
    },
    /// Remove the record at `rid` (compensates an insert).
    Remove {
        /// Target record id.
        rid: Rid,
    },
}

/// A write-ahead log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// Transaction start.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// A record was inserted.
    Insert {
        /// Transaction id.
        txn: u64,
        /// Where the record landed.
        rid: Rid,
        /// The record bytes (redo image).
        bytes: Vec<u8>,
    },
    /// A record was overwritten in place.
    Update {
        /// Transaction id.
        txn: u64,
        /// The record id.
        rid: Rid,
        /// Before-image (undo).
        before: Vec<u8>,
        /// After-image (redo).
        after: Vec<u8>,
    },
    /// A record was deleted.
    Delete {
        /// Transaction id.
        txn: u64,
        /// The record id.
        rid: Rid,
        /// Before-image (undo).
        before: Vec<u8>,
    },
    /// Transaction committed (forced to stable storage).
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// Transaction fully rolled back.
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// Two-phase commit: every effect of the transaction is logged
    /// before this record, and the record itself is forced, so the
    /// participant can no longer abort unilaterally. The outcome
    /// arrives later as a [`LogRecord::Commit`] or [`LogRecord::Abort`]
    /// from the coordinator; until then restart recovery reinstates the
    /// transaction as *in doubt* instead of undoing it.
    Prepare {
        /// Transaction id.
        txn: u64,
    },
    /// Compensation: `action` undoes the operation logged at
    /// `compensates`.
    Clr {
        /// Transaction id.
        txn: u64,
        /// LSN of the operation this record compensates.
        compensates: u64,
        /// The physical undo action.
        action: ClrAction,
    },
    /// Quiescent checkpoint: all pages flushed, no transaction active.
    /// Recovery starts scanning here.
    Checkpoint,
    /// Filler spliced over a truncated torn tail. Burning the dead bytes
    /// as a real record keeps LSNs monotone — an offset that once named
    /// a (now truncated) record is never handed out again, so page LSNs
    /// stamped before the crash can never shadow future records.
    Pad,
}

impl LogRecord {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<u64> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::Prepare { txn }
            | LogRecord::Clr { txn, .. } => Some(*txn),
            LogRecord::Checkpoint | LogRecord::Pad => None,
        }
    }
}

fn put_rid(out: &mut Vec<u8>, rid: Rid) {
    out.put_u32_le(rid.page.0);
    out.put_u16_le(rid.slot);
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.put_u32_le(bytes.len() as u32);
    out.put_slice(bytes);
}

fn get_rid(buf: &mut &[u8]) -> Rid {
    let page = crate::disk::PageId(buf.get_u32_le());
    let slot = buf.get_u16_le();
    Rid { page, slot }
}

fn get_bytes(buf: &mut &[u8]) -> Vec<u8> {
    let len = buf.get_u32_le() as usize;
    let out = buf[..len].to_vec();
    buf.advance(len);
    out
}

const T_BEGIN: u8 = 1;
const T_INSERT: u8 = 2;
const T_UPDATE: u8 = 3;
const T_DELETE: u8 = 4;
const T_COMMIT: u8 = 5;
const T_ABORT: u8 = 6;
const T_CLR: u8 = 7;
const T_CHECKPOINT: u8 = 8;
const T_PAD: u8 = 9;
const T_PREPARE: u8 = 10;
const A_REINSERT: u8 = 1;
const A_OVERWRITE: u8 = 2;
const A_REMOVE: u8 = 3;

/// Bytes of frame overhead per record: length prefix + body CRC.
const FRAME_HEADER: usize = 8;

fn frame(body: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(body.len() + FRAME_HEADER);
    framed.put_u32_le(body.len() as u32);
    framed.put_u32_le(crc32(body));
    framed.extend_from_slice(body);
    framed
}

fn encode(rec: &LogRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    match rec {
        LogRecord::Begin { txn } => {
            body.put_u8(T_BEGIN);
            body.put_u64_le(*txn);
        }
        LogRecord::Insert { txn, rid, bytes } => {
            body.put_u8(T_INSERT);
            body.put_u64_le(*txn);
            put_rid(&mut body, *rid);
            put_bytes(&mut body, bytes);
        }
        LogRecord::Update { txn, rid, before, after } => {
            body.put_u8(T_UPDATE);
            body.put_u64_le(*txn);
            put_rid(&mut body, *rid);
            put_bytes(&mut body, before);
            put_bytes(&mut body, after);
        }
        LogRecord::Delete { txn, rid, before } => {
            body.put_u8(T_DELETE);
            body.put_u64_le(*txn);
            put_rid(&mut body, *rid);
            put_bytes(&mut body, before);
        }
        LogRecord::Commit { txn } => {
            body.put_u8(T_COMMIT);
            body.put_u64_le(*txn);
        }
        LogRecord::Abort { txn } => {
            body.put_u8(T_ABORT);
            body.put_u64_le(*txn);
        }
        LogRecord::Prepare { txn } => {
            body.put_u8(T_PREPARE);
            body.put_u64_le(*txn);
        }
        LogRecord::Clr { txn, compensates, action } => {
            body.put_u8(T_CLR);
            body.put_u64_le(*txn);
            body.put_u64_le(*compensates);
            match action {
                ClrAction::ReInsert { rid, bytes } => {
                    body.put_u8(A_REINSERT);
                    put_rid(&mut body, *rid);
                    put_bytes(&mut body, bytes);
                }
                ClrAction::Overwrite { rid, bytes } => {
                    body.put_u8(A_OVERWRITE);
                    put_rid(&mut body, *rid);
                    put_bytes(&mut body, bytes);
                }
                ClrAction::Remove { rid } => {
                    body.put_u8(A_REMOVE);
                    put_rid(&mut body, *rid);
                }
            }
        }
        LogRecord::Checkpoint => {
            body.put_u8(T_CHECKPOINT);
        }
        LogRecord::Pad => {
            body.put_u8(T_PAD);
        }
    }
    frame(&body)
}

fn decode(mut body: &[u8]) -> DbResult<LogRecord> {
    let buf = &mut body;
    if buf.remaining() < 1 {
        // A zero-length body is the minimal pad frame (a gap too small
        // to carry even a tag byte).
        return Ok(LogRecord::Pad);
    }
    let tag = buf.get_u8();
    let rec = match tag {
        T_BEGIN => LogRecord::Begin { txn: buf.get_u64_le() },
        T_INSERT => {
            let txn = buf.get_u64_le();
            let rid = get_rid(buf);
            let bytes = get_bytes(buf);
            LogRecord::Insert { txn, rid, bytes }
        }
        T_UPDATE => {
            let txn = buf.get_u64_le();
            let rid = get_rid(buf);
            let before = get_bytes(buf);
            let after = get_bytes(buf);
            LogRecord::Update { txn, rid, before, after }
        }
        T_DELETE => {
            let txn = buf.get_u64_le();
            let rid = get_rid(buf);
            let before = get_bytes(buf);
            LogRecord::Delete { txn, rid, before }
        }
        T_COMMIT => LogRecord::Commit { txn: buf.get_u64_le() },
        T_ABORT => LogRecord::Abort { txn: buf.get_u64_le() },
        T_PREPARE => LogRecord::Prepare { txn: buf.get_u64_le() },
        T_CLR => {
            let txn = buf.get_u64_le();
            let compensates = buf.get_u64_le();
            let atag = buf.get_u8();
            let action = match atag {
                A_REINSERT => {
                    let rid = get_rid(buf);
                    let bytes = get_bytes(buf);
                    ClrAction::ReInsert { rid, bytes }
                }
                A_OVERWRITE => {
                    let rid = get_rid(buf);
                    let bytes = get_bytes(buf);
                    ClrAction::Overwrite { rid, bytes }
                }
                A_REMOVE => ClrAction::Remove { rid: get_rid(buf) },
                other => return Err(DbError::Wal(format!("bad CLR action tag {other}"))),
            };
            LogRecord::Clr { txn, compensates, action }
        }
        T_CHECKPOINT => LogRecord::Checkpoint,
        T_PAD => LogRecord::Pad,
        other => return Err(DbError::Wal(format!("bad log record tag {other}"))),
    };
    Ok(rec)
}

#[derive(Debug, Default)]
struct WalInner {
    stable: Vec<u8>,
    tail: Vec<u8>,
    /// Length of the longest prefix of `stable` that ends exactly on a
    /// record-frame boundary. Equal to `stable.len()` except after a
    /// partial flush, whose cut may land mid-record. The write-ahead
    /// check ([`Wal::flush_to`]) compares against *this*, so a dirty
    /// page is never written while its log record is only half-stable.
    complete: usize,
}

impl WalInner {
    /// Advance `complete` over every whole frame now present.
    fn advance_complete(&mut self) {
        while self.complete + FRAME_HEADER <= self.stable.len() {
            let len = u32::from_le_bytes(
                self.stable[self.complete..self.complete + 4].try_into().unwrap(),
            ) as usize;
            if self.complete + FRAME_HEADER + len > self.stable.len() {
                break;
            }
            self.complete += FRAME_HEADER + len;
        }
    }
}

/// Cumulative WAL counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended to the log buffer.
    pub appends: u64,
    /// Forces of the log buffer to stable storage.
    pub flushes: u64,
    /// Bytes moved into the stable prefix by those flushes.
    pub flushed_bytes: u64,
    /// Torn tails truncated away when reading the stable log (ARIES
    /// end-of-log discipline after a crash mid-flush).
    pub torn_tail_truncations: u64,
    /// Durability barriers issued against the log device — real
    /// `fsync`s over a file backend, simulated ones otherwise.
    pub fsyncs: u64,
    /// Logical DML records appended (insert/update/delete and their
    /// compensations).
    pub logical_records: u64,
    /// Latency distribution of non-empty flushes.
    pub flush_latency: HistogramSnapshot,
    /// Committers amortized per group-commit flush (unitless counts;
    /// a mean near the committer count means one fsync covered them
    /// all).
    pub group_commit_batch_size: HistogramSnapshot,
}

/// Group-commit coordination: committers park here until a leader's
/// flush covers their commit record.
#[derive(Debug, Default)]
struct GroupState {
    /// Record-complete stable length known durable.
    durable: u64,
    /// Committers currently parked (including the leader).
    pending: usize,
    /// A leader is mid-flush; later arrivals wait instead of racing.
    leader_active: bool,
}

/// The write-ahead log.
#[derive(Debug, Default)]
pub struct Wal {
    inner: Mutex<WalInner>,
    /// The durable log device: `stable` is always an exact in-memory
    /// mirror of it. `None` (unit tests, [`Wal::new`]) keeps the mirror
    /// only — the simulated-durability mode the engine always had.
    backend: Option<Arc<dyn StorageBackend>>,
    faults: RwLock<Option<Arc<FaultInjector>>>,
    group: Mutex<GroupState>,
    group_cvar: Condvar,
    /// Group-commit window in microseconds: how long a leader lingers
    /// for followers before issuing the shared fsync. Zero = flush
    /// immediately (every commit pays its own barrier when alone).
    group_window_us: AtomicU64,
    appends: Counter,
    flushes: Counter,
    flushed_bytes: Counter,
    torn_truncations: Counter,
    fsyncs: Counter,
    logical_records: Counter,
    flush_latency: Histogram,
    batch_size: Histogram,
}

impl Wal {
    /// An empty log with no backing device (the stable prefix lives in
    /// memory only, durable across simulated crashes).
    pub fn new() -> Self {
        Wal::default()
    }

    /// A log over `backend`'s log device. The stable mirror is loaded
    /// from the device, so a reopened [`crate::backend::FileDisk`]
    /// resumes exactly where the last process left off.
    pub fn with_backend(backend: Arc<dyn StorageBackend>) -> DbResult<Self> {
        let stable = backend.log_read()?;
        let mut inner = WalInner { stable, tail: Vec::new(), complete: 0 };
        inner.advance_complete();
        Ok(Wal {
            inner: Mutex::new(inner),
            backend: Some(backend),
            ..Default::default()
        })
    }

    /// Set the group-commit window: how long a committing transaction
    /// elected leader waits for company before the shared fsync.
    pub fn set_group_commit_window(&self, window: Duration) {
        let us = window.as_micros().min(u64::MAX as u128) as u64;
        self.group_window_us.store(us, Ordering::Relaxed);
    }

    /// Write `bytes` through to the backing log device and fsync, when
    /// a device is attached. Called with the promoted bytes *before*
    /// the mirror advances, so the mirror never claims stability the
    /// device doesn't have.
    fn device_append(&self, bytes: &[u8]) -> DbResult<()> {
        if let Some(backend) = &self.backend {
            backend.log_append(bytes)?;
            backend.log_sync()?;
        }
        Ok(())
    }

    /// Install (or with `None`, remove) a fault injector consulted on
    /// every flush.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.faults.write() = injector;
    }

    /// Append a record to the log buffer; returns its LSN.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let framed = encode(rec);
        let mut inner = self.inner.lock();
        let lsn = Lsn((inner.stable.len() + inner.tail.len()) as u64);
        inner.tail.extend_from_slice(&framed);
        self.appends.inc();
        if matches!(
            rec,
            LogRecord::Insert { .. }
                | LogRecord::Update { .. }
                | LogRecord::Delete { .. }
                | LogRecord::Clr { .. }
        ) {
            self.logical_records.inc();
        }
        lsn
    }

    /// Force the log buffer to stable storage. The flush — the simulated
    /// fsync — is timed; an already-empty tail is a free no-op and is
    /// neither counted nor timed. An injected [`FaultKind::PartialFlush`]
    /// promotes only part of the tail and fails; the rest stays buffered
    /// for the next flush (or is lost to a crash — the torn-tail case).
    pub fn flush(&self) -> DbResult<()> {
        let span = SpanTimer::starting_at(Instant::now());
        let moved = {
            let mut inner = self.inner.lock();
            if inner.tail.is_empty() {
                return Ok(());
            }
            let shot = self.faults.read().as_ref().and_then(|f| f.fire(FaultSite::WalFlush));
            if let Some(shot) = shot {
                if shot.kind == FaultKind::PartialFlush && inner.tail.len() >= 2 {
                    let total = inner.tail.len();
                    let cut = 1 + (shot.entropy % (total as u64 - 1)) as usize;
                    let promoted: Vec<u8> = inner.tail.drain(..cut).collect();
                    if let Err(e) = self.device_append(&promoted) {
                        // Nothing durable: the cut goes back to the
                        // front of the tail for the next attempt.
                        let rest = std::mem::take(&mut inner.tail);
                        let mut tail = promoted;
                        tail.extend_from_slice(&rest);
                        inner.tail = tail;
                        return Err(e);
                    }
                    self.fsyncs.inc();
                    inner.stable.extend_from_slice(&promoted);
                    inner.advance_complete();
                    return Err(DbError::Storage(format!(
                        "injected partial WAL flush: {cut} of {total} tail bytes promoted"
                    )));
                }
            }
            let tail = std::mem::take(&mut inner.tail);
            if let Err(e) = self.device_append(&tail) {
                inner.tail = tail;
                return Err(e);
            }
            self.fsyncs.inc();
            inner.stable.extend_from_slice(&tail);
            inner.advance_complete();
            tail.len() as u64
        };
        if moved > 0 {
            self.flushes.inc();
            self.flushed_bytes.add(moved);
            span.record(Instant::now(), &self.flush_latency);
        }
        Ok(())
    }

    /// Group commit: force the log through this committer's records
    /// with one shared fsync when committers overlap.
    ///
    /// The first arrival becomes the *leader*: it lingers for the
    /// configured window (so followers can append their commit records
    /// and park), then issues a single flush whose barrier covers every
    /// parked committer. Followers whose records the leader made
    /// durable return without touching the device at all. A leader
    /// whose flush fails returns that error to its own caller — the
    /// in-doubt-commit contract is per-transaction — and the next
    /// parked committer takes over as leader, healing the partial
    /// flush.
    pub fn commit_flush(&self) -> DbResult<()> {
        let target = self.total_len();
        let mut g = self.group.lock();
        g.pending += 1;
        loop {
            if g.durable >= target {
                g.pending -= 1;
                return Ok(());
            }
            if !g.leader_active {
                g.leader_active = true;
                let window = self.group_window_us.load(Ordering::Relaxed);
                if window > 0 {
                    // Unlocks while waiting, so followers can enqueue
                    // behind this flush. Spurious wakes only shorten
                    // the window — harmless.
                    self.group_cvar.wait_for(&mut g, Duration::from_micros(window));
                }
                let batch = g.pending as u64;
                drop(g);
                let result = self.flush();
                let complete = self.inner.lock().complete as u64;
                let mut g = self.group.lock();
                g.durable = g.durable.max(complete);
                g.leader_active = false;
                g.pending -= 1;
                if result.is_ok() {
                    self.batch_size.observe_micros(batch);
                }
                self.group_cvar.notify_all();
                return result;
            }
            self.group_cvar.wait(&mut g);
        }
    }

    /// Snapshot the WAL counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.get(),
            flushes: self.flushes.get(),
            flushed_bytes: self.flushed_bytes.get(),
            torn_tail_truncations: self.torn_truncations.get(),
            fsyncs: self.fsyncs.get(),
            logical_records: self.logical_records.get(),
            flush_latency: self.flush_latency.snapshot(),
            group_commit_batch_size: self.batch_size.snapshot(),
        }
    }

    /// Reset the WAL counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.appends.reset();
        self.flushes.reset();
        self.flushed_bytes.reset();
        self.torn_truncations.reset();
        self.fsyncs.reset();
        self.logical_records.reset();
        self.flush_latency.reset();
        self.batch_size.reset();
    }

    /// Force the log up to (and including) `lsn` — the write-ahead rule
    /// invoked by the buffer pool before writing a dirty page. The tail
    /// is flushed wholesale when `lsn` is not yet *fully* stable (a
    /// partially flushed record does not count as stable).
    pub fn flush_to(&self, lsn: Lsn) -> DbResult<()> {
        let needs = {
            let inner = self.inner.lock();
            lsn.0 >= inner.complete as u64
        };
        if needs {
            self.flush()
        } else {
            Ok(())
        }
    }

    /// Byte length of the stable prefix.
    pub fn stable_len(&self) -> u64 {
        self.inner.lock().stable.len() as u64
    }

    /// Total log length including the unforced tail.
    pub fn total_len(&self) -> u64 {
        let inner = self.inner.lock();
        (inner.stable.len() + inner.tail.len()) as u64
    }

    /// Simulate a crash: the unforced tail is lost.
    pub fn crash(&self) {
        self.inner.lock().tail.clear();
    }

    /// Read every record in the *stable* prefix, with its LSN.
    ///
    /// ARIES tail discipline: a torn or CRC-invalid record with nothing
    /// valid after it is end-of-log — the dead bytes are truncated and
    /// replaced by a [`LogRecord::Pad`] (keeping LSNs monotone), and the
    /// truncation is counted in [`WalStats::torn_tail_truncations`]. A
    /// corrupt record *followed by* a valid one means the log interior
    /// is damaged — committed history may be gone — and is a hard
    /// [`DbError::Corruption`].
    pub fn stable_records(&self) -> DbResult<Vec<(Lsn, LogRecord)>> {
        let mut inner = self.inner.lock();
        let mut out = Vec::new();
        let mut at = 0usize;
        loop {
            let stable = &inner.stable;
            if at == stable.len() {
                break;
            }
            match parse_frame(stable, at) {
                Ok(Some((rec, next))) => {
                    out.push((Lsn(at as u64), rec));
                    at = next;
                }
                Ok(None) => {
                    // Damaged record. Tail or interior? Framing past it
                    // (when the length field is intact) tells us.
                    if valid_record_after(stable, at) {
                        return Err(DbError::Corruption(format!(
                            "WAL record at offset {at} is corrupt but later records are \
                             intact: log interior damaged"
                        )));
                    }
                    self.truncate_torn_tail(&mut inner, at)?;
                    // Loop continues: the next parse reads the pad.
                }
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Replace `stable[at..]` with a pad record spanning (at least) the
    /// same bytes, so truncation never shrinks the LSN space. The
    /// repair writes through to the log device (truncate, pad, sync),
    /// so a re-crash replays against the already-spliced log.
    fn truncate_torn_tail(&self, inner: &mut WalInner, at: usize) -> DbResult<()> {
        let gap = inner.stable.len() - at;
        let body_len = gap.saturating_sub(FRAME_HEADER);
        let mut body = Vec::with_capacity(body_len);
        if body_len > 0 {
            body.push(T_PAD);
            body.resize(body_len, 0);
        }
        let framed = frame(&body);
        if let Some(backend) = &self.backend {
            backend.log_truncate(at as u64)?;
            backend.log_append(&framed)?;
            backend.log_sync()?;
        }
        inner.stable.truncate(at);
        inner.stable.extend_from_slice(&framed);
        inner.complete = inner.stable.len();
        self.torn_truncations.inc();
        Ok(())
    }
}

/// Parse the frame at `at`. `Ok(Some((record, next_offset)))` on
/// success; `Ok(None)` when the frame is torn or fails its CRC or
/// decode; `Err` only for internal inconsistencies.
fn parse_frame(stable: &[u8], at: usize) -> DbResult<Option<(LogRecord, usize)>> {
    if at + FRAME_HEADER > stable.len() {
        return Ok(None); // torn frame header
    }
    let len = u32::from_le_bytes(stable[at..at + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(stable[at + 4..at + 8].try_into().unwrap());
    let body_start = at + FRAME_HEADER;
    if body_start + len > stable.len() {
        return Ok(None); // torn body
    }
    let body = &stable[body_start..body_start + len];
    if crc32(body) != crc {
        return Ok(None);
    }
    match decode(body) {
        Ok(rec) => Ok(Some((rec, body_start + len))),
        Err(_) => Ok(None), // CRC passed but body malformed: treat as damage
    }
}

/// Is there any fully valid record after the damaged frame at `at`?
/// Walks frame lengths as long as they are intact; the first valid CRC +
/// decode proves the damage is interior, not a torn tail.
fn valid_record_after(stable: &[u8], at: usize) -> bool {
    let mut cursor = at;
    while cursor + FRAME_HEADER <= stable.len() {
        let len =
            u32::from_le_bytes(stable[cursor..cursor + 4].try_into().unwrap()) as usize;
        let next = cursor + FRAME_HEADER + len;
        if next > stable.len() {
            return false; // ran off the end: everything from `at` is tail
        }
        if cursor > at {
            if let Ok(Some(_)) = parse_frame(stable, cursor) {
                return true;
            }
        }
        cursor = next;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::PageId;
    use crate::fault::FaultPlan;

    fn rid(p: u32, s: u16) -> Rid {
        Rid { page: PageId(p), slot: s }
    }

    #[test]
    fn encode_decode_all_variants() {
        let records = vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::Insert { txn: 1, rid: rid(2, 3), bytes: b"abc".to_vec() },
            LogRecord::Update {
                txn: 1,
                rid: rid(2, 3),
                before: b"abc".to_vec(),
                after: b"defg".to_vec(),
            },
            LogRecord::Delete { txn: 1, rid: rid(2, 3), before: b"defg".to_vec() },
            LogRecord::Clr {
                txn: 1,
                compensates: 99,
                action: ClrAction::ReInsert { rid: rid(2, 3), bytes: b"x".to_vec() },
            },
            LogRecord::Clr {
                txn: 1,
                compensates: 100,
                action: ClrAction::Overwrite { rid: rid(2, 3), bytes: b"y".to_vec() },
            },
            LogRecord::Clr { txn: 1, compensates: 101, action: ClrAction::Remove { rid: rid(2, 3) } },
            LogRecord::Commit { txn: 1 },
            LogRecord::Abort { txn: 2 },
            LogRecord::Prepare { txn: 3 },
            LogRecord::Checkpoint,
            LogRecord::Pad,
        ];
        let wal = Wal::new();
        let lsns: Vec<Lsn> = records.iter().map(|r| wal.append(r)).collect();
        assert!(lsns.windows(2).all(|w| w[0] < w[1]), "LSNs are monotone");
        wal.flush().unwrap();
        let read: Vec<LogRecord> =
            wal.stable_records().unwrap().into_iter().map(|(_, r)| r).collect();
        assert_eq!(read, records);
    }

    #[test]
    fn crash_loses_unflushed_tail_only() {
        let wal = Wal::new();
        wal.append(&LogRecord::Begin { txn: 1 });
        wal.flush().unwrap();
        wal.append(&LogRecord::Commit { txn: 1 });
        wal.crash();
        let recs = wal.stable_records().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, LogRecord::Begin { txn: 1 });
    }

    #[test]
    fn flush_to_honors_write_ahead_rule() {
        let wal = Wal::new();
        let l1 = wal.append(&LogRecord::Begin { txn: 1 });
        wal.flush().unwrap();
        let l2 = wal.append(&LogRecord::Commit { txn: 1 });
        // l1 already stable: no-op.
        wal.flush_to(l1).unwrap();
        assert_eq!(wal.stable_records().unwrap().len(), 1);
        // l2 in the tail: flushes.
        wal.flush_to(l2).unwrap();
        assert_eq!(wal.stable_records().unwrap().len(), 2);
    }

    #[test]
    fn txn_accessor() {
        assert_eq!(LogRecord::Begin { txn: 7 }.txn(), Some(7));
        assert_eq!(LogRecord::Checkpoint.txn(), None);
        assert_eq!(LogRecord::Pad.txn(), None);
    }

    #[test]
    fn stats_count_appends_and_nonempty_flushes() {
        let wal = Wal::new();
        wal.flush().unwrap(); // empty: not counted
        assert_eq!(wal.stats().flushes, 0);
        wal.append(&LogRecord::Begin { txn: 1 });
        wal.append(&LogRecord::Commit { txn: 1 });
        wal.flush().unwrap();
        wal.flush().unwrap(); // empty again: not counted
        let s = wal.stats();
        assert_eq!(s.appends, 2);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.flushed_bytes, wal.stable_len());
        assert_eq!(s.flush_latency.count, 1);
        wal.reset_stats();
        assert_eq!(wal.stats(), WalStats::default());
    }

    /// Force a partial flush cutting inside the last record, then crash.
    fn torn_wal() -> (Wal, Lsn) {
        let wal = Wal::new();
        wal.append(&LogRecord::Begin { txn: 1 });
        wal.flush().unwrap();
        let commit_lsn = wal.append(&LogRecord::Commit { txn: 1 });
        let inj =
            Arc::new(FaultInjector::new(FaultPlan::new(11).fail_nth(FaultKind::PartialFlush, 1)));
        wal.set_fault_injector(Some(inj));
        assert!(wal.flush().is_err(), "partial flush reports failure");
        wal.set_fault_injector(None);
        wal.crash();
        (wal, commit_lsn)
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let (wal, commit_lsn) = torn_wal();
        let recs = wal.stable_records().unwrap();
        // The half-flushed commit record is gone; a pad fills its bytes.
        assert_eq!(recs[0].1, LogRecord::Begin { txn: 1 });
        assert!(
            recs[1..].iter().all(|(_, r)| *r == LogRecord::Pad),
            "only padding after the survivor: {recs:?}"
        );
        assert_eq!(wal.stats().torn_tail_truncations, 1);
        // LSN monotonicity: the next append lands at or after the dead
        // commit record's offset, never inside the truncated range.
        let next = wal.append(&LogRecord::Begin { txn: 2 });
        assert!(next >= commit_lsn, "LSNs never reuse truncated offsets");
        // Truncation is sticky: a second read reports the same log.
        let again = wal.stable_records().unwrap();
        assert_eq!(again.len(), recs.len());
    }

    #[test]
    fn partial_flush_heals_on_next_flush() {
        let wal = Wal::new();
        wal.append(&LogRecord::Begin { txn: 1 });
        let commit = wal.append(&LogRecord::Commit { txn: 1 });
        let inj =
            Arc::new(FaultInjector::new(FaultPlan::new(3).fail_nth(FaultKind::PartialFlush, 1)));
        wal.set_fault_injector(Some(Arc::clone(&inj)));
        assert!(wal.flush().is_err());
        assert_eq!(inj.stats().partial_flushes, 1);
        // No crash: the rest of the tail is still buffered, and the next
        // flush completes the record.
        wal.flush().unwrap();
        let recs = wal.stable_records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].0, commit);
        assert_eq!(recs[1].1, LogRecord::Commit { txn: 1 });
    }

    #[test]
    fn flush_to_does_not_trust_half_stable_records() {
        let wal = Wal::new();
        let begin = wal.append(&LogRecord::Begin { txn: 1 });
        let inj =
            Arc::new(FaultInjector::new(FaultPlan::new(9).fail_nth(FaultKind::PartialFlush, 1)));
        wal.set_fault_injector(Some(inj));
        assert!(wal.flush().is_err());
        wal.set_fault_injector(None);
        assert!(wal.stable_len() > 0, "a prefix was promoted");
        // `begin` has bytes in `stable` but is not record-complete, so
        // the write-ahead hook must flush (and thereby complete it).
        wal.flush_to(begin).unwrap();
        let recs = wal.stable_records().unwrap();
        assert_eq!(recs, vec![(begin, LogRecord::Begin { txn: 1 })]);
    }

    #[test]
    fn group_commit_amortizes_flushes_over_committers() {
        let wal = Arc::new(Wal::new());
        wal.set_group_commit_window(Duration::from_micros(2_000));
        let n = 8usize;
        let barrier = Arc::new(std::sync::Barrier::new(n));
        std::thread::scope(|s| {
            for t in 0..n {
                let wal = Arc::clone(&wal);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    wal.append(&LogRecord::Commit { txn: t as u64 });
                    barrier.wait();
                    wal.commit_flush().unwrap();
                });
            }
        });
        let s = wal.stats();
        // All records were in the buffer before any committer parked,
        // so one leader's flush covers every one of them.
        assert_eq!(s.flushes, 1, "one fsync amortized over {n} committers");
        assert_eq!(s.fsyncs, 1);
        assert!(s.group_commit_batch_size.count >= 1);
        assert_eq!(wal.stable_records().unwrap().len(), n);
    }

    #[test]
    fn commit_flush_alone_behaves_like_flush() {
        let wal = Wal::new();
        wal.append(&LogRecord::Begin { txn: 1 });
        wal.append(&LogRecord::Commit { txn: 1 });
        wal.commit_flush().unwrap();
        assert_eq!(wal.stats().flushes, 1);
        assert_eq!(wal.stable_records().unwrap().len(), 2);
        // Already durable: a second commit_flush is a free no-op.
        wal.commit_flush().unwrap();
        assert_eq!(wal.stats().flushes, 1);
    }

    #[test]
    fn backend_log_mirrors_and_reloads() {
        let disk: Arc<dyn StorageBackend> = Arc::new(crate::disk::SimDisk::new());
        let wal = Wal::with_backend(Arc::clone(&disk)).unwrap();
        wal.append(&LogRecord::Begin { txn: 1 });
        wal.append(&LogRecord::Commit { txn: 1 });
        wal.flush().unwrap();
        wal.append(&LogRecord::Begin { txn: 2 }); // unflushed: not on device
        assert_eq!(disk.log_len().unwrap(), wal.stable_len());
        // A second Wal over the same device resumes the stable prefix.
        let wal2 = Wal::with_backend(Arc::clone(&disk)).unwrap();
        let recs = wal2.stable_records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].1, LogRecord::Commit { txn: 1 });
    }

    #[test]
    fn torn_tail_truncation_writes_through_to_device() {
        let disk: Arc<dyn StorageBackend> = Arc::new(crate::disk::SimDisk::new());
        let wal = Wal::with_backend(Arc::clone(&disk)).unwrap();
        wal.append(&LogRecord::Begin { txn: 1 });
        wal.flush().unwrap();
        wal.append(&LogRecord::Commit { txn: 1 });
        let inj =
            Arc::new(FaultInjector::new(FaultPlan::new(11).fail_nth(FaultKind::PartialFlush, 1)));
        wal.set_fault_injector(Some(inj));
        assert!(wal.flush().is_err(), "partial flush reports failure");
        wal.set_fault_injector(None);
        wal.crash();
        let recs = wal.stable_records().unwrap(); // truncates + pads, written through
        assert_eq!(wal.stats().torn_tail_truncations, 1);
        // The device holds the spliced log: a reopened Wal sees the
        // identical record stream with no repair left to do.
        let wal2 = Wal::with_backend(Arc::clone(&disk)).unwrap();
        assert_eq!(wal2.stable_records().unwrap(), recs);
        assert_eq!(wal2.stats().torn_tail_truncations, 0, "splice already durable");
    }

    #[test]
    fn interior_corruption_is_a_hard_error() {
        let wal = Wal::new();
        wal.append(&LogRecord::Begin { txn: 1 });
        wal.append(&LogRecord::Commit { txn: 1 });
        wal.append(&LogRecord::Checkpoint);
        wal.flush().unwrap();
        // Flip a byte inside the *first* record's body: framing stays
        // intact, so the later records are still reachable and valid.
        {
            let mut inner = wal.inner.lock();
            inner.stable[FRAME_HEADER + 2] ^= 0xFF;
        }
        let err = wal.stable_records().unwrap_err();
        assert!(
            matches!(err, DbError::Corruption(_)),
            "corruption before the end of the log is unrecoverable: {err:?}"
        );
    }
}
