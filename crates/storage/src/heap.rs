//! Heap-file bookkeeping: record ids, free-space tracking, and placement
//! hints for composite-object clustering (§4.2).

use crate::disk::PageId;
use std::collections::BTreeMap;

/// A record id: physical address of a stored record. The object
//  directory maps logical OIDs to these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid {
    /// The page holding the record.
    pub page: PageId,
    /// The slot within the page.
    pub slot: u16,
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.page, self.slot)
    }
}

/// In-memory free-space map over the heap's pages.
///
/// Rebuilt on database open (and after recovery) by scanning pages; it is
/// advisory — the slotted page is the truth, and a stale entry only costs
/// a failed placement attempt.
#[derive(Debug, Default)]
pub struct HeapFile {
    /// Free bytes per page.
    free: BTreeMap<PageId, usize>,
}

impl HeapFile {
    /// An empty heap.
    pub fn new() -> Self {
        HeapFile::default()
    }

    /// Register (or refresh) a page's free-space estimate.
    pub fn note_free(&mut self, page: PageId, free: usize) {
        self.free.insert(page, free);
    }

    /// Forget a page (never called in practice; pages are not reclaimed).
    pub fn forget(&mut self, page: PageId) {
        self.free.remove(&page);
    }

    /// All pages known to the heap, in id order.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.free.keys().copied()
    }

    /// Number of pages in the heap.
    pub fn page_count(&self) -> usize {
        self.free.len()
    }

    /// Pick a page with at least `need` free bytes.
    ///
    /// With a `hint`, the hinted page is tried first — this is the
    /// clustering mechanism: composite-object inserts hint the parent's
    /// page so parts co-reside with their root (experiment E10). Without
    /// a hint (or if the hint is full) the first page with room wins;
    /// `None` means the caller must allocate a new page.
    pub fn pick_page(&self, need: usize, hint: Option<PageId>) -> Option<PageId> {
        if let Some(h) = hint {
            if self.free.get(&h).is_some_and(|&f| f >= need) {
                return Some(h);
            }
        }
        self.free.iter().find(|(_, &f)| f >= need).map(|(&p, _)| p)
    }

    /// Free bytes recorded for `page`.
    pub fn free_on(&self, page: PageId) -> Option<usize> {
        self.free.get(&page).copied()
    }

    /// Drop all entries (before a rebuild).
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_prefers_hint_when_it_fits() {
        let mut heap = HeapFile::new();
        heap.note_free(PageId(0), 100);
        heap.note_free(PageId(5), 500);
        assert_eq!(heap.pick_page(50, Some(PageId(5))), Some(PageId(5)));
        // Hint too full: falls back to first fitting page.
        assert_eq!(heap.pick_page(200, Some(PageId(0))), Some(PageId(5)));
        // Nothing fits.
        assert_eq!(heap.pick_page(1000, None), None);
    }

    #[test]
    fn note_free_updates() {
        let mut heap = HeapFile::new();
        heap.note_free(PageId(1), 10);
        heap.note_free(PageId(1), 400);
        assert_eq!(heap.free_on(PageId(1)), Some(400));
        assert_eq!(heap.page_count(), 1);
        heap.forget(PageId(1));
        assert_eq!(heap.free_on(PageId(1)), None);
    }

    #[test]
    fn pages_iterate_in_order() {
        let mut heap = HeapFile::new();
        heap.note_free(PageId(3), 1);
        heap.note_free(PageId(1), 1);
        heap.note_free(PageId(2), 1);
        let order: Vec<u32> = heap.pages().map(|p| p.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }
}
