//! A simulated page-addressed disk with I/O accounting, per-page
//! checksums, and a fault-injection hook.
//!
//! Every write stamps a CRC-32 of the page into a sidecar slot (the
//! moral equivalent of a real drive's per-sector ECC); every read
//! verifies it and reports a mismatch as
//! [`DbError::Corruption`] — which is how injected torn writes and bit
//! rot become *detectable* instead of silently wrong data.

use crate::fault::{crc32, FaultInjector, FaultKind, FaultSite};
use orion_types::{DbError, DbResult};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Size of every disk page, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a disk page (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Cumulative I/O counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    /// Pages read from the disk.
    pub reads: u64,
    /// Pages written to the disk.
    pub writes: u64,
    /// Pages allocated.
    pub allocations: u64,
}

struct PageState {
    data: Box<[u8; PAGE_SIZE]>,
    /// CRC-32 of `data` as of the last *completed* write. A torn write
    /// leaves it stale on purpose — the interrupted write never got to
    /// update the checksum — so the next read detects the damage.
    crc: u32,
}

/// The simulated durable medium.
///
/// Contents survive "crashes" (which only discard buffer-pool frames and
/// the WAL tail); they are the ground truth recovery works against.
pub struct SimDisk {
    pages: Mutex<Vec<PageState>>,
    /// The simulated log device: an append-only byte store the WAL
    /// writes its stable frames through (see `crate::backend`).
    log: Mutex<Vec<u8>>,
    faults: RwLock<Option<Arc<FaultInjector>>>,
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
}

impl SimDisk {
    /// An empty disk.
    pub fn new() -> Self {
        SimDisk {
            pages: Mutex::new(Vec::new()),
            log: Mutex::new(Vec::new()),
            faults: RwLock::new(None),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
        }
    }

    /// Install (or with `None`, remove) a fault injector consulted on
    /// every read and write.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.faults.write() = injector;
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&self) -> PageId {
        let mut pages = self.pages.lock();
        let id = PageId(pages.len() as u32);
        let data = Box::new([0u8; PAGE_SIZE]);
        let crc = crc32(&data[..]);
        pages.push(PageState { data, crc });
        self.allocations.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    /// Read a page into `buf`. Verifies the page checksum; a mismatch
    /// (torn write, bit rot) is reported as [`DbError::Corruption`] and
    /// `buf` is left untouched.
    pub fn read(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> DbResult<()> {
        let shot = self.faults.read().as_ref().and_then(|f| f.fire(FaultSite::DiskRead));
        let mut pages = self.pages.lock();
        let page = pages
            .get_mut(id.0 as usize)
            .ok_or_else(|| DbError::Storage(format!("read of unallocated page {id}")))?;
        match shot.map(|s| (s.kind, s.entropy)) {
            Some((FaultKind::ReadError, _)) => {
                return Err(DbError::Storage(format!("injected I/O error reading page {id}")));
            }
            Some((FaultKind::BitFlip, entropy)) => {
                // Persistent bit rot: the stored page is damaged, not
                // just this read's copy.
                let bit = (entropy % (PAGE_SIZE as u64 * 8)) as usize;
                page.data[bit / 8] ^= 1 << (bit % 8);
            }
            _ => {}
        }
        if crc32(&page.data[..]) != page.crc {
            return Err(DbError::Corruption(format!("checksum mismatch reading page {id}")));
        }
        buf.copy_from_slice(&page.data[..]);
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Write `buf` to a page, updating its checksum on completion.
    pub fn write(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        let shot = self.faults.read().as_ref().and_then(|f| f.fire(FaultSite::DiskWrite));
        let mut pages = self.pages.lock();
        let page = pages
            .get_mut(id.0 as usize)
            .ok_or_else(|| DbError::Storage(format!("write of unallocated page {id}")))?;
        match shot.map(|s| (s.kind, s.entropy)) {
            Some((FaultKind::WriteError, _)) => {
                return Err(DbError::Storage(format!("injected I/O error writing page {id}")));
            }
            Some((FaultKind::TornWrite, entropy)) => {
                // Persist a prefix, fail, and leave the checksum stale —
                // the next read of this page reports Corruption.
                let prefix = 1 + (entropy % (PAGE_SIZE as u64 - 1)) as usize;
                page.data[..prefix].copy_from_slice(&buf[..prefix]);
                return Err(DbError::Storage(format!(
                    "injected torn write on page {id}: {prefix} of {PAGE_SIZE} bytes persisted"
                )));
            }
            _ => {}
        }
        page.data.copy_from_slice(buf);
        page.crc = crc32(buf);
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Is the stored page internally consistent (checksum matches)?
    /// Never consults the fault injector — this is recovery's damage
    /// probe, not an I/O path.
    pub fn verify(&self, id: PageId) -> DbResult<bool> {
        let pages = self.pages.lock();
        let page = pages
            .get(id.0 as usize)
            .ok_or_else(|| DbError::Storage(format!("verify of unallocated page {id}")))?;
        Ok(crc32(&page.data[..]) == page.crc)
    }

    /// Snapshot the I/O counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
        }
    }

    /// Reset the I/O counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
    }

    // -- log device (see `crate::backend::StorageBackend`) -----------

    /// Append bytes to the simulated log device.
    pub(crate) fn log_append(&self, bytes: &[u8]) {
        self.log.lock().extend_from_slice(bytes);
    }

    /// Byte length of the simulated log device.
    pub(crate) fn log_len(&self) -> u64 {
        self.log.lock().len() as u64
    }

    /// The entire simulated log device.
    pub(crate) fn log_read(&self) -> Vec<u8> {
        self.log.lock().clone()
    }

    /// Truncate the simulated log device to `len` bytes.
    pub(crate) fn log_truncate(&self, len: u64) {
        self.log.lock().truncate(len as usize);
    }
}

impl std::fmt::Debug for SimDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDisk")
            .field("pages", &self.page_count())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for SimDisk {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn allocate_read_write_roundtrip() {
        let disk = SimDisk::new();
        let a = disk.allocate();
        let b = disk.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        disk.write(b, &buf).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read(b, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);
        // Page `a` is still zeroed.
        disk.read(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn out_of_bounds_access_is_an_error() {
        let disk = SimDisk::new();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(disk.read(PageId(0), &mut buf).is_err());
        assert!(disk.write(PageId(3), &buf).is_err());
    }

    #[test]
    fn stats_count_operations() {
        let disk = SimDisk::new();
        let p = disk.allocate();
        let buf = [0u8; PAGE_SIZE];
        disk.write(p, &buf).unwrap();
        disk.write(p, &buf).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read(p, &mut out).unwrap();
        assert_eq!(disk.stats(), DiskStats { reads: 1, writes: 2, allocations: 1 });
        disk.reset_stats();
        assert_eq!(disk.stats(), DiskStats::default());
    }

    #[test]
    fn injected_read_error_is_clean_and_transient() {
        let disk = SimDisk::new();
        let p = disk.allocate();
        let mut buf = [7u8; PAGE_SIZE];
        disk.write(p, &buf).unwrap();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(1).fail_nth(FaultKind::ReadError, 1)));
        disk.set_fault_injector(Some(Arc::clone(&inj)));
        let err = disk.read(p, &mut buf).unwrap_err();
        assert!(matches!(err, DbError::Storage(_)), "clean I/O error, got {err:?}");
        // The fault was one-shot; the page itself is unharmed.
        disk.read(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 7));
        assert_eq!(inj.stats().read_errors, 1);
    }

    #[test]
    fn bit_flip_is_reported_as_corruption() {
        let disk = SimDisk::new();
        let p = disk.allocate();
        disk.write(p, &[9u8; PAGE_SIZE]).unwrap();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(42).fail_nth(FaultKind::BitFlip, 1)));
        disk.set_fault_injector(Some(inj));
        let mut buf = [0u8; PAGE_SIZE];
        let err = disk.read(p, &mut buf).unwrap_err();
        assert!(matches!(err, DbError::Corruption(_)), "bit rot must surface as Corruption");
        // The rot is persistent: later (fault-free) reads still see it.
        disk.set_fault_injector(None);
        assert!(matches!(disk.read(p, &mut buf), Err(DbError::Corruption(_))));
        assert!(!disk.verify(p).unwrap());
    }

    #[test]
    fn torn_write_persists_prefix_and_corrupts_page() {
        let disk = SimDisk::new();
        let p = disk.allocate();
        disk.write(p, &[1u8; PAGE_SIZE]).unwrap();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(5).fail_nth(FaultKind::TornWrite, 1)));
        disk.set_fault_injector(Some(inj));
        let err = disk.write(p, &[2u8; PAGE_SIZE]).unwrap_err();
        assert!(matches!(err, DbError::Storage(_)));
        disk.set_fault_injector(None);
        let mut buf = [0u8; PAGE_SIZE];
        assert!(
            matches!(disk.read(p, &mut buf), Err(DbError::Corruption(_))),
            "half-old half-new page fails its checksum"
        );
        // A completed rewrite heals the page.
        disk.write(p, &[3u8; PAGE_SIZE]).unwrap();
        disk.read(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 3));
    }

    #[test]
    fn injected_write_error_leaves_page_intact() {
        let disk = SimDisk::new();
        let p = disk.allocate();
        disk.write(p, &[4u8; PAGE_SIZE]).unwrap();
        let inj =
            Arc::new(FaultInjector::new(FaultPlan::new(2).fail_nth(FaultKind::WriteError, 1)));
        disk.set_fault_injector(Some(inj));
        assert!(disk.write(p, &[5u8; PAGE_SIZE]).is_err());
        disk.set_fault_injector(None);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 4), "failed write touched nothing");
    }
}
