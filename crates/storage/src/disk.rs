//! A simulated page-addressed disk with I/O accounting.

use orion_types::{DbError, DbResult};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Size of every disk page, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a disk page (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Cumulative I/O counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    /// Pages read from the disk.
    pub reads: u64,
    /// Pages written to the disk.
    pub writes: u64,
    /// Pages allocated.
    pub allocations: u64,
}

/// The simulated durable medium.
///
/// Contents survive "crashes" (which only discard buffer-pool frames and
/// the WAL tail); they are the ground truth recovery works against.
#[derive(Debug)]
pub struct SimDisk {
    pages: Mutex<Vec<Box<[u8; PAGE_SIZE]>>>,
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
}

impl SimDisk {
    /// An empty disk.
    pub fn new() -> Self {
        SimDisk {
            pages: Mutex::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
        }
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&self) -> PageId {
        let mut pages = self.pages.lock();
        let id = PageId(pages.len() as u32);
        pages.push(Box::new([0u8; PAGE_SIZE]));
        self.allocations.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    /// Read a page into `buf`.
    pub fn read(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> DbResult<()> {
        let pages = self.pages.lock();
        let page = pages
            .get(id.0 as usize)
            .ok_or_else(|| DbError::Storage(format!("read of unallocated page {id}")))?;
        buf.copy_from_slice(&page[..]);
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Write `buf` to a page.
    pub fn write(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        let mut pages = self.pages.lock();
        let page = pages
            .get_mut(id.0 as usize)
            .ok_or_else(|| DbError::Storage(format!("write of unallocated page {id}")))?;
        page.copy_from_slice(buf);
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Snapshot the I/O counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
        }
    }

    /// Reset the I/O counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
    }
}

impl Default for SimDisk {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let disk = SimDisk::new();
        let a = disk.allocate();
        let b = disk.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        disk.write(b, &buf).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read(b, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);
        // Page `a` is still zeroed.
        disk.read(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn out_of_bounds_access_is_an_error() {
        let disk = SimDisk::new();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(disk.read(PageId(0), &mut buf).is_err());
        assert!(disk.write(PageId(3), &buf).is_err());
    }

    #[test]
    fn stats_count_operations() {
        let disk = SimDisk::new();
        let p = disk.allocate();
        let buf = [0u8; PAGE_SIZE];
        disk.write(p, &buf).unwrap();
        disk.write(p, &buf).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read(p, &mut out).unwrap();
        assert_eq!(disk.stats(), DiskStats { reads: 1, writes: 2, allocations: 1 });
        disk.reset_stats();
        assert_eq!(disk.stats(), DiskStats::default());
    }
}
