//! Deterministic fault injection for the storage layer.
//!
//! The paper's §3.1 makes "recovery from system crashes" a
//! non-negotiable conventional-DB feature; proving it means exercising
//! recovery against the failures real media produce, not just clean
//! crashes. A [`FaultPlan`] scripts *when* faults fire (fail-nth,
//! every-nth, probabilistic — all driven by one seed, so a failing chaos
//! run replays exactly); the [`FaultInjector`] built from it is shared
//! by [`SimDisk`](crate::SimDisk) and [`Wal`](crate::Wal), which consult
//! it on every read, write, and flush:
//!
//! * [`FaultKind::ReadError`] / [`FaultKind::WriteError`] — the I/O call
//!   fails cleanly, touching nothing.
//! * [`FaultKind::TornWrite`] — a page write persists only a prefix and
//!   then fails, leaving the on-disk page checksum stale (detected as
//!   [`DbError::Corruption`](orion_types::DbError::Corruption) on the
//!   next read, repaired by recovery).
//! * [`FaultKind::BitFlip`] — bit rot: one stored bit flips during a
//!   read; the page checksum catches it.
//! * [`FaultKind::PartialFlush`] — a lying fsync: only part of the WAL
//!   tail reaches the stable prefix and the flush reports failure. A
//!   crash before the next successful flush leaves a torn log tail,
//!   which recovery truncates (ARIES tail discipline).
//!
//! Every fired fault is counted; [`FaultInjector::stats`] feeds the
//! `orion_fault_*` Prometheus series.

use orion_obs::Counter;
use parking_lot::Mutex;

/// Where in the storage layer a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// [`SimDisk::read`](crate::SimDisk::read).
    DiskRead,
    /// [`SimDisk::write`](crate::SimDisk::write).
    DiskWrite,
    /// [`Wal::flush`](crate::Wal::flush) (including the write-ahead
    /// `flush_to` path).
    WalFlush,
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The page read fails with a clean I/O error.
    ReadError,
    /// The page write fails with a clean I/O error; nothing is written.
    WriteError,
    /// The page write persists only a prefix, then fails.
    TornWrite,
    /// One stored bit flips; the read returns the rotted bytes, which
    /// the checksum then rejects.
    BitFlip,
    /// The WAL flush promotes only part of the tail, then fails.
    PartialFlush,
}

impl FaultKind {
    /// The injection site this kind of fault fires at.
    pub fn site(self) -> FaultSite {
        match self {
            FaultKind::ReadError | FaultKind::BitFlip => FaultSite::DiskRead,
            FaultKind::WriteError | FaultKind::TornWrite => FaultSite::DiskWrite,
            FaultKind::PartialFlush => FaultSite::WalFlush,
        }
    }
}

/// When a rule fires, relative to the operations at its site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire exactly once, on the `n`th matching operation (1-based).
    Nth(u64),
    /// Fire on every `n`th matching operation.
    EveryNth(u64),
    /// Fire with probability `p` per operation (seeded, deterministic).
    Probability(f64),
}

/// A scripted schedule of storage faults. Built once, then installed
/// into an engine via `StorageEngine::install_faults` (or directly with
/// [`FaultInjector::new`] for unit tests against raw components).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<(FaultKind, Trigger)>,
}

impl FaultPlan {
    /// An empty plan; `seed` drives probabilistic triggers and fault
    /// payloads (torn-prefix lengths, flipped bit positions, flush cut
    /// points), so equal plans produce byte-identical fault sequences.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, rules: Vec::new() }
    }

    /// Fire `kind` exactly once, on the `n`th operation at its site.
    pub fn fail_nth(mut self, kind: FaultKind, n: u64) -> Self {
        assert!(n >= 1, "fail_nth is 1-based");
        self.rules.push((kind, Trigger::Nth(n)));
        self
    }

    /// Fire `kind` on every `n`th operation at its site.
    pub fn every_nth(mut self, kind: FaultKind, n: u64) -> Self {
        assert!(n >= 1, "every_nth needs n >= 1");
        self.rules.push((kind, Trigger::EveryNth(n)));
        self
    }

    /// Fire `kind` with probability `p` per operation at its site.
    pub fn probabilistic(mut self, kind: FaultKind, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.rules.push((kind, Trigger::Probability(p)));
        self
    }

    /// Does the plan contain any rule at all?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// One fired fault: the kind plus a seeded entropy word the site uses
/// to derive its payload (which bit to flip, where to cut a torn write
/// or partial flush).
#[derive(Debug, Clone, Copy)]
pub struct FaultShot {
    /// The kind of fault to apply.
    pub kind: FaultKind,
    /// Deterministic per-shot randomness for the fault payload.
    pub entropy: u64,
}

#[derive(Debug)]
struct RuleState {
    kind: FaultKind,
    trigger: Trigger,
    seen: u64,
    spent: bool,
}

#[derive(Debug)]
struct InjectorState {
    rules: Vec<RuleState>,
    rng: u64,
}

/// Cumulative injection counters, one per [`FaultKind`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Injected page-read I/O errors.
    pub read_errors: u64,
    /// Injected page-write I/O errors.
    pub write_errors: u64,
    /// Injected torn page writes (prefix persisted, then failed).
    pub torn_writes: u64,
    /// Injected stored-bit flips.
    pub bit_flips: u64,
    /// Injected partial WAL flushes.
    pub partial_flushes: u64,
}

impl FaultStats {
    /// Total faults fired, across all kinds.
    pub fn total(&self) -> u64 {
        self.read_errors + self.write_errors + self.torn_writes + self.bit_flips
            + self.partial_flushes
    }
}

/// The runtime form of a [`FaultPlan`]: consulted by the disk and WAL on
/// every operation, counting what it fires.
#[derive(Debug)]
pub struct FaultInjector {
    state: Mutex<InjectorState>,
    read_errors: Counter,
    write_errors: Counter,
    torn_writes: Counter,
    bit_flips: Counter,
    partial_flushes: Counter,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Arm a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            state: Mutex::new(InjectorState {
                rules: plan
                    .rules
                    .into_iter()
                    .map(|(kind, trigger)| RuleState { kind, trigger, seen: 0, spent: false })
                    .collect(),
                rng: plan.seed,
            }),
            read_errors: Counter::default(),
            write_errors: Counter::default(),
            torn_writes: Counter::default(),
            bit_flips: Counter::default(),
            partial_flushes: Counter::default(),
        }
    }

    /// Consult the plan for one operation at `site`. At most one rule
    /// fires per operation (first armed match wins); the fired fault is
    /// counted here.
    pub fn fire(&self, site: FaultSite) -> Option<FaultShot> {
        let mut state = self.state.lock();
        let state = &mut *state;
        let mut shot = None;
        for rule in state.rules.iter_mut().filter(|r| r.kind.site() == site) {
            rule.seen += 1;
            if shot.is_some() {
                continue; // later rules still observe the operation
            }
            let fires = match rule.trigger {
                Trigger::Nth(n) => {
                    if !rule.spent && rule.seen == n {
                        rule.spent = true;
                        true
                    } else {
                        false
                    }
                }
                Trigger::EveryNth(n) => rule.seen % n == 0,
                Trigger::Probability(p) => {
                    (splitmix64(&mut state.rng) as f64 / u64::MAX as f64) < p
                }
            };
            if fires {
                shot = Some(FaultShot { kind: rule.kind, entropy: splitmix64(&mut state.rng) });
            }
        }
        if let Some(shot) = &shot {
            match shot.kind {
                FaultKind::ReadError => self.read_errors.inc(),
                FaultKind::WriteError => self.write_errors.inc(),
                FaultKind::TornWrite => self.torn_writes.inc(),
                FaultKind::BitFlip => self.bit_flips.inc(),
                FaultKind::PartialFlush => self.partial_flushes.inc(),
            }
        }
        shot
    }

    /// Snapshot the injection counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            read_errors: self.read_errors.get(),
            write_errors: self.write_errors.get(),
            torn_writes: self.torn_writes.get(),
            bit_flips: self.bit_flips.get(),
            partial_flushes: self.partial_flushes.get(),
        }
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`. Guards WAL
/// records and disk pages against torn writes and bit rot. Table-driven;
/// the table is built once at first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let mut data = vec![0x5Au8; 512];
        let clean = crc32(&data);
        data[100] ^= 0x04;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn fail_nth_fires_exactly_once() {
        let inj = FaultInjector::new(FaultPlan::new(1).fail_nth(FaultKind::ReadError, 3));
        let fired: Vec<bool> =
            (0..6).map(|_| inj.fire(FaultSite::DiskRead).is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(inj.stats().read_errors, 1);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let inj = FaultInjector::new(FaultPlan::new(1).every_nth(FaultKind::WriteError, 2));
        let fired: Vec<bool> =
            (0..6).map(|_| inj.fire(FaultSite::DiskWrite).is_some()).collect();
        assert_eq!(fired, vec![false, true, false, true, false, true]);
        assert_eq!(inj.stats().write_errors, 3);
    }

    #[test]
    fn sites_are_independent() {
        let inj = FaultInjector::new(FaultPlan::new(1).fail_nth(FaultKind::PartialFlush, 1));
        assert!(inj.fire(FaultSite::DiskRead).is_none());
        assert!(inj.fire(FaultSite::DiskWrite).is_none());
        let shot = inj.fire(FaultSite::WalFlush).expect("flush rule fires");
        assert_eq!(shot.kind, FaultKind::PartialFlush);
    }

    #[test]
    fn probabilistic_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let inj =
                FaultInjector::new(FaultPlan::new(seed).probabilistic(FaultKind::BitFlip, 0.5));
            (0..32).map(|_| inj.fire(FaultSite::DiskRead).is_some()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
        let fired = run(7).iter().filter(|&&f| f).count();
        assert!(fired > 4 && fired < 28, "p=0.5 fires roughly half the time, got {fired}/32");
    }

    #[test]
    fn probability_extremes() {
        let never =
            FaultInjector::new(FaultPlan::new(3).probabilistic(FaultKind::ReadError, 0.0));
        assert!((0..64).all(|_| never.fire(FaultSite::DiskRead).is_none()));
        let always =
            FaultInjector::new(FaultPlan::new(3).probabilistic(FaultKind::ReadError, 1.0));
        assert!((0..64).all(|_| always.fire(FaultSite::DiskRead).is_some()));
    }

    #[test]
    fn first_matching_rule_wins_but_both_observe() {
        let inj = FaultInjector::new(
            FaultPlan::new(1)
                .fail_nth(FaultKind::ReadError, 2)
                .fail_nth(FaultKind::BitFlip, 2),
        );
        assert!(inj.fire(FaultSite::DiskRead).is_none());
        let shot = inj.fire(FaultSite::DiskRead).expect("second op fires");
        assert_eq!(shot.kind, FaultKind::ReadError, "earlier rule wins the tie");
        assert!(inj.fire(FaultSite::DiskRead).is_none(), "both rules are spent");
        assert_eq!(inj.stats().total(), 1);
    }
}
