//! Property-based tests: slotted pages against a model, and recovery
//! against random workloads with randomly placed crashes.

use orion_storage::engine::{StorageEngine, TxnId};
use orion_storage::heap::Rid;
use orion_storage::slotted;
use orion_storage::PAGE_SIZE;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Update(usize, Vec<u8>),
    Delete(usize),
}

fn arb_page_ops() -> impl Strategy<Value = Vec<PageOp>> {
    // Mix small and page-filling record sizes so splits, compactions,
    // and failed grows all occur.
    let bytes = prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..96),
        proptest::collection::vec(any::<u8>(), 400..1400),
    ];
    proptest::collection::vec(
        prop_oneof![
            bytes.clone().prop_map(PageOp::Insert),
            (any::<usize>(), bytes).prop_map(|(i, b)| PageOp::Update(i, b)),
            any::<usize>().prop_map(PageOp::Delete),
        ],
        0..120,
    )
}

proptest! {
    /// The slotted page behaves like a map from slot to bytes.
    #[test]
    fn slotted_page_matches_model(ops in arb_page_ops()) {
        let mut page = vec![0u8; PAGE_SIZE];
        slotted::init(&mut page);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut live: Vec<u16> = Vec::new();

        for op in ops {
            match op {
                PageOp::Insert(bytes) => {
                    if let Some(slot) = slotted::insert(&mut page, &bytes) {
                        prop_assert!(!model.contains_key(&slot), "slot reuse of a live slot");
                        model.insert(slot, bytes);
                        live.push(slot);
                    } else {
                        // Rejection is only legal when the page is
                        // genuinely short on space.
                        prop_assert!(slotted::usable_free(&page) < bytes.len() + 4);
                    }
                }
                PageOp::Update(pick, bytes) => {
                    if live.is_empty() { continue; }
                    let slot = live[pick % live.len()];
                    if slotted::update(&mut page, slot, &bytes) {
                        model.insert(slot, bytes);
                    } else {
                        // Failure must leave the old value intact.
                        prop_assert_eq!(
                            slotted::get(&page, slot).map(|r| r.to_vec()),
                            model.get(&slot).cloned()
                        );
                    }
                }
                PageOp::Delete(pick) => {
                    if live.is_empty() { continue; }
                    let idx = pick % live.len();
                    let slot = live.swap_remove(idx);
                    prop_assert!(slotted::delete(&mut page, slot));
                    model.remove(&slot);
                }
            }
            // Full consistency check after every step.
            for (&slot, bytes) in &model {
                prop_assert_eq!(slotted::get(&page, slot), Some(bytes.as_slice()));
            }
            prop_assert_eq!(slotted::live_count(&page), model.len());
        }
    }
}

#[derive(Debug, Clone)]
enum TxOp {
    Insert(Vec<u8>),
    Update(usize, Vec<u8>),
    Delete(usize),
}

fn arb_txns() -> impl Strategy<Value = Vec<(bool, Vec<TxOp>)>> {
    let op = prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..64).prop_map(TxOp::Insert),
        (any::<usize>(), proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(i, b)| TxOp::Update(i, b)),
        any::<usize>().prop_map(TxOp::Delete),
    ];
    proptest::collection::vec((any::<bool>(), proptest::collection::vec(op, 1..10)), 1..8)
}

fn apply_txn(
    engine: &StorageEngine,
    txn: TxnId,
    ops: &[TxOp],
    state: &mut HashMap<Rid, Vec<u8>>,
) {
    // `state` mirrors committed + this-txn effects; rolled back on abort
    // by the caller keeping a snapshot.
    for op in ops {
        match op {
            TxOp::Insert(bytes) => {
                let rid = engine.insert(txn, bytes, None).unwrap();
                state.insert(rid, bytes.clone());
            }
            TxOp::Update(pick, bytes) => {
                if state.is_empty() {
                    continue;
                }
                let keys: Vec<Rid> = state.keys().copied().collect();
                let rid = keys[pick % keys.len()];
                let new_rid = engine.update(txn, rid, bytes).unwrap();
                state.remove(&rid);
                state.insert(new_rid, bytes.clone());
            }
            TxOp::Delete(pick) => {
                if state.is_empty() {
                    continue;
                }
                let keys: Vec<Rid> = state.keys().copied().collect();
                let rid = keys[pick % keys.len()];
                engine.delete(txn, rid).unwrap();
                state.remove(&rid);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any mix of committed/aborted transactions, a crash, and
    /// recovery, the surviving records are exactly the committed state.
    #[test]
    fn recovery_restores_committed_state(txns in arb_txns(), flush_mid in any::<bool>()) {
        let engine = StorageEngine::new(4);
        let mut committed: HashMap<Rid, Vec<u8>> = HashMap::new();
        for (commit, ops) in &txns {
            let txn = engine.begin();
            let mut working = committed.clone();
            apply_txn(&engine, txn, ops, &mut working);
            if *commit {
                engine.commit(txn).unwrap();
                committed = working;
            } else {
                engine.abort(txn).unwrap();
            }
        }
        if flush_mid {
            // Push arbitrary dirty pages out; recovery must still hold.
            engine.pool().flush_all().unwrap();
        }
        engine.crash();
        engine.recover().unwrap();

        let mut survivors: HashMap<Rid, Vec<u8>> = HashMap::new();
        engine.scan_all(|rid, bytes| { survivors.insert(rid, bytes.to_vec()); }).unwrap();
        prop_assert_eq!(survivors, committed);
    }

    /// Abort alone (no crash) also restores the pre-transaction state.
    #[test]
    fn abort_is_a_perfect_inverse(txns in arb_txns()) {
        let engine = StorageEngine::new(8);
        let mut committed: HashMap<Rid, Vec<u8>> = HashMap::new();
        for (commit, ops) in &txns {
            let txn = engine.begin();
            let mut working = committed.clone();
            apply_txn(&engine, txn, ops, &mut working);
            if *commit {
                engine.commit(txn).unwrap();
                committed = working;
            } else {
                engine.abort(txn).unwrap();
            }
            let mut now: HashMap<Rid, Vec<u8>> = HashMap::new();
            engine.scan_all(|rid, bytes| { now.insert(rid, bytes.to_vec()); }).unwrap();
            prop_assert_eq!(&now, &committed);
        }
    }
}
