//! Composite objects (\[KIM89c\]; §3.3 "composite objects which capture
//! the ... part-of relationship").
//!
//! An attribute declared `composite` is an *exclusive, dependent*
//! part-of reference: a part belongs to exactly one parent and is
//! deleted with it (or when unlinked). On top of the bookkeeping in
//! `database.rs`, this module adds the two architectural consequences
//! §3.2/§4.2 calls out:
//!
//! * **clustering** — [`Database::create_part`] places the new part on
//!   (or near) its parent's page, so traversing a composite touches few
//!   pages (experiment E10),
//! * **composite locking** — [`Database::lock_composite`] locks the
//!   whole composite in one protocol step, the cheap alternative to
//!   per-object locking for checkout-style operations (experiment E9),
//! * **checkout/checkin** — long-duration-transaction support: checkout
//!   copies a composite into a private workspace database; checkin
//!   writes the changes back (§3.3 "checkout and checkin of objects
//!   between a shared database and private databases").

use crate::database::{Database, Tx};
use orion_types::{DbError, DbResult, Oid, Value};
use std::collections::HashMap;

impl Database {
    /// Create an object as a part of `parent` under the composite
    /// attribute `attr_name`, cluster-placed next to its parent. For a
    /// set-valued composite attribute the part is added to the set; for
    /// a scalar one it becomes the value (the old part, if any, is
    /// deleted per dependent semantics).
    pub fn create_part(
        &self,
        tx: &Tx,
        parent: Oid,
        attr_name: &str,
        class_name: &str,
        attrs: Vec<(&str, Value)>,
    ) -> DbResult<Oid> {
        // Validate that the attribute is composite before creating.
        {
            let catalog = self.catalog.read();
            let resolved = catalog.resolve(parent.class())?;
            let attr = resolved.attr(attr_name).ok_or_else(|| DbError::UnknownAttribute {
                class: resolved.name.clone(),
                attribute: attr_name.to_owned(),
            })?;
            if !attr.composite {
                return Err(DbError::Composite(format!(
                    "attribute `{attr_name}` of `{}` is not composite",
                    resolved.name
                )));
            }
        }
        let set_valued = {
            let catalog = self.catalog.read();
            let resolved = catalog.resolve(parent.class())?;
            matches!(
                resolved.attr(attr_name).map(|a| &a.domain),
                Some(orion_types::Domain::SetOf(_)) | Some(orion_types::Domain::ListOf(_))
            )
        };
        // Cluster near the composite's most recently placed member: the
        // newest part's page (or the parent's, for the first part), so
        // a growing composite fills page after page contiguously.
        let anchor = self.parts_of(parent).into_iter().next_back().unwrap_or(parent);
        let part = self.create_object_impl(tx, class_name, attrs, Some(anchor))?;
        // Link into the parent (set() performs ownership claiming and
        // nested-index maintenance).
        let current = self.get(tx, parent, attr_name)?;
        let new_value = match current {
            Value::Null if set_valued => Value::set(vec![Value::Ref(part)]),
            Value::Null => Value::Ref(part),
            Value::Ref(_old) => Value::Ref(part), // old part deleted by set()
            Value::Set(mut items) => {
                items.push(Value::Ref(part));
                Value::set(items)
            }
            Value::List(mut items) => {
                items.push(Value::Ref(part));
                Value::List(items)
            }
            other => {
                return Err(DbError::Composite(format!(
                    "composite attribute holds non-reference value {other}"
                )))
            }
        };
        self.set(tx, parent, attr_name, new_value)?;
        Ok(part)
    }

    /// The direct parts of `root` (one level).
    pub fn parts_of(&self, root: Oid) -> Vec<Oid> {
        let rt = self.rt_read();
        let owner = rt.composite_owner.read();
        let mut parts: Vec<Oid> = owner
            .iter()
            .filter(|(_, (parent, _))| *parent == root)
            .map(|(part, _)| *part)
            .collect();
        parts.sort();
        parts
    }

    /// The whole composite rooted at `root` (root first, then parts in
    /// closure order).
    pub fn composite_members(&self, root: Oid) -> Vec<Oid> {
        let rt = self.rt_read();
        self.composite_closure(&rt, root)
    }

    /// The composite parent of `part`, if it is owned.
    pub fn composite_parent(&self, part: Oid) -> Option<Oid> {
        self.rt_read().composite_owner.read().get(&part).map(|(p, _)| *p)
    }

    /// Lock the whole composite rooted at `root` exclusively in one
    /// protocol step (composite locking, experiment E9).
    pub fn lock_composite(&self, tx: &Tx, root: Oid) -> DbResult<()> {
        let members = self.composite_members(root);
        for member in members {
            self.lock_write(tx, member)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkout / checkin (long-duration transactions, §2.2/§3.3)
    // ------------------------------------------------------------------

    /// Check the composite rooted at `root` out into a private
    /// workspace: returns a map `oid → attribute values by name` the
    /// application can edit offline (a private database in the paper's
    /// terms). The composite stays locked in the shared database until
    /// checkin or rollback.
    pub fn checkout(&self, tx: &Tx, root: Oid) -> DbResult<HashMap<Oid, Vec<(String, Value)>>> {
        self.lock_composite(tx, root)?;
        let members = self.composite_members(root);
        let catalog = self.catalog.read();
        let mut workspace = HashMap::new();
        let rt = self.rt_read();
        for member in members {
            let record = self.load_record(&rt, &catalog, member)?;
            let resolved = catalog.resolve(member.class())?;
            let mut attrs = Vec::new();
            for attr in &resolved.attrs {
                if let Some(v) = record.get(attr.id) {
                    attrs.push((attr.name.clone(), v.clone()));
                }
            }
            workspace.insert(member, attrs);
        }
        Ok(workspace)
    }

    /// Check a workspace back in: writes every attribute back through
    /// the normal update path (domain checks, index maintenance,
    /// notifications). The caller then commits.
    pub fn checkin(
        &self,
        tx: &Tx,
        workspace: HashMap<Oid, Vec<(String, Value)>>,
    ) -> DbResult<()> {
        for (oid, attrs) in workspace {
            for (name, value) in attrs {
                self.set(tx, oid, &name, value)?;
            }
        }
        Ok(())
    }
}
