//! Authorization with implicit grants along the granularity and role
//! hierarchies (\[RABI90\]; §3.2 lists authorization among the components
//! the class hierarchy impacts, §5.4 ties views to content-based
//! authorization).
//!
//! Model:
//! * **Subjects** form a role graph: a subject inherits the grants of
//!   the roles it is a member of (transitively).
//! * **Targets** form the granularity hierarchy: a grant on the database
//!   implies every class; a grant on a class implies its instances *and
//!   its subclasses' extents are NOT implied* (the paper's implicit
//!   authorization propagates along the granularity dimension; class-
//!   hierarchy propagation is opt-in via `grant_subtree`).
//! * **Actions** imply weaker actions (`Write` ⇒ `Read`).
//! * **Negative grants** override positive ones at any level.

use orion_types::{ClassId, DbError, DbResult, Oid};
use std::collections::{HashMap, HashSet};

/// What a subject may do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuthAction {
    /// Read attribute values / run queries.
    Read,
    /// Update existing objects.
    Write,
    /// Create new instances.
    Create,
    /// Delete instances.
    Delete,
}

impl AuthAction {
    /// Actions implied by holding `self` (`Write` implies `Read`).
    fn implies(self, other: AuthAction) -> bool {
        self == other || (self == AuthAction::Write && other == AuthAction::Read)
    }
}

/// What a grant covers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AuthTarget {
    /// Everything.
    Database,
    /// One class's definition and extent.
    Class(ClassId),
    /// One instance.
    Object(Oid),
    /// A named view (content-based authorization, §5.4).
    View(String),
}

#[derive(Debug, Default)]
struct SubjectState {
    roles: HashSet<String>,
    positive: HashMap<AuthTarget, HashSet<AuthAction>>,
    negative: HashMap<AuthTarget, HashSet<AuthAction>>,
}

/// The authorization manager.
#[derive(Debug, Default)]
pub struct AuthzManager {
    subjects: HashMap<String, SubjectState>,
}

impl AuthzManager {
    /// An empty manager.
    pub fn new() -> Self {
        AuthzManager::default()
    }

    /// Ensure a subject exists (subjects are also roles).
    pub fn add_subject(&mut self, name: &str) {
        self.subjects.entry(name.to_owned()).or_default();
    }

    /// Make `member` a member of `role` (inheriting its grants).
    pub fn add_role_member(&mut self, role: &str, member: &str) {
        self.add_subject(role);
        self.subjects.entry(member.to_owned()).or_default().roles.insert(role.to_owned());
    }

    /// Grant `action` on `target` to `subject`.
    pub fn grant(&mut self, subject: &str, action: AuthAction, target: AuthTarget) {
        self.subjects
            .entry(subject.to_owned())
            .or_default()
            .positive
            .entry(target)
            .or_default()
            .insert(action);
    }

    /// Explicitly deny `action` on `target` to `subject` (overrides any
    /// positive grant, inherited or implicit).
    pub fn deny(&mut self, subject: &str, action: AuthAction, target: AuthTarget) {
        self.subjects
            .entry(subject.to_owned())
            .or_default()
            .negative
            .entry(target)
            .or_default()
            .insert(action);
    }

    /// Revoke a positive grant (exact target + action).
    pub fn revoke(&mut self, subject: &str, action: AuthAction, target: &AuthTarget) {
        if let Some(s) = self.subjects.get_mut(subject) {
            if let Some(actions) = s.positive.get_mut(target) {
                actions.remove(&action);
            }
        }
    }

    /// The role closure of a subject (including itself).
    fn closure(&self, subject: &str) -> Vec<&SubjectState> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut stack = vec![subject.to_owned()];
        while let Some(name) = stack.pop() {
            if !seen.insert(name.clone()) {
                continue;
            }
            if let Some(state) = self.subjects.get(&name) {
                stack.extend(state.roles.iter().cloned());
                out.push(state);
            }
        }
        out
    }

    /// Targets whose grants imply a grant on `target`, most specific
    /// first (the granularity hierarchy: object → class → database).
    fn implied_chain(target: &AuthTarget) -> Vec<AuthTarget> {
        match target {
            AuthTarget::Database => vec![AuthTarget::Database],
            AuthTarget::Class(c) => vec![AuthTarget::Class(*c), AuthTarget::Database],
            AuthTarget::Object(o) => vec![
                AuthTarget::Object(*o),
                AuthTarget::Class(o.class()),
                AuthTarget::Database,
            ],
            AuthTarget::View(v) => vec![AuthTarget::View(v.clone()), AuthTarget::Database],
        }
    }

    /// Is `subject` allowed to perform `action` on `target`?
    pub fn allowed(&self, subject: &str, action: AuthAction, target: &AuthTarget) -> bool {
        let states = self.closure(subject);
        let chain = Self::implied_chain(target);
        // Negative authorization wins at any level for the whole closure.
        for state in &states {
            for t in &chain {
                if let Some(denied) = state.negative.get(t) {
                    if denied.iter().any(|d| d.implies(action)) || denied.contains(&action) {
                        return false;
                    }
                }
            }
        }
        for state in &states {
            for t in &chain {
                if let Some(granted) = state.positive.get(t) {
                    if granted.iter().any(|g| g.implies(action)) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Check-or-error form used by the facade.
    pub fn check(&self, subject: &str, action: AuthAction, target: &AuthTarget) -> DbResult<()> {
        if self.allowed(subject, action, target) {
            Ok(())
        } else {
            Err(DbError::AuthorizationDenied {
                subject: subject.to_owned(),
                action: format!("{action:?}"),
                target: format!("{target:?}"),
            })
        }
    }
}

impl crate::database::Database {
    /// Grant `action` on `target` to `subject`.
    pub fn grant(&self, subject: &str, action: AuthAction, target: AuthTarget) {
        self.authz.write().grant(subject, action, target);
    }

    /// Deny `action` on `target` to `subject` (overrides positives).
    pub fn deny(&self, subject: &str, action: AuthAction, target: AuthTarget) {
        self.authz.write().deny(subject, action, target);
    }

    /// Revoke a positive grant.
    pub fn revoke(&self, subject: &str, action: AuthAction, target: &AuthTarget) {
        self.authz.write().revoke(subject, action, target);
    }

    /// Make `member` a member of `role`.
    pub fn add_role_member(&self, role: &str, member: &str) {
        self.authz.write().add_role_member(role, member);
    }

    /// Is `subject` allowed to perform `action` on `target`?
    pub fn allowed(&self, subject: &str, action: AuthAction, target: &AuthTarget) -> bool {
        self.authz.read().allowed(subject, action, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_types::Oid;

    fn oid(c: u16, s: u64) -> Oid {
        Oid::new(ClassId(c), s)
    }

    #[test]
    fn class_grant_implies_instances() {
        let mut az = AuthzManager::new();
        az.grant("alice", AuthAction::Read, AuthTarget::Class(ClassId(1)));
        assert!(az.allowed("alice", AuthAction::Read, &AuthTarget::Object(oid(1, 5))));
        assert!(!az.allowed("alice", AuthAction::Write, &AuthTarget::Object(oid(1, 5))));
        assert!(!az.allowed("alice", AuthAction::Read, &AuthTarget::Object(oid(2, 5))));
    }

    #[test]
    fn database_grant_implies_everything() {
        let mut az = AuthzManager::new();
        az.grant("admin", AuthAction::Write, AuthTarget::Database);
        assert!(az.allowed("admin", AuthAction::Write, &AuthTarget::Class(ClassId(9))));
        assert!(az.allowed("admin", AuthAction::Read, &AuthTarget::Object(oid(3, 1))));
        assert!(!az.allowed("admin", AuthAction::Delete, &AuthTarget::Object(oid(3, 1))));
    }

    #[test]
    fn write_implies_read() {
        let mut az = AuthzManager::new();
        az.grant("bob", AuthAction::Write, AuthTarget::Class(ClassId(1)));
        assert!(az.allowed("bob", AuthAction::Read, &AuthTarget::Class(ClassId(1))));
    }

    #[test]
    fn negative_overrides_positive() {
        let mut az = AuthzManager::new();
        az.grant("carol", AuthAction::Read, AuthTarget::Database);
        az.deny("carol", AuthAction::Read, AuthTarget::Class(ClassId(7)));
        assert!(az.allowed("carol", AuthAction::Read, &AuthTarget::Class(ClassId(6))));
        assert!(!az.allowed("carol", AuthAction::Read, &AuthTarget::Class(ClassId(7))));
        assert!(!az.allowed("carol", AuthAction::Read, &AuthTarget::Object(oid(7, 1))));
        // A denied Write also blocks Read via implication.
        az.deny("carol", AuthAction::Write, AuthTarget::Class(ClassId(6)));
        assert!(!az.allowed("carol", AuthAction::Read, &AuthTarget::Class(ClassId(6))));
    }

    #[test]
    fn roles_inherit_transitively() {
        let mut az = AuthzManager::new();
        az.grant("engineers", AuthAction::Read, AuthTarget::Class(ClassId(1)));
        az.add_role_member("engineers", "backend");
        az.add_role_member("backend", "dave");
        assert!(az.allowed("dave", AuthAction::Read, &AuthTarget::Class(ClassId(1))));
        assert!(!az.allowed("dave", AuthAction::Write, &AuthTarget::Class(ClassId(1))));
        // Denial on the role blocks the member too.
        az.deny("engineers", AuthAction::Read, AuthTarget::Class(ClassId(1)));
        assert!(!az.allowed("dave", AuthAction::Read, &AuthTarget::Class(ClassId(1))));
    }

    #[test]
    fn object_level_grant_is_narrow() {
        let mut az = AuthzManager::new();
        az.grant("eve", AuthAction::Write, AuthTarget::Object(oid(1, 1)));
        assert!(az.allowed("eve", AuthAction::Write, &AuthTarget::Object(oid(1, 1))));
        assert!(!az.allowed("eve", AuthAction::Write, &AuthTarget::Object(oid(1, 2))));
        assert!(!az.allowed("eve", AuthAction::Write, &AuthTarget::Class(ClassId(1))));
    }

    #[test]
    fn revoke_removes_grant() {
        let mut az = AuthzManager::new();
        az.grant("f", AuthAction::Read, AuthTarget::Database);
        assert!(az.allowed("f", AuthAction::Read, &AuthTarget::Database));
        az.revoke("f", AuthAction::Read, &AuthTarget::Database);
        assert!(!az.allowed("f", AuthAction::Read, &AuthTarget::Database));
    }

    #[test]
    fn view_grants_are_independent_of_classes() {
        let mut az = AuthzManager::new();
        az.grant("guest", AuthAction::Read, AuthTarget::View("heavy_trucks".into()));
        assert!(az.allowed("guest", AuthAction::Read, &AuthTarget::View("heavy_trucks".into())));
        assert!(!az.allowed("guest", AuthAction::Read, &AuthTarget::Class(ClassId(1))));
    }

    #[test]
    fn check_errors_with_context() {
        let az = AuthzManager::new();
        let err = az.check("nobody", AuthAction::Read, &AuthTarget::Database).unwrap_err();
        assert!(matches!(err, DbError::AuthorizationDenied { .. }));
    }
}
