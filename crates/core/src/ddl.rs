//! Schema and index DDL on the facade.
//!
//! DDL auto-commits: a schema change takes class-hierarchy `X` locks on
//! the affected subtree (\[GARZ88\]), applies, optionally migrates
//! instances, and releases — it is not rolled back by an application
//! transaction's `rollback`. (ORION made the same choice; undoing
//! schema changes is \[KIM88a\]'s *schema versioning*, which orion offers
//! through views instead.)
//!
//! Index create/drop takes the *exclusive* maintenance gate: populating
//! a new index scans extents while DML maintains existing indexes, and
//! the only way a freshly built index can be neither missing concurrent
//! writes nor double-entering them is for the build to be atomic with
//! respect to all mutators. Index DDL is rare; DML never takes the
//! exclusive gate.

use crate::database::{Database, Tx};
use orion_index::{IndexDef, IndexInstance, IndexKind};
use orion_schema::evolution::ChangeEffect;
use orion_schema::{AttrSpec, SchemaChange};
use orion_types::{ClassId, DbError, DbResult, Oid};
use std::sync::atomic::Ordering;

/// When instance adaptation happens after a schema change (E6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Migration {
    /// Rewrite every affected instance now.
    Eager,
    /// Adapt instances when they are next touched (records carry the
    /// schema version they were written under).
    Lazy,
}

impl Database {
    /// Create a class. Superclasses are named; attribute specs as in
    /// `orion-schema`.
    pub fn create_class(
        &self,
        name: &str,
        supers: &[&str],
        attrs: Vec<AttrSpec>,
    ) -> DbResult<ClassId> {
        let id = {
            let mut catalog = self.catalog.write();
            let super_ids = supers
                .iter()
                .map(|s| catalog.class_id(s))
                .collect::<DbResult<Vec<_>>>()?;
            catalog.create_class(name, &super_ids, attrs)?
        };
        self.persist_system_state()?;
        Ok(id)
    }

    /// Apply a schema change under class-hierarchy locks, with the
    /// chosen instance-migration policy.
    pub fn evolve(&self, change: SchemaChange, migration: Migration) -> DbResult<()> {
        // Take subtree X locks under a short system transaction.
        let tx = self.begin();
        let result = self.evolve_inner(&tx, change, migration);
        match result {
            Ok(()) => {
                self.commit(tx)?;
                self.persist_system_state()
            }
            Err(e) => {
                self.rollback(tx)?;
                Err(e)
            }
        }
    }

    fn evolve_inner(&self, tx: &Tx, change: SchemaChange, migration: Migration) -> DbResult<()> {
        // Determine and lock the affected subtree before touching the
        // catalog (the catalog computes subtrees, so read-lock first).
        let affected_root = match &change {
            SchemaChange::AddAttribute { class, .. }
            | SchemaChange::DropAttribute { class, .. }
            | SchemaChange::RenameAttribute { class, .. }
            | SchemaChange::ChangeDefault { class, .. }
            | SchemaChange::GeneralizeDomain { class, .. }
            | SchemaChange::AddSuperclass { class, .. }
            | SchemaChange::DropSuperclass { class, .. }
            | SchemaChange::RenameClass { class, .. }
            | SchemaChange::DropClass { class } => *class,
        };
        let subtree = self.catalog.read().subtree(affected_root)?.as_ref().clone();
        self.locks.lock_schema_change(tx.id(), &subtree)?;

        // Guard: dropping a class with live instances is rejected.
        if let SchemaChange::DropClass { class } = &change {
            let live = self.rt_read().extents.len_of(*class);
            if live > 0 {
                return Err(DbError::SchemaInvariant(format!(
                    "class has {live} live instance(s); delete or migrate them first"
                )));
            }
        }

        let effect = {
            let mut catalog = self.catalog.write();
            change.apply(&mut catalog)?
        };

        match (&effect, migration) {
            (ChangeEffect::AttributeDropped { attr_id, classes }, _) => {
                // Indexes over the dropped attribute are dropped with it.
                self.drop_indexes_using_attr(*attr_id)?;
                if migration == Migration::Eager {
                    self.eager_scrub(tx, classes, *attr_id)?;
                }
            }
            (ChangeEffect::AttributeAdded { attr_id, classes, default }, Migration::Eager) => {
                self.eager_fill(tx, classes, *attr_id, default.clone())?;
            }
            (ChangeEffect::Reshaped { classes }, Migration::Eager) => {
                // Superclass changes may add and remove several
                // attributes; eager migration rewrites records to the
                // new resolved shape (lazy adaptation would do it on
                // next touch).
                self.eager_reshape(tx, classes)?;
            }
            _ => {}
        }
        Ok(())
    }

    fn instances_of(rt: &crate::runtime::Runtime, classes: &[ClassId]) -> Vec<Oid> {
        classes.iter().flat_map(|c| rt.extents.snapshot(*c)).collect()
    }

    fn eager_scrub(&self, tx: &Tx, classes: &[ClassId], attr_id: u32) -> DbResult<()> {
        let catalog = self.catalog.read();
        let rt = self.rt_read();
        for oid in Self::instances_of(&rt, classes) {
            let mut record = (*self.load_record(&rt, &catalog, oid)?).clone();
            if record.remove(attr_id).is_some() {
                record.schema_version = catalog.resolve(oid.class())?.version;
                self.store_record(&rt, tx, &record)?;
            }
        }
        Ok(())
    }

    fn eager_fill(
        &self,
        tx: &Tx,
        classes: &[ClassId],
        attr_id: u32,
        default: orion_types::Value,
    ) -> DbResult<()> {
        let catalog = self.catalog.read();
        let rt = self.rt_read();
        for oid in Self::instances_of(&rt, classes) {
            let mut record = (*self.load_record(&rt, &catalog, oid)?).clone();
            record.set(attr_id, default.clone());
            record.schema_version = catalog.resolve(oid.class())?.version;
            self.store_record(&rt, tx, &record)?;
        }
        Ok(())
    }

    fn eager_reshape(&self, tx: &Tx, classes: &[ClassId]) -> DbResult<()> {
        let catalog = self.catalog.read();
        let rt = self.rt_read();
        for oid in Self::instances_of(&rt, classes) {
            let resolved = catalog.resolve(oid.class())?;
            let mut record = (*self.load_record(&rt, &catalog, oid)?).clone();
            record.attrs.retain(|(id, _)| {
                crate::sysattr::is_reserved(*id) || resolved.attr_by_id(*id).is_some()
            });
            record.schema_version = resolved.version;
            self.store_record(&rt, tx, &record)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Index DDL
    // ------------------------------------------------------------------

    /// Create an index of `kind` on `class_name` over a named attribute
    /// path (length 1 for simple indexes, ≥ 2 for nested ones). The
    /// index is populated from existing instances under the exclusive
    /// maintenance gate (atomic with respect to concurrent DML index
    /// maintenance).
    pub fn create_index(
        &self,
        name: &str,
        kind: IndexKind,
        class_name: &str,
        path: &[&str],
    ) -> DbResult<u32> {
        let catalog = self.catalog.read();
        let target = catalog.class_id(class_name)?;
        match kind {
            IndexKind::SingleClass | IndexKind::ClassHierarchy if path.len() != 1 => {
                return Err(DbError::Query(format!(
                    "{kind:?} index takes exactly one attribute, got path of {}",
                    path.len()
                )))
            }
            IndexKind::Nested if path.len() < 2 => {
                return Err(DbError::Query(
                    "a nested index needs a path of at least two attributes".into(),
                ))
            }
            _ => {}
        }
        // Resolve the name path to attribute ids from the target class.
        let query_path = orion_query::Path::new(path.to_vec());
        let path_ids = orion_query::plan::bind_path(&catalog, target, &query_path)?;

        let rt = self.rt_write();
        if rt.indexes.read().iter().any(|i| i.def.name == name) {
            return Err(DbError::AlreadyExists(format!("index `{name}`")));
        }
        let id = rt.next_index_id.fetch_add(1, Ordering::Relaxed);
        let def = IndexDef {
            id,
            name: name.to_owned(),
            kind: kind.clone(),
            target,
            path: path_ids,
        };
        let mut inst = IndexInstance::new(def);

        // Populate from the covered extents.
        let covered: Vec<ClassId> = match kind {
            IndexKind::SingleClass => vec![target],
            IndexKind::ClassHierarchy | IndexKind::Nested => {
                catalog.subtree(target)?.as_ref().clone()
            }
        };
        let members: Vec<Oid> = covered.iter().flat_map(|c| rt.extents.snapshot(*c)).collect();
        for oid in members {
            match kind {
                IndexKind::SingleClass | IndexKind::ClassHierarchy => {
                    let record = self.load_record(&rt, &catalog, oid)?;
                    let attr_id = inst.def.path[0];
                    let resolved = catalog.resolve(oid.class())?;
                    if let Some(attr) = resolved.attr_by_id(attr_id) {
                        let stored = record.get(attr_id).cloned().unwrap_or(Value::Null);
                        let eff = if stored.is_null() { attr.default.clone() } else { stored };
                        for key in crate::indexing::keys_of(&eff) {
                            inst.imp.insert(key, oid);
                        }
                    }
                }
                IndexKind::Nested => {
                    let keys = self.nested_path_values(&rt, &catalog, oid, &inst.def.path)?;
                    for key in keys {
                        inst.imp.insert(key, oid);
                    }
                }
            }
        }
        rt.indexes.write().push(inst);
        drop(rt);
        drop(catalog);
        self.persist_system_state()?;
        Ok(id)
    }

    /// Drop an index by name.
    pub fn drop_index(&self, name: &str) -> DbResult<()> {
        {
            let rt = self.rt_write();
            let mut indexes = rt.indexes.write();
            let before = indexes.len();
            indexes.retain(|i| i.def.name != name);
            if indexes.len() == before {
                return Err(DbError::Query(format!("no index named `{name}`")));
            }
        }
        self.persist_system_state()
    }

    fn drop_indexes_using_attr(&self, attr_id: u32) -> DbResult<()> {
        let rt = self.rt_write();
        rt.indexes.write().retain(|i| !i.def.path.contains(&attr_id));
        Ok(())
    }

    /// Descriptors of every live index.
    pub fn index_defs(&self) -> Vec<IndexDef> {
        self.rt_read().indexes.read().iter().map(|i| i.def.clone()).collect()
    }

    /// `(entries, distinct keys)` for a named index.
    pub fn index_stats(&self, name: &str) -> Option<(usize, usize)> {
        let rt = self.rt_read();
        let indexes = rt.indexes.read();
        indexes
            .iter()
            .find(|i| i.def.name == name)
            .map(|i| (i.imp.len(), i.imp.distinct_keys()))
    }
}

use orion_types::Value;
