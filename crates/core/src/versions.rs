//! Version management (\[CHOU86\], \[CHOU88\], \[KIM88a\]; §3.3 and §5.5).
//!
//! The layered design §5.5 calls for: this module is the *lower level* —
//! a basic mechanism with the semantics common to the proposals:
//!
//! * a **generic object** stands for a version set; reading it forwards
//!   to the current *default version* (generic references late-bind),
//! * versions form a **derivation tree**; deriving copies the source,
//! * **transient** versions are updatable; **promoting** one to a
//!   **working** version freezes it (working versions are immutable and
//!   may only be derived from),
//! * derivations and default changes raise **change notifications** on
//!   the generic object (flag model, \[CHOU88\]).
//!
//! All version metadata lives in reserved system attributes of the
//! records themselves (`crate::sysattr`), so rollback and crash recovery
//! restore version state with no extra machinery.

use crate::database::{Database, Tx};
use crate::notify::NotificationKind;
use crate::sysattr;
use orion_types::codec::ObjectRecord;
use orion_types::{DbError, DbResult, Oid, Value};

/// Lifecycle state of a version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionStatus {
    /// Updatable; may be deleted.
    Transient,
    /// Frozen; the stable base for further derivation.
    Working,
}

impl VersionStatus {
    fn as_str(self) -> &'static str {
        match self {
            VersionStatus::Transient => "transient",
            VersionStatus::Working => "working",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "transient" => Some(VersionStatus::Transient),
            "working" => Some(VersionStatus::Working),
            _ => None,
        }
    }
}

impl Database {
    /// Write a reserved system attribute directly (no domain checks —
    /// system attributes are not part of any class definition).
    pub(crate) fn set_system_attr(
        &self,
        tx: &Tx,
        oid: Oid,
        attr: u32,
        value: Value,
    ) -> DbResult<()> {
        debug_assert!(sysattr::is_reserved(attr));
        let catalog = self.catalog.read();
        let rt = self.rt_read();
        let mut record = (*self.load_record(&rt, &catalog, oid)?).clone();
        let old = record.get(attr).cloned().unwrap_or(Value::Null);
        self.remove_reverse_edges_for_attr(&rt, oid, attr, &old);
        record.set(attr, value.clone());
        self.store_record(&rt, tx, &record)?;
        self.add_reverse_edges_for_attr(&rt, oid, attr, &value);
        Ok(())
    }

    fn system_attr(&self, oid: Oid, attr: u32) -> DbResult<Value> {
        let catalog = self.catalog.read();
        let rt = self.rt_read();
        let record = self.load_record(&rt, &catalog, oid)?;
        Ok(record.get(attr).cloned().unwrap_or(Value::Null))
    }

    /// Create a versioned object: returns `(generic, first_version)`.
    /// The first version is transient and is the default.
    pub fn create_versioned(
        &self,
        tx: &Tx,
        class_name: &str,
        attrs: Vec<(&str, Value)>,
    ) -> DbResult<(Oid, Oid)> {
        let v1 = self.create_object(tx, class_name, attrs)?;
        let generic = self.create_object(tx, class_name, Vec::new())?;
        self.set_system_attr(tx, generic, sysattr::ATTR_DEFAULT_VERSION, Value::Ref(v1))?;
        self.set_system_attr(tx, v1, sysattr::ATTR_GENERIC, Value::Ref(generic))?;
        self.set_system_attr(
            tx,
            v1,
            sysattr::ATTR_VERSION_STATUS,
            Value::str(VersionStatus::Transient.as_str()),
        )?;
        Ok((generic, v1))
    }

    /// Derive a new transient version from an existing version: copies
    /// its user attributes, points at the same generic, and notifies
    /// subscribers of the generic object.
    pub fn derive_version(&self, tx: &Tx, from: Oid) -> DbResult<Oid> {
        let generic = match self.system_attr(from, sysattr::ATTR_GENERIC)? {
            Value::Ref(g) => g,
            _ => {
                return Err(DbError::Version(format!(
                    "{from} is not a version (no generic object)"
                )))
            }
        };
        // Copy user attributes from the source version.
        let catalog = self.catalog.read();
        let source_record: std::sync::Arc<ObjectRecord> = {
            let rt = self.rt_read();
            self.load_record(&rt, &catalog, from)?
        };
        let class_name = catalog.resolve(from.class())?.name.clone();
        drop(catalog);

        let new_version = self.create_object(tx, &class_name, Vec::new())?;
        // Install the copied user attributes directly (already validated
        // when the source stored them).
        {
            let catalog = self.catalog.read();
            let rt = self.rt_read();
            let old_record = self.load_record(&rt, &catalog, new_version)?;
            let resolved = catalog.resolve(new_version.class())?;
            let mut record = (*old_record).clone();
            for (attr_id, value) in &source_record.attrs {
                if sysattr::is_reserved(*attr_id) {
                    continue;
                }
                // Composite parts are exclusive to their parent: a new
                // version starts with no parts rather than stealing the
                // source's (deep-copying a design is an application
                // policy, not a kernel default).
                if resolved.attr_by_id(*attr_id).is_some_and(|a| a.composite) {
                    continue;
                }
                record.set(*attr_id, value.clone());
            }
            self.index_object_remove(&rt, &catalog, &old_record)?;
            self.remove_reverse_edges(&rt, &old_record);
            self.store_record(&rt, tx, &record)?;
            self.add_reverse_edges(&rt, &record);
            self.index_object_insert(&rt, &catalog, &record)?;
        }
        self.set_system_attr(tx, new_version, sysattr::ATTR_GENERIC, Value::Ref(generic))?;
        self.set_system_attr(tx, new_version, sysattr::ATTR_VERSION_PARENT, Value::Ref(from))?;
        self.set_system_attr(
            tx,
            new_version,
            sysattr::ATTR_VERSION_STATUS,
            Value::str(VersionStatus::Transient.as_str()),
        )?;
        self.notify.lock().publish(generic, NotificationKind::VersionDerived, Some(new_version));
        Ok(new_version)
    }

    /// Promote a transient version to a working (immutable) version.
    pub fn promote_version(&self, tx: &Tx, version: Oid) -> DbResult<()> {
        match self.version_status(version)? {
            VersionStatus::Working => {
                Err(DbError::Version(format!("{version} is already a working version")))
            }
            VersionStatus::Transient => self.set_system_attr(
                tx,
                version,
                sysattr::ATTR_VERSION_STATUS,
                Value::str(VersionStatus::Working.as_str()),
            ),
        }
    }

    /// Point a generic object's default at a different version.
    pub fn set_default_version(&self, tx: &Tx, generic: Oid, version: Oid) -> DbResult<()> {
        match self.system_attr(generic, sysattr::ATTR_DEFAULT_VERSION)? {
            Value::Ref(_) => {}
            _ => {
                return Err(DbError::Version(format!("{generic} is not a generic object")))
            }
        }
        match self.system_attr(version, sysattr::ATTR_GENERIC)? {
            Value::Ref(g) if g == generic => {}
            _ => {
                return Err(DbError::Version(format!(
                    "{version} is not a version of generic {generic}"
                )))
            }
        }
        self.set_system_attr(tx, generic, sysattr::ATTR_DEFAULT_VERSION, Value::Ref(version))?;
        self.notify.lock().publish(
            generic,
            NotificationKind::DefaultVersionChanged,
            Some(version),
        );
        Ok(())
    }

    /// The generic object's current default version.
    pub fn default_version(&self, generic: Oid) -> DbResult<Oid> {
        match self.system_attr(generic, sysattr::ATTR_DEFAULT_VERSION)? {
            Value::Ref(v) => Ok(v),
            _ => Err(DbError::Version(format!("{generic} is not a generic object"))),
        }
    }

    /// A version's lifecycle status.
    pub fn version_status(&self, version: Oid) -> DbResult<VersionStatus> {
        match self.system_attr(version, sysattr::ATTR_VERSION_STATUS)? {
            Value::Str(s) => VersionStatus::parse(&s)
                .ok_or_else(|| DbError::Version(format!("corrupt status `{s}`"))),
            _ => Err(DbError::Version(format!("{version} is not a version"))),
        }
    }

    /// A version's parent in the derivation tree (None for the first).
    pub fn version_parent(&self, version: Oid) -> DbResult<Option<Oid>> {
        match self.system_attr(version, sysattr::ATTR_VERSION_PARENT)? {
            Value::Ref(p) => Ok(Some(p)),
            _ => Ok(None),
        }
    }

    /// Every version of a generic object, in OID order.
    pub fn versions_of(&self, generic: Oid) -> DbResult<Vec<Oid>> {
        let rt = self.rt_read();
        let mut out: Vec<Oid> = rt.reverse.with(generic, |edges| {
            edges
                .into_iter()
                .flatten()
                .filter(|(_, attr)| *attr == sysattr::ATTR_GENERIC)
                .map(|(v, _)| *v)
                .collect()
        });
        out.sort();
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Notification plumbing (public face)
    // ------------------------------------------------------------------

    /// Subscribe to changes of an object (flag-model notification).
    pub fn subscribe(&self, oid: Oid) {
        self.notify.lock().subscribe(oid);
    }

    /// Cancel a subscription.
    pub fn unsubscribe(&self, oid: Oid) {
        self.notify.lock().unsubscribe(oid);
    }

    /// Drain pending notifications for an object.
    pub fn poll_notifications(&self, oid: Oid) -> Vec<crate::notify::Notification> {
        self.notify.lock().poll(oid)
    }
}
