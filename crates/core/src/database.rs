//! The `Database` facade: transactions and object CRUD.
//!
//! Everything an application touches goes through [`Database`]. The
//! design keeps one invariant above all others: **storage is the truth**
//! — the object directory, class extents, reverse references, composite
//! ownership, and every index are deterministic functions of the stored
//! records. Transaction rollback therefore runs the storage engine's
//! undo and then rebuilds the derived state; crash recovery does the
//! same after WAL restart. (Rebuild is O(database); rollback is not a
//! hot path in any of the paper's workloads.)

use crate::authz::{AuthAction, AuthTarget, AuthzManager};
use crate::cache::{CacheStats, ObjectCache};
use crate::methods::MethodRegistry;
use crate::multidb::ForeignAdapter;
use crate::notify::{NotificationKind, NotifyCenter};
use crate::stats::{DbMetrics, DbStats};
use crate::sysattr;
use orion_index::IndexInstance;
use orion_schema::Catalog;
use orion_storage::heap::Rid;
use orion_storage::{PoolStats, StorageEngine, TxnId};
use orion_tx::LockManager;
use orion_types::codec::ObjectRecord;
use orion_types::{ClassId, DbError, DbResult, Oid, OidAllocator, Value};
use parking_lot::{Mutex, RwLock};
use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How object operations map onto the lock manager (experiment E8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockingStrategy {
    /// Intention locks on ancestors, object-level S/X (the \[GARZ88\]
    /// granularity scheme).
    Granular,
    /// Class-level S/X for every object operation (the coarse baseline).
    CoarseClass,
}

/// Tunables; defaults are sensible for tests and examples.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Buffer-pool frames (4 KiB pages).
    pub buffer_pages: usize,
    /// Object-cache capacity (resident objects).
    pub cache_objects: usize,
    /// Pointer swizzling in the object cache (experiment E3).
    pub swizzling: bool,
    /// Lock granularity (experiment E8).
    pub locking: LockingStrategy,
    /// Enforce authorization checks for transactions with a subject.
    pub authz_enabled: bool,
    /// Cluster composite parts with their parent (experiment E10).
    pub clustering: bool,
    /// Lock-wait timeout.
    pub lock_timeout: Duration,
    /// Worker threads for query candidate evaluation: `0` sizes to the
    /// machine's available parallelism, `1` forces serial execution.
    pub query_threads: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buffer_pages: 256,
            cache_objects: 4096,
            swizzling: true,
            locking: LockingStrategy::Granular,
            authz_enabled: false,
            clustering: true,
            lock_timeout: Duration::from_secs(5),
            query_threads: 0,
        }
    }
}

impl DbConfig {
    /// Start building a configuration. `build()` validates, so a
    /// database constructed through the builder never starts with a
    /// zero-sized buffer pool or similar nonsense.
    pub fn builder() -> DbConfigBuilder {
        DbConfigBuilder { config: DbConfig::default() }
    }

    /// Check every invariant the builder enforces. `Err(DbError::Config)`
    /// names the first offending setting.
    pub fn validate(&self) -> DbResult<()> {
        if self.buffer_pages == 0 {
            return Err(DbError::Config("buffer_pages must be at least 1".into()));
        }
        if self.cache_objects == 0 {
            return Err(DbError::Config("cache_objects must be at least 1".into()));
        }
        if self.lock_timeout == Duration::ZERO {
            return Err(DbError::Config("lock_timeout must be non-zero".into()));
        }
        Ok(())
    }
}

/// Builder for [`DbConfig`]; settings are validated at [`build`].
///
/// [`build`]: DbConfigBuilder::build
#[derive(Debug, Clone, Default)]
pub struct DbConfigBuilder {
    config: DbConfig,
}

impl DbConfigBuilder {
    /// Buffer-pool frames (4 KiB pages). Must be at least 1.
    pub fn buffer_pages(mut self, pages: usize) -> Self {
        self.config.buffer_pages = pages;
        self
    }

    /// Object-cache capacity (resident objects). Must be at least 1.
    pub fn cache_objects(mut self, objects: usize) -> Self {
        self.config.cache_objects = objects;
        self
    }

    /// Pointer swizzling in the object cache.
    pub fn swizzling(mut self, on: bool) -> Self {
        self.config.swizzling = on;
        self
    }

    /// Lock granularity.
    pub fn locking(mut self, strategy: LockingStrategy) -> Self {
        self.config.locking = strategy;
        self
    }

    /// Enforce authorization checks for transactions with a subject.
    pub fn authz_enabled(mut self, on: bool) -> Self {
        self.config.authz_enabled = on;
        self
    }

    /// Cluster composite parts with their parent.
    pub fn clustering(mut self, on: bool) -> Self {
        self.config.clustering = on;
        self
    }

    /// Lock-wait timeout. Must be non-zero.
    pub fn lock_timeout(mut self, timeout: Duration) -> Self {
        self.config.lock_timeout = timeout;
        self
    }

    /// Worker threads for query candidate evaluation (`0` = auto).
    pub fn query_threads(mut self, threads: usize) -> Self {
        self.config.query_threads = threads;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> DbResult<DbConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A transaction handle. Cheap to clone; all state lives in the engine
/// and lock manager under the transaction's id.
#[derive(Debug, Clone)]
pub struct Tx {
    pub(crate) storage: TxnId,
    pub(crate) subject: Option<String>,
}

impl Tx {
    /// The numeric transaction id.
    pub fn id(&self) -> u64 {
        self.storage.0
    }

    /// The authorization subject, if any.
    pub fn subject(&self) -> Option<&str> {
        self.subject.as_deref()
    }
}

/// Derived, in-memory object state — a deterministic function of the
/// stored records.
#[derive(Debug)]
pub(crate) struct Runtime {
    /// OID → record id ("object directory management", §4.2).
    pub directory: HashMap<Oid, Rid>,
    /// Class → its own instances (not subclasses).
    pub extents: HashMap<ClassId, BTreeSet<Oid>>,
    /// The memory-resident object cache.
    pub cache: ObjectCache,
    /// Live indexes.
    pub indexes: Vec<IndexInstance>,
    pub next_index_id: u32,
    /// target → set of (referrer, attr) edges pointing at it.
    pub reverse: HashMap<Oid, HashSet<(Oid, u32)>>,
    /// part → (parent, composite attr) exclusive ownership.
    pub composite_owner: HashMap<Oid, (Oid, u32)>,
    /// Foreign class → adapter name (extents served by the federation).
    pub foreign_classes: HashMap<ClassId, String>,
    /// Materialized foreign records (refreshed on scan).
    pub foreign_store: HashMap<Oid, ObjectRecord>,
    /// Record id of the persisted system-state record, if written.
    pub system_rid: Option<orion_storage::heap::Rid>,
    /// Objects fetched from storage (experiment accounting). Atomic so
    /// the read-locked query path can account fetches through `&Runtime`.
    pub fetches: AtomicU64,
}

impl Runtime {
    fn new(config: &DbConfig) -> Self {
        Runtime {
            directory: HashMap::new(),
            extents: HashMap::new(),
            cache: ObjectCache::new(config.cache_objects, config.swizzling),
            indexes: Vec::new(),
            next_index_id: 1,
            reverse: HashMap::new(),
            composite_owner: HashMap::new(),
            foreign_classes: HashMap::new(),
            foreign_store: HashMap::new(),
            system_rid: None,
            fetches: AtomicU64::new(0),
        }
    }
}

/// The orion object-oriented database.
pub struct Database {
    pub(crate) catalog: RwLock<Catalog>,
    pub(crate) engine: StorageEngine,
    pub(crate) locks: LockManager,
    pub(crate) rt: RwLock<Runtime>,
    pub(crate) methods: RwLock<MethodRegistry>,
    pub(crate) authz: RwLock<AuthzManager>,
    pub(crate) views: RwLock<HashMap<String, String>>,
    pub(crate) rules: RwLock<Vec<crate::rules::Rule>>,
    pub(crate) notify: Mutex<NotifyCenter>,
    pub(crate) adapters: RwLock<HashMap<String, Box<dyn ForeignAdapter>>>,
    pub(crate) config: DbConfig,
    pub(crate) alloc: OidAllocator,
    pub(crate) metrics: DbMetrics,
}

impl Database {
    /// A fresh database with default configuration.
    pub fn new() -> Self {
        Self::with_config(DbConfig::default())
    }

    /// A fresh database with explicit configuration.
    pub fn with_config(config: DbConfig) -> Self {
        Database {
            catalog: RwLock::new(Catalog::new()),
            engine: StorageEngine::new(config.buffer_pages),
            locks: LockManager::with_timeout(config.lock_timeout),
            rt: RwLock::new(Runtime::new(&config)),
            methods: RwLock::new(MethodRegistry::new()),
            authz: RwLock::new(AuthzManager::new()),
            views: RwLock::new(HashMap::new()),
            rules: RwLock::new(Vec::new()),
            notify: Mutex::new(NotifyCenter::new()),
            adapters: RwLock::new(HashMap::new()),
            config,
            alloc: OidAllocator::new(),
            metrics: DbMetrics::default(),
        }
    }

    /// A fresh database from a validated configuration; rejects invalid
    /// settings with [`DbError::Config`]. Equivalent to
    /// `DbConfig::builder()...build()` followed by
    /// [`Database::with_config`].
    pub fn try_with_config(config: DbConfig) -> DbResult<Self> {
        config.validate()?;
        Ok(Self::with_config(config))
    }

    /// The active configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// The storage engine (stats and checkpoint access).
    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// The lock manager.
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Run `f` with read access to the catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.catalog.read())
    }

    /// Run `f` with write access to the catalog. For tuning knobs (e.g.
    /// toggling the method cache); schema changes should go through
    /// [`Database::create_class`] / [`Database::evolve`], which also
    /// take the required locks.
    pub fn with_catalog_mut<R>(&self, f: impl FnOnce(&mut Catalog) -> R) -> R {
        f(&mut self.catalog.write())
    }

    /// One structured snapshot of every performance counter in the
    /// system: object cache, buffer pool, disk, WAL, lock manager,
    /// query executor, fetches, and method dispatches. Safe to call
    /// while queries and transactions run — everything is lock-free
    /// atomics except the object cache, which takes a *shared* runtime
    /// read guard (never the write lock, so it cannot deadlock against
    /// the read-concurrent query path).
    pub fn stats(&self) -> DbStats {
        let (cache, fetches) = {
            let rt = self.rt.read();
            (rt.cache.stats(), rt.fetches.load(Ordering::Relaxed))
        };
        DbStats {
            cache,
            pool: self.engine.pool().stats(),
            disk: self.engine.disk().stats(),
            wal: self.engine.wal().stats(),
            locks: self.locks.stats(),
            exec: self.metrics.exec.snapshot(),
            fetches,
            method_calls: self.metrics.method_calls.get(),
            net: self.metrics.net.snapshot(),
        }
    }

    /// The network front-door metric sinks. An `orion-net` server built
    /// over this database clones the `Arc` and accounts connections,
    /// requests, errors, timeouts, and request latency into it, so
    /// [`Database::stats`] and the Prometheus rendering cover the wire
    /// with no dependency from core on the net crate.
    pub fn net_metrics(&self) -> Arc<crate::stats::NetMetrics> {
        Arc::clone(&self.metrics.net)
    }

    /// Zero every performance counter (between benchmark phases).
    pub fn reset_metrics(&self) {
        {
            let mut rt = self.rt.write();
            rt.cache.reset_stats();
            rt.fetches.store(0, Ordering::Relaxed);
        }
        self.engine.pool().reset_stats();
        self.engine.disk().reset_stats();
        self.engine.wal().reset_stats();
        self.locks.reset_stats();
        self.metrics.exec.reset();
        self.metrics.method_calls.reset();
        self.metrics.net.reset();
    }

    /// Object-cache counters.
    #[deprecated(note = "use `stats().cache`")]
    pub fn cache_stats(&self) -> CacheStats {
        self.stats().cache
    }

    /// Buffer-pool counters.
    #[deprecated(note = "use `stats().pool`")]
    pub fn pool_stats(&self) -> PoolStats {
        self.stats().pool
    }

    /// Objects fetched from storage since the last reset.
    #[deprecated(note = "use `stats().fetches`")]
    pub fn fetch_count(&self) -> u64 {
        self.stats().fetches
    }

    /// Reset all performance counters (between benchmark phases).
    #[deprecated(note = "use `reset_metrics()`")]
    pub fn reset_stats(&self) {
        self.reset_metrics();
    }

    /// Drop the object cache and buffer pool contents without touching
    /// durable state — "cold cache" setup for experiments.
    pub fn cool_caches(&self) -> DbResult<()> {
        self.engine.pool().flush_all()?;
        self.engine.pool().crash();
        self.rt.write().cache.clear();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction with no subject (system authority).
    pub fn begin(&self) -> Tx {
        Tx { storage: self.engine.begin(), subject: None }
    }

    /// Begin a transaction on behalf of an authorization subject.
    pub fn begin_as(&self, subject: &str) -> Tx {
        Tx { storage: self.engine.begin(), subject: Some(subject.to_owned()) }
    }

    /// Commit: force the log, then release locks (strict 2PL).
    pub fn commit(&self, tx: Tx) -> DbResult<()> {
        self.engine.commit(tx.storage)?;
        self.locks.release_all(tx.id());
        Ok(())
    }

    /// Roll back: undo storage, rebuild derived state, release locks.
    pub fn rollback(&self, tx: Tx) -> DbResult<()> {
        {
            // Lock order is catalog before runtime, everywhere: the
            // rebuild may install a persisted catalog snapshot.
            let mut catalog = self.catalog.write();
            let mut rt = self.rt.write();
            self.engine.abort(tx.storage)?;
            self.rebuild_runtime(&mut catalog, &mut rt)?;
        }
        self.locks.release_all(tx.id());
        Ok(())
    }

    /// Simulate a crash (volatile state lost) and run restart recovery.
    /// Locks held by in-flight transactions evaporate with the crash.
    pub fn crash_and_recover(&self) -> DbResult<()> {
        let mut catalog = self.catalog.write();
        let mut rt = self.rt.write();
        self.engine.crash();
        self.locks.reset();
        self.engine.recover()?;
        self.rebuild_runtime(&mut catalog, &mut rt)
    }

    /// Quiescent checkpoint (no active transactions).
    pub fn checkpoint(&self) -> DbResult<()> {
        self.engine.checkpoint()
    }

    // ------------------------------------------------------------------
    // Authorization plumbing
    // ------------------------------------------------------------------

    pub(crate) fn check_auth(
        &self,
        tx: &Tx,
        action: AuthAction,
        target: AuthTarget,
    ) -> DbResult<()> {
        if !self.config.authz_enabled {
            return Ok(());
        }
        match &tx.subject {
            None => Ok(()), // subject-less transactions are system authority
            Some(subject) => self.authz.read().check(subject, action, &target),
        }
    }

    // ------------------------------------------------------------------
    // Lock plumbing
    // ------------------------------------------------------------------

    pub(crate) fn lock_read(&self, tx: &Tx, oid: Oid) -> DbResult<()> {
        match self.config.locking {
            LockingStrategy::Granular => self.locks.lock_object_read(tx.id(), oid),
            LockingStrategy::CoarseClass => self.locks.lock_class_read(tx.id(), oid.class()),
        }
    }

    pub(crate) fn lock_write(&self, tx: &Tx, oid: Oid) -> DbResult<()> {
        match self.config.locking {
            LockingStrategy::Granular => self.locks.lock_object_write(tx.id(), oid),
            LockingStrategy::CoarseClass => self.locks.lock_class_write(tx.id(), oid.class()),
        }
    }

    // ------------------------------------------------------------------
    // Record access
    // ------------------------------------------------------------------

    /// Load (faulting in if needed) the record for `oid`. Applies lazy
    /// schema adaptation on read: attribute ids no longer in the class's
    /// resolved definition are hidden (physically scrubbed on next
    /// write).
    pub(crate) fn load_record(
        &self,
        rt: &mut Runtime,
        catalog: &Catalog,
        oid: Oid,
    ) -> DbResult<ObjectRecord> {
        if let Some(slot) = rt.cache.lookup(oid) {
            if let Some(rec) = rt.cache.record(slot) {
                return Ok(rec.clone());
            }
        }
        if let Some(rec) = rt.foreign_store.get(&oid) {
            return Ok(rec.clone());
        }
        let rid = *rt.directory.get(&oid).ok_or(DbError::NoSuchObject(oid))?;
        let bytes = self.engine.read(rid)?;
        let mut record = ObjectRecord::decode(&bytes)?;
        rt.fetches.fetch_add(1, Ordering::Relaxed);
        self.adapt_record(catalog, &mut record)?;
        rt.cache.admit(record.clone());
        Ok(record)
    }

    /// Like [`Database::load_record`], but `None` for dangling OIDs
    /// (path traversal over deleted targets).
    pub(crate) fn try_load_record(
        &self,
        rt: &mut Runtime,
        catalog: &Catalog,
        oid: Oid,
    ) -> Option<ObjectRecord> {
        self.load_record(rt, catalog, oid).ok()
    }

    /// Load the record for `oid` under a *shared* runtime guard — the
    /// read-concurrent query path. Cache residents are served in place
    /// (borrowed, no recency update); misses decode straight from
    /// storage and are **not** admitted, since admission needs the
    /// write lock — the query executor's per-query memo supplies
    /// repeat-access locality instead. `None` for dangling OIDs or
    /// unreadable records, mirroring [`Database::try_load_record`].
    pub(crate) fn read_record<'a>(
        &self,
        rt: &'a Runtime,
        catalog: &Catalog,
        oid: Oid,
    ) -> Option<Cow<'a, ObjectRecord>> {
        if let Some(rec) = rt.cache.peek(oid) {
            return Some(Cow::Borrowed(rec));
        }
        if let Some(rec) = rt.foreign_store.get(&oid) {
            return Some(Cow::Borrowed(rec));
        }
        let rid = *rt.directory.get(&oid)?;
        let bytes = self.engine.read(rid).ok()?;
        let mut record = ObjectRecord::decode(&bytes).ok()?;
        rt.fetches.fetch_add(1, Ordering::Relaxed);
        self.adapt_record(catalog, &mut record).ok()?;
        Some(Cow::Owned(record))
    }

    /// Lazy schema adaptation: hide attributes dropped by evolution.
    fn adapt_record(&self, catalog: &Catalog, record: &mut ObjectRecord) -> DbResult<()> {
        let resolved = match catalog.resolve(record.oid.class()) {
            Ok(r) => r,
            Err(_) => return Ok(()), // class dropped with extant instances
        };
        if record.schema_version == resolved.version {
            return Ok(());
        }
        record
            .attrs
            .retain(|(id, _)| sysattr::is_reserved(*id) || resolved.attr_by_id(*id).is_some());
        record.schema_version = resolved.version;
        Ok(())
    }

    /// Write a record through to storage, keeping the directory and
    /// cache coherent. Returns the (possibly moved) rid.
    pub(crate) fn store_record(
        &self,
        rt: &mut Runtime,
        tx: &Tx,
        record: &ObjectRecord,
    ) -> DbResult<Rid> {
        let oid = record.oid;
        let rid = *rt.directory.get(&oid).ok_or(DbError::NoSuchObject(oid))?;
        let new_rid = self.engine.update(tx.storage, rid, &record.encode())?;
        if new_rid != rid {
            rt.directory.insert(oid, new_rid);
        }
        if let Some(slot) = rt.cache.lookup(oid) {
            rt.cache.update_record(slot, record.clone());
        } else {
            rt.cache.admit(record.clone());
        }
        Ok(new_rid)
    }

    // ------------------------------------------------------------------
    // Object CRUD
    // ------------------------------------------------------------------

    /// Create an object of `class_name` with named attribute values.
    pub fn create_object(
        &self,
        tx: &Tx,
        class_name: &str,
        attrs: Vec<(&str, Value)>,
    ) -> DbResult<Oid> {
        self.create_object_impl(tx, class_name, attrs, None)
    }

    pub(crate) fn create_object_impl(
        &self,
        tx: &Tx,
        class_name: &str,
        attrs: Vec<(&str, Value)>,
        placement_hint: Option<Oid>,
    ) -> DbResult<Oid> {
        let (class, resolved, pairs) = {
            let catalog = self.catalog.read();
            let class = catalog.class_id(class_name)?;
            if self.rt.read().foreign_classes.contains_key(&class) {
                return Err(DbError::Foreign(format!(
                    "class `{class_name}` is served by a foreign database; create rows there"
                )));
            }
            self.check_auth(tx, AuthAction::Create, AuthTarget::Class(class))?;
            let resolved = catalog.resolve(class)?;

            // Validate and bind attribute values.
            let mut pairs: Vec<(u32, Value)> = Vec::with_capacity(attrs.len());
            for (name, value) in attrs {
                let attr = resolved.attr(name).ok_or_else(|| DbError::UnknownAttribute {
                    class: class_name.to_owned(),
                    attribute: name.to_owned(),
                })?;
                catalog.check_domain(class_name, attr, &value)?;
                pairs.push((attr.id, value));
            }
            (class, resolved, pairs)
            // Guard dropped here: never block on the lock manager while
            // holding a catalog guard.
        };

        let oid = self.alloc.allocate(class);
        self.lock_write(tx, oid)?;

        let catalog = self.catalog.read();
        let mut rt = self.rt.write();
        // Composite ownership checks for composite-marked attributes.
        for (attr_id, value) in &pairs {
            if let Some(attr) = resolved.attr_by_id(*attr_id) {
                if attr.composite {
                    self.claim_parts(&mut rt, oid, *attr_id, value)?;
                }
            }
        }
        let record = ObjectRecord::new(oid, resolved.version, pairs);
        let hint = if self.config.clustering {
            placement_hint.and_then(|p| rt.directory.get(&p).map(|rid| rid.page))
        } else {
            None
        };
        let rid = self.engine.insert(tx.storage, &record.encode(), hint)?;
        rt.directory.insert(oid, rid);
        rt.extents.entry(class).or_default().insert(oid);
        self.add_reverse_edges(&mut rt, &record);
        self.index_object_insert(&mut rt, &catalog, &record)?;
        rt.cache.admit(record);
        Ok(oid)
    }

    /// Read one attribute by name (subclass-aware via the OID's class).
    pub fn get(&self, tx: &Tx, oid: Oid, attr_name: &str) -> DbResult<Value> {
        self.check_auth(tx, AuthAction::Read, AuthTarget::Object(oid))?;
        self.lock_read(tx, oid)?;
        let catalog = self.catalog.read();
        let mut rt = self.rt.write();
        self.get_attr_internal(&mut rt, &catalog, oid, attr_name)
    }

    pub(crate) fn get_attr_internal(
        &self,
        rt: &mut Runtime,
        catalog: &Catalog,
        oid: Oid,
        attr_name: &str,
    ) -> DbResult<Value> {
        // Generic objects forward reads to their default version.
        let record = self.load_record(rt, catalog, oid)?;
        if let Some(Value::Ref(default)) = record.get(sysattr::ATTR_DEFAULT_VERSION) {
            let default = *default;
            return self.get_attr_internal(rt, catalog, default, attr_name);
        }
        let resolved = catalog.resolve(oid.class())?;
        let attr = resolved.attr(attr_name).ok_or_else(|| DbError::UnknownAttribute {
            class: resolved.name.clone(),
            attribute: attr_name.to_owned(),
        })?;
        Ok(match record.get(attr.id) {
            Some(v) if !v.is_null() => v.clone(),
            _ => attr.default.clone(),
        })
    }

    /// Update one attribute by name.
    pub fn set(&self, tx: &Tx, oid: Oid, attr_name: &str, value: Value) -> DbResult<()> {
        self.check_auth(tx, AuthAction::Write, AuthTarget::Object(oid))?;
        // 2PL locks are acquired before any catalog guard is taken: a
        // thread must never block on the lock manager while holding a
        // catalog guard (rollback takes the catalog write lock).
        self.lock_write(tx, oid)?;
        let (resolved, attr) = {
            let catalog = self.catalog.read();
            let resolved = catalog.resolve(oid.class())?;
            let attr = resolved
                .attr(attr_name)
                .ok_or_else(|| DbError::UnknownAttribute {
                    class: resolved.name.clone(),
                    attribute: attr_name.to_owned(),
                })?
                .clone();
            catalog.check_domain(&resolved.name, &attr, &value)?;
            (resolved, attr)
        };

        // Composite unlinks trigger dependent deletes; those parts must
        // be X-locked *before* the runtime lock is taken (a thread must
        // never block on the lock manager while holding the runtime
        // mutex or a catalog guard).
        if attr.composite {
            let doomed: Vec<Oid> = {
                let catalog = self.catalog.read();
                let mut rt = self.rt.write();
                let record = self.load_record(&mut rt, &catalog, oid)?;
                let old = record.get(attr.id).cloned().unwrap_or(Value::Null);
                let mut old_parts = Vec::new();
                old.collect_refs(&mut old_parts);
                let mut new_parts = Vec::new();
                value.collect_refs(&mut new_parts);
                old_parts
                    .into_iter()
                    .filter(|p| !new_parts.contains(p))
                    .flat_map(|p| self.composite_closure(&rt, p))
                    .collect()
            };
            for target in &doomed {
                self.lock_write(tx, *target)?;
            }
        }

        let catalog = self.catalog.read();
        let mut rt = self.rt.write();
        let mut record = self.load_record(&mut rt, &catalog, oid)?;
        // Version discipline: working versions are immutable; generic
        // objects are not directly writable.
        if record.get(sysattr::ATTR_DEFAULT_VERSION).is_some() {
            return Err(DbError::Version(
                "cannot update a generic object; derive and update a version".into(),
            ));
        }
        if let Some(Value::Str(status)) = record.get(sysattr::ATTR_VERSION_STATUS) {
            if status == "working" {
                return Err(DbError::Version(format!(
                    "version {oid} is a working version and is immutable"
                )));
            }
        }
        let old_value = record.get(attr.id).cloned().unwrap_or(Value::Null);

        // Composite bookkeeping.
        if attr.composite {
            self.recheck_composite_change(&mut rt, tx, &catalog, oid, attr.id, &old_value, &value)?;
        }

        // Nested-index bookkeeping, phase 1: snapshot affected roots'
        // keys before the change.
        let nested_pre = self.nested_snapshot(&mut rt, &catalog, oid)?;

        // Apply the change.
        self.remove_reverse_edges_for_attr(&mut rt, oid, attr.id, &old_value);
        record.set(attr.id, value.clone());
        record.schema_version = resolved.version;
        self.store_record(&mut rt, tx, &record)?;
        self.add_reverse_edges_for_attr(&mut rt, oid, attr.id, &value);

        // Simple-index maintenance.
        self.simple_index_update(&mut rt, &catalog, oid, attr.id, &old_value, &value);

        // Nested-index bookkeeping, phase 2: diff against the snapshot.
        self.nested_apply_diff(&mut rt, &catalog, nested_pre)?;

        self.notify.lock().publish(oid, NotificationKind::Updated, None);
        Ok(())
    }

    /// Delete an object. Composite (dependent) parts are deleted with it.
    pub fn delete_object(&self, tx: &Tx, oid: Oid) -> DbResult<()> {
        self.check_auth(tx, AuthAction::Delete, AuthTarget::Object(oid))?;
        // Collect the composite closure (parts are dependent: they go too).
        let mut order: Vec<Oid> = Vec::new();
        {
            let rt = self.rt.read();
            let mut stack = vec![oid];
            let mut seen = HashSet::new();
            while let Some(cur) = stack.pop() {
                if !seen.insert(cur) {
                    continue;
                }
                order.push(cur);
                for (part, (parent, _)) in rt.composite_owner.iter() {
                    if *parent == cur {
                        stack.push(*part);
                    }
                }
            }
        }
        // Lock everything up front (no catalog guard held while the
        // lock manager may block), then delete children before parents.
        for target in order.iter().rev() {
            self.lock_write(tx, *target)?;
        }
        let catalog = self.catalog.read();
        for target in order.iter().rev() {
            self.delete_single(tx, &catalog, *target)?;
        }
        Ok(())
    }

    fn delete_single(&self, tx: &Tx, catalog: &Catalog, oid: Oid) -> DbResult<()> {
        let mut rt = self.rt.write();
        let record = self.load_record(&mut rt, catalog, oid)?;
        let nested_pre = self.nested_snapshot(&mut rt, catalog, oid)?;

        let rid = *rt.directory.get(&oid).ok_or(DbError::NoSuchObject(oid))?;
        self.engine.delete(tx.storage, rid)?;
        rt.directory.remove(&oid);
        if let Some(extent) = rt.extents.get_mut(&oid.class()) {
            extent.remove(&oid);
        }
        rt.cache.invalidate(oid);
        self.remove_reverse_edges(&mut rt, &record);
        rt.composite_owner.remove(&oid);
        self.index_object_remove(&mut rt, catalog, &record)?;
        self.nested_apply_diff(&mut rt, catalog, nested_pre)?;
        drop(rt);
        self.notify.lock().publish(oid, NotificationKind::Deleted, None);
        Ok(())
    }

    /// Does the object exist?
    pub fn exists(&self, oid: Oid) -> bool {
        let rt = self.rt.read();
        rt.directory.contains_key(&oid) || rt.foreign_store.contains_key(&oid)
    }

    /// Number of instances of exactly `class_name` (not subclasses).
    pub fn extent_len(&self, class_name: &str) -> DbResult<usize> {
        let class = self.catalog.read().class_id(class_name)?;
        Ok(self.rt.read().extents.get(&class).map_or(0, BTreeSet::len))
    }

    // ------------------------------------------------------------------
    // Navigation (swizzled traversal, experiment E3)
    // ------------------------------------------------------------------

    /// Navigate a chain of reference attributes from `oid`, returning
    /// the object at the end. Uses the object cache's swizzle slots: a
    /// warm traversal is pure pointer chasing, no hash lookups (§3.3's
    /// "a few memory lookups").
    pub fn navigate(&self, tx: &Tx, oid: Oid, path: &[&str]) -> DbResult<Oid> {
        self.lock_read(tx, oid)?;
        let catalog = self.catalog.read();
        let mut rt = self.rt.write();
        let mut slot = match rt.cache.lookup(oid) {
            Some(s) => s,
            None => {
                let record = self.load_record(&mut rt, &catalog, oid)?;
                rt.cache.admit(record)
            }
        };
        // Per-(step, class) attribute-id memo: traversals revisit the
        // same classes, and resolving names per hop would mask the
        // swizzle fast path the experiment measures.
        let mut attr_memo: HashMap<(usize, ClassId), u32> = HashMap::new();
        let mut cur_oid = oid;
        for (step_idx, step) in path.iter().enumerate() {
            let attr_id = match attr_memo.get(&(step_idx, cur_oid.class())) {
                Some(id) => *id,
                None => {
                    let resolved = catalog.resolve(cur_oid.class())?;
                    let attr = resolved.attr(step).ok_or_else(|| DbError::UnknownAttribute {
                        class: resolved.name.clone(),
                        attribute: (*step).to_owned(),
                    })?;
                    attr_memo.insert((step_idx, cur_oid.class()), attr.id);
                    attr.id
                }
            };
            let next = match rt.cache.traverse_ref(slot, attr_id) {
                Some(Ok(next_slot)) => next_slot,
                Some(Err(miss_oid)) => {
                    // Fault the target in, then record the swizzle.
                    let record = self.load_record(&mut rt, &catalog, miss_oid)?;
                    let next_slot = rt.cache.admit(record);
                    rt.cache.note_swizzle(slot, attr_id, next_slot);
                    next_slot
                }
                None => {
                    return Err(DbError::Query(format!(
                        "attribute `{step}` of {cur_oid} is not a scalar reference"
                    )))
                }
            };
            cur_oid = rt
                .cache
                .record(next)
                .map(|r| r.oid)
                .ok_or_else(|| DbError::Internal("slot vanished mid-navigation".into()))?;
            slot = next;
        }
        Ok(cur_oid)
    }

    // ------------------------------------------------------------------
    // Methods (late binding)
    // ------------------------------------------------------------------

    /// Define a method: signature in the catalog, body in the registry.
    pub fn define_method(
        &self,
        class_name: &str,
        selector: &str,
        arity: u8,
        body: crate::methods::MethodBody,
    ) -> DbResult<()> {
        {
            let mut catalog = self.catalog.write();
            let class = catalog.class_id(class_name)?;
            catalog.add_method(class, selector, arity)?;
            self.methods.write().register(class, selector, body);
        }
        self.persist_system_state()
    }

    /// Re-register a method body for a signature that already exists in
    /// the catalog — after a cold restart, signatures persist but native
    /// bodies must be re-supplied by the application.
    pub fn register_method_body(
        &self,
        class_name: &str,
        selector: &str,
        body: crate::methods::MethodBody,
    ) -> DbResult<()> {
        let catalog = self.catalog.read();
        let class = catalog.class_id(class_name)?;
        if catalog.class(class)?.local_method(selector).is_none() {
            return Err(DbError::UnknownMethod {
                class: class_name.to_owned(),
                selector: selector.to_owned(),
            });
        }
        self.methods.write().register(class, selector, body);
        Ok(())
    }

    /// Send a message: late-bind `selector` against the receiver's class
    /// and invoke the winning implementation (§3.1 concept 6).
    pub fn call(&self, tx: &Tx, receiver: Oid, selector: &str, args: &[Value]) -> DbResult<Value> {
        let (defining, arity) = {
            let catalog = self.catalog.read();
            let defining = catalog.resolve_method(receiver.class(), selector)?;
            let resolved = catalog.resolve(receiver.class())?;
            let arity = resolved.method(selector).map(|m| m.arity).unwrap_or(0);
            (defining, arity)
        };
        if args.len() != arity as usize {
            return Err(DbError::Query(format!(
                "method `{selector}` expects {arity} argument(s), got {}",
                args.len()
            )));
        }
        let body = self.methods.read().body(defining, selector).ok_or_else(|| {
            DbError::Internal(format!(
                "method `{selector}` resolved to class {defining} but has no registered body"
            ))
        })?;
        self.metrics.method_calls.inc();
        body(self, tx, receiver, args)
    }

    // ------------------------------------------------------------------
    // Derived-state rebuild (rollback / recovery)
    // ------------------------------------------------------------------

    /// Rebuild every piece of derived state from the stored records.
    /// The caller holds the catalog write lock (lock order: catalog
    /// before runtime) — a persisted system snapshot replaces `catalog`
    /// in place.
    pub(crate) fn rebuild_runtime(
        &self,
        catalog: &mut orion_schema::Catalog,
        rt: &mut Runtime,
    ) -> DbResult<()> {
        rt.directory.clear();
        rt.extents.clear();
        rt.cache.clear();
        rt.reverse.clear();
        rt.composite_owner.clear();
        // Note: foreign_store survives — it is not storage-backed.
        for inst in &mut rt.indexes {
            *inst = IndexInstance::new(inst.def.clone());
        }

        let mut records: Vec<(Rid, ObjectRecord)> = Vec::new();
        let mut scan_err: Option<DbError> = None;
        self.engine.scan_all(|rid, bytes| match ObjectRecord::decode(bytes) {
            Ok(rec) => records.push((rid, rec)),
            Err(e) => scan_err = Some(e),
        })?;
        if let Some(e) = scan_err {
            return Err(e);
        }

        // Install the persisted system state (catalog, index defs,
        // views) before touching anything that needs the schema. The
        // in-memory catalog wins only if no system record exists (e.g.
        // before the first DDL persisted one).
        if let Some(pos) =
            records.iter().position(|(_, r)| r.oid.class() == crate::persist::SYSTEM_CLASS)
        {
            let (rid, record) = records.remove(pos);
            rt.system_rid = Some(rid);
            let state = Self::decode_system_record(&record)?;
            crate::persist::install_state(self, catalog, rt, state);
        }
        let catalog = &*catalog;

        let mut max_serial = 0u64;
        for (rid, record) in &records {
            let oid = record.oid;
            max_serial = max_serial.max(oid.serial());
            rt.directory.insert(oid, *rid);
            rt.extents.entry(oid.class()).or_default().insert(oid);
            self.add_reverse_edges(rt, record);
        }
        self.alloc.seed_above(max_serial);

        // Composite ownership + indexes need resolved schemas.
        for (_, record) in &records {
            let Ok(resolved) = catalog.resolve(record.oid.class()) else { continue };
            for (attr_id, value) in &record.attrs {
                if let Some(attr) = resolved.attr_by_id(*attr_id) {
                    if attr.composite {
                        let mut refs = Vec::new();
                        value.collect_refs(&mut refs);
                        for part in refs {
                            rt.composite_owner.insert(part, (record.oid, *attr_id));
                        }
                    }
                }
            }
        }
        for (_, record) in &records {
            self.index_object_insert(rt, catalog, record)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reverse-reference maintenance
    // ------------------------------------------------------------------

    pub(crate) fn add_reverse_edges(&self, rt: &mut Runtime, record: &ObjectRecord) {
        for (attr_id, value) in &record.attrs {
            self.add_reverse_edges_for_attr(rt, record.oid, *attr_id, value);
        }
    }

    pub(crate) fn add_reverse_edges_for_attr(
        &self,
        rt: &mut Runtime,
        from: Oid,
        attr: u32,
        value: &Value,
    ) {
        let mut refs = Vec::new();
        value.collect_refs(&mut refs);
        for target in refs {
            rt.reverse.entry(target).or_default().insert((from, attr));
        }
    }

    pub(crate) fn remove_reverse_edges(&self, rt: &mut Runtime, record: &ObjectRecord) {
        for (attr_id, value) in &record.attrs {
            self.remove_reverse_edges_for_attr(rt, record.oid, *attr_id, value);
        }
    }

    pub(crate) fn remove_reverse_edges_for_attr(
        &self,
        rt: &mut Runtime,
        from: Oid,
        attr: u32,
        value: &Value,
    ) {
        let mut refs = Vec::new();
        value.collect_refs(&mut refs);
        for target in refs {
            if let Some(edges) = rt.reverse.get_mut(&target) {
                edges.remove(&(from, attr));
                if edges.is_empty() {
                    rt.reverse.remove(&target);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Composite-object bookkeeping
    // ------------------------------------------------------------------

    /// Claim every part referenced by a composite attribute value for
    /// `(parent, attr)`; rejects parts already owned elsewhere.
    fn claim_parts(
        &self,
        rt: &mut Runtime,
        parent: Oid,
        attr: u32,
        value: &Value,
    ) -> DbResult<()> {
        let mut parts = Vec::new();
        value.collect_refs(&mut parts);
        for part in &parts {
            if let Some((other_parent, other_attr)) = rt.composite_owner.get(part) {
                if !(*other_parent == parent && *other_attr == attr) {
                    return Err(DbError::Composite(format!(
                        "object {part} is already an exclusive part of {other_parent}"
                    )));
                }
            }
            if *part == parent {
                return Err(DbError::Composite("an object cannot be its own part".into()));
            }
        }
        for part in parts {
            rt.composite_owner.insert(part, (parent, attr));
        }
        Ok(())
    }

    /// Handle a composite attribute change: newly referenced parts are
    /// claimed; parts dropped from the value are *deleted* (dependent
    /// exclusive semantics, \[KIM89c\]).
    #[allow(clippy::too_many_arguments)]
    fn recheck_composite_change(
        &self,
        rt: &mut Runtime,
        tx: &Tx,
        catalog: &Catalog,
        parent: Oid,
        attr: u32,
        old_value: &Value,
        new_value: &Value,
    ) -> DbResult<()> {
        let mut old_parts = Vec::new();
        old_value.collect_refs(&mut old_parts);
        let mut new_parts = Vec::new();
        new_value.collect_refs(&mut new_parts);
        self.claim_parts(rt, parent, attr, new_value)?;
        let removed: Vec<Oid> =
            old_parts.into_iter().filter(|p| !new_parts.contains(p)).collect();
        for part in removed {
            rt.composite_owner.remove(&part);
            // Dependent semantics: an unlinked part does not survive.
            // (Recursive delete through the public path would deadlock
            // on the runtime mutex; parts of parts are handled because
            // delete_single is called per closure level here.)
            // Parts were X-locked by set() before the runtime lock was
            // taken; deleting here cannot block.
            let closure = self.composite_closure(rt, part);
            for target in closure.iter().rev() {
                self.delete_single_locked(rt, tx, catalog, *target)?;
            }
        }
        Ok(())
    }

    pub(crate) fn composite_closure(&self, rt: &Runtime, root: Oid) -> Vec<Oid> {
        let mut order = Vec::new();
        let mut stack = vec![root];
        let mut seen = HashSet::new();
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur) {
                continue;
            }
            order.push(cur);
            for (part, (parent, _)) in rt.composite_owner.iter() {
                if *parent == cur {
                    stack.push(*part);
                }
            }
        }
        order
    }

    /// `delete_single` body for callers already holding the runtime lock.
    fn delete_single_locked(
        &self,
        rt: &mut Runtime,
        tx: &Tx,
        catalog: &Catalog,
        oid: Oid,
    ) -> DbResult<()> {
        let record = self.load_record(rt, catalog, oid)?;
        let nested_pre = self.nested_snapshot(rt, catalog, oid)?;
        let rid = *rt.directory.get(&oid).ok_or(DbError::NoSuchObject(oid))?;
        self.engine.delete(tx.storage, rid)?;
        rt.directory.remove(&oid);
        if let Some(extent) = rt.extents.get_mut(&oid.class()) {
            extent.remove(&oid);
        }
        rt.cache.invalidate(oid);
        self.remove_reverse_edges(rt, &record);
        rt.composite_owner.remove(&oid);
        self.index_object_remove(rt, catalog, &record)?;
        self.nested_apply_diff(rt, catalog, nested_pre)?;
        self.notify.lock().publish(oid, NotificationKind::Deleted, None);
        Ok(())
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rt = self.rt.read();
        f.debug_struct("Database")
            .field("classes", &self.catalog.read().class_count())
            .field("objects", &rt.directory.len())
            .field("indexes", &rt.indexes.len())
            .finish()
    }
}
