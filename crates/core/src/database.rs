//! The `Database` facade: transactions and object CRUD.
//!
//! Everything an application touches goes through [`Database`]. The
//! design keeps one invariant above all others: **storage is the truth**
//! — the object directory, class extents, reverse references, composite
//! ownership, and every index are deterministic functions of the stored
//! records. Transaction rollback therefore runs the storage engine's
//! undo and then rebuilds the derived state; crash recovery does the
//! same after WAL restart. (Rebuild is O(database); rollback is not a
//! hot path in any of the paper's workloads.)
//!
//! Concurrency: writer *isolation* comes from the 2PL hierarchy locks
//! in `orion-tx` (IX on class + X on object for DML), never from
//! structural mutexes. The [`Runtime`]'s components each synchronize
//! themselves (see `crate::runtime` for the canonical lock order), so
//! transactions touching disjoint objects execute concurrently; the old
//! big runtime lock survives only as the *maintenance gate* `rt`, taken
//! shared by all normal work and exclusively by whole-state rebuilds.

use crate::authz::{AuthAction, AuthTarget, AuthzManager};
use crate::cache::Hop;
use crate::methods::MethodRegistry;
use crate::multidb::ForeignAdapter;
use crate::notify::{NotificationKind, NotifyCenter};
use crate::runtime::Runtime;
use crate::stats::{DbMetrics, DbStats};
use crate::sysattr;
use orion_index::IndexInstance;
use orion_schema::Catalog;
use orion_storage::heap::Rid;
use orion_storage::{FileDisk, SimDisk, StorageBackend, StorageEngine, TxnId};
use orion_tx::LockManager;
use orion_types::codec::ObjectRecord;
use orion_types::{ClassId, DbError, DbResult, Oid, OidAllocator, Value};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How object operations map onto the lock manager (experiment E8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockingStrategy {
    /// Intention locks on ancestors, object-level S/X (the \[GARZ88\]
    /// granularity scheme).
    Granular,
    /// Class-level S/X for every object operation (the coarse baseline).
    CoarseClass,
}

/// Which storage backend a database opens over.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum StorageSpec {
    /// The in-memory simulated disk: fault-injectable, instrumented,
    /// and gone when the process exits. The default, and what every
    /// test and benchmark uses unless it is explicitly exercising
    /// durability across processes.
    #[default]
    Memory,
    /// Real files under the given directory (`pages.dat` + `wal.log`)
    /// with real `fsync` durability barriers. Opening an existing
    /// directory replays its WAL.
    File(PathBuf),
}

/// Tunables; defaults are sensible for tests and examples.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Buffer-pool frames (4 KiB pages).
    pub buffer_pages: usize,
    /// Object-cache capacity (resident objects).
    pub cache_objects: usize,
    /// Pointer swizzling in the object cache (experiment E3).
    pub swizzling: bool,
    /// Lock granularity (experiment E8).
    pub locking: LockingStrategy,
    /// Enforce authorization checks for transactions with a subject.
    pub authz_enabled: bool,
    /// Cluster composite parts with their parent (experiment E10).
    pub clustering: bool,
    /// Lock-wait timeout.
    pub lock_timeout: Duration,
    /// Worker threads for query candidate evaluation: `0` sizes to the
    /// machine's available parallelism, `1` forces serial execution.
    pub query_threads: usize,
    /// MVCC snapshot reads for queries: each query captures a commit
    /// timestamp and reads from per-object version chains, taking **no
    /// 2PL locks at all**. `false` restores the legacy behavior where a
    /// query takes `S` locks on every class in scope (and therefore
    /// blocks behind — and is blocked by — writers and schema changes).
    pub mvcc_reads: bool,
    /// Where pages and the WAL live (see [`StorageSpec`]).
    pub storage: StorageSpec,
    /// Group-commit window: how long a commit's flush leader lingers
    /// for other committers to join its fsync. `ZERO` (the default)
    /// flushes immediately but still coalesces opportunistically —
    /// committers that arrive while a flush is in flight share the
    /// next one.
    pub group_commit_window: Duration,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buffer_pages: 256,
            cache_objects: 4096,
            swizzling: true,
            locking: LockingStrategy::Granular,
            authz_enabled: false,
            clustering: true,
            lock_timeout: Duration::from_secs(5),
            query_threads: 0,
            mvcc_reads: true,
            storage: StorageSpec::Memory,
            group_commit_window: Duration::ZERO,
        }
    }
}

impl DbConfig {
    /// Start building a configuration. `build()` validates, so a
    /// database constructed through the builder never starts with a
    /// zero-sized buffer pool or similar nonsense.
    pub fn builder() -> DbConfigBuilder {
        DbConfigBuilder { config: DbConfig::default() }
    }

    /// Check every invariant the builder enforces. `Err(DbError::Config)`
    /// names the first offending setting.
    pub fn validate(&self) -> DbResult<()> {
        if self.buffer_pages == 0 {
            return Err(DbError::Config("buffer_pages must be at least 1".into()));
        }
        if self.cache_objects == 0 {
            return Err(DbError::Config("cache_objects must be at least 1".into()));
        }
        if self.lock_timeout == Duration::ZERO {
            return Err(DbError::Config("lock_timeout must be non-zero".into()));
        }
        Ok(())
    }
}

/// Builder for [`DbConfig`]; settings are validated at [`build`].
///
/// [`build`]: DbConfigBuilder::build
#[derive(Debug, Clone, Default)]
pub struct DbConfigBuilder {
    config: DbConfig,
}

impl DbConfigBuilder {
    /// Buffer-pool frames (4 KiB pages). Must be at least 1.
    pub fn buffer_pages(mut self, pages: usize) -> Self {
        self.config.buffer_pages = pages;
        self
    }

    /// Object-cache capacity (resident objects). Must be at least 1.
    pub fn cache_objects(mut self, objects: usize) -> Self {
        self.config.cache_objects = objects;
        self
    }

    /// Pointer swizzling in the object cache.
    pub fn swizzling(mut self, on: bool) -> Self {
        self.config.swizzling = on;
        self
    }

    /// Lock granularity.
    pub fn locking(mut self, strategy: LockingStrategy) -> Self {
        self.config.locking = strategy;
        self
    }

    /// Enforce authorization checks for transactions with a subject.
    pub fn authz_enabled(mut self, on: bool) -> Self {
        self.config.authz_enabled = on;
        self
    }

    /// Cluster composite parts with their parent.
    pub fn clustering(mut self, on: bool) -> Self {
        self.config.clustering = on;
        self
    }

    /// Lock-wait timeout. Must be non-zero.
    pub fn lock_timeout(mut self, timeout: Duration) -> Self {
        self.config.lock_timeout = timeout;
        self
    }

    /// Worker threads for query candidate evaluation (`0` = auto).
    pub fn query_threads(mut self, threads: usize) -> Self {
        self.config.query_threads = threads;
        self
    }

    /// MVCC snapshot reads for queries (`false` = legacy S-locking).
    pub fn mvcc_reads(mut self, on: bool) -> Self {
        self.config.mvcc_reads = on;
        self
    }

    /// Storage backend selection (in-memory or real files).
    pub fn storage(mut self, spec: StorageSpec) -> Self {
        self.config.storage = spec;
        self
    }

    /// Group-commit window (`ZERO` = flush immediately, coalescing
    /// only committers already waiting).
    pub fn group_commit_window(mut self, window: Duration) -> Self {
        self.config.group_commit_window = window;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> DbResult<DbConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A transaction handle. Cheap to clone; all state lives in the engine
/// and lock manager under the transaction's id.
#[derive(Debug, Clone)]
pub struct Tx {
    pub(crate) storage: TxnId,
    pub(crate) subject: Option<String>,
}

impl Tx {
    /// The numeric transaction id.
    pub fn id(&self) -> u64 {
        self.storage.0
    }

    /// The authorization subject, if any.
    pub fn subject(&self) -> Option<&str> {
        self.subject.as_deref()
    }
}

/// The orion object-oriented database.
pub struct Database {
    pub(crate) catalog: RwLock<Catalog>,
    pub(crate) engine: StorageEngine,
    pub(crate) locks: LockManager,
    /// The maintenance gate around the decomposed [`Runtime`]: shared
    /// for DML/queries/reads (components synchronize themselves),
    /// exclusive only for whole-state rebuilds. See `crate::runtime`
    /// for the lock order.
    pub(crate) rt: RwLock<Runtime>,
    pub(crate) methods: RwLock<MethodRegistry>,
    pub(crate) authz: RwLock<AuthzManager>,
    pub(crate) views: RwLock<HashMap<String, String>>,
    pub(crate) rules: RwLock<Vec<crate::rules::Rule>>,
    pub(crate) notify: Mutex<NotifyCenter>,
    pub(crate) adapters: RwLock<HashMap<String, Box<dyn ForeignAdapter>>>,
    /// Per-object version chains for MVCC snapshot reads. Lives outside
    /// the [`Runtime`] on purpose: rollback and recovery rebuild the
    /// runtime wholesale, but committed version history must survive a
    /// rollback of some *other* transaction.
    pub(crate) mvcc: crate::mvcc::VersionStore,
    pub(crate) config: DbConfig,
    pub(crate) alloc: OidAllocator,
    pub(crate) metrics: DbMetrics,
}

impl Database {
    /// A fresh in-memory database with default configuration.
    #[deprecated(note = "use `Database::open_in_memory()` or `Database::open(path)`")]
    pub fn new() -> Self {
        Self::open_in_memory()
    }

    /// A fresh in-memory database with default configuration. State
    /// lives in a [`SimDisk`] and dies with the process — the right
    /// constructor for tests, examples, and experiments.
    pub fn open_in_memory() -> Self {
        Self::with_config(DbConfig::default())
    }

    /// Open (or create) a durable database rooted at `path` over a
    /// real-file backend with real `fsync`. If the directory already
    /// holds data from a previous process, its WAL is replayed and all
    /// derived state (catalog, extents, indexes) rebuilt before the
    /// handle is returned; method bodies must be re-registered by the
    /// caller (they are code, not data).
    pub fn open(path: impl Into<PathBuf>) -> DbResult<Self> {
        let config =
            DbConfig { storage: StorageSpec::File(path.into()), ..DbConfig::default() };
        Self::build(config)
    }

    /// A fresh database with explicit configuration.
    ///
    /// Infallible for in-memory storage. Panics if the configuration
    /// names a file backend that fails to open — use [`Database::open`]
    /// or [`Database::try_with_config`] for file-backed storage.
    pub fn with_config(config: DbConfig) -> Self {
        Self::build(config).expect(
            "opening storage failed; use Database::open or try_with_config for file backends",
        )
    }

    /// A fresh database from a validated configuration; rejects invalid
    /// settings with [`DbError::Config`]. Equivalent to
    /// `DbConfig::builder()...build()` followed by
    /// [`Database::with_config`], but surfaces file-backend open and
    /// replay errors instead of panicking.
    pub fn try_with_config(config: DbConfig) -> DbResult<Self> {
        config.validate()?;
        Self::build(config)
    }

    /// Construct over the configured backend; replay existing state.
    fn build(config: DbConfig) -> DbResult<Self> {
        let backend: Arc<dyn StorageBackend> = match &config.storage {
            StorageSpec::Memory => Arc::new(SimDisk::new()),
            StorageSpec::File(dir) => Arc::new(FileDisk::open(dir)?),
        };
        let had_state = backend.page_count() > 0 || backend.log_len()? > 0;
        let engine = StorageEngine::with_backend(backend, config.buffer_pages)?;
        engine.wal().set_group_commit_window(config.group_commit_window);
        let db = Database {
            catalog: RwLock::new(Catalog::new()),
            engine,
            locks: LockManager::with_timeout(config.lock_timeout),
            rt: RwLock::new(Runtime::new(&config)),
            methods: RwLock::new(MethodRegistry::new()),
            authz: RwLock::new(AuthzManager::new()),
            views: RwLock::new(HashMap::new()),
            rules: RwLock::new(Vec::new()),
            notify: Mutex::new(NotifyCenter::new()),
            adapters: RwLock::new(HashMap::new()),
            mvcc: crate::mvcc::VersionStore::new(),
            config,
            alloc: OidAllocator::new(),
            metrics: DbMetrics::default(),
        };
        if had_state {
            // Same sequence as a crash restart: WAL redo/undo, page
            // scrub, then a wholesale rebuild of derived state from
            // the recovered records.
            db.simulate_cold_restart()?;
        }
        Ok(db)
    }

    /// The active configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// The storage engine (stats and checkpoint access).
    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// The lock manager.
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Run `f` with read access to the catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.catalog.read())
    }

    /// Run `f` with write access to the catalog. For tuning knobs (e.g.
    /// toggling the method cache); schema changes should go through
    /// [`Database::create_class`] / [`Database::evolve`], which also
    /// take the required locks.
    pub fn with_catalog_mut<R>(&self, f: impl FnOnce(&mut Catalog) -> R) -> R {
        f(&mut self.catalog.write())
    }

    // ------------------------------------------------------------------
    // Maintenance gate
    // ------------------------------------------------------------------

    /// Shared gate acquisition — every normal operation (DML, query,
    /// read, stats). Blocks only against a concurrent exclusive holder
    /// (rollback/recovery/index DDL), never against other shared work.
    pub(crate) fn rt_read(&self) -> RwLockReadGuard<'_, Runtime> {
        self.metrics.gate_shared.inc();
        self.rt.read()
    }

    /// Exclusive gate acquisition — whole-state rebuilds only. Waits for
    /// every in-flight shared holder to drain; the wait is recorded so
    /// pathological gate contention shows up in `stats()`.
    pub(crate) fn rt_write(&self) -> RwLockWriteGuard<'_, Runtime> {
        self.metrics.gate_exclusive.inc();
        let start = Instant::now();
        let guard = self.rt.write();
        self.metrics.gate_exclusive_wait.observe(start.elapsed());
        guard
    }

    /// One structured snapshot of every performance counter in the
    /// system: object cache, buffer pool, disk, WAL, lock manager,
    /// query executor, fetches, maintenance gate, and method
    /// dispatches. Safe to call while queries and transactions run —
    /// everything is lock-free atomics except the object cache, whose
    /// shard locks are leaves taken one at a time under a *shared* gate
    /// guard (never the exclusive gate, never the 2PL lock manager), so
    /// `stats()` can never deadlock against writers or rollback.
    pub fn stats(&self) -> DbStats {
        let (cache, fetches) = {
            let rt = self.rt_read();
            (rt.cache.stats(), rt.fetches.load(Ordering::Relaxed))
        };
        DbStats {
            cache,
            pool: self.engine.pool().stats(),
            disk: self.engine.disk().stats(),
            wal: self.engine.wal().stats(),
            locks: self.locks.stats(),
            exec: self.metrics.exec.snapshot(),
            gate: self.metrics.gate_snapshot(),
            fetches,
            method_calls: self.metrics.method_calls.get(),
            mvcc: self.mvcc.stats_snapshot(),
            net: self.metrics.net.snapshot(),
            twopc: self.metrics.twopc.snapshot(self.engine.prepared_txns().len() as u64),
            fault: self.engine.fault_stats(),
            recovery: self.engine.recovery_stats(),
        }
    }

    /// The network front-door metric sinks. An `orion-net` server built
    /// over this database clones the `Arc` and accounts connections,
    /// requests, errors, timeouts, and request latency into it, so
    /// [`Database::stats`] and the Prometheus rendering cover the wire
    /// with no dependency from core on the net crate.
    pub fn net_metrics(&self) -> Arc<crate::stats::NetMetrics> {
        Arc::clone(&self.metrics.net)
    }

    /// Zero every performance counter (between benchmark phases).
    pub fn reset_metrics(&self) {
        {
            let rt = self.rt_read();
            rt.cache.reset_stats();
            rt.fetches.store(0, Ordering::Relaxed);
        }
        self.engine.pool().reset_stats();
        self.engine.disk().reset_stats();
        self.engine.wal().reset_stats();
        self.locks.reset_stats();
        self.mvcc.metrics.reset();
        self.metrics.exec.reset();
        self.metrics.method_calls.reset();
        self.metrics.net.reset();
        self.metrics.twopc.reset();
        self.metrics.gate_shared.reset();
        self.metrics.gate_exclusive.reset();
        self.metrics.gate_exclusive_wait.reset();
    }

    /// Drop the object cache and buffer pool contents without touching
    /// durable state — "cold cache" setup for experiments.
    pub fn cool_caches(&self) -> DbResult<()> {
        self.engine.pool().flush_all()?;
        self.engine.pool().crash();
        self.rt_read().cache.clear();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction with no subject (system authority).
    pub fn begin(&self) -> Tx {
        Tx { storage: self.engine.begin(), subject: None }
    }

    /// Begin a transaction on behalf of an authorization subject.
    pub fn begin_as(&self, subject: &str) -> Tx {
        Tx { storage: self.engine.begin(), subject: Some(subject.to_owned()) }
    }

    /// Commit: force the log, then release locks (strict 2PL).
    ///
    /// Locks are released even when the log force fails (an injected
    /// partial flush leaves the commit in doubt) — the transaction is
    /// over either way, and holding its locks forever would wedge every
    /// later transaction touching the same objects.
    pub fn commit(&self, tx: Tx) -> DbResult<()> {
        let result = self.engine.commit(tx.storage);
        if self.config.mvcc_reads {
            match &result {
                // Durable: publish the write set under a fresh commit
                // timestamp — snapshot readers see it atomically.
                Ok(()) => {
                    self.mvcc.commit_publish(tx.id());
                }
                // In doubt: drop the staged after-images. The chains
                // keep their committed pre-images, so snapshot readers
                // stay on the last known-good state; the caller is
                // expected to `crash_and_recover`, which resolves the
                // in-doubt state and resets the version store to match.
                Err(_) => self.mvcc.discard(tx.id()),
            }
        }
        self.locks.release_all(tx.id());
        result
    }

    /// Roll back: undo storage, rebuild derived state, release locks.
    ///
    /// Locks are released even when the undo or rebuild fails mid-way
    /// (an injected fault): the transaction cannot continue, and the
    /// caller is expected to `crash_and_recover` to restore consistency.
    pub fn rollback(&self, tx: Tx) -> DbResult<()> {
        let result = (|| {
            // Lock order is catalog before the gate, everywhere: the
            // rebuild may install a persisted catalog snapshot. The
            // exclusive gate waits out all in-flight shared work, so
            // the rebuild observes quiescent components.
            let mut catalog = self.catalog.write();
            let rt = self.rt_write();
            self.engine.abort(tx.storage)?;
            self.rebuild_runtime(&mut catalog, &rt)
        })();
        // The staged after-images go; committed chain entries stay (a
        // snapshot reader mid-flight may still need the pre-images, and
        // the rebuilt in-place state equals them).
        self.mvcc.discard(tx.id());
        self.locks.release_all(tx.id());
        result
    }

    // ------------------------------------------------------------------
    // Two-phase commit (participant side)
    // ------------------------------------------------------------------

    /// Phase one of two-phase commit: force the transaction's effects
    /// and a `Prepare` record to the log, then park it awaiting the
    /// coordinator's decision. The transaction keeps its 2PL locks and
    /// its staged MVCC write set — it is no longer abortable
    /// unilaterally (only [`Database::commit_prepared`] /
    /// [`Database::abort_prepared`] settle it). On error the
    /// transaction stays active and the caller should roll it back.
    pub fn prepare(&self, tx: &Tx) -> DbResult<()> {
        self.engine.prepare(tx.storage)?;
        self.metrics.twopc.prepares.inc();
        Ok(())
    }

    /// Phase two, commit branch: make a prepared transaction durable
    /// and release its locks. Idempotent by transaction id — `Ok(false)`
    /// means the id is unknown (already settled, or never prepared
    /// here), which a retransmitting coordinator treats as success.
    pub fn commit_prepared(&self, txn: u64) -> DbResult<bool> {
        let result = self.engine.commit_prepared(TxnId(txn));
        if self.config.mvcc_reads {
            match &result {
                Ok(true) => {
                    self.mvcc.commit_publish(txn);
                }
                Ok(false) => {}
                // In doubt (log force failed): same contract as
                // `commit` — drop the staged after-images and expect
                // the caller to `crash_and_recover`.
                Err(_) => self.mvcc.discard(txn),
            }
        }
        self.locks.release_all(txn);
        if matches!(result, Ok(true)) {
            self.metrics.twopc.commits.inc();
        }
        result
    }

    /// Phase two, abort branch: undo a prepared transaction from its
    /// retained undo state, rebuild derived state, and release its
    /// locks. Idempotent by transaction id like
    /// [`Database::commit_prepared`].
    pub fn abort_prepared(&self, txn: u64) -> DbResult<bool> {
        let result = (|| {
            // Same lock order as rollback: catalog before the gate.
            let mut catalog = self.catalog.write();
            let rt = self.rt_write();
            if !self.engine.abort_prepared(TxnId(txn))? {
                return Ok(false);
            }
            self.rebuild_runtime(&mut catalog, &rt)?;
            Ok(true)
        })();
        self.mvcc.discard(txn);
        self.locks.release_all(txn);
        if matches!(result, Ok(true)) {
            self.metrics.twopc.aborts.inc();
        }
        result
    }

    /// Transaction ids currently prepared and awaiting a coordinator
    /// decision (sorted). After a recovery these are the in-doubt
    /// transactions reinstated from the log.
    pub fn in_doubt(&self) -> Vec<u64> {
        self.engine.prepared_txns()
    }

    /// Re-assert the exclusive locks of in-doubt (prepared)
    /// transactions after a recovery reset the lock manager. Recovery's
    /// redo reapplied their effects in place (they are not losers), so
    /// until the coordinator's decision arrives their objects must stay
    /// X-locked — 2PL readers and writers block exactly as they did
    /// before the crash. Snapshot readers have no version history after
    /// a crash and may observe prepared state until resolution (see
    /// DESIGN.md §11). The fresh lock manager has no competing holders,
    /// so acquisition cannot block or fail.
    pub(crate) fn reinstate_in_doubt(&self) {
        for txn in self.engine.prepared_txns() {
            for (rid, before) in self.engine.prepared_ops(txn) {
                // Updates and deletes retain the pre-image (the record
                // at `rid` may be gone); inserts read the redone record
                // in place. Either way the bytes carry the OID.
                let bytes = match before {
                    Some(b) => Some(b),
                    None => self.engine.read(rid).ok(),
                };
                let Some(oid) = bytes.and_then(|b| ObjectRecord::decode(&b).ok()).map(|r| r.oid)
                else {
                    continue;
                };
                let _ = match self.config.locking {
                    LockingStrategy::Granular => self.locks.lock_object_write(txn, oid),
                    LockingStrategy::CoarseClass => self.locks.lock_class_write(txn, oid.class()),
                };
            }
            self.metrics.twopc.in_doubt_recovered.inc();
        }
    }

    /// Simulate a crash (volatile state lost) and run restart recovery.
    /// Locks held by in-flight transactions evaporate with the crash —
    /// except those of prepared (in-doubt) transactions, which are
    /// re-asserted from the log so phase two finds them intact.
    pub fn crash_and_recover(&self) -> DbResult<()> {
        {
            let mut catalog = self.catalog.write();
            let rt = self.rt_write();
            self.engine.crash();
            self.locks.reset();
            // Version history evaporates with the crash: replay restores
            // exactly the committed truth, so after recovery the in-place
            // state is every object's only version (the commit clock keeps
            // counting — snapshot timestamps stay monotonic).
            self.mvcc.reset();
            self.engine.recover()?;
            self.rebuild_runtime(&mut catalog, &rt)?;
        }
        self.reinstate_in_doubt();
        Ok(())
    }

    /// Quiescent checkpoint (no active transactions).
    pub fn checkpoint(&self) -> DbResult<()> {
        self.engine.checkpoint()
    }

    // ------------------------------------------------------------------
    // Fault injection (chaos testing)
    // ------------------------------------------------------------------

    /// Install a deterministic fault plan into the storage layer: the
    /// disk and the WAL start failing, tearing, and rotting according
    /// to `plan`'s seeded triggers. Counters appear under
    /// [`DbStats::fault`]. Replaces any previously installed plan.
    pub fn install_faults(&self, plan: orion_storage::FaultPlan) {
        self.engine.install_faults(plan);
    }

    /// Remove any installed fault plan; subsequent I/O is clean. The
    /// cumulative fault counters are retained.
    pub fn clear_faults(&self) {
        self.engine.clear_faults();
    }

    // ------------------------------------------------------------------
    // Authorization plumbing
    // ------------------------------------------------------------------

    pub(crate) fn check_auth(
        &self,
        tx: &Tx,
        action: AuthAction,
        target: AuthTarget,
    ) -> DbResult<()> {
        if !self.config.authz_enabled {
            return Ok(());
        }
        match &tx.subject {
            None => Ok(()), // subject-less transactions are system authority
            Some(subject) => self.authz.read().check(subject, action, &target),
        }
    }

    // ------------------------------------------------------------------
    // Lock plumbing
    // ------------------------------------------------------------------

    pub(crate) fn lock_read(&self, tx: &Tx, oid: Oid) -> DbResult<()> {
        match self.config.locking {
            LockingStrategy::Granular => self.locks.lock_object_read(tx.id(), oid),
            LockingStrategy::CoarseClass => self.locks.lock_class_read(tx.id(), oid.class()),
        }
    }

    pub(crate) fn lock_write(&self, tx: &Tx, oid: Oid) -> DbResult<()> {
        match self.config.locking {
            LockingStrategy::Granular => self.locks.lock_object_write(tx.id(), oid),
            LockingStrategy::CoarseClass => self.locks.lock_class_write(tx.id(), oid.class()),
        }
    }

    // ------------------------------------------------------------------
    // Record access
    // ------------------------------------------------------------------

    /// Load (faulting in if needed) the record for `oid`. Applies lazy
    /// schema adaptation on read: attribute ids no longer in the class's
    /// resolved definition are hidden (physically scrubbed on next
    /// write).
    pub(crate) fn load_record(
        &self,
        rt: &Runtime,
        catalog: &Catalog,
        oid: Oid,
    ) -> DbResult<Arc<ObjectRecord>> {
        if let Some(rec) = rt.cache.get(oid) {
            return Ok(rec);
        }
        if let Some(rec) = rt.foreign_store.read().get(&oid) {
            return Ok(Arc::clone(rec));
        }
        let rid = rt.directory.get(oid).ok_or(DbError::NoSuchObject(oid))?;
        let bytes = self.engine.read(rid)?;
        let mut record = ObjectRecord::decode(&bytes)?;
        rt.fetches.fetch_add(1, Ordering::Relaxed);
        self.adapt_record(catalog, &mut record)?;
        rt.cache.admit(record.clone());
        Ok(Arc::new(record))
    }

    /// Like [`Database::load_record`], but `None` for dangling OIDs
    /// (path traversal over deleted targets).
    pub(crate) fn try_load_record(
        &self,
        rt: &Runtime,
        catalog: &Catalog,
        oid: Oid,
    ) -> Option<Arc<ObjectRecord>> {
        self.load_record(rt, catalog, oid).ok()
    }

    /// Load the record for `oid` without touching cache recency or
    /// admission — the read-concurrent query path. Cache residents are
    /// served as shared handles; misses decode straight from storage and
    /// are **not** admitted (the query executor's per-query memo
    /// supplies repeat-access locality instead, and the read path must
    /// not perturb eviction order). `None` for dangling OIDs or
    /// unreadable records, mirroring [`Database::try_load_record`].
    pub(crate) fn read_record(
        &self,
        rt: &Runtime,
        catalog: &Catalog,
        oid: Oid,
    ) -> Option<Arc<ObjectRecord>> {
        if let Some(rec) = rt.cache.peek(oid) {
            return Some(rec);
        }
        if let Some(rec) = rt.foreign_store.read().get(&oid) {
            return Some(Arc::clone(rec));
        }
        let rid = rt.directory.get(oid)?;
        let bytes = self.engine.read(rid).ok()?;
        let mut record = ObjectRecord::decode(&bytes).ok()?;
        rt.fetches.fetch_add(1, Ordering::Relaxed);
        self.adapt_record(catalog, &mut record).ok()?;
        Some(Arc::new(record))
    }

    /// Snapshot read: the newest version of `oid` visible at commit
    /// timestamp `ts`, for reading transaction `reader`. Serves from
    /// the version chain when one exists; otherwise the in-place state
    /// *is* the committed truth — with one subtlety: a writer may stage
    /// a chain between our resolution and the in-place read, so a
    /// `Current` answer is confirmed by re-checking for a chain after
    /// the read (stage-before-mutate makes the second resolution see
    /// the pre-image the snapshot needs).
    pub(crate) fn read_record_at(
        &self,
        rt: &Runtime,
        catalog: &Catalog,
        oid: Oid,
        ts: u64,
        reader: u64,
    ) -> Option<Arc<ObjectRecord>> {
        use crate::mvcc::Resolution;
        self.mvcc.metrics.snapshot_reads.inc();
        loop {
            match self.mvcc.resolve(oid, ts, reader) {
                Resolution::Visible(rec) => return Some(rec),
                Resolution::Invisible => return None,
                // Own in-flight write: the in-place state is exactly
                // what this transaction wrote.
                Resolution::Own => return self.read_record(rt, catalog, oid),
                Resolution::Current => {
                    let rec = self.read_record(rt, catalog, oid);
                    if !self.mvcc.has_chain(oid) {
                        return rec;
                    }
                    // Lost the race with a writer's staging; the chain
                    // is authoritative now — resolve again.
                }
            }
        }
    }

    /// Lazy schema adaptation: hide attributes dropped by evolution.
    fn adapt_record(&self, catalog: &Catalog, record: &mut ObjectRecord) -> DbResult<()> {
        let resolved = match catalog.resolve(record.oid.class()) {
            Ok(r) => r,
            Err(_) => return Ok(()), // class dropped with extant instances
        };
        if record.schema_version == resolved.version {
            return Ok(());
        }
        record
            .attrs
            .retain(|(id, _)| sysattr::is_reserved(*id) || resolved.attr_by_id(*id).is_some());
        record.schema_version = resolved.version;
        Ok(())
    }

    /// The committed pre-image of `oid`, for version-chain staging.
    /// Valid only while the calling transaction holds the object's `X`
    /// lock and has not yet written it in place (the cache and storage
    /// still hold the committed state). Decodes raw on a cache miss —
    /// no adaptation, no catalog guard (the caller may hold one, and
    /// parking_lot read locks must not be re-entered).
    fn committed_pre_image(&self, rt: &Runtime, oid: Oid) -> Option<Arc<ObjectRecord>> {
        if let Some(rec) = rt.cache.peek(oid) {
            return Some(rec);
        }
        let rid = rt.directory.get(oid)?;
        let bytes = self.engine.read(rid).ok()?;
        ObjectRecord::decode(&bytes).ok().map(Arc::new)
    }

    /// Stage an in-place update into the version store **before** the
    /// mutation lands (see `crate::mvcc` for the protocol). Centralized
    /// here so every update path — `set`, system attributes, eager
    /// migrations, version derivation — is covered.
    fn stage_update(&self, rt: &Runtime, tx: &Tx, record: &ObjectRecord) {
        if !self.config.mvcc_reads {
            return;
        }
        let pre = self.committed_pre_image(rt, record.oid);
        self.mvcc.stage(tx.id(), record.oid, pre, Some(Arc::new(record.clone())));
    }

    /// Write a record through to storage, keeping the directory and
    /// cache coherent. Returns the (possibly moved) rid.
    pub(crate) fn store_record(
        &self,
        rt: &Runtime,
        tx: &Tx,
        record: &ObjectRecord,
    ) -> DbResult<Rid> {
        let oid = record.oid;
        self.stage_update(rt, tx, record);
        let rid = rt.directory.get(oid).ok_or(DbError::NoSuchObject(oid))?;
        let new_rid = self.engine.update(tx.storage, rid, &record.encode())?;
        if new_rid != rid {
            rt.directory.insert(oid, new_rid);
        }
        rt.cache.refresh(record);
        Ok(new_rid)
    }

    // ------------------------------------------------------------------
    // Object CRUD
    // ------------------------------------------------------------------

    /// Create an object of `class_name` with named attribute values.
    pub fn create_object(
        &self,
        tx: &Tx,
        class_name: &str,
        attrs: Vec<(&str, Value)>,
    ) -> DbResult<Oid> {
        self.create_object_impl(tx, class_name, attrs, None)
    }

    pub(crate) fn create_object_impl(
        &self,
        tx: &Tx,
        class_name: &str,
        attrs: Vec<(&str, Value)>,
        placement_hint: Option<Oid>,
    ) -> DbResult<Oid> {
        let (class, resolved, pairs) = {
            let catalog = self.catalog.read();
            let class = catalog.class_id(class_name)?;
            if self.rt_read().foreign_classes.read().contains_key(&class) {
                return Err(DbError::Foreign(format!(
                    "class `{class_name}` is served by a foreign database; create rows there"
                )));
            }
            self.check_auth(tx, AuthAction::Create, AuthTarget::Class(class))?;
            let resolved = catalog.resolve(class)?;

            // Validate and bind attribute values.
            let mut pairs: Vec<(u32, Value)> = Vec::with_capacity(attrs.len());
            for (name, value) in attrs {
                let attr = resolved.attr(name).ok_or_else(|| DbError::UnknownAttribute {
                    class: class_name.to_owned(),
                    attribute: name.to_owned(),
                })?;
                catalog.check_domain(class_name, attr, &value)?;
                pairs.push((attr.id, value));
            }
            (class, resolved, pairs)
            // Guard dropped here: never block on the lock manager while
            // holding a catalog guard.
        };

        let oid = self.alloc.allocate(class);
        self.lock_write(tx, oid)?;

        let catalog = self.catalog.read();
        let rt = self.rt_read();
        // Composite ownership checks for composite-marked attributes.
        for (attr_id, value) in &pairs {
            if let Some(attr) = resolved.attr_by_id(*attr_id) {
                if attr.composite {
                    self.claim_parts(&rt, oid, *attr_id, value)?;
                }
            }
        }
        let record = ObjectRecord::new(oid, resolved.version, pairs);
        let hint = if self.config.clustering {
            placement_hint.and_then(|p| rt.directory.get(p).map(|rid| rid.page))
        } else {
            None
        };
        if self.config.mvcc_reads {
            // Stage before the insert becomes discoverable: the chain's
            // "did not exist" base hides the new object from snapshots
            // taken before this commit publishes.
            self.mvcc.stage(tx.id(), oid, None, Some(Arc::new(record.clone())));
        }
        let rid = self.engine.insert(tx.storage, &record.encode(), hint)?;
        rt.directory.insert(oid, rid);
        rt.extents.insert(class, oid);
        self.add_reverse_edges(&rt, &record);
        self.index_object_insert(&rt, &catalog, &record)?;
        rt.cache.admit(record);
        Ok(oid)
    }

    /// Read one attribute by name (subclass-aware via the OID's class).
    pub fn get(&self, tx: &Tx, oid: Oid, attr_name: &str) -> DbResult<Value> {
        self.check_auth(tx, AuthAction::Read, AuthTarget::Object(oid))?;
        self.lock_read(tx, oid)?;
        let catalog = self.catalog.read();
        let rt = self.rt_read();
        self.get_attr_internal(&rt, &catalog, oid, attr_name)
    }

    pub(crate) fn get_attr_internal(
        &self,
        rt: &Runtime,
        catalog: &Catalog,
        oid: Oid,
        attr_name: &str,
    ) -> DbResult<Value> {
        // Generic objects forward reads to their default version.
        let record = self.load_record(rt, catalog, oid)?;
        if let Some(Value::Ref(default)) = record.get(sysattr::ATTR_DEFAULT_VERSION) {
            let default = *default;
            return self.get_attr_internal(rt, catalog, default, attr_name);
        }
        let resolved = catalog.resolve(oid.class())?;
        let attr = resolved.attr(attr_name).ok_or_else(|| DbError::UnknownAttribute {
            class: resolved.name.clone(),
            attribute: attr_name.to_owned(),
        })?;
        Ok(match record.get(attr.id) {
            Some(v) if !v.is_null() => v.clone(),
            _ => attr.default.clone(),
        })
    }

    /// Update one attribute by name.
    pub fn set(&self, tx: &Tx, oid: Oid, attr_name: &str, value: Value) -> DbResult<()> {
        self.check_auth(tx, AuthAction::Write, AuthTarget::Object(oid))?;
        // 2PL locks are acquired before any catalog guard is taken: a
        // thread must never block on the lock manager while holding a
        // catalog guard (rollback takes the catalog write lock).
        self.lock_write(tx, oid)?;
        let (resolved, attr) = {
            let catalog = self.catalog.read();
            let resolved = catalog.resolve(oid.class())?;
            let attr = resolved
                .attr(attr_name)
                .ok_or_else(|| DbError::UnknownAttribute {
                    class: resolved.name.clone(),
                    attribute: attr_name.to_owned(),
                })?
                .clone();
            catalog.check_domain(&resolved.name, &attr, &value)?;
            (resolved, attr)
        };

        // Composite unlinks trigger dependent deletes; those parts must
        // be X-locked *before* the catalog guard and gate are taken (a
        // thread must never block on the lock manager while holding
        // either).
        if attr.composite {
            let doomed: Vec<Oid> = {
                let catalog = self.catalog.read();
                let rt = self.rt_read();
                let record = self.load_record(&rt, &catalog, oid)?;
                let old = record.get(attr.id).cloned().unwrap_or(Value::Null);
                let mut old_parts = Vec::new();
                old.collect_refs(&mut old_parts);
                let mut new_parts = Vec::new();
                value.collect_refs(&mut new_parts);
                old_parts
                    .into_iter()
                    .filter(|p| !new_parts.contains(p))
                    .flat_map(|p| self.composite_closure(&rt, p))
                    .collect()
            };
            for target in &doomed {
                self.lock_write(tx, *target)?;
            }
        }

        let catalog = self.catalog.read();
        let rt = self.rt_read();
        let mut record = (*self.load_record(&rt, &catalog, oid)?).clone();
        // Version discipline: working versions are immutable; generic
        // objects are not directly writable.
        if record.get(sysattr::ATTR_DEFAULT_VERSION).is_some() {
            return Err(DbError::Version(
                "cannot update a generic object; derive and update a version".into(),
            ));
        }
        if let Some(Value::Str(status)) = record.get(sysattr::ATTR_VERSION_STATUS) {
            if status == "working" {
                return Err(DbError::Version(format!(
                    "version {oid} is a working version and is immutable"
                )));
            }
        }
        let old_value = record.get(attr.id).cloned().unwrap_or(Value::Null);

        // Composite bookkeeping.
        if attr.composite {
            self.recheck_composite_change(&rt, tx, &catalog, oid, attr.id, &old_value, &value)?;
        }

        // Nested-index bookkeeping, phase 1: snapshot affected roots'
        // keys before the change.
        let nested_pre = self.nested_snapshot(&rt, &catalog, oid)?;

        // Apply the change.
        self.remove_reverse_edges_for_attr(&rt, oid, attr.id, &old_value);
        record.set(attr.id, value.clone());
        record.schema_version = resolved.version;
        self.store_record(&rt, tx, &record)?;
        self.add_reverse_edges_for_attr(&rt, oid, attr.id, &value);

        // Simple-index maintenance.
        self.simple_index_update(&rt, &catalog, oid, attr.id, &old_value, &value);

        // Nested-index bookkeeping, phase 2: diff against the snapshot.
        self.nested_apply_diff(&rt, &catalog, nested_pre)?;

        self.notify.lock().publish(oid, NotificationKind::Updated, None);
        Ok(())
    }

    /// Delete an object. Composite (dependent) parts are deleted with it.
    pub fn delete_object(&self, tx: &Tx, oid: Oid) -> DbResult<()> {
        self.check_auth(tx, AuthAction::Delete, AuthTarget::Object(oid))?;
        // Collect the composite closure (parts are dependent: they go too).
        let mut order: Vec<Oid> = Vec::new();
        {
            let rt = self.rt_read();
            let owner = rt.composite_owner.read();
            let mut stack = vec![oid];
            let mut seen = HashSet::new();
            while let Some(cur) = stack.pop() {
                if !seen.insert(cur) {
                    continue;
                }
                order.push(cur);
                for (part, (parent, _)) in owner.iter() {
                    if *parent == cur {
                        stack.push(*part);
                    }
                }
            }
        }
        // Lock everything up front (no catalog guard or gate held while
        // the lock manager may block), then delete children before
        // parents.
        for target in order.iter().rev() {
            self.lock_write(tx, *target)?;
        }
        let catalog = self.catalog.read();
        let rt = self.rt_read();
        for target in order.iter().rev() {
            self.delete_single(&rt, tx, &catalog, *target)?;
        }
        Ok(())
    }

    /// Delete one object (no closure walk — the caller already ordered
    /// and X-locked the closure).
    fn delete_single(
        &self,
        rt: &Runtime,
        tx: &Tx,
        catalog: &Catalog,
        oid: Oid,
    ) -> DbResult<()> {
        let record = self.load_record(rt, catalog, oid)?;
        let nested_pre = self.nested_snapshot(rt, catalog, oid)?;

        if self.config.mvcc_reads {
            // Stage before the object vanishes from the extent; the
            // tombstone map keeps it scannable for older snapshots.
            self.mvcc.stage(tx.id(), oid, Some(Arc::clone(&record)), None);
        }
        let rid = rt.directory.get(oid).ok_or(DbError::NoSuchObject(oid))?;
        self.engine.delete(tx.storage, rid)?;
        rt.directory.remove(oid);
        rt.extents.remove(oid.class(), oid);
        rt.cache.invalidate(oid);
        self.remove_reverse_edges(rt, &record);
        rt.composite_owner.write().remove(&oid);
        self.index_object_remove(rt, catalog, &record)?;
        self.nested_apply_diff(rt, catalog, nested_pre)?;
        self.notify.lock().publish(oid, NotificationKind::Deleted, None);
        Ok(())
    }

    /// Does the object exist?
    pub fn exists(&self, oid: Oid) -> bool {
        let rt = self.rt_read();
        rt.directory.contains(oid) || rt.foreign_store.read().contains_key(&oid)
    }

    /// Number of instances of exactly `class_name` (not subclasses).
    pub fn extent_len(&self, class_name: &str) -> DbResult<usize> {
        let class = self.catalog.read().class_id(class_name)?;
        Ok(self.rt_read().extents.len_of(class))
    }

    // ------------------------------------------------------------------
    // Navigation (swizzled traversal, experiment E3)
    // ------------------------------------------------------------------

    /// Navigate a chain of reference attributes from `oid`, returning
    /// the object at the end. Uses the object cache's swizzle slots: a
    /// warm traversal is pure pointer chasing, no hash lookups (§3.3's
    /// "a few memory lookups").
    pub fn navigate(&self, tx: &Tx, oid: Oid, path: &[&str]) -> DbResult<Oid> {
        self.lock_read(tx, oid)?;
        let catalog = self.catalog.read();
        let rt = self.rt_read();
        if rt.cache.get(oid).is_none() {
            let record = self.load_record(&rt, &catalog, oid)?;
            rt.cache.admit((*record).clone());
        }
        // Per-(step, class) attribute-id memo: traversals revisit the
        // same classes, and resolving names per hop would mask the
        // swizzle fast path the experiment measures.
        let mut attr_memo: HashMap<(usize, ClassId), u32> = HashMap::new();
        let mut cur_oid = oid;
        for (step_idx, step) in path.iter().enumerate() {
            let attr_id = match attr_memo.get(&(step_idx, cur_oid.class())) {
                Some(id) => *id,
                None => {
                    let resolved = catalog.resolve(cur_oid.class())?;
                    let attr = resolved.attr(step).ok_or_else(|| DbError::UnknownAttribute {
                        class: resolved.name.clone(),
                        attribute: (*step).to_owned(),
                    })?;
                    attr_memo.insert((step_idx, cur_oid.class()), attr.id);
                    attr.id
                }
            };
            let mut respawns = 0;
            cur_oid = loop {
                match rt.cache.hop(cur_oid, attr_id) {
                    Hop::To(next, _) => break next,
                    Hop::Miss(miss_oid) => {
                        // Fault the target in, then record the swizzle.
                        let record = self.load_record(&rt, &catalog, miss_oid)?;
                        rt.cache.admit((*record).clone());
                        rt.cache.note(cur_oid, attr_id, miss_oid);
                        break miss_oid;
                    }
                    Hop::NotRef => {
                        return Err(DbError::Query(format!(
                            "attribute `{step}` of {cur_oid} is not a scalar reference"
                        )))
                    }
                    Hop::Absent => {
                        // A concurrent admit evicted the hop source;
                        // re-fault it and retry. Bounded: sustained
                        // re-eviction means the cache is thrashing far
                        // below the working set.
                        respawns += 1;
                        if respawns > 16 {
                            return Err(DbError::Internal(
                                "navigation source evicted repeatedly; cache too small".into(),
                            ));
                        }
                        let record = self.load_record(&rt, &catalog, cur_oid)?;
                        rt.cache.admit((*record).clone());
                    }
                }
            };
        }
        Ok(cur_oid)
    }

    // ------------------------------------------------------------------
    // Methods (late binding)
    // ------------------------------------------------------------------

    /// Define a method: signature in the catalog, body in the registry.
    pub fn define_method(
        &self,
        class_name: &str,
        selector: &str,
        arity: u8,
        body: crate::methods::MethodBody,
    ) -> DbResult<()> {
        {
            let mut catalog = self.catalog.write();
            let class = catalog.class_id(class_name)?;
            catalog.add_method(class, selector, arity)?;
            self.methods.write().register(class, selector, body);
        }
        self.persist_system_state()
    }

    /// Re-register a method body for a signature that already exists in
    /// the catalog — after a cold restart, signatures persist but native
    /// bodies must be re-supplied by the application.
    pub fn register_method_body(
        &self,
        class_name: &str,
        selector: &str,
        body: crate::methods::MethodBody,
    ) -> DbResult<()> {
        let catalog = self.catalog.read();
        let class = catalog.class_id(class_name)?;
        if catalog.class(class)?.local_method(selector).is_none() {
            return Err(DbError::UnknownMethod {
                class: class_name.to_owned(),
                selector: selector.to_owned(),
            });
        }
        self.methods.write().register(class, selector, body);
        Ok(())
    }

    /// Send a message: late-bind `selector` against the receiver's class
    /// and invoke the winning implementation (§3.1 concept 6).
    pub fn call(&self, tx: &Tx, receiver: Oid, selector: &str, args: &[Value]) -> DbResult<Value> {
        let (defining, arity) = {
            let catalog = self.catalog.read();
            let defining = catalog.resolve_method(receiver.class(), selector)?;
            let resolved = catalog.resolve(receiver.class())?;
            let arity = resolved.method(selector).map(|m| m.arity).unwrap_or(0);
            (defining, arity)
        };
        if args.len() != arity as usize {
            return Err(DbError::Query(format!(
                "method `{selector}` expects {arity} argument(s), got {}",
                args.len()
            )));
        }
        let body = self.methods.read().body(defining, selector).ok_or_else(|| {
            DbError::Internal(format!(
                "method `{selector}` resolved to class {defining} but has no registered body"
            ))
        })?;
        self.metrics.method_calls.inc();
        body(self, tx, receiver, args)
    }

    // ------------------------------------------------------------------
    // Derived-state rebuild (rollback / recovery)
    // ------------------------------------------------------------------

    /// Rebuild every piece of derived state from the stored records.
    /// The caller holds the catalog write lock and the exclusive
    /// maintenance gate (lock order: catalog before gate) — a persisted
    /// system snapshot replaces `catalog` in place, and the exclusive
    /// gate guarantees no other thread is inside any component.
    pub(crate) fn rebuild_runtime(
        &self,
        catalog: &mut orion_schema::Catalog,
        rt: &Runtime,
    ) -> DbResult<()> {
        rt.directory.clear();
        rt.extents.clear();
        rt.cache.clear();
        rt.reverse.clear();
        rt.composite_owner.write().clear();
        // Note: foreign_store survives — it is not storage-backed.
        for inst in rt.indexes.write().iter_mut() {
            *inst = IndexInstance::new(inst.def.clone());
        }

        let mut records: Vec<(Rid, ObjectRecord)> = Vec::new();
        let mut scan_err: Option<DbError> = None;
        self.engine.scan_all(|rid, bytes| match ObjectRecord::decode(bytes) {
            Ok(rec) => records.push((rid, rec)),
            Err(e) => scan_err = Some(e),
        })?;
        if let Some(e) = scan_err {
            return Err(e);
        }

        // Install the persisted system state (catalog, index defs,
        // views) before touching anything that needs the schema. The
        // in-memory catalog wins only if no system record exists (e.g.
        // before the first DDL persisted one).
        if let Some(pos) =
            records.iter().position(|(_, r)| r.oid.class() == crate::persist::SYSTEM_CLASS)
        {
            let (rid, record) = records.remove(pos);
            *rt.system_rid.lock() = Some(rid);
            let state = Self::decode_system_record(&record)?;
            crate::persist::install_state(self, catalog, rt, state);
        }
        let catalog = &*catalog;

        let mut max_serial = 0u64;
        for (rid, record) in &records {
            let oid = record.oid;
            max_serial = max_serial.max(oid.serial());
            rt.directory.insert(oid, *rid);
            rt.extents.insert(oid.class(), oid);
            self.add_reverse_edges(rt, record);
        }
        self.alloc.seed_above(max_serial);

        // Composite ownership + indexes need resolved schemas.
        {
            let mut owner = rt.composite_owner.write();
            for (_, record) in &records {
                let Ok(resolved) = catalog.resolve(record.oid.class()) else { continue };
                for (attr_id, value) in &record.attrs {
                    if let Some(attr) = resolved.attr_by_id(*attr_id) {
                        if attr.composite {
                            let mut refs = Vec::new();
                            value.collect_refs(&mut refs);
                            for part in refs {
                                owner.insert(part, (record.oid, *attr_id));
                            }
                        }
                    }
                }
            }
        }
        for (_, record) in &records {
            self.index_object_insert(rt, catalog, record)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reverse-reference maintenance
    // ------------------------------------------------------------------

    pub(crate) fn add_reverse_edges(&self, rt: &Runtime, record: &ObjectRecord) {
        for (attr_id, value) in &record.attrs {
            self.add_reverse_edges_for_attr(rt, record.oid, *attr_id, value);
        }
    }

    pub(crate) fn add_reverse_edges_for_attr(
        &self,
        rt: &Runtime,
        from: Oid,
        attr: u32,
        value: &Value,
    ) {
        let mut refs = Vec::new();
        value.collect_refs(&mut refs);
        for target in refs {
            rt.reverse.update(target, |shard| {
                shard.entry(target).or_default().insert((from, attr));
            });
        }
    }

    pub(crate) fn remove_reverse_edges(&self, rt: &Runtime, record: &ObjectRecord) {
        for (attr_id, value) in &record.attrs {
            self.remove_reverse_edges_for_attr(rt, record.oid, *attr_id, value);
        }
    }

    pub(crate) fn remove_reverse_edges_for_attr(
        &self,
        rt: &Runtime,
        from: Oid,
        attr: u32,
        value: &Value,
    ) {
        let mut refs = Vec::new();
        value.collect_refs(&mut refs);
        for target in refs {
            rt.reverse.update(target, |shard| {
                if let Some(edges) = shard.get_mut(&target) {
                    edges.remove(&(from, attr));
                    if edges.is_empty() {
                        shard.remove(&target);
                    }
                }
            });
        }
    }

    // ------------------------------------------------------------------
    // Composite-object bookkeeping
    // ------------------------------------------------------------------

    /// Claim every part referenced by a composite attribute value for
    /// `(parent, attr)`; rejects parts already owned elsewhere. One
    /// write guard spans check + claim, so two parents racing for the
    /// same part cannot both win.
    fn claim_parts(&self, rt: &Runtime, parent: Oid, attr: u32, value: &Value) -> DbResult<()> {
        let mut parts = Vec::new();
        value.collect_refs(&mut parts);
        let mut owner = rt.composite_owner.write();
        for part in &parts {
            if let Some((other_parent, other_attr)) = owner.get(part) {
                if !(*other_parent == parent && *other_attr == attr) {
                    return Err(DbError::Composite(format!(
                        "object {part} is already an exclusive part of {other_parent}"
                    )));
                }
            }
            if *part == parent {
                return Err(DbError::Composite("an object cannot be its own part".into()));
            }
        }
        for part in parts {
            owner.insert(part, (parent, attr));
        }
        Ok(())
    }

    /// Handle a composite attribute change: newly referenced parts are
    /// claimed; parts dropped from the value are *deleted* (dependent
    /// exclusive semantics, \[KIM89c\]).
    #[allow(clippy::too_many_arguments)]
    fn recheck_composite_change(
        &self,
        rt: &Runtime,
        tx: &Tx,
        catalog: &Catalog,
        parent: Oid,
        attr: u32,
        old_value: &Value,
        new_value: &Value,
    ) -> DbResult<()> {
        let mut old_parts = Vec::new();
        old_value.collect_refs(&mut old_parts);
        let mut new_parts = Vec::new();
        new_value.collect_refs(&mut new_parts);
        self.claim_parts(rt, parent, attr, new_value)?;
        let removed: Vec<Oid> =
            old_parts.into_iter().filter(|p| !new_parts.contains(p)).collect();
        for part in removed {
            rt.composite_owner.write().remove(&part);
            // Dependent semantics: an unlinked part does not survive.
            // Parts were X-locked by set() before the catalog guard and
            // gate were taken; deleting here cannot block.
            let closure = self.composite_closure(rt, part);
            for target in closure.iter().rev() {
                self.delete_single(rt, tx, catalog, *target)?;
            }
        }
        Ok(())
    }

    pub(crate) fn composite_closure(&self, rt: &Runtime, root: Oid) -> Vec<Oid> {
        let owner = rt.composite_owner.read();
        let mut order = Vec::new();
        let mut stack = vec![root];
        let mut seen = HashSet::new();
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur) {
                continue;
            }
            order.push(cur);
            for (part, (parent, _)) in owner.iter() {
                if *parent == cur {
                    stack.push(*part);
                }
            }
        }
        order
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::open_in_memory()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rt = self.rt.read();
        let indexes = rt.indexes.read().len();
        f.debug_struct("Database")
            .field("classes", &self.catalog.read().class_count())
            .field("objects", &rt.directory.len())
            .field("indexes", &indexes)
            .finish()
    }
}
