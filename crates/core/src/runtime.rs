//! The decomposed runtime: independently synchronized derived state.
//!
//! PR 1 made queries read-concurrent by putting the whole [`Runtime`]
//! behind one `RwLock` — readers shared it, every DML/DDL call took it
//! exclusively, so *writers serialized globally* no matter how disjoint
//! their footprints were. This module breaks that monolith apart: each
//! piece of derived state (object directory, class extents, object
//! cache, indexes, reverse-reference graph, composite ownership, the
//! federation's materialized extents) now carries its own fine-grained
//! lock, sharded by OID or keyed by class where the access pattern
//! allows it. Transactions touching disjoint objects interleave freely;
//! *isolation* is not this module's job — writers get it from the 2PL
//! hierarchy locks in `orion-tx` (IX on class + X on object for DML,
//! subtree X for schema change), which the facade acquires before ever
//! touching a component, and queries get it from MVCC snapshots
//! (`crate::mvcc`) without taking any locks at all (S class locks at
//! prepare time only when `DbConfig::mvcc_reads` is off).
//!
//! # Lock order (the one place it is documented)
//!
//! Every thread acquires locks in this order; later acquisitions may
//! skip levels but never go back up:
//!
//! 1. **2PL locks** (`LockManager`) — the only locks a thread may
//!    *block on* indefinitely. Never requested while anything below is
//!    held.
//! 2. **Catalog guard** (`Database.catalog`).
//! 3. **Maintenance gate** (`Database.rt: RwLock<Runtime>`) — DML,
//!    queries, and reads take it *shared*; only operations that tear
//!    down and rebuild all derived state at once take it exclusively
//!    (rollback, crash recovery, cold restart, index DDL, foreign
//!    attach). The gate is what makes `rebuild_runtime` observe a
//!    quiescent component set without per-component coordination.
//! 4. **Component locks** (fields of [`Runtime`]), two levels:
//!    - `indexes` — the only component guard ever *held across* other
//!      component acquisitions (nested-index re-keying faults records
//!      through the directory/cache/foreign store while holding it).
//!    - every other component (`directory` shards, `extents`,
//!      `reverse` shards, `composite_owner`, cache shards,
//!      `foreign_classes`, `foreign_store`, `system_rid`) — leaf
//!      locks: acquired and released within a single accessor, never
//!      held while requesting any other lock. In particular, at most
//!      one cache shard lock is held at a time (cross-shard swizzle
//!      hops release the source shard before probing the target), and
//!      a `foreign_store` guard is dropped before the extents are
//!      touched during a foreign refresh.
//! 5. **Metric sinks** are lock-free atomics and participate in no
//!    ordering; `stats()` takes the gate shared plus cache shard locks
//!    one at a time and nothing else, so it can never deadlock against
//!    writers, rollback, or the lock manager.
//!
//! The MVCC version store (`crate::mvcc::VersionStore`) sits *outside*
//! the `Runtime` — deliberately, so exclusive-gate rebuilds (rollback,
//! recovery) cannot drop committed versions out from under an active
//! snapshot. Its shard locks and tombstone map are additional *leaf*
//! locks in level 4's second tier: acquired and released inside a
//! single `VersionStore` method, never held while requesting any other
//! lock (a shard guard is always dropped before the tombstone map is
//! taken).

use crate::cache::ShardedCache;
use crate::database::DbConfig;
use orion_index::IndexInstance;
use orion_storage::heap::Rid;
use orion_types::codec::ObjectRecord;
use orion_types::{ClassId, Oid};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU32, AtomicU64};
use std::sync::Arc;

/// Shard count for OID-keyed maps. A small power of two: enough to keep
/// disjoint writers off each other's cache lines, small enough that
/// whole-map operations (rebuild, iteration) stay cheap.
const OID_SHARDS: usize = 16;

#[inline]
fn shard_of(oid: Oid) -> usize {
    // Serials are globally sequential, so the low bits spread evenly;
    // fold the class in so single-class and multi-class workloads both
    // distribute.
    ((oid.serial() ^ ((oid.class().0 as u64) << 3)) as usize) & (OID_SHARDS - 1)
}

/// An OID-sharded hash map: one `RwLock`ed shard per hash slice, so
/// operations on different objects rarely contend and never serialize
/// behind a structural mutex.
#[derive(Debug)]
pub(crate) struct OidMap<V> {
    shards: Box<[RwLock<HashMap<Oid, V>>]>,
}

impl<V> OidMap<V> {
    pub fn new() -> Self {
        OidMap {
            shards: (0..OID_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    #[inline]
    fn shard(&self, oid: Oid) -> &RwLock<HashMap<Oid, V>> {
        &self.shards[shard_of(oid)]
    }

    pub fn insert(&self, oid: Oid, value: V) -> Option<V> {
        self.shard(oid).write().insert(oid, value)
    }

    pub fn remove(&self, oid: Oid) -> Option<V> {
        self.shard(oid).write().remove(&oid)
    }

    pub fn contains(&self, oid: Oid) -> bool {
        self.shard(oid).read().contains_key(&oid)
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.write().clear();
        }
    }

    /// Read `oid`'s entry in place under the shard's read lock.
    pub fn with<R>(&self, oid: Oid, f: impl FnOnce(Option<&V>) -> R) -> R {
        f(self.shard(oid).read().get(&oid))
    }

    /// Mutate the shard holding `oid` under its write lock (entry-style
    /// updates that need more than insert/remove).
    pub fn update<R>(&self, oid: Oid, f: impl FnOnce(&mut HashMap<Oid, V>) -> R) -> R {
        f(&mut self.shard(oid).write())
    }
}

impl<V: Copy> OidMap<V> {
    pub fn get(&self, oid: Oid) -> Option<V> {
        self.shard(oid).read().get(&oid).copied()
    }
}

/// Per-class extents: an outer map from class to an independently
/// locked member set, so writers on different classes never touch the
/// same lock and a scan snapshots one class without blocking others.
#[derive(Debug)]
pub(crate) struct Extents {
    classes: RwLock<HashMap<ClassId, Arc<RwLock<BTreeSet<Oid>>>>>,
}

impl Extents {
    pub fn new() -> Self {
        Extents { classes: RwLock::new(HashMap::new()) }
    }

    /// The (created-on-demand) member set of `class`.
    fn class_set(&self, class: ClassId) -> Arc<RwLock<BTreeSet<Oid>>> {
        if let Some(set) = self.classes.read().get(&class) {
            return Arc::clone(set);
        }
        Arc::clone(self.classes.write().entry(class).or_default())
    }

    pub fn insert(&self, class: ClassId, oid: Oid) {
        self.class_set(class).write().insert(oid);
    }

    pub fn remove(&self, class: ClassId, oid: Oid) {
        if let Some(set) = self.classes.read().get(&class) {
            set.write().remove(&oid);
        }
    }

    pub fn len_of(&self, class: ClassId) -> usize {
        self.classes.read().get(&class).map_or(0, |s| s.read().len())
    }

    /// The members of `class` in OID order (the scan path; sorted order
    /// keeps query results byte-identical to the serial system).
    pub fn snapshot(&self, class: ClassId) -> Vec<Oid> {
        self.classes
            .read()
            .get(&class)
            .map(|s| s.read().iter().copied().collect())
            .unwrap_or_default()
    }

    /// Replace a class's extent wholesale (foreign-extent refresh).
    pub fn replace(&self, class: ClassId, members: BTreeSet<Oid>) {
        *self.class_set(class).write() = members;
    }

    pub fn clear(&self) {
        self.classes.write().clear();
    }
}

/// Derived, in-memory object state — a deterministic function of the
/// stored records. Every field synchronizes itself; see the module docs
/// for the lock order. The struct sits behind `Database.rt:
/// RwLock<Runtime>`, which survives only as the *maintenance gate*:
/// shared for all normal work, exclusive for whole-state rebuilds.
#[derive(Debug)]
pub(crate) struct Runtime {
    /// OID → record id ("object directory management", §4.2).
    pub directory: OidMap<Rid>,
    /// Class → its own instances (not subclasses).
    pub extents: Extents,
    /// The memory-resident object cache, sharded by OID.
    pub cache: ShardedCache,
    /// Live indexes. One guard for the index *set*; per-entry updates
    /// for disjoint objects are short and don't carry I/O (nested-path
    /// re-keying faults records while holding this — indexes precede
    /// the cache in the lock order).
    pub indexes: RwLock<Vec<IndexInstance>>,
    pub next_index_id: AtomicU32,
    /// target → set of (referrer, attr) edges pointing at it.
    pub reverse: OidMap<HashSet<(Oid, u32)>>,
    /// part → (parent, composite attr) exclusive ownership. One lock:
    /// closure computation walks the whole map, so sharding buys
    /// nothing here.
    pub composite_owner: RwLock<HashMap<Oid, (Oid, u32)>>,
    /// Foreign class → adapter name (extents served by the federation).
    pub foreign_classes: RwLock<HashMap<ClassId, String>>,
    /// Materialized foreign records (refreshed on scan).
    pub foreign_store: RwLock<HashMap<Oid, Arc<ObjectRecord>>>,
    /// Record id of the persisted system-state record, if written.
    pub system_rid: Mutex<Option<Rid>>,
    /// Objects fetched from storage (experiment accounting).
    pub fetches: AtomicU64,
}

impl Runtime {
    pub(crate) fn new(config: &DbConfig) -> Self {
        Runtime {
            directory: OidMap::new(),
            extents: Extents::new(),
            cache: ShardedCache::new(config.cache_objects, config.swizzling),
            indexes: RwLock::new(Vec::new()),
            next_index_id: AtomicU32::new(1),
            reverse: OidMap::new(),
            composite_owner: RwLock::new(HashMap::new()),
            foreign_classes: RwLock::new(HashMap::new()),
            foreign_store: RwLock::new(HashMap::new()),
            system_rid: Mutex::new(None),
            fetches: AtomicU64::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(class: u16, serial: u64) -> Oid {
        Oid::new(ClassId(class), serial)
    }

    #[test]
    fn oid_map_basics() {
        let m: OidMap<u32> = OidMap::new();
        assert!(!m.contains(oid(1, 1)));
        assert_eq!(m.insert(oid(1, 1), 10), None);
        assert_eq!(m.insert(oid(1, 1), 11), Some(10));
        assert_eq!(m.get(oid(1, 1)), Some(11));
        assert_eq!(m.len(), 1);
        for s in 0..100 {
            m.insert(oid(2, s), s as u32);
        }
        assert_eq!(m.len(), 101);
        assert_eq!(m.remove(oid(1, 1)), Some(11));
        m.clear();
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn oid_map_update_and_with() {
        let m: OidMap<Vec<u32>> = OidMap::new();
        let o = oid(3, 7);
        m.update(o, |shard| shard.entry(o).or_default().push(5));
        m.update(o, |shard| shard.entry(o).or_default().push(6));
        assert_eq!(m.with(o, |v| v.map(|v| v.len())), Some(2));
    }

    #[test]
    fn extents_per_class_isolation() {
        let e = Extents::new();
        e.insert(ClassId(1), oid(1, 2));
        e.insert(ClassId(1), oid(1, 1));
        e.insert(ClassId(2), oid(2, 9));
        assert_eq!(e.len_of(ClassId(1)), 2);
        assert_eq!(e.snapshot(ClassId(1)), vec![oid(1, 1), oid(1, 2)], "OID order");
        e.remove(ClassId(1), oid(1, 1));
        assert_eq!(e.len_of(ClassId(1)), 1);
        assert_eq!(e.len_of(ClassId(3)), 0, "never-created class is empty");
        e.replace(ClassId(2), BTreeSet::from([oid(2, 1)]));
        assert_eq!(e.snapshot(ClassId(2)), vec![oid(2, 1)]);
        e.clear();
        assert_eq!(e.len_of(ClassId(1)), 0);
    }
}
