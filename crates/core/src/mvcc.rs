//! The version store: per-object version chains for snapshot reads.
//!
//! orion keeps object state *in place* — cache, directory, extents and
//! indexes always reflect the newest write, committed or not, and
//! writer isolation comes from 2PL. MVCC is layered **over** that as a
//! sparse overlay: a version chain exists only for objects written
//! since the last quiescent point, and it records the *pre-images* a
//! snapshot reader must see instead of the in-place state. An object
//! with no chain is simply current everywhere.
//!
//! Protocol (writers):
//! 1. **Stage before mutate.** The first in-place write a transaction
//!    makes to an object first installs a chain whose base entry is the
//!    committed pre-image at timestamp 0 (creates stage a
//!    "did-not-exist" tombstone base). Only then does the writer mutate
//!    cache/storage/extents, so a snapshot reader that finds no chain
//!    can trust the in-place state — with one re-check, see
//!    [`VersionStore::resolve`].
//! 2. **Publish on commit.** Under the publish mutex, commit allocates
//!    a timestamp from the [`CommitClock`], appends the after-image to
//!    every touched chain, updates the per-class tombstone map, and
//!    only then advances the visible clock — a snapshot taken at any
//!    instant sees all of a commit or none of it.
//! 3. **Discard on rollback.** The facade rebuilds in-place state from
//!    storage, then drops the staged after-images; the chains keep
//!    their committed entries (a chain base outliving its writer is
//!    harmless — it equals the rebuilt in-place state and is collapsed
//!    by the next prune).
//!
//! Readers resolve `(oid, snapshot-ts)` to the newest chain entry at or
//! below their snapshot, falling back to in-place state when no chain
//! exists. They take no 2PL locks and, on the chain hit path, not even
//! the maintenance gate.
//!
//! Pruning is epoch-based: when the oldest active snapshot advances
//! (or the last one retires), entries older than the newest entry at or
//! below the new floor are reclaimed, and fully settled chains are
//! removed outright — returning the store to the empty, zero-overhead
//! state that pure-read workloads see.

use orion_tx::{CommitClock, MvccMetrics, MvccStats, SnapshotRegistry};
use orion_types::codec::ObjectRecord;
use orion_types::{ClassId, Oid};
use parking_lot::{Mutex, RwLock};
use std::collections::{hash_map::Entry, BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SHARDS: usize = 16;

/// Reader id for snapshot reads outside any transaction (never equals
/// a real transaction id, so "own uncommitted write" never matches).
pub(crate) const NO_READER: u64 = u64::MAX;

#[inline]
fn shard_of(oid: Oid) -> usize {
    ((oid.serial() ^ ((oid.class().0 as u64) << 3)) as usize) & (SHARDS - 1)
}

/// Stage-time marker for an uncommitted delete in the tombstone map
/// (`u64::MAX` compares above every snapshot, so the object is merged
/// back into every scan until the delete commits).
const PENDING: u64 = u64::MAX;

/// A chain entry: the record as of commit `ts` (`None` = did not
/// exist / deleted). Entries are kept in ascending `ts` order; the
/// base entry installed at stage time carries `ts == 0`.
type VersionEntry = (u64, Option<Arc<ObjectRecord>>);

/// One transaction's staged after-images (`None` = staged delete).
type StagedSet = HashMap<Oid, Option<Arc<ObjectRecord>>>;

#[derive(Debug)]
struct VersionChain {
    entries: Vec<VersionEntry>,
    /// The transaction currently staging an in-place write, if any.
    writer: Option<u64>,
}

/// What a snapshot reader should do for one `(oid, ts)` lookup.
#[derive(Debug)]
pub(crate) enum Resolution {
    /// No chain: the in-place state is committed and visible.
    Current,
    /// The reader *is* the in-flight writer: read its in-place state
    /// (a transaction sees its own uncommitted writes).
    Own,
    /// Serve this committed version.
    Visible(Arc<ObjectRecord>),
    /// The object does not exist at this snapshot (created later, or
    /// deleted at or before it).
    Invisible,
}

/// The facade-level version store. Lives on `Database` *outside* the
/// [`Runtime`](crate::runtime::Runtime) deliberately: rollback and
/// recovery rebuild the runtime wholesale, but committed version
/// history must survive a rollback of some *other* transaction. Shard
/// locks here are leaves in the global lock order (after the gate and
/// every runtime component lock; never held while acquiring anything).
#[derive(Debug)]
pub(crate) struct VersionStore {
    pub clock: CommitClock,
    pub registry: SnapshotRegistry,
    pub metrics: MvccMetrics,
    shards: Box<[RwLock<HashMap<Oid, VersionChain>>]>,
    /// Live chain count — the quiescent fast path: zero means every
    /// object is current and scans/reads skip all resolution.
    overlay: AtomicU64,
    /// txn → (oid → after-image) staged by in-flight writers.
    staged: Mutex<HashMap<u64, StagedSet>>,
    /// class → (oid → delete commit-ts, or [`PENDING`]): objects absent
    /// from the live extent that some snapshot must still scan.
    deleted: RwLock<HashMap<ClassId, BTreeMap<Oid, u64>>>,
    /// Serializes commit publication so chain entries stay ts-ordered
    /// and the visible clock never advances past a half-published set.
    publish: Mutex<()>,
}

impl VersionStore {
    pub fn new() -> Self {
        VersionStore {
            clock: CommitClock::new(),
            registry: SnapshotRegistry::new(),
            metrics: MvccMetrics::new(),
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            overlay: AtomicU64::new(0),
            staged: Mutex::new(HashMap::new()),
            deleted: RwLock::new(HashMap::new()),
            publish: Mutex::new(()),
        }
    }

    /// Is the overlay empty (every object current, nothing staged)?
    #[inline]
    pub fn quiescent(&self) -> bool {
        self.overlay.load(Ordering::Acquire) == 0
    }

    /// Does `oid` currently have a version chain?
    pub fn has_chain(&self, oid: Oid) -> bool {
        !self.quiescent() && self.shards[shard_of(oid)].read().contains_key(&oid)
    }

    // ------------------------------------------------------------------
    // Writer protocol
    // ------------------------------------------------------------------

    /// Record an in-flight write *before* the in-place mutation. `pre`
    /// is the committed pre-image (`None` for creates) — consulted only
    /// on the first write to a previously unchained object, where it
    /// becomes the chain's timestamp-0 base. `after` is the after-image
    /// this transaction would commit (`None` for deletes).
    pub fn stage(
        &self,
        txn: u64,
        oid: Oid,
        pre: Option<Arc<ObjectRecord>>,
        after: Option<Arc<ObjectRecord>>,
    ) {
        let deleting = after.is_none();
        let undeleting = {
            let mut staged = self.staged.lock();
            let prev = staged.entry(txn).or_default().insert(oid, after);
            matches!(prev, Some(None)) && !deleting
        };
        {
            let mut shard = self.shards[shard_of(oid)].write();
            match shard.entry(oid) {
                Entry::Occupied(mut e) => e.get_mut().writer = Some(txn),
                Entry::Vacant(v) => {
                    v.insert(VersionChain { entries: vec![(0, pre)], writer: Some(txn) });
                    self.overlay.fetch_add(1, Ordering::Release);
                }
            }
        }
        if deleting {
            self.deleted.write().entry(oid.class()).or_default().insert(oid, PENDING);
        } else if undeleting {
            // The same transaction staged a delete earlier and now
            // overwrote it; retract the pending tombstone.
            Self::remove_tombstone(&mut self.deleted.write(), oid, |ts| ts == PENDING);
        }
    }

    fn remove_tombstone(
        deleted: &mut HashMap<ClassId, BTreeMap<Oid, u64>>,
        oid: Oid,
        when: impl Fn(u64) -> bool,
    ) {
        if let Entry::Occupied(mut e) = deleted.entry(oid.class()) {
            if e.get().get(&oid).copied().is_some_and(when) {
                e.get_mut().remove(&oid);
                if e.get().is_empty() {
                    e.remove();
                }
            }
        }
    }

    /// Publish `txn`'s staged write set under a fresh commit timestamp.
    /// Returns the stamp, or `None` if the transaction staged nothing.
    pub fn commit_publish(&self, txn: u64) -> Option<u64> {
        let set = self.staged.lock().remove(&txn)?;
        if set.is_empty() {
            return None;
        }
        let _serialize = self.publish.lock();
        let ts = self.clock.allocate();
        // The floor must never exceed a timestamp a reader could still
        // pin. `ts` is not published yet, so new snapshots register at
        // the old visible stamp — which is exactly what `floor` falls
        // back to (computed under the registry lock, see
        // `SnapshotRegistry::floor`). Using `ts` here would let this
        // publish prune the pre-images of a snapshot being taken
        // concurrently.
        let floor = self.registry.floor(&self.clock);
        let mut published = 0u64;
        let mut pruned = 0u64;
        for (oid, after) in set {
            let tombstone = after.is_none();
            let mut settled = false;
            {
                let mut shard = self.shards[shard_of(oid)].write();
                if let Some(chain) = shard.get_mut(&oid) {
                    if chain.writer == Some(txn) {
                        chain.writer = None;
                    }
                    chain.entries.push((ts, after));
                    published += 1;
                    pruned += Self::prune_chain(&mut chain.entries, floor);
                    // Observed post-prune: the steady-state depth a
                    // reader actually walks, not the transient peak.
                    self.metrics.chain_length.observe_micros(chain.entries.len() as u64);
                    if Self::settled(chain, floor) {
                        shard.remove(&oid);
                        self.overlay.fetch_sub(1, Ordering::Release);
                        settled = true;
                    }
                }
            }
            let mut deleted = self.deleted.write();
            if tombstone && !settled {
                deleted.entry(oid.class()).or_default().insert(oid, ts);
            } else {
                // Either the object lives again at `ts` (plain update —
                // retract any stale marker) or the tombstone chain
                // settled below the floor: no snapshot can see it.
                Self::remove_tombstone(&mut deleted, oid, |_| true);
            }
        }
        self.metrics.versions_published.add(published);
        self.metrics.versions_pruned.add(pruned);
        self.clock.publish(ts);
        Some(ts)
    }

    /// Forget `txn`'s staged write set (rollback, or a failed commit).
    /// Chains keep their committed entries; bases whose writer vanished
    /// are collapsed by later pruning once they match the floor.
    pub fn discard(&self, txn: u64) {
        let Some(set) = self.staged.lock().remove(&txn) else { return };
        for (oid, after) in set {
            {
                let mut shard = self.shards[shard_of(oid)].write();
                if let Some(chain) = shard.get_mut(&oid) {
                    if chain.writer == Some(txn) {
                        chain.writer = None;
                    }
                }
            }
            if after.is_none() {
                Self::remove_tombstone(&mut self.deleted.write(), oid, |ts| ts == PENDING);
            }
        }
    }

    /// Drop all version state (crash recovery: in-flight transactions
    /// evaporated and storage was replayed to the committed truth, so
    /// the in-place state *is* every object's only version). The clock
    /// keeps counting — snapshot timestamps stay monotonic across
    /// recoveries.
    pub fn reset(&self) {
        for shard in self.shards.iter() {
            shard.write().clear();
        }
        self.staged.lock().clear();
        self.deleted.write().clear();
        self.overlay.store(0, Ordering::Release);
    }

    // ------------------------------------------------------------------
    // Reader protocol
    // ------------------------------------------------------------------

    /// Resolve `(oid, ts)` for reader transaction `reader`.
    ///
    /// A [`Resolution::Current`] answer is trustworthy only with a
    /// re-check: a writer may install a chain (staging the pre-image)
    /// between this lookup and the caller's in-place read. Callers must
    /// read in place, call `has_chain`, and re-resolve on `true` — the
    /// stage-before-mutate ordering guarantees the second resolution
    /// sees the pre-image the snapshot needs.
    pub fn resolve(&self, oid: Oid, ts: u64, reader: u64) -> Resolution {
        if self.quiescent() {
            return Resolution::Current;
        }
        let shard = self.shards[shard_of(oid)].read();
        match shard.get(&oid) {
            None => Resolution::Current,
            Some(chain) => {
                if chain.writer == Some(reader) {
                    return Resolution::Own;
                }
                match chain.entries.iter().rev().find(|(t, _)| *t <= ts) {
                    Some((_, Some(rec))) => Resolution::Visible(Arc::clone(rec)),
                    Some((_, None)) | None => Resolution::Invisible,
                }
            }
        }
    }

    /// OIDs of `class` that are *absent from the live extent* but were
    /// still alive at snapshot `ts` (committed deletes after `ts`, plus
    /// uncommitted deletes, which are pending at `u64::MAX`). The
    /// caller merges these into its extent scan and visibility-filters
    /// the union.
    pub fn deleted_after(&self, class: ClassId, ts: u64) -> Vec<Oid> {
        if self.quiescent() {
            return Vec::new();
        }
        self.deleted
            .read()
            .get(&class)
            .map(|m| m.iter().filter(|&(_, &t)| t > ts).map(|(&oid, _)| oid).collect())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Snapshots and pruning
    // ------------------------------------------------------------------

    /// Capture a snapshot for `reader` and pin it against pruning.
    /// Clock read and registration are atomic (one registry lock), so
    /// no pruning floor computed concurrently can exceed `ts`.
    pub fn begin_snapshot(&self, reader: u64) -> SnapshotGuard<'_> {
        let ts = self.registry.register_now(&self.clock);
        self.metrics.snapshots.inc();
        self.metrics.active_snapshots.set(self.registry.len() as u64);
        let oldest = self.registry.oldest().unwrap_or(ts);
        self.metrics.oldest_snapshot_lag.set(ts.saturating_sub(oldest));
        SnapshotGuard { store: self, ts, reader }
    }

    /// Reclaim every version no snapshot at or above `floor` can see.
    pub fn prune_to(&self, floor: u64) {
        if self.quiescent() {
            return;
        }
        let mut pruned = 0u64;
        let mut settled: Vec<Oid> = Vec::new();
        for shard in self.shards.iter() {
            let mut guard = shard.write();
            guard.retain(|oid, chain| {
                pruned += Self::prune_chain(&mut chain.entries, floor);
                if Self::settled(chain, floor) {
                    settled.push(*oid);
                    self.overlay.fetch_sub(1, Ordering::Release);
                    false
                } else {
                    true
                }
            });
        }
        if !settled.is_empty() {
            let mut deleted = self.deleted.write();
            for oid in settled {
                Self::remove_tombstone(&mut deleted, oid, |ts| ts != PENDING);
            }
        }
        self.metrics.versions_pruned.add(pruned);
    }

    /// Drop entries older than the newest entry at or below `floor`
    /// (that entry is what every surviving snapshot resolves to).
    /// Returns the number reclaimed.
    fn prune_chain(entries: &mut Vec<VersionEntry>, floor: u64) -> u64 {
        let keep_from = entries
            .iter()
            .rposition(|(t, _)| *t <= floor)
            .unwrap_or(0);
        entries.drain(..keep_from);
        keep_from as u64
    }

    /// A chain is settled once no writer is in flight and a single
    /// entry at or below the floor remains: that entry necessarily
    /// matches the in-place state — a record entry equals what storage
    /// holds (every commit publishes, every rollback rebuilds), and a
    /// tombstone entry matches the object's absence from the directory
    /// and extents — so the chain can vanish.
    fn settled(chain: &VersionChain, floor: u64) -> bool {
        chain.writer.is_none() && chain.entries.len() == 1 && chain.entries[0].0 <= floor
    }

    /// Point-in-time MVCC counters, with the live gauges refreshed.
    pub fn stats_snapshot(&self) -> MvccStats {
        let mut s = self.metrics.snapshot();
        s.active_snapshots = self.registry.len() as u64;
        let now = self.clock.now();
        s.oldest_snapshot_lag = now.saturating_sub(self.registry.oldest().unwrap_or(now));
        s
    }
}

/// An active snapshot: a timestamp pinned in the registry. Dropping it
/// deregisters and, when that advanced the oldest-snapshot floor, runs
/// a pruning sweep.
pub(crate) struct SnapshotGuard<'a> {
    store: &'a VersionStore,
    ts: u64,
    reader: u64,
}

impl SnapshotGuard<'_> {
    /// The snapshot timestamp.
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// The reading transaction's id (0 = no transaction).
    pub fn reader(&self) -> u64 {
        self.reader
    }
}

impl Drop for SnapshotGuard<'_> {
    fn drop(&mut self) {
        let advanced = self.store.registry.deregister(self.ts);
        self.store.metrics.active_snapshots.set(self.store.registry.len() as u64);
        if advanced && !self.store.quiescent() {
            let floor = self.store.registry.floor(&self.store.clock);
            self.store.prune_to(floor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_types::Value;

    fn rec(oid: Oid, tag: i64) -> Arc<ObjectRecord> {
        Arc::new(ObjectRecord::new(oid, 1, vec![(1, Value::Int(tag))]))
    }

    fn tag(r: &ObjectRecord) -> i64 {
        match r.get(1) {
            Some(Value::Int(v)) => *v,
            other => panic!("unexpected attr: {other:?}"),
        }
    }

    fn oid(serial: u64) -> Oid {
        Oid::new(ClassId(7), serial)
    }

    #[test]
    fn stage_publish_resolve_roundtrip() {
        let vs = VersionStore::new();
        let o = oid(1);
        assert!(matches!(vs.resolve(o, 0, 9), Resolution::Current));

        // A reader pins a snapshot (registration is what protects its
        // versions from pruning), then writer 1 updates the object:
        // pre-image v0, after-image v1.
        let snap = vs.begin_snapshot(9);
        vs.stage(1, o, Some(rec(o, 0)), Some(rec(o, 1)));
        assert!(vs.has_chain(o));
        // The pinned reader sees the pre-image...
        match vs.resolve(o, snap.ts(), 9) {
            Resolution::Visible(r) => assert_eq!(tag(&r), 0),
            other => panic!("expected pre-image, got {other:?}"),
        }
        // ...while the writer reads its own in-place state.
        assert!(matches!(vs.resolve(o, snap.ts(), 1), Resolution::Own));

        let ts = vs.commit_publish(1).expect("staged set published");
        assert!(vs.clock.now() >= ts);
        // The old snapshot still resolves to the pre-image; a new one
        // to v1.
        match vs.resolve(o, snap.ts(), 9) {
            Resolution::Visible(r) => assert_eq!(tag(&r), 0),
            other => panic!("expected old version, got {other:?}"),
        }
        match vs.resolve(o, ts, 9) {
            Resolution::Visible(r) => assert_eq!(tag(&r), 1),
            other => panic!("expected v1, got {other:?}"),
        }
        // Retiring the snapshot advances the floor; the fully settled
        // chain is reclaimed and the store returns to quiescence.
        drop(snap);
        assert!(vs.quiescent());
        assert!(matches!(vs.resolve(o, ts, 9), Resolution::Current));
    }

    #[test]
    fn created_objects_are_invisible_to_older_snapshots() {
        let vs = VersionStore::new();
        let o = oid(2);
        let snap = vs.begin_snapshot(9);
        vs.stage(1, o, None, Some(rec(o, 5)));
        assert!(matches!(vs.resolve(o, snap.ts(), 9), Resolution::Invisible));
        let ts = vs.commit_publish(1).unwrap();
        assert!(matches!(vs.resolve(o, snap.ts(), 9), Resolution::Invisible));
        match vs.resolve(o, ts, 9) {
            Resolution::Visible(r) => assert_eq!(tag(&r), 5),
            other => panic!("expected v5, got {other:?}"),
        }
        drop(snap);
        assert!(vs.quiescent(), "settled create chain reclaimed");
    }

    #[test]
    fn deletes_surface_through_tombstone_map_until_settled() {
        let vs = VersionStore::new();
        let o = oid(3);
        // Committed create at ts1 (no snapshot pinned → settles).
        vs.stage(1, o, None, Some(rec(o, 1)));
        vs.commit_publish(1).unwrap();

        // Pin a snapshot, then delete under txn 2.
        let snap = vs.begin_snapshot(9);
        vs.stage(2, o, Some(rec(o, 1)), None);
        // Uncommitted delete: scans at the pinned snapshot must merge
        // the object back in, and it must still resolve as visible.
        assert_eq!(vs.deleted_after(o.class(), snap.ts()), vec![o]);
        match vs.resolve(o, snap.ts(), 9) {
            Resolution::Visible(r) => assert_eq!(tag(&r), 1),
            other => panic!("expected pre-delete image, got {other:?}"),
        }
        // The deleting transaction itself sees its own delete.
        assert!(matches!(vs.resolve(o, snap.ts(), 2), Resolution::Own));

        let del_ts = vs.commit_publish(2).unwrap();
        // Old snapshot: still alive. New snapshot: gone.
        assert_eq!(vs.deleted_after(o.class(), snap.ts()), vec![o]);
        match vs.resolve(o, snap.ts(), 9) {
            Resolution::Visible(r) => assert_eq!(tag(&r), 1),
            other => panic!("expected pre-delete image, got {other:?}"),
        }
        assert!(vs.deleted_after(o.class(), del_ts).is_empty());
        assert!(matches!(vs.resolve(o, del_ts, 9), Resolution::Invisible));

        // Retiring the snapshot advances the floor past the delete;
        // tombstone chains for dead objects are reclaimed wholesale.
        drop(snap);
        assert!(vs.quiescent(), "tombstone chain reclaimed after floor advance");
        assert!(vs.deleted_after(o.class(), 0).is_empty());
    }

    #[test]
    fn pruning_never_reclaims_a_version_visible_to_an_active_snapshot() {
        let vs = VersionStore::new();
        let o = oid(4);
        vs.stage(1, o, Some(rec(o, 0)), Some(rec(o, 1)));
        let first_ts = vs.commit_publish(1).unwrap();

        // Pin a snapshot at the first committed version, then land a
        // pile of later commits.
        let snap = vs.begin_snapshot(9);
        assert_eq!(snap.ts(), first_ts);
        for txn in 2..22u64 {
            vs.stage(txn, o, Some(rec(o, 1)), Some(rec(o, txn as i64)));
            vs.commit_publish(txn).unwrap();
        }
        // Twenty newer versions landed; the pinned snapshot still reads
        // its version exactly.
        match vs.resolve(o, snap.ts(), 9) {
            Resolution::Visible(r) => assert_eq!(tag(&r), 1),
            other => panic!("pinned version reclaimed: {other:?}"),
        }
        // Targeted pruning at publish kept the chain from growing
        // without bound: everything between the floor and the head is
        // prunable except the floor version itself.
        let stats = vs.stats_snapshot();
        assert!(stats.versions_pruned > 0, "publish-time pruning ran");

        // Floor advance reclaims the chain entirely.
        drop(snap);
        assert!(vs.quiescent());
        let after = vs.stats_snapshot();
        assert!(after.versions_pruned > stats.versions_pruned);
    }

    #[test]
    fn discard_clears_staged_state_but_keeps_committed_entries() {
        let vs = VersionStore::new();
        let o = oid(5);
        let snap = vs.begin_snapshot(9);
        vs.stage(1, o, Some(rec(o, 0)), Some(rec(o, 1)));
        vs.discard(1);
        // The base pre-image survives (it is the committed truth the
        // rebuilt in-place state equals), and no writer remains.
        match vs.resolve(o, snap.ts(), 1) {
            Resolution::Visible(r) => assert_eq!(tag(&r), 0),
            Resolution::Current => {}
            other => panic!("unexpected: {other:?}"),
        }
        // A staged delete that is discarded retracts its pending
        // tombstone marker.
        vs.stage(2, o, Some(rec(o, 0)), None);
        assert_eq!(vs.deleted_after(o.class(), snap.ts()), vec![o]);
        vs.discard(2);
        assert!(vs.deleted_after(o.class(), snap.ts()).is_empty());
        drop(snap);
    }

    #[test]
    fn publish_floor_never_exceeds_the_visible_clock() {
        let vs = VersionStore::new();
        let o = oid(8);
        vs.stage(1, o, Some(rec(o, 0)), Some(rec(o, 1)));
        vs.commit_publish(1).unwrap();
        // No snapshot was pinned during the publish, but a reader could
        // have read the then-visible timestamp 0 an instant before it
        // and registered just after the floor was computed — the base
        // pre-image must survive until the floor provably passes it.
        match vs.resolve(o, 0, 9) {
            Resolution::Visible(r) => assert_eq!(tag(&r), 0),
            other => panic!("pre-image pruned out from under a ts-0 reader: {other:?}"),
        }
    }

    #[test]
    fn reset_returns_to_quiescence() {
        let vs = VersionStore::new();
        let o = oid(6);
        let _pin = vs.begin_snapshot(9);
        vs.stage(1, o, Some(rec(o, 0)), Some(rec(o, 1)));
        vs.stage(2, oid(7), Some(rec(oid(7), 0)), None);
        assert!(!vs.quiescent());
        let before = vs.clock.now();
        vs.reset();
        assert!(vs.quiescent());
        assert!(vs.deleted_after(o.class(), 0).is_empty());
        assert!(vs.clock.now() >= before, "clock stays monotonic across reset");
    }
}
