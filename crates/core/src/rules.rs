//! Deductive capabilities (§5.4).
//!
//! "An object-oriented database system will become a deductive
//! object-oriented database system once it can directly support rules
//! and various reasoning concepts." orion supports Horn rules over the
//! object graph:
//!
//! * **EDB predicates** come for free from the data model: every class
//!   name is a unary predicate (`Vehicle(x)` — subclass-aware, matching
//!   the query model's hierarchy semantics), and every attribute name is
//!   a binary predicate (`manufacturer(x, y)` — set-valued attributes
//!   yield one tuple per element).
//! * **IDB predicates** are defined by rules and evaluated bottom-up,
//!   either naively or **semi-naively** (experiment E12). Recursion is
//!   supported — the paper notes the aggregation graph "admits cycles",
//!   and transitive closure over part graphs is the canonical use.
//!
//! Negation and aggregation are out of scope (the paper calls rule
//! integration "first steps").

use crate::database::Database;
use crate::source::SourceView;
use orion_index::KeyVal;
use orion_query::DataSource;
use orion_types::{DbError, DbResult, Value};
use std::collections::{BTreeSet, HashMap};

/// A term in a rule atom.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A variable, named.
    Var(String),
    /// A constant value.
    Const(Value),
}

/// One atom: `pred(arg, ...)`, arity 1 or 2.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleAtom {
    /// Predicate name (class name, attribute name, or IDB name).
    pub pred: String,
    /// Arguments.
    pub args: Vec<Term>,
}

impl RuleAtom {
    /// `pred(x)` or `pred(x, y)` with variable shorthand.
    pub fn new(pred: &str, args: Vec<Term>) -> Self {
        RuleAtom { pred: pred.to_owned(), args }
    }
}

/// A Horn rule: `head :- body`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The derived atom.
    pub head: RuleAtom,
    /// The conjunctive body.
    pub body: Vec<RuleAtom>,
}

/// Shorthand for a variable term.
pub fn var(name: &str) -> Term {
    Term::Var(name.to_owned())
}

/// Outcome of an inference run, with evaluation statistics (E12).
#[derive(Debug, Clone)]
pub struct InferResult {
    /// The tuples of the queried predicate.
    pub tuples: Vec<Vec<Value>>,
    /// Fixpoint iterations executed.
    pub iterations: usize,
    /// Rule-body substitutions considered (work metric).
    pub substitutions: u64,
}

type Tuple = Vec<KeyVal>;
type Relation = BTreeSet<Tuple>;

#[derive(Debug, Default)]
struct FactStore {
    relations: HashMap<String, Relation>,
}

impl FactStore {
    fn insert(&mut self, pred: &str, tuple: Tuple) -> bool {
        self.relations.entry(pred.to_owned()).or_default().insert(tuple)
    }

    fn get(&self, pred: &str) -> Option<&Relation> {
        self.relations.get(pred)
    }
}

fn unify(
    atom: &RuleAtom,
    tuple: &Tuple,
    subst: &HashMap<String, Value>,
) -> Option<HashMap<String, Value>> {
    if atom.args.len() != tuple.len() {
        return None;
    }
    let mut out = subst.clone();
    for (term, value) in atom.args.iter().zip(tuple.iter()) {
        match term {
            Term::Const(c) => {
                if !c.eq_total(&value.0) {
                    return None;
                }
            }
            Term::Var(name) => match out.get(name) {
                Some(bound) => {
                    if !bound.eq_total(&value.0) {
                        return None;
                    }
                }
                None => {
                    out.insert(name.clone(), value.0.clone());
                }
            },
        }
    }
    Some(out)
}

fn ground_head(head: &RuleAtom, subst: &HashMap<String, Value>) -> DbResult<Tuple> {
    head.args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Ok(KeyVal(c.clone())),
            Term::Var(name) => subst
                .get(name)
                .map(|v| KeyVal(v.clone()))
                .ok_or_else(|| DbError::Rule(format!("unbound head variable `{name}`"))),
        })
        .collect()
}

impl Database {
    /// Register a rule. Head and body arities must be 1 or 2; every head
    /// variable must occur in the body (range restriction).
    pub fn add_rule(&self, rule: Rule) -> DbResult<()> {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
            if atom.args.is_empty() || atom.args.len() > 2 {
                return Err(DbError::Rule(format!(
                    "predicate `{}` must have arity 1 or 2",
                    atom.pred
                )));
            }
        }
        if rule.body.is_empty() {
            return Err(DbError::Rule("rules need a non-empty body".into()));
        }
        for term in &rule.head.args {
            if let Term::Var(name) = term {
                let bound = rule.body.iter().any(|atom| {
                    atom.args.iter().any(|t| matches!(t, Term::Var(n) if n == name))
                });
                if !bound {
                    return Err(DbError::Rule(format!(
                        "head variable `{name}` does not occur in the body"
                    )));
                }
            }
        }
        self.rules.write().push(rule);
        Ok(())
    }

    /// Remove all rules (tests/benches).
    pub fn clear_rules(&self) {
        self.rules.write().clear();
    }

    /// Build the extensional database from the object graph.
    fn build_edb(&self) -> DbResult<FactStore> {
        let mut store = FactStore::default();
        let catalog = self.catalog.read();
        let source = SourceView::new(self);
        let classes: Vec<_> = catalog.classes().map(|c| (c.id, c.name.clone())).collect();
        for (class_id, _name) in &classes {
            let oids = source.scan_class(*class_id)?;
            let resolved = catalog.resolve(*class_id)?;
            for oid in oids {
                // Unary class predicates, subclass-aware: the instance
                // belongs to its class and every ancestor.
                store.insert(&resolved.name, vec![KeyVal(Value::Ref(oid))]);
                for ancestor in catalog.ancestors(*class_id)? {
                    let aname = catalog.class(ancestor)?.name.clone();
                    store.insert(&aname, vec![KeyVal(Value::Ref(oid))]);
                }
                // Binary attribute predicates.
                for attr in &resolved.attrs {
                    let value = source.get_attr_value(oid, attr.id)?;
                    let effective = if value.is_null() { attr.default.clone() } else { value };
                    for leaf in crate::indexing::keys_of(&effective) {
                        store.insert(
                            &attr.name,
                            vec![KeyVal(Value::Ref(oid)), KeyVal(leaf)],
                        );
                    }
                }
            }
        }
        Ok(store)
    }

    /// Evaluate all rules to fixpoint and return `pred`'s tuples.
    /// `seminaive` restricts each round's joins to derivations that use
    /// at least one fact new in the previous round.
    pub fn infer(&self, pred: &str, seminaive: bool) -> DbResult<InferResult> {
        let rules = self.rules.read().clone();
        let mut store = self.build_edb()?;
        let mut substitutions: u64 = 0;

        // Delta = facts derived in the previous round, per predicate.
        let mut delta: HashMap<String, Relation> = HashMap::new();
        // Round zero: every rule against the EDB.
        for rule in &rules {
            let new = eval_rule(rule, &store, None, &mut substitutions)?;
            for tuple in new {
                if store.insert(&rule.head.pred, tuple.clone()) {
                    delta.entry(rule.head.pred.clone()).or_default().insert(tuple);
                }
            }
        }
        let mut iterations = 1usize;
        while !delta.is_empty() {
            let mut next_delta: HashMap<String, Relation> = HashMap::new();
            for rule in &rules {
                let new = if seminaive {
                    // One pass per body atom that can consume the delta.
                    let mut out = Vec::new();
                    for pivot in 0..rule.body.len() {
                        if delta.contains_key(&rule.body[pivot].pred) {
                            out.extend(eval_rule(
                                rule,
                                &store,
                                Some((pivot, &delta)),
                                &mut substitutions,
                            )?);
                        }
                    }
                    out
                } else {
                    eval_rule(rule, &store, None, &mut substitutions)?
                };
                for tuple in new {
                    if store.insert(&rule.head.pred, tuple.clone()) {
                        next_delta.entry(rule.head.pred.clone()).or_default().insert(tuple);
                    }
                }
            }
            delta = next_delta;
            iterations += 1;
        }

        let tuples = store
            .get(pred)
            .map(|rel| {
                rel.iter()
                    .map(|t| t.iter().map(|k| k.0.clone()).collect::<Vec<Value>>())
                    .collect()
            })
            .unwrap_or_default();
        Ok(InferResult { tuples, iterations, substitutions })
    }
}

/// Evaluate one rule against `store`. With `pivot = Some((i, delta))`,
/// body atom `i` ranges over the delta relation instead of the full one
/// (the semi-naive restriction).
fn eval_rule(
    rule: &Rule,
    store: &FactStore,
    pivot: Option<(usize, &HashMap<String, Relation>)>,
    substitutions: &mut u64,
) -> DbResult<Vec<Tuple>> {
    let empty = Relation::new();
    let mut substs: Vec<HashMap<String, Value>> = vec![HashMap::new()];
    for (i, atom) in rule.body.iter().enumerate() {
        let relation: &Relation = match pivot {
            Some((p, delta)) if p == i => delta.get(&atom.pred).unwrap_or(&empty),
            _ => store.get(&atom.pred).unwrap_or(&empty),
        };
        let mut next = Vec::new();
        for subst in &substs {
            for tuple in relation.iter() {
                *substitutions += 1;
                if let Some(extended) = unify(atom, tuple, subst) {
                    next.push(extended);
                }
            }
        }
        substs = next;
        if substs.is_empty() {
            return Ok(Vec::new());
        }
    }
    substs.iter().map(|s| ground_head(&rule.head, s)).collect()
}
