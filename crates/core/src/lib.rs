//! orion-core: the object-oriented database system the paper specifies,
//! assembled from the substrate crates.
//!
//! The facade follows the paper's two-part definition (§3.1): a core
//! object-oriented data model (identity, encapsulated state + behavior,
//! classes, arbitrary domains, a dynamically extensible class hierarchy
//! with inheritance, late-bound messages) **plus** every conventional
//! database facility with object-extended semantics — declarative
//! queries with automatic optimization, transactions with granular
//! locking, WAL recovery, authorization, schema evolution — **plus**
//! the "extended characterization" of §3.3: memory-resident object
//! management with pointer swizzling, versions, composite objects,
//! change notification, views, deductive rules, and a multidatabase
//! gateway.
//!
//! Entry point: [`Database`].

pub mod authz;
pub mod cache;
pub mod composite;
pub mod database;
pub mod ddl;
pub mod indexing;
pub mod methods;
pub mod multidb;
pub(crate) mod mvcc;
pub mod notify;
pub mod persist;
pub mod query_api;
pub mod rules;
pub(crate) mod runtime;
pub mod source;
pub mod stats;
pub mod sysattr;
pub mod versions;

pub use authz::{AuthAction, AuthTarget};
pub use cache::{CacheStats, ObjectCache};
pub use database::{Database, DbConfig, DbConfigBuilder, LockingStrategy, StorageSpec, Tx};
pub use stats::{DbStats, GateStats, NetMetrics, NetStats, TwoPcStats};
pub use ddl::Migration;
pub use methods::MethodBody;
pub use multidb::{ForeignAdapter, ForeignClass, ForeignObject};
pub use notify::{Notification, NotificationKind};
pub use rules::{var, InferResult, Rule, RuleAtom, Term};
pub use source::SourceView;
pub use versions::VersionStatus;

// Re-exports so downstream users need only one crate.
pub use orion_index::{IndexDef, IndexKind};
pub use orion_query::{AccessPath, ExecSnapshot, ExplainReport, QueryResult, RunStats};
pub use orion_schema::{AttrSpec, SchemaChange};
pub use orion_storage::{
    DiskStats, FaultKind, FaultPlan, FaultSite, FaultStats, FileDisk, PoolStats, RecoveryStats,
    StorageBackend, Trigger, WalStats,
};
pub use orion_tx::{LockStats, MvccStats};
pub use orion_types::{ClassId, DbError, DbResult, Domain, Oid, PrimitiveType, Value};
