//! The facade's [`DataSource`] implementation: how declarative queries
//! see stored (and federated) objects.

use crate::database::Database;
use orion_index::IndexDef;
use orion_query::DataSource;
use orion_types::codec::ObjectRecord;
use orion_types::{ClassId, DbError, DbResult, Oid, Value};
use std::ops::Bound;
use std::sync::Arc;

/// A lightweight view of the database for the query processor. Methods
/// take the maintenance gate *shared* briefly per call plus the
/// component lock they need (extents for scans, the index set for
/// lookups, cache shards for attribute reads) — any number of queries
/// proceed concurrently with each other and with DML. The executor
/// holds no locks across calls, so navigation can fault objects in
/// freely.
///
/// Isolation comes in two flavors:
/// * **Snapshot** (the default): [`SourceView::with_snapshot`] pins a
///   commit timestamp; scans merge back concurrently deleted objects,
///   visibility-filter the candidates, and attribute reads resolve
///   through the version store — no 2PL locks at all.
/// * **Legacy** ([`SourceView::new`]): raw in-place reads; callers rely
///   on the `S` class locks the query API takes at prepare time.
pub struct SourceView<'a> {
    db: &'a Database,
    /// `(snapshot commit-ts, reading txn)` when reading under MVCC.
    snapshot: Option<(u64, u64)>,
}

impl<'a> SourceView<'a> {
    /// Wrap a database (legacy in-place reads).
    pub fn new(db: &'a Database) -> Self {
        SourceView { db, snapshot: None }
    }

    /// Wrap a database pinned at snapshot `ts` for transaction
    /// `reader` (see [`Database::query`]).
    pub(crate) fn with_snapshot(db: &'a Database, ts: u64, reader: u64) -> Self {
        SourceView { db, snapshot: Some((ts, reader)) }
    }

    /// Is `oid` part of the extent at the pinned snapshot?
    fn visible(&self, oid: Oid, ts: u64, reader: u64) -> bool {
        use crate::mvcc::Resolution;
        match self.db.mvcc.resolve(oid, ts, reader) {
            // No chain / committed-visible: the candidate stands.
            Resolution::Current | Resolution::Visible(_) => true,
            Resolution::Invisible => false,
            // The reader's own in-flight write: the live directory is
            // exactly its view (its own deletes are gone, its own
            // creates and updates are in).
            Resolution::Own => self.db.rt_read().directory.contains(oid),
        }
    }
}

impl DataSource for SourceView<'_> {
    fn scan_class(&self, class: ClassId) -> DbResult<Vec<Oid>> {
        // Foreign classes refresh their materialized extent on scan.
        let adapter_name = self.db.rt_read().foreign_classes.read().get(&class).cloned();
        if let Some(name) = adapter_name {
            self.db.refresh_foreign_extent(&name, class)?;
        }
        let mut oids = self.db.rt_read().extents.snapshot(class);
        if let Some((ts, reader)) = self.snapshot {
            if !self.db.mvcc.quiescent() {
                // Objects deleted after the snapshot (or by in-flight
                // transactions) are gone from the live extent but still
                // belong to this scan; merge, then visibility-filter
                // the union (which also drops uncommitted creates).
                let gone = self.db.mvcc.deleted_after(class, ts);
                if !gone.is_empty() {
                    oids.extend(gone);
                    oids.sort_unstable();
                    oids.dedup();
                }
                oids.retain(|&oid| self.visible(oid, ts, reader));
            }
        }
        Ok(oids)
    }

    fn extent_size(&self, class: ClassId) -> usize {
        self.db.rt_read().extents.len_of(class)
    }

    fn get_attr_value(&self, oid: Oid, attr: u32) -> DbResult<Value> {
        let catalog = self.db.catalog.read();
        let rt = self.db.rt_read();
        let read = |oid: Oid| match self.snapshot {
            Some((ts, reader)) => self.db.read_record_at(&rt, &catalog, oid, ts, reader),
            None => self.db.read_record(&rt, &catalog, oid),
        };
        let record = match read(oid) {
            Some(r) => r,
            None => return Ok(Value::Null), // dangling reference
        };
        // Generic objects answer through their default version.
        if let Some(Value::Ref(default)) = record.get(crate::sysattr::ATTR_DEFAULT_VERSION) {
            let default = *default;
            return Ok(match read(default) {
                Some(fwd) => fwd.get(attr).cloned().unwrap_or(Value::Null),
                None => Value::Null,
            });
        }
        Ok(record.get(attr).cloned().unwrap_or(Value::Null))
    }

    fn indexes(&self) -> Vec<IndexDef> {
        self.db.rt_read().indexes.read().iter().map(|i| i.def.clone()).collect()
    }

    fn index_stats(&self, id: u32) -> (usize, usize) {
        let rt = self.db.rt_read();
        let indexes = rt.indexes.read();
        indexes
            .iter()
            .find(|i| i.def.id == id)
            .map_or((0, 0), |i| (i.imp.len(), i.imp.distinct_keys()))
    }

    fn index_key_bounds(&self, id: u32) -> Option<(Value, Value)> {
        let rt = self.db.rt_read();
        let indexes = rt.indexes.read();
        indexes.iter().find(|i| i.def.id == id).and_then(|i| i.imp.key_bounds())
    }

    fn index_lookup_eq(
        &self,
        id: u32,
        key: &Value,
        scope: Option<&[ClassId]>,
    ) -> DbResult<Vec<Oid>> {
        let rt = self.db.rt_read();
        let indexes = rt.indexes.read();
        let inst = indexes
            .iter()
            .find(|i| i.def.id == id)
            .ok_or_else(|| DbError::Query(format!("no index with id {id}")))?;
        Ok(inst.imp.lookup_eq(key, scope))
    }

    fn index_lookup_range(
        &self,
        id: u32,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
        scope: Option<&[ClassId]>,
    ) -> DbResult<Vec<Oid>> {
        let rt = self.db.rt_read();
        let indexes = rt.indexes.read();
        let inst = indexes
            .iter()
            .find(|i| i.def.id == id)
            .ok_or_else(|| DbError::Query(format!("no index with id {id}")))?;
        Ok(inst.imp.lookup_range(lower, upper, scope))
    }
}

impl Database {
    /// Re-materialize a foreign class's extent from its adapter.
    pub(crate) fn refresh_foreign_extent(&self, adapter: &str, class: ClassId) -> DbResult<()> {
        let adapters = self.adapters.read();
        let ad = adapters
            .get(adapter)
            .ok_or_else(|| DbError::Foreign(format!("no adapter `{adapter}`")))?;
        let catalog = self.catalog.read();
        let resolved = catalog.resolve(class)?;
        let rows = ad.scan(&resolved.name)?;
        // Decode off-lock, then swap the store and extent in two short
        // critical sections (the foreign_store guard is a leaf — it is
        // dropped before the extent lock is touched).
        let mut extent = std::collections::BTreeSet::new();
        let mut fresh: Vec<(Oid, Arc<ObjectRecord>)> = Vec::with_capacity(rows.len());
        for row in rows {
            let serial = row.key & ((1u64 << 48) - 1);
            let oid = Oid::new(class, serial);
            let mut attrs: Vec<(u32, Value)> = Vec::with_capacity(row.attrs.len());
            for (name, value) in row.attrs {
                if let Some(attr) = resolved.attr(&name) {
                    attrs.push((attr.id, value));
                }
            }
            fresh.push((oid, Arc::new(ObjectRecord::new(oid, resolved.version, attrs))));
            extent.insert(oid);
        }
        let rt = self.rt_read();
        {
            let mut store = rt.foreign_store.write();
            // Replace the snapshot wholesale: foreign data is
            // snapshot-consistent.
            store.retain(|oid, _| oid.class() != class);
            for (oid, record) in fresh {
                store.insert(oid, record);
            }
        }
        rt.extents.replace(class, extent);
        Ok(())
    }
}
