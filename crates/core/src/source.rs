//! The facade's [`DataSource`] implementation: how declarative queries
//! see stored (and federated) objects.

use crate::database::Database;
use orion_index::IndexDef;
use orion_query::DataSource;
use orion_types::codec::ObjectRecord;
use orion_types::{ClassId, DbError, DbResult, Oid, Value};
use std::ops::Bound;

/// A lightweight view of the database for the query processor. Methods
/// take the runtime's *shared* lock briefly per call — any number of
/// queries proceed concurrently, serializing only against DML/DDL
/// (which take the write lock). The executor holds no locks across
/// calls, so navigation can fault objects in freely.
pub struct SourceView<'a> {
    db: &'a Database,
}

impl<'a> SourceView<'a> {
    /// Wrap a database.
    pub fn new(db: &'a Database) -> Self {
        SourceView { db }
    }
}

impl DataSource for SourceView<'_> {
    fn scan_class(&self, class: ClassId) -> DbResult<Vec<Oid>> {
        // Foreign classes refresh their materialized extent on scan.
        let adapter_name = self.db.rt.read().foreign_classes.get(&class).cloned();
        if let Some(name) = adapter_name {
            self.db.refresh_foreign_extent(&name, class)?;
        }
        let rt = self.db.rt.read();
        Ok(rt.extents.get(&class).map(|e| e.iter().copied().collect()).unwrap_or_default())
    }

    fn extent_size(&self, class: ClassId) -> usize {
        self.db.rt.read().extents.get(&class).map_or(0, |e| e.len())
    }

    fn get_attr_value(&self, oid: Oid, attr: u32) -> DbResult<Value> {
        let catalog = self.db.catalog.read();
        let rt = self.db.rt.read();
        let record = match self.db.read_record(&rt, &catalog, oid) {
            Some(r) => r,
            None => return Ok(Value::Null), // dangling reference
        };
        // Generic objects answer through their default version.
        if let Some(Value::Ref(default)) = record.get(crate::sysattr::ATTR_DEFAULT_VERSION) {
            let default = *default;
            return Ok(match self.db.read_record(&rt, &catalog, default) {
                Some(fwd) => fwd.get(attr).cloned().unwrap_or(Value::Null),
                None => Value::Null,
            });
        }
        Ok(record.get(attr).cloned().unwrap_or(Value::Null))
    }

    fn indexes(&self) -> Vec<IndexDef> {
        self.db.rt.read().indexes.iter().map(|i| i.def.clone()).collect()
    }

    fn index_stats(&self, id: u32) -> (usize, usize) {
        let rt = self.db.rt.read();
        rt.indexes
            .iter()
            .find(|i| i.def.id == id)
            .map_or((0, 0), |i| (i.imp.len(), i.imp.distinct_keys()))
    }

    fn index_key_bounds(&self, id: u32) -> Option<(Value, Value)> {
        let rt = self.db.rt.read();
        rt.indexes.iter().find(|i| i.def.id == id).and_then(|i| i.imp.key_bounds())
    }

    fn index_lookup_eq(
        &self,
        id: u32,
        key: &Value,
        scope: Option<&[ClassId]>,
    ) -> DbResult<Vec<Oid>> {
        let rt = self.db.rt.read();
        let inst = rt
            .indexes
            .iter()
            .find(|i| i.def.id == id)
            .ok_or_else(|| DbError::Query(format!("no index with id {id}")))?;
        Ok(inst.imp.lookup_eq(key, scope))
    }

    fn index_lookup_range(
        &self,
        id: u32,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
        scope: Option<&[ClassId]>,
    ) -> DbResult<Vec<Oid>> {
        let rt = self.db.rt.read();
        let inst = rt
            .indexes
            .iter()
            .find(|i| i.def.id == id)
            .ok_or_else(|| DbError::Query(format!("no index with id {id}")))?;
        Ok(inst.imp.lookup_range(lower, upper, scope))
    }
}

impl Database {
    /// Re-materialize a foreign class's extent from its adapter.
    pub(crate) fn refresh_foreign_extent(&self, adapter: &str, class: ClassId) -> DbResult<()> {
        let adapters = self.adapters.read();
        let ad = adapters
            .get(adapter)
            .ok_or_else(|| DbError::Foreign(format!("no adapter `{adapter}`")))?;
        let catalog = self.catalog.read();
        let resolved = catalog.resolve(class)?;
        let rows = ad.scan(&resolved.name)?;
        let mut rt = self.rt.write();
        // Replace the extent wholesale: foreign data is snapshot-consistent.
        let mut extent = std::collections::BTreeSet::new();
        // Drop previous snapshot records of this class.
        rt.foreign_store.retain(|oid, _| oid.class() != class);
        for row in rows {
            let serial = row.key & ((1u64 << 48) - 1);
            let oid = Oid::new(class, serial);
            let mut attrs: Vec<(u32, Value)> = Vec::with_capacity(row.attrs.len());
            for (name, value) in row.attrs {
                if let Some(attr) = resolved.attr(&name) {
                    attrs.push((attr.id, value));
                }
            }
            rt.foreign_store.insert(oid, ObjectRecord::new(oid, resolved.version, attrs));
            extent.insert(oid);
        }
        rt.extents.insert(class, extent);
        Ok(())
    }
}
