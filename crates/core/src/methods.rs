//! The method registry: native bodies for catalog method signatures.
//!
//! "Every object encapsulates a state and a behavior ... the behavior of
//! an object is the set of methods (program code) which operate on the
//! state of the object" (§3.1, concept 2). ORION bound Lisp functions;
//! orion binds Rust closures. The catalog stores signatures and answers
//! late binding ("run-time binding of a message to its corresponding
//! method", concept 6) by walking the class linearization; this registry
//! maps the *resolved* `(defining class, selector)` pair to executable
//! code.

use crate::database::{Database, Tx};
use orion_types::{ClassId, DbResult, Oid, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A method body: receives the database, the calling transaction, the
/// receiver, and the arguments; returns a value.
pub type MethodBody = Arc<dyn Fn(&Database, &Tx, Oid, &[Value]) -> DbResult<Value> + Send + Sync>;

/// Maps `(defining class, selector)` to a body.
#[derive(Default)]
pub struct MethodRegistry {
    bodies: HashMap<(ClassId, String), MethodBody>,
}

impl MethodRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MethodRegistry::default()
    }

    /// Register the body for a method defined on `class`.
    pub fn register(&mut self, class: ClassId, selector: &str, body: MethodBody) {
        self.bodies.insert((class, selector.to_owned()), body);
    }

    /// Remove a body.
    pub fn unregister(&mut self, class: ClassId, selector: &str) {
        self.bodies.remove(&(class, selector.to_owned()));
    }

    /// The body for an exact `(class, selector)` pair (after the catalog
    /// has already late-bound the selector to its defining class).
    pub fn body(&self, class: ClassId, selector: &str) -> Option<MethodBody> {
        self.bodies.get(&(class, selector.to_owned())).map(Arc::clone)
    }
}

impl std::fmt::Debug for MethodRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodRegistry").field("bodies", &self.bodies.len()).finish()
    }
}
