//! Unified observability: the [`Database::stats`] snapshot and its
//! Prometheus text rendering.
//!
//! Every layer keeps its own lock-free counters (buffer pool, simulated
//! disk, WAL, lock manager, query executor, object cache); this module
//! is the one place they are gathered into a coherent, structured view.
//! A snapshot is cheap — atomic loads plus one shared runtime read
//! guard for the object cache — and safe to take while queries and
//! transactions are running: individual fields may be skewed by
//! in-flight updates but no value is ever torn.
//!
//! [`Database::stats`]: crate::Database::stats

use crate::cache::CacheStats;
use orion_obs::{render, Counter, Gauge, Histogram, HistogramSnapshot};
use orion_query::{ExecMetrics, ExecSnapshot};
use orion_storage::{DiskStats, FaultStats, PoolStats, RecoveryStats, WalStats};
use orion_tx::{LockStats, MvccStats};
use std::sync::Arc;

/// The metric sinks one `Database` owns and threads through its layers.
/// The executor sink is `Arc`-shared with every [`orion_query::ExecOptions`]
/// the facade hands out, so concurrent queries account into one place.
#[derive(Debug, Default)]
pub(crate) struct DbMetrics {
    /// Cross-query executor metrics (attached to every execution).
    pub exec: Arc<ExecMetrics>,
    /// Late-bound method dispatches through `Database::call`.
    pub method_calls: Counter,
    /// Network front-door metrics; `Arc`-shared with any `orion-net`
    /// server built over this database.
    pub net: Arc<NetMetrics>,
    /// Two-phase-commit participant metrics (prepare/decide/recover).
    pub twopc: TwoPcMetrics,
    /// Shared maintenance-gate acquisitions (DML/query/read paths).
    pub gate_shared: Counter,
    /// Exclusive maintenance-gate acquisitions (rollback, recovery,
    /// index DDL, foreign attach).
    pub gate_exclusive: Counter,
    /// Time an exclusive gate acquisition waited for shared holders to
    /// drain — the cost of quiescing the decomposed runtime.
    pub gate_exclusive_wait: Histogram,
}

impl DbMetrics {
    /// A point-in-time copy of the maintenance-gate sinks.
    pub(crate) fn gate_snapshot(&self) -> GateStats {
        GateStats {
            shared_acquisitions: self.gate_shared.get(),
            exclusive_acquisitions: self.gate_exclusive.get(),
            exclusive_wait: self.gate_exclusive_wait.snapshot(),
        }
    }
}

/// Maintenance-gate counters, as captured by [`Database::stats`]. The
/// gate is the `RwLock` around the decomposed runtime: shared for all
/// normal work, exclusive only for whole-state rebuilds, so a high
/// exclusive wait means rebuild operations are stalling behind live
/// traffic (see `crate::runtime` for the lock order).
///
/// [`Database::stats`]: crate::Database::stats
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GateStats {
    /// Shared acquisitions (DML, queries, reads, stats).
    pub shared_acquisitions: u64,
    /// Exclusive acquisitions (rollback, recovery, index DDL, attach).
    pub exclusive_acquisitions: u64,
    /// Wait-for-quiescence latency of exclusive acquisitions.
    pub exclusive_wait: HistogramSnapshot,
}

/// Live counters for the network front door (`orion-net`). The server
/// crate sits *above* orion-core in the dependency graph, so the sinks
/// live here and the database hands the server an `Arc` via
/// [`Database::net_metrics`] — that is what lets `stats()` and the
/// Prometheus rendering cover the wire without core depending on net.
///
/// [`Database::net_metrics`]: crate::Database::net_metrics
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Currently open client connections.
    pub connections: Gauge,
    /// Connections accepted since startup.
    pub connections_total: Counter,
    /// Requests served (any outcome).
    pub requests: Counter,
    /// Requests answered with an error response.
    pub errors: Counter,
    /// Connections evicted for idleness or read/write timeout.
    pub timeouts: Counter,
    /// Connections refused at the door (connection cap or accept queue
    /// full).
    pub busy_rejections: Counter,
    /// End-to-end server-side request latency (decode → respond).
    pub request_latency: Histogram,
    /// Pipeline depth observed as each request is admitted: how many
    /// requests its connection then has in flight (unit: requests).
    pub pipeline_depth: Histogram,
    /// Requests shed with `ServerBusy` by admission control (pipeline
    /// cap or executor-queue cap).
    pub requests_shed: Counter,
    /// Event-loop wakeups (poll returns) across all I/O threads.
    pub readiness_wakeups: Counter,
    /// Recent event-loop wakeup rate (per second, ~1s window).
    pub readiness_wakeups_per_sec: Gauge,
    /// Open connections per event-loop thread (ceiling of the mean).
    pub connections_per_worker: Gauge,
}

impl NetMetrics {
    /// A point-in-time copy of every sink.
    pub fn snapshot(&self) -> NetStats {
        NetStats {
            connections: self.connections.get(),
            connections_total: self.connections_total.get(),
            requests: self.requests.get(),
            errors: self.errors.get(),
            timeouts: self.timeouts.get(),
            busy_rejections: self.busy_rejections.get(),
            request_latency: self.request_latency.snapshot(),
            pipeline_depth: self.pipeline_depth.snapshot(),
            requests_shed: self.requests_shed.get(),
            readiness_wakeups: self.readiness_wakeups.get(),
            readiness_wakeups_per_sec: self.readiness_wakeups_per_sec.get(),
            connections_per_worker: self.connections_per_worker.get(),
        }
    }

    /// Zero every sink (between benchmark phases).
    pub fn reset(&self) {
        self.connections.reset();
        self.connections_total.reset();
        self.requests.reset();
        self.errors.reset();
        self.timeouts.reset();
        self.busy_rejections.reset();
        self.request_latency.reset();
        self.pipeline_depth.reset();
        self.requests_shed.reset();
        self.readiness_wakeups.reset();
        self.readiness_wakeups_per_sec.reset();
        self.connections_per_worker.reset();
    }
}

/// Two-phase-commit participant sinks. A database acting as a 2PC
/// participant (behind a shard router) accounts its prepare and
/// decision traffic here; the `prepared` gauge in [`TwoPcStats`] is
/// filled live from the storage engine at snapshot time, so it is
/// exact even across recoveries.
#[derive(Debug, Default)]
pub struct TwoPcMetrics {
    /// Transactions that entered the prepared state (phase one).
    pub prepares: Counter,
    /// Prepared transactions committed by a coordinator decision.
    pub commits: Counter,
    /// Prepared transactions aborted by a coordinator decision.
    pub aborts: Counter,
    /// In-doubt transactions reinstated from the log at recovery.
    pub in_doubt_recovered: Counter,
}

impl TwoPcMetrics {
    /// A point-in-time copy; `prepared` is supplied by the caller
    /// (the engine knows the live count).
    pub fn snapshot(&self, prepared: u64) -> TwoPcStats {
        TwoPcStats {
            prepared,
            prepares: self.prepares.get(),
            commits: self.commits.get(),
            aborts: self.aborts.get(),
            in_doubt_recovered: self.in_doubt_recovered.get(),
        }
    }

    /// Zero every sink (between benchmark phases).
    pub fn reset(&self) {
        self.prepares.reset();
        self.commits.reset();
        self.aborts.reset();
        self.in_doubt_recovered.reset();
    }
}

/// Two-phase-commit participant counters, as captured by
/// [`Database::stats`].
///
/// [`Database::stats`]: crate::Database::stats
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TwoPcStats {
    /// Transactions currently prepared and awaiting a coordinator
    /// decision (in doubt after a recovery).
    pub prepared: u64,
    /// Transactions that entered the prepared state since startup.
    pub prepares: u64,
    /// Prepared transactions committed by a coordinator decision.
    pub commits: u64,
    /// Prepared transactions aborted by a coordinator decision.
    pub aborts: u64,
    /// In-doubt transactions reinstated from the log at recovery.
    pub in_doubt_recovered: u64,
}

/// Network front-door counters, as captured by [`Database::stats`].
///
/// [`Database::stats`]: crate::Database::stats
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Currently open client connections.
    pub connections: u64,
    /// Connections accepted since startup.
    pub connections_total: u64,
    /// Requests served (any outcome).
    pub requests: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Connections evicted for idleness or read/write timeout.
    pub timeouts: u64,
    /// Connections refused at the door (connection cap or accept queue
    /// full).
    pub busy_rejections: u64,
    /// Server-side request latency distribution.
    pub request_latency: HistogramSnapshot,
    /// Per-connection pipeline depth at admission (unit: requests).
    pub pipeline_depth: HistogramSnapshot,
    /// Requests shed with `ServerBusy` by admission control.
    pub requests_shed: u64,
    /// Event-loop wakeups across all I/O threads.
    pub readiness_wakeups: u64,
    /// Recent event-loop wakeup rate (per second).
    pub readiness_wakeups_per_sec: u64,
    /// Open connections per event-loop thread.
    pub connections_per_worker: u64,
}

/// A structured snapshot of every performance counter in the system,
/// returned by [`Database::stats`].
///
/// [`Database::stats`]: crate::Database::stats
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DbStats {
    /// Object-cache counters (hits, misses, swizzle traversals).
    pub cache: CacheStats,
    /// Buffer-pool counters (hits, misses, evictions, writebacks).
    pub pool: PoolStats,
    /// Simulated-disk I/O counters.
    pub disk: DiskStats,
    /// Write-ahead log counters and flush latency.
    pub wal: WalStats,
    /// Lock-manager counters and wait latency.
    pub locks: LockStats,
    /// MVCC snapshot-read counters (version chains, pruning, lag).
    pub mvcc: MvccStats,
    /// Query-executor counters.
    pub exec: ExecSnapshot,
    /// Maintenance-gate counters (runtime decomposition).
    pub gate: GateStats,
    /// Objects fetched (decoded) from storage.
    pub fetches: u64,
    /// Late-bound method dispatches.
    pub method_calls: u64,
    /// Network front-door counters (zero when no server is attached).
    pub net: NetStats,
    /// Two-phase-commit participant counters (zero unless the node is
    /// serving cross-shard transactions).
    pub twopc: TwoPcStats,
    /// Injected-fault counters (zero unless a fault plan is installed).
    pub fault: FaultStats,
    /// Recovery-outcome counters (runs, failures, pages repaired).
    pub recovery: RecoveryStats,
}

impl DbStats {
    /// Render the snapshot in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        render::counter(
            &mut out,
            "orion_cache_hits_total",
            "Object-cache lookups answered by a resident object",
            self.cache.hits,
        );
        render::counter(
            &mut out,
            "orion_cache_misses_total",
            "Object-cache lookups that faulted in from storage",
            self.cache.misses,
        );
        render::counter(
            &mut out,
            "orion_cache_evictions_total",
            "Object-cache residents evicted to stay within capacity",
            self.cache.evictions,
        );
        render::counter(
            &mut out,
            "orion_cache_swizzled_hops_total",
            "Ref traversals answered through a valid swizzle slot",
            self.cache.swizzled_hops,
        );
        render::counter(
            &mut out,
            "orion_cache_unswizzled_hops_total",
            "Ref traversals that resolved via the OID map",
            self.cache.unswizzled_hops,
        );
        render::counter(
            &mut out,
            "orion_pool_hits_total",
            "Buffer-pool page requests satisfied without disk I/O",
            self.pool.hits,
        );
        render::counter(
            &mut out,
            "orion_pool_misses_total",
            "Buffer-pool page requests that read from disk",
            self.pool.misses,
        );
        render::counter(
            &mut out,
            "orion_pool_evictions_total",
            "Buffer-pool frames evicted to make room",
            self.pool.evictions,
        );
        render::counter(
            &mut out,
            "orion_pool_writebacks_total",
            "Dirty pages written back to disk",
            self.pool.writebacks,
        );
        render::counter(&mut out, "orion_disk_reads_total", "Pages read from disk", self.disk.reads);
        render::counter(
            &mut out,
            "orion_disk_writes_total",
            "Pages written to disk",
            self.disk.writes,
        );
        render::counter(
            &mut out,
            "orion_wal_appends_total",
            "Log records appended to the WAL",
            self.wal.appends,
        );
        render::counter(
            &mut out,
            "orion_wal_flushes_total",
            "Non-empty WAL flushes to stable storage",
            self.wal.flushes,
        );
        render::counter(
            &mut out,
            "orion_wal_flushed_bytes_total",
            "Bytes moved to the stable WAL",
            self.wal.flushed_bytes,
        );
        render::histogram(
            &mut out,
            "orion_wal_flush_latency_seconds",
            "WAL flush latency",
            &self.wal.flush_latency,
        );
        render::counter(
            &mut out,
            "orion_wal_torn_tail_truncations_total",
            "Torn WAL tails truncated at recovery (end-of-log discipline)",
            self.wal.torn_tail_truncations,
        );
        render::counter(
            &mut out,
            "orion_wal_fsyncs_total",
            "Durability barriers issued against the log device",
            self.wal.fsyncs,
        );
        render::counter(
            &mut out,
            "orion_wal_logical_records_total",
            "Logical DML records (insert/update/delete/CLR) appended",
            self.wal.logical_records,
        );
        render::plain_histogram(
            &mut out,
            "orion_wal_group_commit_batch_size",
            "Committers whose commits one group-commit flush made durable",
            &self.wal.group_commit_batch_size,
        );
        render::counter(
            &mut out,
            "orion_fault_read_errors_total",
            "Injected page-read I/O errors",
            self.fault.read_errors,
        );
        render::counter(
            &mut out,
            "orion_fault_write_errors_total",
            "Injected page-write I/O errors",
            self.fault.write_errors,
        );
        render::counter(
            &mut out,
            "orion_fault_torn_writes_total",
            "Injected torn page writes (prefix persisted)",
            self.fault.torn_writes,
        );
        render::counter(
            &mut out,
            "orion_fault_bit_flips_total",
            "Injected stored-page bit flips",
            self.fault.bit_flips,
        );
        render::counter(
            &mut out,
            "orion_fault_partial_flushes_total",
            "Injected partial WAL flushes",
            self.fault.partial_flushes,
        );
        render::counter(
            &mut out,
            "orion_recovery_completed_total",
            "Restart recoveries that completed",
            self.recovery.completed,
        );
        render::counter(
            &mut out,
            "orion_recovery_failed_total",
            "Restart recoveries that failed with an error",
            self.recovery.failed,
        );
        render::counter(
            &mut out,
            "orion_recovery_pages_repaired_total",
            "Corrupt pages rebuilt by log replay during recovery",
            self.recovery.pages_repaired,
        );
        render::counter(
            &mut out,
            "orion_lock_acquisitions_total",
            "Lock requests granted",
            self.locks.acquisitions,
        );
        render::counter(
            &mut out,
            "orion_lock_waits_total",
            "Lock requests that blocked at least once",
            self.locks.waits,
        );
        render::counter(
            &mut out,
            "orion_lock_deadlock_victims_total",
            "Lock requests aborted as deadlock victims",
            self.locks.deadlock_victims,
        );
        render::counter(
            &mut out,
            "orion_lock_timeouts_total",
            "Lock requests that timed out",
            self.locks.timeouts,
        );
        // Per-mode breakout (the render helpers are label-free, so each
        // mode gets its own series). With MVCC snapshot reads on, a
        // pure-query workload holds the S series at ~0 — the "queries
        // take no locks" claim is directly observable here.
        render::counter(
            &mut out,
            "orion_lock_acquisitions_is_total",
            "IS-mode lock grants (intention share)",
            self.locks.is_acquisitions,
        );
        render::counter(
            &mut out,
            "orion_lock_acquisitions_ix_total",
            "IX-mode lock grants (intention exclusive)",
            self.locks.ix_acquisitions,
        );
        render::counter(
            &mut out,
            "orion_lock_acquisitions_s_total",
            "S-mode lock grants (shared reads)",
            self.locks.s_acquisitions,
        );
        render::counter(
            &mut out,
            "orion_lock_acquisitions_six_total",
            "SIX-mode lock grants (share + intention exclusive)",
            self.locks.six_acquisitions,
        );
        render::counter(
            &mut out,
            "orion_lock_acquisitions_x_total",
            "X-mode lock grants (exclusive writes)",
            self.locks.x_acquisitions,
        );
        render::histogram(
            &mut out,
            "orion_lock_wait_latency_seconds",
            "Lock wait latency",
            &self.locks.wait_latency,
        );
        render::counter(
            &mut out,
            "orion_mvcc_snapshots_total",
            "Query snapshots captured",
            self.mvcc.snapshots,
        );
        render::counter(
            &mut out,
            "orion_mvcc_snapshot_reads_total",
            "Record reads resolved under a snapshot",
            self.mvcc.snapshot_reads,
        );
        render::counter(
            &mut out,
            "orion_mvcc_versions_published_total",
            "Committed versions appended to version chains",
            self.mvcc.versions_published,
        );
        render::counter(
            &mut out,
            "orion_mvcc_versions_pruned_total",
            "Superseded versions reclaimed by pruning",
            self.mvcc.versions_pruned,
        );
        render::histogram(
            &mut out,
            "orion_mvcc_version_chain_length",
            "Version-chain length observed at publish (unit: links)",
            &self.mvcc.chain_length,
        );
        render::gauge(
            &mut out,
            "orion_mvcc_active_snapshots",
            "Snapshots currently pinned by running queries",
            self.mvcc.active_snapshots,
        );
        render::gauge(
            &mut out,
            "orion_mvcc_oldest_snapshot_lag",
            "Commit-timestamp distance from the oldest active snapshot to the frontier",
            self.mvcc.oldest_snapshot_lag,
        );
        render::counter(
            &mut out,
            "orion_exec_queries_total",
            "Completed query executions",
            self.exec.queries,
        );
        render::counter(
            &mut out,
            "orion_exec_rows_scanned_total",
            "Candidate objects pulled from access paths",
            self.exec.rows_scanned,
        );
        render::counter(
            &mut out,
            "orion_exec_rows_matched_total",
            "Objects that survived the residual predicate",
            self.exec.rows_matched,
        );
        render::counter(
            &mut out,
            "orion_exec_memo_hits_total",
            "Path-memo hits",
            self.exec.memo_hits,
        );
        render::counter(
            &mut out,
            "orion_exec_memo_lookups_total",
            "Path-memo lookups",
            self.exec.memo_lookups,
        );
        render::counter(
            &mut out,
            "orion_exec_index_picks_total",
            "Plans that chose an index access path",
            self.exec.index_picks,
        );
        render::counter(
            &mut out,
            "orion_exec_scan_picks_total",
            "Plans that chose a full extent scan",
            self.exec.scan_picks,
        );
        render::gauge(
            &mut out,
            "orion_exec_last_parallelism",
            "Worker threads used by the most recent execution",
            self.exec.last_parallelism,
        );
        render::counter(
            &mut out,
            "orion_gate_shared_acquisitions_total",
            "Shared maintenance-gate acquisitions",
            self.gate.shared_acquisitions,
        );
        render::counter(
            &mut out,
            "orion_gate_exclusive_acquisitions_total",
            "Exclusive maintenance-gate acquisitions (rebuilds)",
            self.gate.exclusive_acquisitions,
        );
        render::histogram(
            &mut out,
            "orion_gate_exclusive_wait_seconds",
            "Exclusive gate wait for shared holders to drain",
            &self.gate.exclusive_wait,
        );
        render::counter(
            &mut out,
            "orion_object_fetches_total",
            "Objects decoded from storage",
            self.fetches,
        );
        render::counter(
            &mut out,
            "orion_method_calls_total",
            "Late-bound method dispatches",
            self.method_calls,
        );
        render::gauge(
            &mut out,
            "orion_net_connections",
            "Currently open client connections",
            self.net.connections,
        );
        render::counter(
            &mut out,
            "orion_net_connections_total",
            "Client connections accepted since startup",
            self.net.connections_total,
        );
        render::counter(
            &mut out,
            "orion_net_requests_total",
            "Wire requests served",
            self.net.requests,
        );
        render::counter(
            &mut out,
            "orion_net_errors_total",
            "Wire requests answered with an error response",
            self.net.errors,
        );
        render::counter(
            &mut out,
            "orion_net_timeouts_total",
            "Connections evicted for idleness or I/O timeout",
            self.net.timeouts,
        );
        render::counter(
            &mut out,
            "orion_net_busy_rejections_total",
            "Connections refused at the door (connection cap or accept queue)",
            self.net.busy_rejections,
        );
        render::histogram(
            &mut out,
            "orion_net_request_latency_seconds",
            "Server-side request latency",
            &self.net.request_latency,
        );
        render::plain_histogram(
            &mut out,
            "orion_net_pipeline_depth",
            "Per-connection pipeline depth at request admission (unit: requests)",
            &self.net.pipeline_depth,
        );
        render::counter(
            &mut out,
            "orion_net_requests_shed_total",
            "Requests shed with ServerBusy by admission control",
            self.net.requests_shed,
        );
        render::counter(
            &mut out,
            "orion_net_readiness_wakeups_total",
            "Event-loop wakeups across all I/O threads",
            self.net.readiness_wakeups,
        );
        render::gauge(
            &mut out,
            "orion_net_readiness_wakeups_per_sec",
            "Recent event-loop wakeup rate",
            self.net.readiness_wakeups_per_sec,
        );
        render::gauge(
            &mut out,
            "orion_net_connections_per_worker",
            "Open connections per event-loop thread",
            self.net.connections_per_worker,
        );
        render::gauge(
            &mut out,
            "orion_2pc_prepared_transactions",
            "Transactions prepared and awaiting a coordinator decision",
            self.twopc.prepared,
        );
        render::counter(
            &mut out,
            "orion_2pc_prepares_total",
            "Transactions that entered the prepared state",
            self.twopc.prepares,
        );
        render::counter(
            &mut out,
            "orion_2pc_commits_total",
            "Prepared transactions committed by coordinator decision",
            self.twopc.commits,
        );
        render::counter(
            &mut out,
            "orion_2pc_aborts_total",
            "Prepared transactions aborted by coordinator decision",
            self.twopc.aborts,
        );
        render::counter(
            &mut out,
            "orion_2pc_in_doubt_recovered_total",
            "In-doubt transactions reinstated from the log at recovery",
            self.twopc.in_doubt_recovered,
        );
        out
    }
}
