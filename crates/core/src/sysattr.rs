//! Reserved system attribute ids.
//!
//! Version management (\[CHOU86/88\], §3.3/§5.5) stores its metadata *in
//! the object records themselves* under reserved attribute ids, so that
//! WAL recovery and transaction rollback restore version state for free
//! — the version manager is a pure view over storage. Reserved ids live
//! at the top of the `u32` space, far above anything the catalog
//! allocates; resolved class definitions never include them, so queries
//! and projections cannot see them.

/// First reserved id; everything at or above is a system attribute.
pub const RESERVED_BASE: u32 = u32::MAX - 15;

/// On a *generic* object: reference to the default version.
pub const ATTR_DEFAULT_VERSION: u32 = u32::MAX - 1;
/// On a version: reference to its generic object.
pub const ATTR_GENERIC: u32 = u32::MAX - 2;
/// On a version: reference to the version it was derived from.
pub const ATTR_VERSION_PARENT: u32 = u32::MAX - 3;
/// On a version: status string (`"transient"` or `"working"`).
pub const ATTR_VERSION_STATUS: u32 = u32::MAX - 4;
/// On the system record: the encoded system state blob.
pub const ATTR_SYSTEM_SNAPSHOT: u32 = u32::MAX - 5;

/// Is `attr` a reserved system attribute?
pub fn is_reserved(attr: u32) -> bool {
    attr >= RESERVED_BASE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_range() {
        assert!(is_reserved(ATTR_DEFAULT_VERSION));
        assert!(is_reserved(ATTR_GENERIC));
        assert!(is_reserved(ATTR_VERSION_PARENT));
        assert!(is_reserved(ATTR_VERSION_STATUS));
        assert!(!is_reserved(0));
        assert!(!is_reserved(1_000_000));
    }
}
