//! The multidatabase gateway (§5.2).
//!
//! "It is highly desirable to allow the user to access a heterogeneous
//! mix of databases under the illusion of a single common data model ...
//! The richness of an object-oriented data model makes it appropriate
//! for use as the common data model."
//!
//! A foreign database plugs in by implementing [`ForeignAdapter`]. On
//! attach, each foreign class becomes a real class in the catalog whose
//! *extent is served by the adapter*: scans refresh a materialized
//! snapshot keyed by the adapter's stable per-row keys, so OIDs stay
//! stable across scans and orion queries (including joins-by-navigation
//! against native objects) work unchanged over foreign data.

use orion_types::{DbResult, PrimitiveType, Value};

/// Schema of one foreign class as exposed by an adapter.
#[derive(Debug, Clone)]
pub struct ForeignClass {
    /// Class name to register in the catalog.
    pub name: String,
    /// `(attribute name, primitive type)` pairs. Foreign attributes are
    /// primitive; cross-database references are modeled by key values
    /// and resolved by applications or rules.
    pub attrs: Vec<(String, PrimitiveType)>,
}

/// One foreign row/record, as exposed by an adapter.
#[derive(Debug, Clone)]
pub struct ForeignObject {
    /// A stable per-class key (e.g. a primary key hash). Re-scans with
    /// the same key map to the same orion OID.
    pub key: u64,
    /// Attribute values, aligned with the class's declared attributes
    /// by name.
    pub attrs: Vec<(String, Value)>,
}

/// What a foreign database must provide to join the federation.
pub trait ForeignAdapter: Send + Sync {
    /// A short name for diagnostics.
    fn name(&self) -> &str;

    /// The classes this adapter serves.
    fn classes(&self) -> Vec<ForeignClass>;

    /// Scan the current contents of one foreign class.
    fn scan(&self, class: &str) -> DbResult<Vec<ForeignObject>>;
}

use crate::database::Database;
use orion_schema::AttrSpec;
use orion_types::{DbError, Domain};

impl Database {
    /// Attach a foreign database: each of its classes becomes a real
    /// class in the catalog whose extent is served by the adapter.
    /// Returns the names of the attached classes.
    pub fn attach_foreign(&self, adapter: Box<dyn ForeignAdapter>) -> DbResult<Vec<String>> {
        let name = adapter.name().to_owned();
        if self.adapters.read().contains_key(&name) {
            return Err(DbError::AlreadyExists(format!("foreign adapter `{name}`")));
        }
        let classes = adapter.classes();
        let mut attached = Vec::with_capacity(classes.len());
        {
            let mut catalog = self.catalog.write();
            // Exclusive gate: attaching re-plumbs how extents are served,
            // which must not race an in-flight scan or DML.
            let rt = self.rt_write();
            let mut foreign = rt.foreign_classes.write();
            for fc in &classes {
                let attrs = fc
                    .attrs
                    .iter()
                    .map(|(n, t)| AttrSpec::new(n.clone(), Domain::Primitive(*t)))
                    .collect();
                let class_id = catalog.create_class(&fc.name, &[], attrs)?;
                foreign.insert(class_id, name.clone());
                attached.push(fc.name.clone());
            }
        }
        self.adapters.write().insert(name, adapter);
        Ok(attached)
    }

    /// Names of attached foreign adapters.
    pub fn foreign_adapters(&self) -> Vec<String> {
        let mut names: Vec<String> = self.adapters.read().keys().cloned().collect();
        names.sort();
        names
    }
}
